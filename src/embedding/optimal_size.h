// Collision analysis and optimal c-vector sizing (Lemma 1, Theorem 1).
//
// Hashing b q-gram indexes into an m-bit c-vector collides with birthday-
// paradox frequency.  Lemma 1 gives the expected number of collisions
//   E[c] = b - m * (1 - (1 - 1/m)^b),
// and Theorem 1 bounds E[c] <= rho with confidence 1 - r by choosing
//   m_opt = ceil((b - rho) / (1 - e^{-r})).
// With the paper's rho = 1, r = 1/3 this reproduces every m_opt of
// Table 3 (15 / 15 / 68 / 22 bits for NCVR; 120 bits total).

#ifndef CBVLINK_EMBEDDING_OPTIMAL_SIZE_H_
#define CBVLINK_EMBEDDING_OPTIMAL_SIZE_H_

#include <cstddef>

#include "src/common/status.h"

namespace cbvlink {

/// Parameters of Theorem 1.
struct OptimalSizeOptions {
  /// rho: maximum tolerated expected collisions per c-vector.
  double max_collisions = 1.0;
  /// r: the ratio b/m bound; confidence is 1 - r.  The paper finds r = 1/3
  /// the knee of the accuracy/size trade-off (Figure 7).
  double confidence_ratio = 1.0 / 3.0;
};

/// Lemma 1: expected number of positions set to 1 (no-collision slots
/// included) after hashing `b` q-grams into `m` positions:
/// E[v] = m * (1 - (1 - 1/m)^b).
double ExpectedOccupiedPositions(double b, double m);

/// Lemma 1: expected number of collisions E[c] = b - E[v].
double ExpectedCollisions(double b, double m);

/// Theorem 1: the optimal c-vector size for an attribute whose values
/// average `b` q-grams.  Returns InvalidArgument when b <= rho (a vector of
/// zero/negative size would satisfy the bound trivially) or parameters are
/// out of range (rho < 0, r outside (0, 1)).
Result<size_t> OptimalCVectorSize(double b, const OptimalSizeOptions& options = {});

}  // namespace cbvlink

#endif  // CBVLINK_EMBEDDING_OPTIMAL_SIZE_H_
