// StringMap embedding of strings into a d-dimensional Euclidean space —
// the SM-EB baseline (Jin, Li & Mehrotra, DASFAA 2003; Section 6.1).
//
// StringMap is FastMap applied with edit distance as the source metric.
// For each of d axes it picks two far-apart pivot strings (a, b) via the
// "choose distant objects" heuristic, then the coordinate of a string s on
// that axis is the projection
//
//   x = (D(s,a)^2 + D(a,b)^2 - D(s,b)^2) / (2 * D(a,b)),
//
// where D is the *residual* distance: the edit distance with the squared
// coordinate differences of all previous axes subtracted (clamped at zero,
// since the reduction is not exactly metric).  The pivot-selection scans
// are what make this embedding expensive (Figure 8(b)).

#ifndef CBVLINK_EMBEDDING_STRINGMAP_H_
#define CBVLINK_EMBEDDING_STRINGMAP_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"

namespace cbvlink {

/// Options for StringMap training; defaults follow the paper (d = 20).
struct StringMapOptions {
  /// Target dimensionality per attribute.
  size_t dimensions = 20;
  /// Iterations of the choose-distant-objects heuristic per axis.
  size_t pivot_iterations = 5;
  /// Cap on the number of training strings scanned per axis; strings
  /// beyond the cap are subsampled.  0 means no cap (full paper behaviour;
  /// quadratic-ish cost).
  size_t max_train_sample = 2000;
  /// RNG seed for sampling and initial pivot choice.
  uint64_t seed = 0x5742d9e1u;
};

/// A trained per-attribute StringMap embedder.
class StringMapEmbedder {
 public:
  /// Trains pivots over `corpus` (the pooled attribute values of both
  /// data sets).  Returns InvalidArgument for an empty corpus or zero
  /// dimensions.
  static Result<StringMapEmbedder> Train(const std::vector<std::string>& corpus,
                                         StringMapOptions options = {});

  /// Embeds a string into the trained d-dimensional space.
  std::vector<double> Embed(std::string_view s) const;

  size_t dimensions() const { return axes_.size(); }

 private:
  /// One trained axis: the two pivots, their coordinates on all previous
  /// axes, and their residual separation.
  struct Axis {
    std::string pivot_a;
    std::string pivot_b;
    std::vector<double> coords_a;  // coordinates of pivot_a on axes 0..k-1
    std::vector<double> coords_b;
    double d_ab = 0.0;             // residual distance between the pivots
  };

  explicit StringMapEmbedder(std::vector<Axis> axes)
      : axes_(std::move(axes)) {}

  /// Residual distance between (s, coords_s) and (t, coords_t) using the
  /// first `level` coordinates.
  static double ResidualDistance(std::string_view s,
                                 const std::vector<double>& coords_s,
                                 std::string_view t,
                                 const std::vector<double>& coords_t,
                                 size_t level);

  std::vector<Axis> axes_;
};

}  // namespace cbvlink

#endif  // CBVLINK_EMBEDDING_STRINGMAP_H_
