#include "src/embedding/record_encoder.h"

#include <mutex>

#include "src/common/str.h"
#include "src/common/thread_pool.h"
#include "src/telemetry/metrics.h"

namespace cbvlink {

namespace {

/// Shared batch-encode driver (both record encoders have the same
/// Encode() contract).  out[i] = Encode(records[i]); each slot is
/// written by exactly one chunk and chunk boundaries depend only on the
/// input size, the pool size, and `min_chunk`, so the output is
/// byte-identical to the serial loop at any thread count.
template <typename Encoder>
Result<std::vector<EncodedRecord>> EncodeAllImpl(
    const Encoder& encoder, std::span<const Record> records, ThreadPool* pool,
    size_t min_chunk) {
  telemetry::Registry& reg = telemetry::Registry::Global();
  telemetry::ScopedTimer timer(reg.GetHistogram("embed_batch_latency_us"));

  std::vector<EncodedRecord> out(records.size());
  // First failure by *chunk index* (not arrival order), so the reported
  // error does not depend on thread scheduling.
  std::mutex error_mu;
  size_t error_chunk = SIZE_MAX;
  Status first_error;
  const auto encode_range = [&](size_t chunk, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Result<EncodedRecord> enc = encoder.Encode(records[i]);
      if (!enc.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (chunk < error_chunk) {
          error_chunk = chunk;
          first_error = enc.status();
        }
        return;
      }
      out[i] = std::move(enc).value();
    }
  };

  if (pool == nullptr || pool->num_threads() <= 1 || records.size() <= 1) {
    encode_range(0, 0, records.size());
  } else {
    pool->ParallelFor(records.size(), min_chunk, encode_range);
  }
  if (!first_error.ok()) return first_error;
  reg.GetCounter("embed_records_total")->Add(records.size());
  return out;
}

}  // namespace

std::vector<double> EstimateExpectedQGrams(const Schema& schema,
                                           const std::vector<Record>& sample) {
  std::vector<double> sums(schema.num_attributes(), 0.0);
  std::vector<size_t> counts(schema.num_attributes(), 0);
  for (const Record& record : sample) {
    if (record.fields.size() < schema.num_attributes()) continue;
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      const AttributeSpec& spec = schema.attributes[i];
      const std::string normalized =
          Normalize(record.fields[i], *spec.alphabet);
      // CountGrams needs only the normalized length; build a throwaway
      // extractor-free count matching QGramExtractor::CountGrams.
      const size_t padded_len =
          normalized.empty() ? 0
                             : normalized.size() + (spec.qgram.pad ? 2 : 0);
      const size_t grams =
          padded_len < spec.qgram.q ? 0 : padded_len - spec.qgram.q + 1;
      sums[i] += static_cast<double>(grams);
      ++counts[i];
    }
  }
  std::vector<double> means(schema.num_attributes(), 0.0);
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (counts[i] > 0) means[i] = sums[i] / static_cast<double>(counts[i]);
  }
  return means;
}

Result<CVectorRecordEncoder> CVectorRecordEncoder::Create(
    const Schema& schema, const std::vector<double>& expected_qgrams,
    Rng& rng, const OptimalSizeOptions& options) {
  if (schema.num_attributes() == 0) {
    return Status::InvalidArgument("schema has no attributes");
  }
  if (expected_qgrams.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("expected_qgrams has %zu entries for %zu attributes",
                  expected_qgrams.size(), schema.num_attributes()));
  }
  std::vector<CVectorEncoder> encoders;
  encoders.reserve(schema.num_attributes());
  RecordLayout layout;
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    const AttributeSpec& spec = schema.attributes[i];
    Result<QGramExtractor> extractor =
        QGramExtractor::Create(*spec.alphabet, spec.qgram);
    if (!extractor.ok()) return extractor.status();
    Result<CVectorEncoder> encoder = CVectorEncoder::Create(
        std::move(extractor).value(), expected_qgrams[i], rng, options);
    if (!encoder.ok()) return encoder.status();
    layout.Add(encoder.value().vector_size());
    encoders.push_back(std::move(encoder).value());
  }
  return CVectorRecordEncoder(schema, std::move(encoders), std::move(layout));
}

Result<EncodedRecord> CVectorRecordEncoder::Encode(
    const Record& record) const {
  if (record.fields.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("record %llu has %zu fields, schema expects %zu",
                  static_cast<unsigned long long>(record.id),
                  record.fields.size(), schema_.num_attributes()));
  }
  EncodedRecord out;
  out.id = record.id;
  out.bits = BitVector();  // grown by Append below
  for (size_t i = 0; i < encoders_.size(); ++i) {
    out.bits.Append(EncodeAttribute(i, record.fields[i]));
  }
  return out;
}

Result<std::vector<EncodedRecord>> CVectorRecordEncoder::EncodeAll(
    std::span<const Record> records, ThreadPool* pool,
    size_t min_chunk) const {
  return EncodeAllImpl(*this, records, pool, min_chunk);
}

BitVector CVectorRecordEncoder::EncodeAttribute(
    size_t attr, std::string_view raw_value) const {
  const AttributeSpec& spec = schema_.attributes[attr];
  return encoders_[attr].Encode(Normalize(raw_value, *spec.alphabet));
}

Result<BloomRecordEncoder> BloomRecordEncoder::Create(
    const Schema& schema, BloomFilterOptions options) {
  if (schema.num_attributes() == 0) {
    return Status::InvalidArgument("schema has no attributes");
  }
  std::vector<BloomFilterEncoder> encoders;
  encoders.reserve(schema.num_attributes());
  RecordLayout layout;
  for (const AttributeSpec& spec : schema.attributes) {
    Result<QGramExtractor> extractor =
        QGramExtractor::Create(*spec.alphabet, spec.qgram);
    if (!extractor.ok()) return extractor.status();
    Result<BloomFilterEncoder> encoder =
        BloomFilterEncoder::Create(std::move(extractor).value(), options);
    if (!encoder.ok()) return encoder.status();
    layout.Add(encoder.value().vector_size());
    encoders.push_back(std::move(encoder).value());
  }
  return BloomRecordEncoder(schema, std::move(encoders), std::move(layout));
}

Result<std::vector<EncodedRecord>> BloomRecordEncoder::EncodeAll(
    std::span<const Record> records, ThreadPool* pool,
    size_t min_chunk) const {
  return EncodeAllImpl(*this, records, pool, min_chunk);
}

Result<EncodedRecord> BloomRecordEncoder::Encode(const Record& record) const {
  if (record.fields.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("record %llu has %zu fields, schema expects %zu",
                  static_cast<unsigned long long>(record.id),
                  record.fields.size(), schema_.num_attributes()));
  }
  EncodedRecord out;
  out.id = record.id;
  for (size_t i = 0; i < encoders_.size(); ++i) {
    const AttributeSpec& spec = schema_.attributes[i];
    out.bits.Append(
        encoders_[i].Encode(Normalize(record.fields[i], *spec.alphabet)));
  }
  return out;
}

}  // namespace cbvlink
