#include "src/embedding/bloom_filter.h"

#include <vector>

namespace cbvlink {

Result<BloomFilterEncoder> BloomFilterEncoder::Create(
    QGramExtractor extractor, BloomFilterOptions options) {
  if (options.num_bits == 0) {
    return Status::InvalidArgument("Bloom filter size must be positive");
  }
  if (options.num_hashes == 0) {
    return Status::InvalidArgument("Bloom filter needs >= 1 hash function");
  }
  return BloomFilterEncoder(
      std::move(extractor),
      BloomHashFamily(options.num_hashes, options.num_bits, options.seed));
}

BitVector BloomFilterEncoder::Encode(std::string_view normalized) const {
  BitVector bv(family_.num_bits());
  std::vector<size_t> positions;
  positions.reserve(family_.k());
  for (uint64_t ind : extractor_.IndexSet(normalized)) {
    positions.clear();
    family_.Positions(ind, &positions);
    for (size_t pos : positions) bv.Set(pos);
  }
  return bv;
}

}  // namespace cbvlink
