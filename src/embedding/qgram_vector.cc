#include "src/embedding/qgram_vector.h"

#include "src/common/str.h"

namespace cbvlink {

Result<QGramVectorEncoder> QGramVectorEncoder::Create(
    QGramExtractor extractor) {
  constexpr uint64_t kMaxBits = uint64_t{1} << 26;
  const uint64_t space = extractor.IndexSpaceSize();
  if (space > kMaxBits) {
    return Status::OutOfRange(
        StrFormat("|S|^q = %llu exceeds the %llu-bit materialization cap",
                  static_cast<unsigned long long>(space),
                  static_cast<unsigned long long>(kMaxBits)));
  }
  return QGramVectorEncoder(std::move(extractor),
                            static_cast<size_t>(space));
}

BitVector QGramVectorEncoder::Encode(std::string_view normalized) const {
  BitVector bv(vector_size_);
  for (uint64_t ind : extractor_.IndexSet(normalized)) {
    bv.Set(static_cast<size_t>(ind));
  }
  return bv;
}

}  // namespace cbvlink
