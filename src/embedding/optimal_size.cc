#include "src/embedding/optimal_size.h"

#include <cmath>

#include "src/common/str.h"

namespace cbvlink {

double ExpectedOccupiedPositions(double b, double m) {
  if (m <= 0.0) return 0.0;
  return m * (1.0 - std::pow(1.0 - 1.0 / m, b));
}

double ExpectedCollisions(double b, double m) {
  return b - ExpectedOccupiedPositions(b, m);
}

Result<size_t> OptimalCVectorSize(double b,
                                  const OptimalSizeOptions& options) {
  const double rho = options.max_collisions;
  const double r = options.confidence_ratio;
  if (rho < 0.0) {
    return Status::InvalidArgument(
        StrFormat("max_collisions (rho) must be >= 0, got %f", rho));
  }
  if (r <= 0.0 || r >= 1.0) {
    return Status::InvalidArgument(
        StrFormat("confidence_ratio (r) must lie in (0, 1), got %f", r));
  }
  if (b <= rho) {
    return Status::InvalidArgument(
        StrFormat("expected q-grams b=%f must exceed rho=%f", b, rho));
  }
  const double m = (b - rho) / (1.0 - std::exp(-r));
  return static_cast<size_t>(std::ceil(m));
}

}  // namespace cbvlink
