// Compact q-gram vectors — the paper's c-vectors (Section 5.2, Figure 4).
//
// A c-vector folds the q-gram index set U_s of a string through one
// randomly drawn pairwise-independent hash g(x) = ((a*x + b) mod P) mod m
// into an m-bit vector, where m = m_opt from Theorem 1 keeps the expected
// collision count below rho with confidence 1 - r.  All values of one
// attribute share the same g so that their Hamming distances in the
// compact space track the distances between full q-gram vectors.

#ifndef CBVLINK_EMBEDDING_CVECTOR_H_
#define CBVLINK_EMBEDDING_CVECTOR_H_

#include <string_view>

#include "src/common/bitvector.h"
#include "src/common/hashing.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/embedding/optimal_size.h"
#include "src/text/qgram.h"

namespace cbvlink {

/// Per-attribute encoder of strings into m-bit c-vectors.
class CVectorEncoder {
 public:
  /// Creates an encoder whose size is derived from the expected q-gram
  /// count `b` via Theorem 1.  Propagates sizing errors.
  static Result<CVectorEncoder> Create(QGramExtractor extractor,
                                       double expected_qgrams, Rng& rng,
                                       const OptimalSizeOptions& options = {});

  /// Creates an encoder with an explicitly chosen size m (> 0).
  static Result<CVectorEncoder> CreateWithSize(QGramExtractor extractor,
                                               size_t m, Rng& rng);

  /// The c-vector size m (m_opt when derived from Theorem 1).
  size_t vector_size() const { return static_cast<size_t>(hash_.range()); }

  /// Encodes one normalized attribute value: bit g(x) set for each
  /// x in U_s.
  BitVector Encode(std::string_view normalized) const;

  const QGramExtractor& extractor() const { return extractor_; }
  const PairwiseHash& hash() const { return hash_; }

 private:
  CVectorEncoder(QGramExtractor extractor, PairwiseHash hash)
      : extractor_(std::move(extractor)), hash_(hash) {}

  QGramExtractor extractor_;
  PairwiseHash hash_;
};

}  // namespace cbvlink

#endif  // CBVLINK_EMBEDDING_CVECTOR_H_
