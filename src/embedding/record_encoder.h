// Record-level encoders: attribute schemas, concatenation layout, and the
// encoders Charlie applies to whole records (Sections 4.1 and 5.2).
//
// A record-level vector is the concatenation of attribute-level vectors;
// the RecordLayout remembers where each attribute's bits live so the
// blocking layer can sample attribute-specific positions and the matcher
// can evaluate attribute-level distances in place.

#ifndef CBVLINK_EMBEDDING_RECORD_ENCODER_H_
#define CBVLINK_EMBEDDING_RECORD_ENCODER_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bitvector.h"
#include "src/common/random.h"
#include "src/common/record.h"
#include "src/common/status.h"
#include "src/embedding/bloom_filter.h"
#include "src/embedding/cvector.h"
#include "src/embedding/optimal_size.h"
#include "src/text/alphabet.h"
#include "src/text/normalize.h"
#include "src/text/qgram.h"

namespace cbvlink {

class ThreadPool;

/// Static description of one linkage attribute f_i.
struct AttributeSpec {
  /// Attribute name (e.g. "LastName"); informational.
  std::string name;
  /// Symbol set for normalization and q-gram indexing.
  const Alphabet* alphabet = &Alphabet::UppercasePadded();
  /// q-gram extraction parameters.
  QGramOptions qgram;
};

/// The common attribute set the data custodians agree on (Section 3).
struct Schema {
  std::vector<AttributeSpec> attributes;

  size_t num_attributes() const { return attributes.size(); }
};

/// Bit positions of each attribute inside a concatenated record vector.
class RecordLayout {
 public:
  struct Segment {
    size_t offset = 0;
    size_t size = 0;
  };

  RecordLayout() = default;

  /// Appends an attribute of `size` bits; returns its index.
  size_t Add(size_t size) {
    segments_.push_back({total_bits_, size});
    total_bits_ += size;
    return segments_.size() - 1;
  }

  size_t num_attributes() const { return segments_.size(); }
  size_t total_bits() const { return total_bits_; }
  const Segment& segment(size_t i) const { return segments_[i]; }

 private:
  std::vector<Segment> segments_;
  size_t total_bits_ = 0;
};

/// A record embedded into a Hamming space, tagged with its identifier.
struct EncodedRecord {
  RecordId id = 0;
  BitVector bits;
};

/// Estimates the average q-gram count b^(f_i) for each attribute of
/// `schema` from a sample of records (Section 5.2: Charlie samples strings
/// to compute b).  Records with fewer fields than the schema are skipped.
std::vector<double> EstimateExpectedQGrams(const Schema& schema,
                                           const std::vector<Record>& sample);

/// Encodes records into concatenated attribute-level c-vectors — the
/// paper's cBV representation.
class CVectorRecordEncoder {
 public:
  /// Creates an encoder whose attribute sizes follow Theorem 1 for the
  /// given expected q-gram counts (one per schema attribute).
  static Result<CVectorRecordEncoder> Create(
      const Schema& schema, const std::vector<double>& expected_qgrams,
      Rng& rng, const OptimalSizeOptions& options = {});

  /// Encodes one record.  Returns InvalidArgument when the record has a
  /// different field count than the schema.
  Result<EncodedRecord> Encode(const Record& record) const;

  /// Batch Encode: out[i] = Encode(records[i]), sharded over `pool` when
  /// one is supplied (null = serial).  Chunk boundaries depend only on
  /// the input size and the pool size, and each output slot is written
  /// by exactly one chunk, so the result is byte-identical to the serial
  /// path at any thread count.  On any per-record failure the first
  /// error (in chunk order) is returned.  `min_chunk` bounds scheduling
  /// overhead (0 = default); it never affects the output.
  Result<std::vector<EncodedRecord>> EncodeAll(std::span<const Record> records,
                                               ThreadPool* pool = nullptr,
                                               size_t min_chunk = 0) const;

  /// Encodes a single attribute value (raw, pre-normalization).
  BitVector EncodeAttribute(size_t attr, std::string_view raw_value) const;

  /// Hamming distance between two encoded records restricted to attribute
  /// `attr` — the u^(f_i) of the classification rules.
  size_t AttributeDistance(const BitVector& a, const BitVector& b,
                           size_t attr) const {
    const RecordLayout::Segment& seg = layout_.segment(attr);
    return a.HammingDistanceRange(b, seg.offset, seg.size);
  }

  const Schema& schema() const { return schema_; }
  const RecordLayout& layout() const { return layout_; }

  /// The total record-vector size (the paper's m-bar_opt; 120 bits for the
  /// NCVR schema of Table 3).
  size_t total_bits() const { return layout_.total_bits(); }

 private:
  CVectorRecordEncoder(Schema schema, std::vector<CVectorEncoder> encoders,
                       RecordLayout layout)
      : schema_(std::move(schema)),
        encoders_(std::move(encoders)),
        layout_(std::move(layout)) {}

  Schema schema_;
  std::vector<CVectorEncoder> encoders_;
  RecordLayout layout_;
};

/// Encodes records into concatenated field-level Bloom filters — the BfH
/// baseline's record representation.
class BloomRecordEncoder {
 public:
  /// Creates an encoder with one `options`-sized filter per attribute.
  static Result<BloomRecordEncoder> Create(const Schema& schema,
                                           BloomFilterOptions options = {});

  /// Encodes one record; same contract as CVectorRecordEncoder::Encode.
  Result<EncodedRecord> Encode(const Record& record) const;

  /// Batch Encode; same contract and determinism guarantee as
  /// CVectorRecordEncoder::EncodeAll.
  Result<std::vector<EncodedRecord>> EncodeAll(std::span<const Record> records,
                                               ThreadPool* pool = nullptr,
                                               size_t min_chunk = 0) const;

  /// Attribute-level Hamming distance (used by BfH only at match time).
  size_t AttributeDistance(const BitVector& a, const BitVector& b,
                           size_t attr) const {
    const RecordLayout::Segment& seg = layout_.segment(attr);
    return a.HammingDistanceRange(b, seg.offset, seg.size);
  }

  const Schema& schema() const { return schema_; }
  const RecordLayout& layout() const { return layout_; }
  size_t total_bits() const { return layout_.total_bits(); }

 private:
  BloomRecordEncoder(Schema schema, std::vector<BloomFilterEncoder> encoders,
                     RecordLayout layout)
      : schema_(std::move(schema)),
        encoders_(std::move(encoders)),
        layout_(std::move(layout)) {}

  Schema schema_;
  std::vector<BloomFilterEncoder> encoders_;
  RecordLayout layout_;
};

}  // namespace cbvlink

#endif  // CBVLINK_EMBEDDING_RECORD_ENCODER_H_
