// Full q-gram vectors (Section 4.1, Figure 1).
//
// A q-gram vector BV of a string s is the |S|^q-bit vector with bit F(gr)
// set for every q-gram gr of the padded s.  These deterministic vectors
// realize the distance-to-error correspondence of Section 5.1
// (u_H <= alpha * u_E) and are the reference against which the compact
// c-vectors are validated.

#ifndef CBVLINK_EMBEDDING_QGRAM_VECTOR_H_
#define CBVLINK_EMBEDDING_QGRAM_VECTOR_H_

#include <string_view>

#include "src/common/bitvector.h"
#include "src/common/status.h"
#include "src/text/qgram.h"

namespace cbvlink {

/// Encodes normalized strings as full q-gram vectors of |S|^q bits.
class QGramVectorEncoder {
 public:
  /// Creates an encoder over the extractor's alphabet and q.  Returns
  /// OutOfRange when |S|^q is too large to materialize (the encoder caps
  /// vectors at 2^26 bits = 8 MiB; full q-gram vectors beyond that defeat
  /// their purpose, use c-vectors instead).
  static Result<QGramVectorEncoder> Create(QGramExtractor extractor);

  /// The vector size m = |S|^q.
  size_t vector_size() const { return vector_size_; }

  /// Encodes one normalized attribute value.
  BitVector Encode(std::string_view normalized) const;

  const QGramExtractor& extractor() const { return extractor_; }

 private:
  QGramVectorEncoder(QGramExtractor extractor, size_t vector_size)
      : extractor_(std::move(extractor)), vector_size_(vector_size) {}

  QGramExtractor extractor_;
  size_t vector_size_;
};

}  // namespace cbvlink

#endif  // CBVLINK_EMBEDDING_QGRAM_VECTOR_H_
