#include "src/embedding/cvector.h"

namespace cbvlink {

Result<CVectorEncoder> CVectorEncoder::Create(
    QGramExtractor extractor, double expected_qgrams, Rng& rng,
    const OptimalSizeOptions& options) {
  Result<size_t> m = OptimalCVectorSize(expected_qgrams, options);
  if (!m.ok()) return m.status();
  return CreateWithSize(std::move(extractor), m.value(), rng);
}

Result<CVectorEncoder> CVectorEncoder::CreateWithSize(QGramExtractor extractor,
                                                      size_t m, Rng& rng) {
  if (m == 0) {
    return Status::InvalidArgument("c-vector size m must be positive");
  }
  return CVectorEncoder(std::move(extractor), PairwiseHash::Random(rng, m));
}

BitVector CVectorEncoder::Encode(std::string_view normalized) const {
  BitVector bv(vector_size());
  for (uint64_t ind : extractor_.IndexSet(normalized)) {
    bv.Set(static_cast<size_t>(hash_(ind)));
  }
  return bv;
}

}  // namespace cbvlink
