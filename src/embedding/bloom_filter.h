// Field-level Bloom-filter embedding — the BfH baseline's representation
// (Section 6.1; Schnell, Bachteler & Reiher 2009).
//
// Each attribute value is embedded into a fixed-size (default 500-bit)
// Bloom filter by inserting every bigram with `num_hashes` (default 15)
// independent hash functions.  The paper builds those from MD5/SHA1; we
// use the double-hashing construction (see common/hashing.h), which is the
// standard substitute and preserves the statistical behaviour that drives
// the experiments: distances depend on string length, and the dense bit
// patterns give BfH its characteristic blocking profile.

#ifndef CBVLINK_EMBEDDING_BLOOM_FILTER_H_
#define CBVLINK_EMBEDDING_BLOOM_FILTER_H_

#include <string_view>

#include "src/common/bitvector.h"
#include "src/common/hashing.h"
#include "src/common/status.h"
#include "src/text/qgram.h"

namespace cbvlink {

/// Options for field-level Bloom filters; defaults follow the paper.
struct BloomFilterOptions {
  /// Filter size in bits (paper: 500).
  size_t num_bits = 500;
  /// Hash functions applied per q-gram (paper: 15).
  size_t num_hashes = 15;
  /// Seed for the hash family.  All values of all attributes share the
  /// family so identical grams map identically, as with cryptographic
  /// functions.
  uint64_t seed = 0x62664861736833ULL;  // "BfHash3"
};

/// Encodes normalized strings as fixed-size Bloom filters.
class BloomFilterEncoder {
 public:
  /// Creates an encoder.  Returns InvalidArgument for zero sizes.
  static Result<BloomFilterEncoder> Create(QGramExtractor extractor,
                                           BloomFilterOptions options = {});

  size_t vector_size() const { return family_.num_bits(); }
  size_t num_hashes() const { return family_.k(); }

  /// Encodes one normalized attribute value.
  BitVector Encode(std::string_view normalized) const;

  const QGramExtractor& extractor() const { return extractor_; }

 private:
  BloomFilterEncoder(QGramExtractor extractor, BloomHashFamily family)
      : extractor_(std::move(extractor)), family_(family) {}

  QGramExtractor extractor_;
  BloomHashFamily family_;
};

}  // namespace cbvlink

#endif  // CBVLINK_EMBEDDING_BLOOM_FILTER_H_
