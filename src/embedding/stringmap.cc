#include "src/embedding/stringmap.h"

#include <algorithm>
#include <cmath>

#include "src/metrics/edit_distance.h"

namespace cbvlink {

double StringMapEmbedder::ResidualDistance(std::string_view s,
                                           const std::vector<double>& coords_s,
                                           std::string_view t,
                                           const std::vector<double>& coords_t,
                                           size_t level) {
  const double ed = static_cast<double>(EditDistance(s, t));
  double d2 = ed * ed;
  for (size_t j = 0; j < level; ++j) {
    const double diff = coords_s[j] - coords_t[j];
    d2 -= diff * diff;
  }
  return d2 > 0.0 ? std::sqrt(d2) : 0.0;
}

Result<StringMapEmbedder> StringMapEmbedder::Train(
    const std::vector<std::string>& corpus, StringMapOptions options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("StringMap training corpus is empty");
  }
  if (options.dimensions == 0) {
    return Status::InvalidArgument("StringMap dimensions must be positive");
  }

  Rng rng(options.seed);

  // Subsample the training corpus if a cap is set.
  std::vector<const std::string*> sample;
  if (options.max_train_sample == 0 ||
      corpus.size() <= options.max_train_sample) {
    sample.reserve(corpus.size());
    for (const std::string& s : corpus) sample.push_back(&s);
  } else {
    sample.reserve(options.max_train_sample);
    for (size_t i = 0; i < options.max_train_sample; ++i) {
      sample.push_back(&corpus[rng.Below(corpus.size())]);
    }
  }
  const size_t n = sample.size();

  // coords[i] accumulates the coordinates of sample string i, axis by axis.
  std::vector<std::vector<double>> coords(n);
  std::vector<Axis> axes;
  axes.reserve(options.dimensions);

  for (size_t k = 0; k < options.dimensions; ++k) {
    // Choose-distant-objects heuristic under the residual distance.
    size_t ia = rng.Below(n);
    size_t ib = ia;
    for (size_t iter = 0; iter < options.pivot_iterations; ++iter) {
      // Farthest from ia.
      double best = -1.0;
      size_t far = ia;
      for (size_t i = 0; i < n; ++i) {
        const double d = ResidualDistance(*sample[ia], coords[ia], *sample[i],
                                          coords[i], k);
        if (d > best) {
          best = d;
          far = i;
        }
      }
      ib = far;
      // Farthest from ib becomes the next ia.
      best = -1.0;
      far = ib;
      for (size_t i = 0; i < n; ++i) {
        const double d = ResidualDistance(*sample[ib], coords[ib], *sample[i],
                                          coords[i], k);
        if (d > best) {
          best = d;
          far = i;
        }
      }
      if (far == ia) break;  // converged
      ia = far;
    }

    Axis axis;
    axis.pivot_a = *sample[ia];
    axis.pivot_b = *sample[ib];
    axis.coords_a = coords[ia];
    axis.coords_b = coords[ib];
    axis.d_ab = ResidualDistance(*sample[ia], coords[ia], *sample[ib],
                                 coords[ib], k);

    // Project every training string onto the new axis so later axes see
    // the residual space.
    for (size_t i = 0; i < n; ++i) {
      double x = 0.0;
      if (axis.d_ab > 0.0) {
        const double da = ResidualDistance(*sample[i], coords[i],
                                           axis.pivot_a, axis.coords_a, k);
        const double db = ResidualDistance(*sample[i], coords[i],
                                           axis.pivot_b, axis.coords_b, k);
        x = (da * da + axis.d_ab * axis.d_ab - db * db) / (2.0 * axis.d_ab);
      }
      coords[i].push_back(x);
    }
    axes.push_back(std::move(axis));
  }
  return StringMapEmbedder(std::move(axes));
}

std::vector<double> StringMapEmbedder::Embed(std::string_view s) const {
  std::vector<double> out;
  out.reserve(axes_.size());
  for (size_t k = 0; k < axes_.size(); ++k) {
    const Axis& axis = axes_[k];
    double x = 0.0;
    if (axis.d_ab > 0.0) {
      const double da =
          ResidualDistance(s, out, axis.pivot_a, axis.coords_a, k);
      const double db =
          ResidualDistance(s, out, axis.pivot_b, axis.coords_b, k);
      x = (da * da + axis.d_ab * axis.d_ab - db * db) / (2.0 * axis.d_ab);
    }
    out.push_back(x);
  }
  return out;
}

}  // namespace cbvlink
