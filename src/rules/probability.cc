#include "src/rules/probability.h"

#include <cmath>

#include "src/common/str.h"
#include "src/lsh/params.h"

namespace cbvlink {

namespace {

Result<double> PredicateProbability(
    const Predicate& pred, const std::vector<AttributeLshParams>& params) {
  if (pred.attribute >= params.size()) {
    return Status::OutOfRange(
        StrFormat("predicate attribute %zu of %zu", pred.attribute,
                  params.size()));
  }
  const AttributeLshParams& ap = params[pred.attribute];
  if (ap.num_base_hashes == 0) {
    return Status::InvalidArgument(
        StrFormat("attribute %zu has K == 0", pred.attribute));
  }
  Result<double> p = HammingBaseProbability(pred.threshold, ap.vector_size);
  if (!p.ok()) return p;
  return std::pow(p.value(), static_cast<double>(ap.num_base_hashes));
}

}  // namespace

Result<double> RuleCollisionProbability(
    const Rule& rule, const std::vector<AttributeLshParams>& params) {
  switch (rule.kind()) {
    case Rule::Kind::kPredicate:
      return PredicateProbability(rule.predicate(), params);
    case Rule::Kind::kAnd: {
      double p = 1.0;
      for (const Rule& child : rule.children()) {
        Result<double> cp = RuleCollisionProbability(child, params);
        if (!cp.ok()) return cp;
        p *= cp.value();
      }
      return p;
    }
    case Rule::Kind::kOr: {
      // 1 - prod(1 - p_i) — the inclusion-exclusion closed form.
      double miss = 1.0;
      for (const Rule& child : rule.children()) {
        Result<double> cp = RuleCollisionProbability(child, params);
        if (!cp.ok()) return cp;
        miss *= 1.0 - cp.value();
      }
      return 1.0 - miss;
    }
    case Rule::Kind::kNot: {
      // A pair satisfying NOT(x) carries no collision obligation for x's
      // tables; validate the child's parameters but contribute certainty.
      Result<double> cp =
          RuleCollisionProbability(rule.children()[0], params);
      if (!cp.ok()) return cp;
      return 1.0;
    }
  }
  return Status::Internal("unhandled rule kind");
}

Result<size_t> RuleOptimalGroups(const Rule& rule,
                                 const std::vector<AttributeLshParams>& params,
                                 double delta, size_t max_groups) {
  Result<double> p = RuleCollisionProbability(rule, params);
  if (!p.ok()) return p.status();
  return OptimalGroupsFromComposite(p.value(), delta, max_groups);
}

}  // namespace cbvlink
