#include "src/rules/rule.h"

#include "src/common/str.h"

namespace cbvlink {

Rule Rule::Pred(size_t attribute, size_t threshold) {
  Rule r;
  r.kind_ = Kind::kPredicate;
  r.predicate_ = {attribute, threshold};
  return r;
}

Rule Rule::And(std::vector<Rule> children) {
  Rule r;
  r.kind_ = Kind::kAnd;
  r.children_ = std::move(children);
  return r;
}

Rule Rule::Or(std::vector<Rule> children) {
  Rule r;
  r.kind_ = Kind::kOr;
  r.children_ = std::move(children);
  return r;
}

Rule Rule::Not(Rule child) {
  Rule r;
  r.kind_ = Kind::kNot;
  r.children_.push_back(std::move(child));
  return r;
}

bool Rule::Evaluate(const std::function<size_t(size_t)>& distance) const {
  switch (kind_) {
    case Kind::kPredicate:
      return distance(predicate_.attribute) <= predicate_.threshold;
    case Kind::kAnd:
      for (const Rule& child : children_) {
        if (!child.Evaluate(distance)) return false;
      }
      return true;
    case Kind::kOr:
      for (const Rule& child : children_) {
        if (child.Evaluate(distance)) return true;
      }
      return false;
    case Kind::kNot:
      return !children_[0].Evaluate(distance);
  }
  return false;
}

Status Rule::Validate(size_t num_attributes) const {
  switch (kind_) {
    case Kind::kPredicate:
      if (predicate_.attribute >= num_attributes) {
        return Status::OutOfRange(
            StrFormat("predicate references attribute %zu of %zu",
                      predicate_.attribute, num_attributes));
      }
      return Status::OK();
    case Kind::kAnd:
    case Kind::kOr:
      if (children_.size() < 2) {
        return Status::InvalidArgument(
            "AND/OR nodes need at least two children");
      }
      break;
    case Kind::kNot:
      if (children_.size() != 1) {
        return Status::InvalidArgument("NOT nodes need exactly one child");
      }
      break;
  }
  for (const Rule& child : children_) {
    CBVLINK_RETURN_NOT_OK(child.Validate(num_attributes));
  }
  return Status::OK();
}

void Rule::CollectPredicates(std::vector<Predicate>* out) const {
  if (kind_ == Kind::kPredicate) {
    out->push_back(predicate_);
    return;
  }
  for (const Rule& child : children_) child.CollectPredicates(out);
}

std::string Rule::ToString() const {
  switch (kind_) {
    case Kind::kPredicate:
      return StrFormat("(f%zu <= %zu)", predicate_.attribute + 1,
                       predicate_.threshold);
    case Kind::kAnd:
    case Kind::kOr: {
      const char* op = kind_ == Kind::kAnd ? " AND " : " OR ";
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const Rule& child : children_) parts.push_back(child.ToString());
      return "(" + StrJoin(parts, op) + ")";
    }
    case Kind::kNot:
      return "(NOT " + children_[0].ToString() + ")";
  }
  return "";
}

}  // namespace cbvlink
