#include "src/rules/rule_parser.h"

#include <cctype>
#include <vector>

#include "src/common/str.h"

namespace cbvlink {

namespace {

/// Recursive-descent parser over the rule grammar.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Rule> Parse() {
    Result<Rule> expr = ParseExpr();
    if (!expr.ok()) return expr;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing input after rule");
    }
    return expr;
  }

 private:
  Result<Rule> ParseExpr() {
    Result<Rule> left = ParseTerm();
    if (!left.ok()) return left;
    std::vector<Rule> parts;
    parts.push_back(std::move(left).value());
    while (ConsumeKeyword("OR")) {
      Result<Rule> right = ParseTerm();
      if (!right.ok()) return right;
      parts.push_back(std::move(right).value());
    }
    if (parts.size() == 1) return std::move(parts[0]);
    return Rule::Or(std::move(parts));
  }

  Result<Rule> ParseTerm() {
    Result<Rule> left = ParseFactor();
    if (!left.ok()) return left;
    std::vector<Rule> parts;
    parts.push_back(std::move(left).value());
    while (ConsumeKeyword("AND")) {
      Result<Rule> right = ParseFactor();
      if (!right.ok()) return right;
      parts.push_back(std::move(right).value());
    }
    if (parts.size() == 1) return std::move(parts[0]);
    return Rule::And(std::move(parts));
  }

  Result<Rule> ParseFactor() {
    SkipSpace();
    if (ConsumeKeyword("NOT")) {
      Result<Rule> child = ParseFactor();
      if (!child.ok()) return child;
      return Rule::Not(std::move(child).value());
    }
    if (Consume('(')) {
      Result<Rule> inner = ParseExpr();
      if (!inner.ok()) return inner;
      if (!Consume(')')) return Error("expected ')'");
      return inner;
    }
    return ParsePredicate();
  }

  Result<Rule> ParsePredicate() {
    SkipSpace();
    if (pos_ >= text_.size() ||
        (text_[pos_] != 'f' && text_[pos_] != 'F')) {
      return Error("expected predicate 'f<i> <= <theta>'");
    }
    ++pos_;
    Result<size_t> attr = ParseInt();
    if (!attr.ok()) return attr.status();
    if (attr.value() == 0) {
      return Error("attribute numbers are 1-based");
    }
    SkipSpace();
    if (pos_ + 1 >= text_.size() || text_[pos_] != '<' ||
        text_[pos_ + 1] != '=') {
      return Error("expected '<='");
    }
    pos_ += 2;
    Result<size_t> theta = ParseInt();
    if (!theta.ok()) return theta.status();
    return Rule::Pred(attr.value() - 1, theta.value());
  }

  Result<size_t> ParseInt() {
    SkipSpace();
    const size_t start = pos_;
    size_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + static_cast<size_t>(text_[pos_] - '0');
      ++pos_;
    }
    if (pos_ == start) return Error("expected integer").status();
    return value;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Consumes `word` (case-insensitive) if it appears at the cursor as a
  /// whole keyword.
  bool ConsumeKeyword(std::string_view word) {
    SkipSpace();
    if (pos_ + word.size() > text_.size()) return false;
    for (size_t i = 0; i < word.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + i])) !=
          word[i]) {
        return false;
      }
    }
    const size_t after = pos_ + word.size();
    if (after < text_.size() &&
        std::isalnum(static_cast<unsigned char>(text_[after]))) {
      return false;  // prefix of a longer identifier
    }
    pos_ = after;
    return true;
  }

  Result<Rule> Error(std::string_view what) {
    return Status::InvalidArgument(
        StrFormat("rule parse error at position %zu: %.*s", pos_,
                  static_cast<int>(what.size()), what.data()));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Rule> ParseRule(std::string_view text) { return Parser(text).Parse(); }

}  // namespace cbvlink
