// Classification rules over attribute-level distance thresholds
// (Section 5.4).
//
// A rule is a boolean combination of predicates u^(f_i) <= theta^(f_i)
// using AND, OR, and NOT.  The matching step classifies a candidate pair
// by evaluating the rule on actual attribute-level distances, and the
// attribute-level blocker derives its blocking structures from the same
// tree, so blocking adapts to the rule.

#ifndef CBVLINK_RULES_RULE_H_
#define CBVLINK_RULES_RULE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace cbvlink {

/// One predicate: distance on attribute `attribute` is at most `threshold`.
struct Predicate {
  size_t attribute = 0;  // zero-based index into the schema
  size_t threshold = 0;  // theta^(f_i) in the embedding space

  bool operator==(const Predicate&) const = default;
};

/// A node of the rule tree.
class Rule {
 public:
  enum class Kind { kPredicate, kAnd, kOr, kNot };

  /// Leaf: u^(f_attr) <= theta.
  static Rule Pred(size_t attribute, size_t threshold);
  /// Conjunction of two or more subrules.
  static Rule And(std::vector<Rule> children);
  /// Disjunction of two or more subrules.
  static Rule Or(std::vector<Rule> children);
  /// Negation of one subrule.
  static Rule Not(Rule child);

  Kind kind() const { return kind_; }
  const Predicate& predicate() const { return predicate_; }
  const std::vector<Rule>& children() const { return children_; }

  /// Evaluates the rule; `distance(attr)` supplies u^(f_attr) for the pair
  /// under classification.
  bool Evaluate(const std::function<size_t(size_t)>& distance) const;

  /// Checks structural sanity: attribute indexes < num_attributes, AND/OR
  /// arity >= 2, NOT arity == 1.
  Status Validate(size_t num_attributes) const;

  /// All predicates in the tree, in depth-first order.
  void CollectPredicates(std::vector<Predicate>* out) const;

  /// Textual form, e.g. "((f1 <= 4) AND (NOT (f2 <= 8)))" with 1-based
  /// attribute numbers as in the paper.
  std::string ToString() const;

 private:
  Rule() = default;

  Kind kind_ = Kind::kPredicate;
  Predicate predicate_;
  std::vector<Rule> children_;
};

}  // namespace cbvlink

#endif  // CBVLINK_RULES_RULE_H_
