// Textual rule parser.
//
// Grammar (case-insensitive keywords, 1-based attribute numbers as in the
// paper's notation):
//
//   expr      := term  ( OR  term  )*
//   term      := factor ( AND factor )*
//   factor    := NOT factor | '(' expr ')' | predicate
//   predicate := 'f' INT '<=' INT
//
// Example: "(f1 <= 4) AND (f2 <= 8) OR NOT (f3 <= 2)".
// AND binds tighter than OR; NOT binds tightest.

#ifndef CBVLINK_RULES_RULE_PARSER_H_
#define CBVLINK_RULES_RULE_PARSER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/rules/rule.h"

namespace cbvlink {

/// Parses a textual classification rule.  Returns InvalidArgument with a
/// position-annotated message on syntax errors.
Result<Rule> ParseRule(std::string_view text);

}  // namespace cbvlink

#endif  // CBVLINK_RULES_RULE_PARSER_H_
