#include "src/rules/threshold.h"

#include "src/common/str.h"

namespace cbvlink {

Result<size_t> HammingThetaForEditBudget(const EditBudget& budget,
                                         size_t q) {
  if (q < 2) {
    return Status::InvalidArgument(
        StrFormat("the Section 5.1 bounds need q >= 2, got q = %zu", q));
  }
  return 2 * q * budget.substitutions + (2 * q - 1) * budget.indels;
}

Result<Rule> RuleForEditBudgets(const std::vector<EditBudget>& budgets,
                                size_t q) {
  if (budgets.empty()) {
    return Status::InvalidArgument("no edit budgets given");
  }
  std::vector<Rule> predicates;
  predicates.reserve(budgets.size());
  for (size_t i = 0; i < budgets.size(); ++i) {
    Result<size_t> theta = HammingThetaForEditBudget(budgets[i], q);
    if (!theta.ok()) return theta.status();
    predicates.push_back(Rule::Pred(i, theta.value()));
  }
  if (predicates.size() == 1) return std::move(predicates[0]);
  return Rule::And(std::move(predicates));
}

}  // namespace cbvlink
