// Threshold derivation from edit budgets (Section 5.1's correspondence,
// as an API).
//
// For q-gram vectors with q >= 2, one substitution changes at most q
// q-grams in each string (2q differing bits), and one insert/delete
// replaces q q-grams by q-1 (at most 2q - 1 differing bits).  Given the
// number of each operation an application wants to tolerate per
// attribute, these helpers compute the Hamming threshold theta and build
// the conjunctive classification rule — so users reason in edits, not
// bits.

#ifndef CBVLINK_RULES_THRESHOLD_H_
#define CBVLINK_RULES_THRESHOLD_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"
#include "src/rules/rule.h"

namespace cbvlink {

/// Edit tolerance for one attribute.
struct EditBudget {
  /// Substitutions to tolerate.
  size_t substitutions = 0;
  /// Insertions plus deletions to tolerate.
  size_t indels = 0;
};

/// The Hamming threshold covering `budget` under q-gram vectors:
/// theta = 2q * substitutions + (2q - 1) * indels  (Equation 3's alpha
/// values, summed per operation).  Requires q >= 2 — the paper's bounds
/// hold for any q-gram vector with q >= 2.
Result<size_t> HammingThetaForEditBudget(const EditBudget& budget, size_t q = 2);

/// Builds the conjunctive rule "every attribute i within the theta of
/// budgets[i]" for a schema of budgets.size() attributes.  A single
/// budget yields a bare predicate.
Result<Rule> RuleForEditBudgets(const std::vector<EditBudget>& budgets,
                                size_t q = 2);

}  // namespace cbvlink

#endif  // CBVLINK_RULES_THRESHOLD_H_
