// Collision-probability bounds for rule-aware blocking
// (Definitions 4-6, Equations 10-12).
//
// Each attribute f_i has a base success probability
// p^(f_i) = 1 - theta^(f_i) / m_opt^(f_i) and a base-function count
// K^(f_i).  The probability that a record-level c-vector pair within the
// thresholds is formulated by one blocking group follows the rule
// structure:
//
//   AND:  p = prod_i (p_i)^{K_i}                                (Eq. 10)
//   OR :  p = 1 - prod_i (1 - (p_i)^{K_i})   (inclusion-exclusion, Eq. 11)
//   NOT:  the "true" outcome is non-collision; its table is sized so the
//         *negated* predicate's pairs are reliably caught  (Eq. 12)
//
// Substituting the composed p into Equation 2 yields the per-structure L.

#ifndef CBVLINK_RULES_PROBABILITY_H_
#define CBVLINK_RULES_PROBABILITY_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"
#include "src/rules/rule.h"

namespace cbvlink {

/// Per-attribute LSH parameters used to compose rule probabilities.
struct AttributeLshParams {
  /// m_opt^(f_i): the attribute's c-vector size in bits.
  size_t vector_size = 0;
  /// K^(f_i): base hash functions allotted to the attribute.
  size_t num_base_hashes = 0;
};

/// Composite per-group collision probability for a pair that satisfies
/// every predicate of `rule` (NOT children contribute probability 1 to
/// their parent: a pair satisfying NOT(x) is never required to collide in
/// x's tables).  `params[i]` supplies m and K of attribute i.
/// Returns InvalidArgument when a predicate references a missing
/// attribute, has threshold > m, or K == 0.
Result<double> RuleCollisionProbability(
    const Rule& rule, const std::vector<AttributeLshParams>& params);

/// Equation 2 with the rule-composed probability: the number of blocking
/// groups needed so any rule-satisfying pair is formulated with
/// probability >= 1 - delta.
Result<size_t> RuleOptimalGroups(const Rule& rule,
                                 const std::vector<AttributeLshParams>& params,
                                 double delta, size_t max_groups = 100000);

}  // namespace cbvlink

#endif  // CBVLINK_RULES_PROBABILITY_H_
