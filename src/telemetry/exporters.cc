#include "src/telemetry/exporters.h"

#include <cinttypes>
#include <cmath>
#include <string>

#include "src/common/str.h"
#include "src/io/serialization.h"

namespace cbvlink {
namespace telemetry {

namespace {

/// Splits 'base{labels}' into base and '{labels}' ("" when unlabeled).
void SplitName(const std::string& name, std::string* base,
               std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace);
  }
}

/// Numbers render as integers when they are integers (counter-like
/// gauges stay grep-able), as shortest-ish decimals otherwise.
std::string FormatNumber(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  return StrFormat("%.9g", value);
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string ToPrometheusText(const Registry::Snapshot& snapshot) {
  std::string out;
  std::string base, labels, last_typed;

  for (const auto& [name, value] : snapshot.counters) {
    SplitName(name, &base, &labels);
    if (base != last_typed) {
      out += StrFormat("# TYPE %s counter\n", base.c_str());
      last_typed = base;
    }
    out += StrFormat("%s%s %" PRIu64 "\n", base.c_str(), labels.c_str(),
                     value);
  }
  last_typed.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    SplitName(name, &base, &labels);
    if (base != last_typed) {
      out += StrFormat("# TYPE %s gauge\n", base.c_str());
      last_typed = base;
    }
    out += StrFormat("%s%s %s\n", base.c_str(), labels.c_str(),
                     FormatNumber(value).c_str());
  }
  for (const auto& [name, snap] : snapshot.histograms) {
    out += StrFormat("# TYPE %s histogram\n", name.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      cumulative += snap.buckets[i];
      // Empty trailing buckets still need their cumulative sample, but
      // interior all-zero prefixes are kept too: Prometheus requires
      // every le series to be present on every scrape.
      if (i < Histogram::kFiniteBuckets) {
        out += StrFormat("%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                         name.c_str(), Histogram::UpperBound(i), cumulative);
      } else {
        out += StrFormat("%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
                         cumulative);
      }
    }
    out += StrFormat("%s_sum %" PRIu64 "\n", name.c_str(), snap.sum);
    out += StrFormat("%s_count %" PRIu64 "\n", name.c_str(), snap.count);
  }
  return out;
}

std::string ToPrometheusText(const Registry& registry) {
  return ToPrometheusText(registry.Collect());
}

std::string ToJson(const Registry::Snapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += StrFormat(": %" PRIu64, value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += ": " + FormatNumber(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, snap] : snapshot.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += StrFormat(
        ": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64 ", \"max\": %" PRIu64
        ", \"mean\": %s, \"p50\": %s, \"p90\": %s, \"p99\": %s, "
        "\"buckets\": [",
        snap.count, snap.sum, snap.max, FormatNumber(snap.Mean()).c_str(),
        FormatNumber(snap.Quantile(0.50)).c_str(),
        FormatNumber(snap.Quantile(0.90)).c_str(),
        FormatNumber(snap.Quantile(0.99)).c_str());
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;  // zero buckets omitted
      if (!first_bucket) out += ", ";
      first_bucket = false;
      if (i < Histogram::kFiniteBuckets) {
        out += StrFormat("{\"le\": %" PRIu64 ", \"count\": %" PRIu64 "}",
                         Histogram::UpperBound(i), snap.buckets[i]);
      } else {
        out += StrFormat("{\"le\": \"+Inf\", \"count\": %" PRIu64 "}",
                         snap.buckets[i]);
      }
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string ToJson(const Registry& registry) {
  return ToJson(registry.Collect());
}

Status DumpJson(const Registry& registry, const std::string& path) {
  return WriteFileAtomically(path, ToJson(registry));
}

}  // namespace telemetry
}  // namespace cbvlink
