// Exposition formats for a telemetry Registry.
//
// Two consumers, two formats:
//  * ToPrometheusText — the Prometheus text exposition format, for a
//    scrape endpoint or a textfile-collector drop (node_exporter).
//    Histograms are rendered as cumulative `_bucket{le=...}` series
//    plus `_sum` / `_count`, counters/gauges as single samples.
//  * ToJson / DumpJson — a self-contained JSON document carrying raw
//    bucket counts AND extracted quantiles (p50/p90/p99/max), so a
//    consumer does not have to re-derive them.  DumpJson writes through
//    the same atomic tmp + fsync + rename path as the snapshot writer
//    (src/io/serialization.h), so a scraper never reads a torn file.
//
// Both formats render a Registry::Snapshot sorted by name, so output is
// deterministic for a deterministic metric population (golden-tested in
// tests/test_telemetry.cc).

#ifndef CBVLINK_TELEMETRY_EXPORTERS_H_
#define CBVLINK_TELEMETRY_EXPORTERS_H_

#include <string>

#include "src/common/status.h"
#include "src/telemetry/metrics.h"

namespace cbvlink {
namespace telemetry {

/// Renders `snapshot` in the Prometheus text exposition format.
/// Embedded labels in metric names ('name{key="v"}') are preserved; the
/// `# TYPE` header is emitted once per base name.  Histogram names must
/// not carry embedded labels (the `le` label could not be merged).
std::string ToPrometheusText(const Registry::Snapshot& snapshot);
std::string ToPrometheusText(const Registry& registry);

/// Renders `snapshot` as a JSON object:
///   {"counters": {name: value, ...},
///    "gauges": {name: value, ...},
///    "histograms": {name: {"count": c, "sum": s, "max": m, "mean": x,
///                          "p50": q, "p90": q, "p99": q,
///                          "buckets": [{"le": bound, "count": c}, ...]}}}
/// Bucket entries are non-cumulative and zero buckets are omitted; the
/// overflow bucket's "le" is the string "+Inf".
std::string ToJson(const Registry::Snapshot& snapshot);
std::string ToJson(const Registry& registry);

/// Writes ToJson(registry) to `path` atomically (tmp + fsync + rename —
/// the io/serialization write path), so concurrent readers see either
/// the previous complete dump or the new one, never a prefix.
Status DumpJson(const Registry& registry, const std::string& path);

}  // namespace telemetry
}  // namespace cbvlink

#endif  // CBVLINK_TELEMETRY_EXPORTERS_H_
