// Where finished traces go: a bounded ring of captured traces with
// head sampling and slow-query tail capture, plus the three render
// surfaces the serving tier exposes (chrome://tracing JSON, the
// /tracez span-tree JSON, and the slow-query sibling dump next to the
// metrics JSON).
//
// Keep/drop policy, decided once per trace when its root span closes:
//   * head sampling — keep when `sample_every > 0` and
//     trace_id % sample_every == 0.  Pure function of the id, so the
//     client, the server, and a test all agree on which traces
//     survive (sampling determinism).
//   * tail capture — ALWAYS keep traces whose root duration reaches
//     `slow_threshold_us`, regardless of sampling.  This is the
//     slow-query log: the 1-in-N sampler must never lose the outlier
//     you are hunting.
//
// The ring overwrites oldest-first.  Offer() happens once per KEPT
// trace — rare by construction — so a mutex there costs nothing on
// the request path; the per-span hot path never reaches this file
// (see trace.h).

#ifndef CBVLINK_TELEMETRY_TRACE_SINK_H_
#define CBVLINK_TELEMETRY_TRACE_SINK_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/telemetry/trace.h"

namespace cbvlink {
namespace telemetry {

struct TraceSinkOptions {
  /// Captured traces the ring holds before overwriting the oldest.
  size_t capacity = 128;
  /// Head sampling: keep traces whose id % sample_every == 0.
  /// 1 keeps everything, 0 disables head sampling (slow-only).
  uint64_t sample_every = 1;
  /// Tail capture: always keep traces at least this slow (root span
  /// duration, microseconds).  0 disables tail capture.
  uint64_t slow_threshold_us = 50000;
};

/// One kept trace: the root's timing plus the full span set.
struct CapturedTrace {
  uint64_t trace_id = 0;
  uint64_t root_dur_us = 0;
  bool slow = false;          ///< Kept by (or also qualifying for) tail capture.
  uint64_t seq = 0;           ///< Monotone capture sequence (ring-order proof).
  uint64_t dropped_spans = 0; ///< Spans the collector arena could not hold.
  std::vector<Span> spans;    ///< Ordered by start time.
};

class TraceSink {
 public:
  explicit TraceSink(TraceSinkOptions options);

  const TraceSinkOptions& options() const { return options_; }

  /// The head-sampling decision as a pure function — deterministic in
  /// (trace_id, sample_every).
  static bool HeadSampled(uint64_t trace_id, uint64_t sample_every) {
    return sample_every > 0 && trace_id % sample_every == 0;
  }

  /// Whether a finished trace should be captured at all (head sample
  /// OR slow enough for tail capture).  Callers may use this to skip
  /// assembling the CapturedTrace for dropped traces.
  bool ShouldKeep(uint64_t trace_id, uint64_t root_dur_us) const {
    return HeadSampled(trace_id, options_.sample_every) ||
           IsSlow(root_dur_us);
  }

  bool IsSlow(uint64_t root_dur_us) const {
    return options_.slow_threshold_us > 0 &&
           root_dur_us >= options_.slow_threshold_us;
  }

  /// Finishes `collector`'s trace: applies the keep/drop policy and,
  /// when kept, copies its spans into the ring.  Returns true when the
  /// trace was captured.
  bool Finish(const TraceCollector& collector, uint64_t root_dur_us);

  /// Directly offers an assembled trace (stamps seq + slow).  Used by
  /// Finish and by tests exercising ring semantics.
  void Offer(CapturedTrace trace);

  /// Ring contents, oldest first.
  std::vector<CapturedTrace> Snapshot() const;

  /// Only the tail-captured (slow) traces, oldest first.
  std::vector<CapturedTrace> SlowTraces() const;

  /// Traces offered / kept / kept-slow since construction.
  uint64_t offered() const;
  uint64_t captured() const;
  uint64_t captured_slow() const;

  /// chrome://tracing "trace event format" JSON:
  /// {"traceEvents":[{"name","cat","ph":"X","ts","dur","pid","tid",
  ///   "args":{...}}, ...]}.  pid groups spans by trace (one track
  /// group per trace), tid is the recording thread slot.
  std::string ToChromeTraceJson() const;

  /// The /tracez document: every captured trace as an explicit span
  /// tree with annotations, plus sink counters.
  std::string ToTracezJson() const;

  /// Slow traces only — the sibling dump that rides next to the
  /// metrics JSON exporter output.
  std::string ToSlowTracesJson() const;

  /// Writes ToChromeTraceJson() to `path` atomically (tmp + fsync +
  /// rename, the io/serialization write path).
  Status DumpChromeTrace(const std::string& path) const;

  /// Writes ToSlowTracesJson() to `path` atomically.
  Status DumpSlowTraces(const std::string& path) const;

 private:
  const TraceSinkOptions options_;

  mutable std::mutex mu_;
  std::vector<CapturedTrace> ring_;  ///< ring_[seq % capacity]
  uint64_t next_seq_ = 0;
  uint64_t offered_ = 0;
  uint64_t captured_slow_ = 0;
};

}  // namespace telemetry
}  // namespace cbvlink

#endif  // CBVLINK_TELEMETRY_TRACE_SINK_H_
