// Process-wide telemetry: named counters, gauges, and fixed-boundary
// log-scale histograms, collected into a Registry that exporters
// (src/telemetry/exporters.h) turn into Prometheus text or JSON.
//
// The hot-path contract is that recording a sample never takes a lock
// and never contends with other recording threads: Counter and
// Histogram stripe their state across cache-line-padded atomic cells
// indexed by a per-thread slot, so `Record`/`Add` is a handful of
// relaxed atomic RMWs on a (usually) thread-private line.  Reads
// (Value / Snap / Collect) sum across cells and are approximate only in
// the sense that they observe a linearizable-per-cell, racy-across-cell
// cut — totals are exact once writers quiesce, which is what the
// exporters and tests rely on.
//
// Why these metrics exist at all: the paper's tunables (m_opt from
// Theorem 1, L = ceil(ln delta / ln(1 - p^K)) from Eq. 2) manifest at
// runtime as bucket-occupancy skew and candidate/comparison ratios.
// The serving layer feeds those into this registry (match-funnel
// counters, per-table LSH gauges, latency histograms) so the collision
// behaviour the guarantees depend on is observable in production, not
// only in offline benches.
//
// Naming convention: Prometheus-style snake_case; an optional label set
// may be embedded in the name itself ('lsh_table_buckets{table="3"}',
// see LabeledName).  Counters end in `_total`; histogram names carry
// their unit suffix (`query_latency_us`).

#ifndef CBVLINK_TELEMETRY_METRICS_H_
#define CBVLINK_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cbvlink {
namespace telemetry {

/// Number of atomic cells a striped metric spreads across (power of two).
inline constexpr size_t kMetricCells = 16;

/// Formats 'base{key="value"}' — the embedded-label naming convention
/// the exporters understand (value must not contain '"' or '\').
std::string LabeledName(const std::string& base, const std::string& key,
                        const std::string& value);

/// A monotonically increasing counter.  Add() is wait-free and
/// contention-free across threads (per-thread cell striping).
class Counter {
 public:
  void Add(uint64_t n = 1);

  /// Sum across cells.  Exact once writers quiesce.
  uint64_t Value() const;

  /// Zeroes every cell (test support; see Registry::ResetForTest).
  void Reset();

 private:
  friend class Registry;
  Counter() = default;

  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  std::array<Cell, kMetricCells> cells_;
};

/// A settable point-in-time value (doubles; typically written by a
/// collection pass such as LinkageService::FillTelemetry, not a hot path).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  friend class Registry;
  Gauge() = default;

  std::atomic<double> value_{0};
};

/// A histogram over non-negative integer samples (latencies in
/// microseconds, bucket sizes, ...) with fixed log2 boundaries:
/// finite bucket i counts samples <= 2^i for i in [0, kFiniteBuckets),
/// one overflow bucket catches the rest.  2^27 us ~ 134 s, so the
/// span covers sub-microsecond calls up to pathological stalls.
///
/// Record() is wait-free (cell striping, like Counter); Snap() sums the
/// cells into an immutable Snapshot from which quantiles are extracted
/// by linear interpolation inside the target bucket (exact count, sum
/// and max are tracked alongside, so Max() is not an estimate).
class Histogram {
 public:
  static constexpr size_t kFiniteBuckets = 28;
  static constexpr size_t kBuckets = kFiniteBuckets + 1;  // + overflow

  /// Upper bound of finite bucket i (2^i).
  static uint64_t UpperBound(size_t i) { return uint64_t{1} << i; }

  /// Index of the bucket that counts `value`.
  static size_t BucketIndex(uint64_t value);

  void Record(uint64_t value);

  /// An immutable point-in-time copy of the histogram state.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    /// Non-cumulative per-bucket counts (finite buckets, then overflow).
    std::array<uint64_t, kBuckets> buckets{};

    double Mean() const {
      return count == 0 ? 0 : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Quantile q in [0, 1]: locates the bucket holding the q*count-th
    /// sample and interpolates linearly between its bounds (the upper
    /// bound of the last bucket is the exact tracked max).  Within a
    /// factor-2 bucket the error is bounded by the bucket width; for
    /// q = 1 the exact max is returned.
    double Quantile(double q) const;
  };

  Snapshot Snap() const;

  /// Zeroes every cell (test support; see Registry::ResetForTest).
  void Reset();

 private:
  friend class Registry;
  Histogram() = default;

  struct alignas(64) Cell {
    std::array<std::atomic<uint64_t>, kBuckets> counts{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  std::array<Cell, kMetricCells> cells_;
};

/// Metric namespace: name -> metric, one map per kind.  Get* registers
/// on first use and returns a stable pointer for the registry's
/// lifetime, so call sites resolve their handles once and record
/// lock-free afterwards.  All methods are thread-safe.
///
/// Production code uses the process-wide Registry::Global(); tests may
/// instantiate private registries.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry.
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// A coherent-enough copy of every metric, sorted by name within each
  /// kind (deterministic exporter output).
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  Snapshot Collect() const;

  /// Zeroes every registered metric IN PLACE — handles stay valid, so a
  /// test can isolate itself from earlier traffic on the global
  /// registry without invalidating pointers held by live services.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Records the scope's wall-clock duration, in microseconds, into a
/// histogram on destruction.  `histogram` may be null (no-op) so call
/// sites don't need to guard partially initialised telemetry.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(Clock::now()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(ElapsedMicros());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
};

}  // namespace telemetry
}  // namespace cbvlink

#endif  // CBVLINK_TELEMETRY_METRICS_H_
