#include "src/telemetry/trace_sink.h"

#include <cinttypes>
#include <utility>

#include "src/common/str.h"
#include "src/io/serialization.h"

namespace cbvlink {
namespace telemetry {

namespace {

void AppendJsonString(const char* s, std::string* out) {
  out->push_back('"');
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out->append(StrFormat("\\u%04x", c));
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendSpanArgs(const Span& span, std::string* out) {
  out->append(StrFormat("{\"trace_id\":\"%016" PRIx64 "\"", span.trace_id));
  for (uint32_t a = 0; a < span.n_annotations; ++a) {
    out->push_back(',');
    AppendJsonString(span.annotations[a].key, out);
    out->append(StrFormat(":%" PRIu64, span.annotations[a].value));
  }
  out->push_back('}');
}

}  // namespace

TraceSink::TraceSink(TraceSinkOptions options) : options_(options) {
  ring_.reserve(options_.capacity == 0 ? 1 : options_.capacity);
}

bool TraceSink::Finish(const TraceCollector& collector,
                       uint64_t root_dur_us) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++offered_;
  }
  if (!ShouldKeep(collector.trace_id(), root_dur_us)) return false;
  CapturedTrace trace;
  trace.trace_id = collector.trace_id();
  trace.root_dur_us = root_dur_us;
  trace.dropped_spans = collector.dropped();
  trace.spans = collector.Spans();
  Offer(std::move(trace));
  return true;
}

void TraceSink::Offer(CapturedTrace trace) {
  trace.slow = IsSlow(trace.root_dur_us);
  const size_t capacity = options_.capacity == 0 ? 1 : options_.capacity;
  std::lock_guard<std::mutex> lock(mu_);
  trace.seq = next_seq_++;
  if (trace.slow) ++captured_slow_;
  const size_t slot = static_cast<size_t>(trace.seq % capacity);
  if (slot < ring_.size()) {
    ring_[slot] = std::move(trace);  // overwrite the oldest occupant
  } else {
    ring_.push_back(std::move(trace));
  }
}

std::vector<CapturedTrace> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CapturedTrace> out;
  out.reserve(ring_.size());
  const size_t capacity = options_.capacity == 0 ? 1 : options_.capacity;
  // Oldest first: when the ring has wrapped, the oldest entry lives at
  // next_seq_ % capacity; before wrapping, at slot 0.
  const size_t start =
      next_seq_ > ring_.size() ? static_cast<size_t>(next_seq_ % capacity) : 0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<CapturedTrace> TraceSink::SlowTraces() const {
  std::vector<CapturedTrace> all = Snapshot();
  std::vector<CapturedTrace> slow;
  for (auto& trace : all) {
    if (trace.slow) slow.push_back(std::move(trace));
  }
  return slow;
}

uint64_t TraceSink::offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offered_;
}

uint64_t TraceSink::captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t TraceSink::captured_slow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captured_slow_;
}

std::string TraceSink::ToChromeTraceJson() const {
  const std::vector<CapturedTrace> traces = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const CapturedTrace& trace : traces) {
    for (const Span& span : trace.spans) {
      if (!first) out.push_back(',');
      first = false;
      out.append("{\"name\":");
      AppendJsonString(span.name, &out);
      out.append(StrFormat(
          ",\"cat\":\"cbvlink\",\"ph\":\"X\",\"ts\":%" PRIu64
          ",\"dur\":%" PRIu64 ",\"pid\":%" PRIu64 ",\"tid\":%u,\"args\":",
          span.start_us, span.dur_us, trace.seq, span.thread));
      AppendSpanArgs(span, &out);
      out.push_back('}');
    }
  }
  out.append("],\"displayTimeUnit\":\"ms\"}");
  return out;
}

namespace {

void AppendTrace(const CapturedTrace& trace, std::string* out) {
  out->append(StrFormat("{\"trace_id\":\"%016" PRIx64 "\",\"seq\":%" PRIu64
                        ",\"root_dur_us\":%" PRIu64
                        ",\"slow\":%s,\"dropped_spans\":%" PRIu64
                        ",\"spans\":[",
                        trace.trace_id, trace.seq, trace.root_dur_us,
                        trace.slow ? "true" : "false", trace.dropped_spans));
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const Span& span = trace.spans[i];
    if (i != 0) out->push_back(',');
    out->append("{\"name\":");
    AppendJsonString(span.name, out);
    out->append(StrFormat(",\"span_id\":%" PRIu64 ",\"parent_span_id\":%" PRIu64
                          ",\"start_us\":%" PRIu64 ",\"dur_us\":%" PRIu64
                          ",\"thread\":%u,\"args\":",
                          span.span_id, span.parent_span_id, span.start_us,
                          span.dur_us, span.thread));
    AppendSpanArgs(span, out);
    out->push_back('}');
  }
  out->append("]}");
}

std::string TracesDocument(const std::vector<CapturedTrace>& traces,
                           uint64_t offered, uint64_t captured,
                           uint64_t captured_slow,
                           const TraceSinkOptions& options) {
  std::string out = StrFormat(
      "{\"offered\":%" PRIu64 ",\"captured\":%" PRIu64
      ",\"captured_slow\":%" PRIu64 ",\"sample_every\":%" PRIu64
      ",\"slow_threshold_us\":%" PRIu64 ",\"traces\":[",
      offered, captured, captured_slow, options.sample_every,
      options.slow_threshold_us);
  for (size_t i = 0; i < traces.size(); ++i) {
    if (i != 0) out.push_back(',');
    AppendTrace(traces[i], &out);
  }
  out.append("]}");
  return out;
}

}  // namespace

std::string TraceSink::ToTracezJson() const {
  return TracesDocument(Snapshot(), offered(), captured(), captured_slow(),
                        options_);
}

std::string TraceSink::ToSlowTracesJson() const {
  return TracesDocument(SlowTraces(), offered(), captured(), captured_slow(),
                        options_);
}

Status TraceSink::DumpChromeTrace(const std::string& path) const {
  return WriteFileAtomically(path, ToChromeTraceJson());
}

Status TraceSink::DumpSlowTraces(const std::string& path) const {
  return WriteFileAtomically(path, ToSlowTracesJson());
}

}  // namespace telemetry
}  // namespace cbvlink
