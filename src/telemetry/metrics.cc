#include "src/telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <thread>

namespace cbvlink {
namespace telemetry {

namespace {

/// Stable per-thread cell slot: threads are assigned round-robin on
/// first touch, so up to kMetricCells concurrent recorders never share
/// a cache line.  (A hash of std::thread::id would work too, but this
/// guarantees perfect spreading for the first kMetricCells threads —
/// exactly the pool sizes the service layer runs.)
size_t ThreadCell() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot & (kMetricCells - 1);
}

void AtomicMaxRelaxed(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string LabeledName(const std::string& base, const std::string& key,
                        const std::string& value) {
  return base + "{" + key + "=\"" + value + "\"}";
}

void Counter::Add(uint64_t n) {
  cells_[ThreadCell()].value.fetch_add(n, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value <= 1) return 0;
  const size_t index = static_cast<size_t>(std::bit_width(value - 1));
  return index < kFiniteBuckets ? index : kFiniteBuckets;
}

void Histogram::Record(uint64_t value) {
  Cell& cell = cells_[ThreadCell()];
  cell.counts[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  cell.sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMaxRelaxed(&cell.max, value);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  for (const Cell& cell : cells_) {
    for (size_t i = 0; i < kBuckets; ++i) {
      const uint64_t c = cell.counts[i].load(std::memory_order_relaxed);
      snap.buckets[i] += c;
      snap.count += c;
    }
    snap.sum += cell.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, cell.max.load(std::memory_order_relaxed));
  }
  return snap;
}

void Histogram::Reset() {
  for (Cell& cell : cells_) {
    for (auto& count : cell.counts) count.store(0, std::memory_order_relaxed);
    cell.sum.store(0, std::memory_order_relaxed);
    cell.max.store(0, std::memory_order_relaxed);
  }
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      double lower =
          i == 0 ? 0 : static_cast<double>(UpperBound(i - 1));
      double upper = i < kFiniteBuckets
                         ? static_cast<double>(UpperBound(i))
                         : static_cast<double>(max);
      // The exact max tightens the last occupied bucket's upper bound
      // (and, degenerately, its lower bound when every sample is equal).
      upper = std::min(upper, static_cast<double>(max));
      lower = std::min(lower, upper);
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + std::clamp(fraction, 0.0, 1.0) * (upper - lower);
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // intentionally leaked
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::scoped_lock lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::scoped_lock lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::scoped_lock lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram());
  return slot.get();
}

Registry::Snapshot Registry::Collect() const {
  Snapshot snap;
  std::scoped_lock lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->Snap());
  }
  return snap;
}

void Registry::ResetForTest() {
  std::scoped_lock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace telemetry
}  // namespace cbvlink
