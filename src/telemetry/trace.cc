#include "src/telemetry/trace.h"

#include <algorithm>
#include <chrono>

namespace cbvlink {
namespace telemetry {

namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

uint64_t TraceNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

uint64_t MixTraceId(uint64_t seed) {
  // splitmix64 finalizer: full-avalanche, cheap, and stateless, so the
  // same seed always yields the same id (sampling determinism tests).
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return z == 0 ? 1 : z;
}

uint64_t GenerateTraceId() {
  static std::atomic<uint64_t> counter{0};
  // Boot entropy: the clock at first use, folded in once, so two
  // processes started apart do not mint colliding id streams.
  static const uint64_t boot = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count() ^
      std::chrono::system_clock::now().time_since_epoch().count());
  return MixTraceId(boot + counter.fetch_add(1, std::memory_order_relaxed));
}

void TraceCollector::Record(const Span& span) {
  const uint32_t slot = count_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kMaxSpansPerTrace) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_[slot] = span;
  spans_[slot].trace_id = trace_id_;
}

std::vector<Span> TraceCollector::Spans() const {
  const uint32_t n = count_.load(std::memory_order_relaxed);
  const size_t used = n < kMaxSpansPerTrace ? n : kMaxSpansPerTrace;
  std::vector<Span> out(spans_.begin(), spans_.begin() + used);
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start_us != b.start_us ? a.start_us < b.start_us
                                    : a.span_id < b.span_id;
  });
  return out;
}

TraceContext& CurrentTraceContext() {
  thread_local TraceContext context;
  return context;
}

ScopedTraceContext::ScopedTraceContext(TraceCollector* collector,
                                       uint64_t parent_span_id) {
  TraceContext& current = CurrentTraceContext();
  saved_ = current;
  current.collector = collector;
  current.parent_span_id = parent_span_id;
}

ScopedTraceContext::~ScopedTraceContext() { CurrentTraceContext() = saved_; }

TraceSpan::TraceSpan(const char* name) {
  TraceContext& context = CurrentTraceContext();
  if (context.collector == nullptr) return;  // untraced: stay free
  collector_ = context.collector;
  span_.name = name;
  span_.span_id = collector_->NextSpanId();
  span_.parent_span_id = context.parent_span_id;
  span_.start_us = TraceNowMicros();
  span_.thread = TraceThreadSlot();
  saved_parent_ = context.parent_span_id;
  context.parent_span_id = span_.span_id;
}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::End() {
  if (collector_ == nullptr) return;
  const uint64_t now = TraceNowMicros();
  span_.dur_us = now > span_.start_us ? now - span_.start_us : 0;
  collector_->Record(span_);
  CurrentTraceContext().parent_span_id = saved_parent_;
  collector_ = nullptr;
}

void TraceSpan::Annotate(const char* key, uint64_t value) {
  if (collector_ == nullptr) return;
  if (span_.n_annotations >= kMaxSpanAnnotations) return;
  span_.annotations[span_.n_annotations++] = SpanAnnotation{key, value};
}

uint32_t TraceThreadSlot() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace telemetry
}  // namespace cbvlink
