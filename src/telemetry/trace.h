// Request-scoped tracing: who spent the microseconds, per request.
//
// The metrics registry (src/telemetry/metrics.h) answers "how is the
// fleet doing" with aggregate histograms; this module answers "where
// did THIS query go" with a span tree that mirrors the paper's
// pipeline stages: embedding (encode) -> HB blocking (candidates) ->
// cBV Hamming verification (compare) -> journal append/fsync.  A trace
// is identified by a 64-bit id that travels on the wire (kTraceContext
// frame / X-Trace-Id header, src/net/protocol.h) so the client, the
// server, and a replica all stamp spans into the same tree.
//
// Hot-path contract, same spirit as the metrics registry: starting and
// finishing a span never takes a lock.  Each traced request owns a
// TraceCollector with a fixed inline span arena; recording claims a
// slot with one relaxed fetch_add and writes the span into memory no
// other thread touches.  Untraced requests pay one thread-local read
// and a predictable branch per span site — tracing is off by default
// and must stay invisible in bench_net's clean numbers.
//
// Threading: the current collector is installed per thread
// (ScopedTraceContext), so batch stages running on pool threads record
// into the request's collector concurrently and race-free (slot
// claiming).  Reading the spans back (TraceCollector::Spans) is only
// defined after the writers are done — in practice after ParallelFor's
// completion latch or the worker's response write, both of which
// already order the writes.

#ifndef CBVLINK_TELEMETRY_TRACE_H_
#define CBVLINK_TELEMETRY_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace cbvlink {
namespace telemetry {

/// Spans a single trace can hold; later spans are counted as dropped.
/// A serving request produces ~6 (request, queue, encode, candidates,
/// compare, journal), batch requests a handful more.
inline constexpr size_t kMaxSpansPerTrace = 48;

/// Key/value annotations a span can carry (candidate counts, bytes
/// fsynced, ...).  Keys must be string literals.
inline constexpr size_t kMaxSpanAnnotations = 4;

/// Microseconds on the process-wide monotonic clock (steady_clock,
/// zeroed at first use).  All span timestamps share this epoch, so
/// spans recorded on different threads line up in one timeline.
uint64_t TraceNowMicros();

/// Mixes `seed` into a well-distributed non-zero 64-bit id
/// (splitmix64).  Deterministic: same seed, same id — tests and the
/// head sampler rely on that.
uint64_t MixTraceId(uint64_t seed);

/// Generates a fresh process-unique non-zero trace id (monotonic
/// counter + boot entropy through MixTraceId).
uint64_t GenerateTraceId();

/// One key/value annotation.  `key` must outlive the sink (string
/// literal); values are unsigned 64-bit by design — counts, bytes,
/// microseconds.
struct SpanAnnotation {
  const char* key = "";
  uint64_t value = 0;
};

/// One completed span.  Plain data, copied around freely.
struct Span {
  const char* name = "";  ///< Static string: "queue", "candidates", ...
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  ///< 0 = root.
  uint64_t start_us = 0;        ///< TraceNowMicros() at start.
  uint64_t dur_us = 0;
  uint32_t thread = 0;  ///< Recording thread's small stable slot.
  uint32_t n_annotations = 0;
  std::array<SpanAnnotation, kMaxSpanAnnotations> annotations{};
};

/// Per-request span arena.  Record() is wait-free: one relaxed
/// fetch_add claims a slot, the span is written in place; when the
/// arena is full the span is dropped and counted.  Span ids are
/// allocated from a per-collector counter; id 1 is reserved for the
/// root span (root_span_id()).
class TraceCollector {
 public:
  explicit TraceCollector(uint64_t trace_id) : trace_id_(trace_id) {}
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  uint64_t trace_id() const { return trace_id_; }

  /// The reserved id of the request's root span (callers record the
  /// root themselves, with this id, when the request finishes).
  uint64_t root_span_id() const { return 1; }

  /// Claims a fresh span id (2, 3, ...).
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends a completed span; trace_id is stamped here.  Thread-safe,
  /// wait-free; drops (and counts) when the arena is full.
  void Record(const Span& span);

  /// Spans dropped because the arena was full.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Copies the recorded spans out, ordered by start time.  Call only
  /// after every recording thread is done with this collector (the
  /// batch paths' completion latches provide that ordering).
  std::vector<Span> Spans() const;

 private:
  const uint64_t trace_id_;
  std::atomic<uint64_t> next_span_id_{2};
  std::atomic<uint32_t> count_{0};
  std::atomic<uint64_t> dropped_{0};
  std::array<Span, kMaxSpansPerTrace> spans_{};
};

/// The thread's current trace: which collector new spans go to and
/// which span is their parent.  Null collector = this thread is not
/// tracing (the common case; TraceSpan is then a no-op).
struct TraceContext {
  TraceCollector* collector = nullptr;
  uint64_t parent_span_id = 0;
};

/// The calling thread's trace context (thread_local).
TraceContext& CurrentTraceContext();

/// Installs `collector` as the thread's current trace for the scope —
/// the bridge that carries a request's trace onto a worker or pool
/// thread.  Restores the previous context on destruction, so nesting
/// (a traced request calling a traced batch) composes.
class ScopedTraceContext {
 public:
  ScopedTraceContext(TraceCollector* collector, uint64_t parent_span_id);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// A RAII stage span.  Construction reads the thread's context; when
/// no collector is installed every method is a cheap no-op, which is
/// what keeps disabled tracing free.  While alive it is the parent of
/// any span opened on the same thread.  `name` must be a string
/// literal.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span is actually recording.
  bool active() const { return collector_ != nullptr; }

  /// Ends the span now (records it immediately; the destructor becomes
  /// a no-op).  For stages whose end doesn't align with a C++ scope.
  void End();

  /// Attaches a key/value annotation (no-op when inactive or full).
  void Annotate(const char* key, uint64_t value);

  uint64_t span_id() const { return span_.span_id; }

 private:
  TraceCollector* collector_ = nullptr;
  uint64_t saved_parent_ = 0;
  Span span_;
};

/// The recording thread's small stable slot (same striping idea as the
/// metrics cells) — lets a trace show which threads ran which stages.
uint32_t TraceThreadSlot();

}  // namespace telemetry
}  // namespace cbvlink

#endif  // CBVLINK_TELEMETRY_TRACE_H_
