#include "src/text/alphabet.h"

#include <cassert>

namespace cbvlink {

Alphabet::Alphabet(std::string_view symbols) {
  order_.fill(-1);
  symbols_.reserve(symbols.size());
  for (char c : symbols) {
    const auto idx = static_cast<unsigned char>(c);
    if (order_[idx] >= 0) continue;  // keep first occurrence
    order_[idx] = static_cast<int>(symbols_.size());
    symbols_.push_back(c);
  }
}

const Alphabet& Alphabet::Uppercase() {
  static const Alphabet* kInstance = new Alphabet("ABCDEFGHIJKLMNOPQRSTUVWXYZ");
  return *kInstance;
}

const Alphabet& Alphabet::UppercasePadded() {
  static const Alphabet* kInstance =
      new Alphabet("ABCDEFGHIJKLMNOPQRSTUVWXYZ_");
  return *kInstance;
}

const Alphabet& Alphabet::Alphanumeric() {
  static const Alphabet* kInstance =
      new Alphabet("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _");
  return *kInstance;
}

uint64_t Alphabet::NumQGrams(size_t q) const {
  uint64_t total = 1;
  for (size_t i = 0; i < q; ++i) {
    assert(total <= UINT64_MAX / symbols_.size());
    total *= symbols_.size();
  }
  return total;
}

}  // namespace cbvlink
