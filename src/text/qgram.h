// q-gram extraction and Algorithm 1 index mapping.
//
// A q-gram is a group of q consecutive characters of a (padded) string.
// The bijection F of Section 4.1 maps each q-gram to the integer obtained
// by reading its characters as base-|S| digits (Algorithm 1):
//
//   ind = sum_{i=1..q} ord(gr[i]) * |S|^(q-i)
//
// The set of indexes U_s of a string s tells which positions of a q-gram
// vector are set, and is the input to every embedding in the library.

#ifndef CBVLINK_TEXT_QGRAM_H_
#define CBVLINK_TEXT_QGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/text/alphabet.h"

namespace cbvlink {

/// Options controlling q-gram extraction.
struct QGramOptions {
  /// The q of q-grams; 2 (bigrams) everywhere in the paper's evaluation.
  size_t q = 2;
  /// Pad the string with kPadChar on both ends so every character appears
  /// in exactly q q-grams (footnote 4: 'JONES' -> '_JONES_').
  bool pad = true;
};

/// Extracts q-grams from normalized strings and maps them to indexes.
class QGramExtractor {
 public:
  /// Creates an extractor.  If `options.pad` is set, `alphabet` must
  /// contain kPadChar.  Returns InvalidArgument for q == 0 or a missing
  /// padding symbol.
  static Result<QGramExtractor> Create(const Alphabet& alphabet,
                                       QGramOptions options);

  /// The q-grams of `normalized`, in order of occurrence (may repeat).
  /// A string shorter than q without padding yields no q-grams.
  std::vector<std::string> Grams(std::string_view normalized) const;

  /// Algorithm 1: the index of a single q-gram.  Returns OutOfRange if the
  /// gram's length differs from q or it contains a symbol outside the
  /// alphabet.
  Result<uint64_t> GramIndex(std::string_view gram) const;

  /// The set U_s: sorted, de-duplicated indexes of all q-grams of
  /// `normalized`.
  std::vector<uint64_t> IndexSet(std::string_view normalized) const;

  /// Number of q-grams of `normalized` counted with multiplicity — the
  /// quantity averaged into b^(f_i) in Table 3.
  size_t CountGrams(std::string_view normalized) const;

  /// Index-space size |S|^q (the m of full q-gram vectors).
  uint64_t IndexSpaceSize() const { return index_space_; }

  size_t q() const { return options_.q; }
  bool pad() const { return options_.pad; }
  const Alphabet& alphabet() const { return *alphabet_; }

 private:
  QGramExtractor(const Alphabet& alphabet, QGramOptions options,
                 uint64_t index_space)
      : alphabet_(&alphabet), options_(options), index_space_(index_space) {}

  /// The padded working copy of `normalized`.
  std::string Padded(std::string_view normalized) const;

  const Alphabet* alphabet_;
  QGramOptions options_;
  uint64_t index_space_;
};

}  // namespace cbvlink

#endif  // CBVLINK_TEXT_QGRAM_H_
