#include "src/text/qgram.h"

#include <algorithm>

#include "src/common/str.h"

namespace cbvlink {

Result<QGramExtractor> QGramExtractor::Create(const Alphabet& alphabet,
                                              QGramOptions options) {
  if (options.q == 0) {
    return Status::InvalidArgument("q must be positive");
  }
  if (options.pad && !alphabet.Contains(kPadChar)) {
    return Status::InvalidArgument(
        "padding requested but alphabet lacks the padding symbol '_'");
  }
  // Guard |S|^q against overflow: 64 bits comfortably hold every practical
  // configuration (q <= 12 even for the 39-symbol alphabet).
  uint64_t space = 1;
  for (size_t i = 0; i < options.q; ++i) {
    if (space > UINT64_MAX / alphabet.size()) {
      return Status::OutOfRange("|S|^q does not fit in 64 bits");
    }
    space *= alphabet.size();
  }
  return QGramExtractor(alphabet, options, space);
}

std::string QGramExtractor::Padded(std::string_view normalized) const {
  if (!options_.pad) return std::string(normalized);
  std::string padded;
  padded.reserve(normalized.size() + 2);
  padded.push_back(kPadChar);
  padded.append(normalized);
  padded.push_back(kPadChar);
  return padded;
}

std::vector<std::string> QGramExtractor::Grams(
    std::string_view normalized) const {
  std::vector<std::string> grams;
  if (normalized.empty()) return grams;
  const std::string padded = Padded(normalized);
  if (padded.size() < options_.q) return grams;
  grams.reserve(padded.size() - options_.q + 1);
  for (size_t i = 0; i + options_.q <= padded.size(); ++i) {
    grams.emplace_back(padded.substr(i, options_.q));
  }
  return grams;
}

Result<uint64_t> QGramExtractor::GramIndex(std::string_view gram) const {
  if (gram.size() != options_.q) {
    return Status::OutOfRange(
        StrFormat("gram length %zu != q=%zu", gram.size(), options_.q));
  }
  uint64_t ind = 0;
  for (char c : gram) {
    const int order = alphabet_->Order(c);
    if (order < 0) {
      return Status::OutOfRange(
          StrFormat("character 0x%02x outside alphabet",
                    static_cast<unsigned char>(c)));
    }
    ind = ind * alphabet_->size() + static_cast<uint64_t>(order);
  }
  return ind;
}

std::vector<uint64_t> QGramExtractor::IndexSet(
    std::string_view normalized) const {
  std::vector<uint64_t> indexes;
  if (normalized.empty()) return indexes;
  const std::string padded = Padded(normalized);
  if (padded.size() < options_.q) return indexes;
  indexes.reserve(padded.size() - options_.q + 1);
  for (size_t i = 0; i + options_.q <= padded.size(); ++i) {
    // Characters are guaranteed in-alphabet after Normalize(); compute the
    // base-|S| index inline to avoid per-gram allocation.
    uint64_t ind = 0;
    bool valid = true;
    for (size_t j = 0; j < options_.q; ++j) {
      const int order = alphabet_->Order(padded[i + j]);
      if (order < 0) {
        valid = false;
        break;
      }
      ind = ind * alphabet_->size() + static_cast<uint64_t>(order);
    }
    if (valid) indexes.push_back(ind);
  }
  std::sort(indexes.begin(), indexes.end());
  indexes.erase(std::unique(indexes.begin(), indexes.end()), indexes.end());
  return indexes;
}

size_t QGramExtractor::CountGrams(std::string_view normalized) const {
  if (normalized.empty()) return 0;
  const size_t padded_len = normalized.size() + (options_.pad ? 2 : 0);
  return padded_len < options_.q ? 0 : padded_len - options_.q + 1;
}

}  // namespace cbvlink
