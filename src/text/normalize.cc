#include "src/text/normalize.h"

namespace cbvlink {

std::string Normalize(std::string_view raw, const Alphabet& alphabet) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
    if (c == kPadChar) continue;  // reserved for the extractor's padding
    if (alphabet.Contains(c)) out.push_back(c);
  }
  return out;
}

}  // namespace cbvlink
