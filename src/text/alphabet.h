// Symbol alphabets for q-gram indexing.
//
// Algorithm 1 of the paper maps a q-gram to an integer index by treating
// its characters as base-|S| digits, where S is the q-gram alphabet.  The
// paper's running examples use S = {A..Z} (|S| = 26, so bigram vectors have
// 676 positions), while its padding convention ('_JONES_') introduces a
// 27th symbol.  Alphabet makes the symbol set explicit and configurable so
// both conventions — and richer sets with digits for address-like
// attributes — are supported.

#ifndef CBVLINK_TEXT_ALPHABET_H_
#define CBVLINK_TEXT_ALPHABET_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace cbvlink {

/// The padding character prepended/appended to strings before q-gram
/// extraction (footnote 4 of the paper).
inline constexpr char kPadChar = '_';

/// An ordered set of symbols; gives each symbol a zero-based order used as
/// a base-|S| digit by the q-gram index mapping.
class Alphabet {
 public:
  /// Builds an alphabet from an ordered list of distinct symbols.
  /// Duplicate symbols keep their first position.
  explicit Alphabet(std::string_view symbols);

  /// A..Z — the paper's illustrative alphabet (|S| = 26).
  static const Alphabet& Uppercase();

  /// A..Z plus the padding character (|S| = 27).  The default used by the
  /// encoders, since padded q-grams must be representable.
  static const Alphabet& UppercasePadded();

  /// A..Z, 0..9, space, and the padding character (|S| = 38).  Suitable
  /// for address-like attributes that mix letters and digits.
  static const Alphabet& Alphanumeric();

  /// Number of symbols.
  size_t size() const { return symbols_.size(); }

  /// Zero-based order of `c`, or -1 if `c` is not in the alphabet.
  int Order(char c) const {
    return order_[static_cast<unsigned char>(c)];
  }

  /// True iff `c` is a symbol of this alphabet.
  bool Contains(char c) const { return Order(c) >= 0; }

  /// The symbols, in order.
  const std::string& symbols() const { return symbols_; }

  /// Number of distinct q-grams over this alphabet: |S|^q.
  /// Requires the result to fit in 64 bits.
  uint64_t NumQGrams(size_t q) const;

 private:
  std::string symbols_;
  std::array<int, 256> order_;
};

}  // namespace cbvlink

#endif  // CBVLINK_TEXT_ALPHABET_H_
