// String normalization applied before q-gram extraction.
//
// All encoders in the paper assume upper-case string values over a known
// alphabet.  Normalize() uppercases ASCII and drops any character outside
// the target alphabet, so downstream index mapping (Algorithm 1) is total.

#ifndef CBVLINK_TEXT_NORMALIZE_H_
#define CBVLINK_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

#include "src/text/alphabet.h"

namespace cbvlink {

/// Uppercases ASCII letters and removes characters that are not in
/// `alphabet` (the padding character is never emitted by normalization —
/// it is reserved for the extractor).
std::string Normalize(std::string_view raw, const Alphabet& alphabet);

}  // namespace cbvlink

#endif  // CBVLINK_TEXT_NORMALIZE_H_
