// The three-party protocol of Section 3: data custodians (Alice, Bob,
// ...) and the independent linkage unit (Charlie).
//
// Charlie publishes the linkage parameters (schema, Theorem 1 sizing,
// the shared hash-family seed, and the expected q-gram counts measured
// on samples).  Each custodian encodes its records locally with those
// parameters and ships only the compact c-vectors — 15 bytes of payload
// per NCVR record — never the strings.  Charlie blocks and matches the
// received embeddings.
//
// This module is a faithful *mechanical* simulation of the message flow;
// the cryptographic hardening the paper defers to its references ([17],
// [19], [28]) is out of scope (and the paper's own protocol, like ours,
// relies on Charlie being honest-but-curious with non-invertible
// embeddings rather than on encryption).

#ifndef CBVLINK_PROTOCOL_PARTY_H_
#define CBVLINK_PROTOCOL_PARTY_H_

#include <string>
#include <vector>

#include "src/blocking/matcher.h"
#include "src/common/execution.h"
#include "src/common/record.h"
#include "src/common/status.h"
#include "src/embedding/record_encoder.h"
#include "src/rules/rule.h"

namespace cbvlink {

/// The parameters Charlie publishes to every custodian.  All custodians
/// must encode with identical parameters or their embeddings are not
/// comparable.
struct LinkageParameters {
  Schema schema;
  /// Expected q-grams per attribute (fixes every m_opt via Theorem 1).
  std::vector<double> expected_qgrams;
  /// Theorem 1 knobs.
  OptimalSizeOptions sizing;
  /// Seed of the shared pairwise-independent hash family.
  uint64_t hash_seed = 101;
};

/// A data custodian: owns raw records, encodes them under Charlie's
/// published parameters, and exports the embeddings.
class DataCustodian {
 public:
  /// Builds the custodian's encoder from the published parameters.
  static Result<DataCustodian> Create(std::string name,
                                      const LinkageParameters& parameters);

  const std::string& name() const { return name_; }

  /// Encodes the custodian's records over `options`' execution policy
  /// (byte-identical at any thread count).  This is the only artifact
  /// that leaves the custodian's premises.
  Result<std::vector<EncodedRecord>> EncodeRecords(
      const std::vector<Record>& records,
      const ExecutionOptions& options = {}) const;

  /// Writes the encoded records to `path` in the binary wire format.
  Status ExportRecords(const std::vector<Record>& records,
                       const std::string& path,
                       const ExecutionOptions& options = {}) const;

  /// Payload bits per shipped record.
  size_t record_bits() const { return encoder_.total_bits(); }

 private:
  DataCustodian(std::string name, CVectorRecordEncoder encoder)
      : name_(std::move(name)), encoder_(std::move(encoder)) {}

  std::string name_;
  CVectorRecordEncoder encoder_;
};

/// Charlie's output: matches plus the matcher counters.
struct LinkageResultLite {
  std::vector<IdPair> matches;
  MatchStats stats;
  size_t blocking_groups = 0;
};

/// Charlie: receives embeddings from two custodians, blocks and matches.
class LinkageUnit {
 public:
  /// Blocking/matching configuration (mirrors CbvHbConfig's record-level
  /// knobs; the rule classifies received pairs).
  struct Options {
    Rule rule = Rule::Pred(0, 0);
    size_t record_K = 30;
    size_t record_theta = 4;
    double delta = 0.1;
    uint64_t seed = 103;
    /// Charlie's execution policy (index build + sharded matching).
    ExecutionOptions execution;
  };

  /// Creates Charlie with the published parameters and his own blocking
  /// configuration.
  static Result<LinkageUnit> Create(const LinkageParameters& parameters,
                                    Options options);

  /// Links two received embedding sets.
  Result<LinkageResultLite> LinkEncoded(
      const std::vector<EncodedRecord>& from_a,
      const std::vector<EncodedRecord>& from_b);

  /// Links two wire-format files (as exported by DataCustodian).
  Result<LinkageResultLite> LinkFiles(const std::string& path_a,
                                      const std::string& path_b);

 private:
  LinkageUnit(LinkageParameters parameters, Options options,
              RecordLayout layout)
      : parameters_(std::move(parameters)),
        options_(std::move(options)),
        layout_(std::move(layout)) {}

  LinkageParameters parameters_;
  Options options_;
  RecordLayout layout_;
};

}  // namespace cbvlink

#endif  // CBVLINK_PROTOCOL_PARTY_H_
