#include "src/protocol/party.h"

#include "src/blocking/record_blocker.h"
#include "src/common/thread_pool.h"
#include "src/io/serialization.h"

namespace cbvlink {

namespace {

/// Derives the shared encoder from the published parameters.  Every
/// party calls this with identical inputs, so the hash families — and
/// therefore the embeddings of equal strings — agree across custodians.
Result<CVectorRecordEncoder> SharedEncoder(
    const LinkageParameters& parameters) {
  Rng rng(parameters.hash_seed);
  return CVectorRecordEncoder::Create(parameters.schema,
                                      parameters.expected_qgrams, rng,
                                      parameters.sizing);
}

}  // namespace

Result<DataCustodian> DataCustodian::Create(
    std::string name, const LinkageParameters& parameters) {
  Result<CVectorRecordEncoder> encoder = SharedEncoder(parameters);
  if (!encoder.ok()) return encoder.status();
  return DataCustodian(std::move(name), std::move(encoder).value());
}

Result<std::vector<EncodedRecord>> DataCustodian::EncodeRecords(
    const std::vector<Record>& records,
    const ExecutionOptions& options) const {
  ExecutionContext ctx(options);
  return encoder_.EncodeAll(records, ctx.pool(), ctx.chunk_size_hint());
}

Status DataCustodian::ExportRecords(const std::vector<Record>& records,
                                    const std::string& path,
                                    const ExecutionOptions& options) const {
  Result<std::vector<EncodedRecord>> encoded =
      EncodeRecords(records, options);
  if (!encoded.ok()) return encoded.status();
  return WriteEncodedRecordsToFile(encoded.value(), path);
}

Result<LinkageUnit> LinkageUnit::Create(const LinkageParameters& parameters,
                                        Options options) {
  Result<CVectorRecordEncoder> encoder = SharedEncoder(parameters);
  if (!encoder.ok()) return encoder.status();
  CBVLINK_RETURN_NOT_OK(
      options.rule.Validate(parameters.schema.num_attributes()));
  return LinkageUnit(parameters, std::move(options),
                     encoder.value().layout());
}

Result<LinkageResultLite> LinkageUnit::LinkEncoded(
    const std::vector<EncodedRecord>& from_a,
    const std::vector<EncodedRecord>& from_b) {
  // Received vectors must carry the published width.
  for (const std::vector<EncodedRecord>* side : {&from_a, &from_b}) {
    for (const EncodedRecord& r : *side) {
      if (r.bits.size() != layout_.total_bits()) {
        return Status::InvalidArgument(
            "received embedding width differs from the published layout");
      }
    }
  }

  Rng rng(options_.seed);
  ExecutionContext ctx(options_.execution);
  Result<RecordLevelBlocker> blocker = RecordLevelBlocker::Create(
      layout_.total_bits(), options_.record_K, options_.record_theta,
      options_.delta, rng);
  if (!blocker.ok()) return blocker.status();
  blocker.value().BulkInsert(from_a, ctx.pool(), ctx.chunk_size_hint());

  VectorStore store;
  store.AddAll(from_a);

  LinkageResultLite result;
  result.blocking_groups = blocker.value().L();
  Matcher matcher(&blocker.value(), &store);
  const PairClassifier classifier =
      MakeRuleClassifier(options_.rule, layout_);
  result.matches =
      matcher.MatchAll(from_b, classifier, &result.stats, ctx.pool());
  return result;
}

Result<LinkageResultLite> LinkageUnit::LinkFiles(const std::string& path_a,
                                                 const std::string& path_b) {
  Result<std::vector<EncodedRecord>> from_a =
      ReadEncodedRecordsFromFile(path_a);
  if (!from_a.ok()) return from_a.status();
  Result<std::vector<EncodedRecord>> from_b =
      ReadEncodedRecordsFromFile(path_b);
  if (!from_b.ok()) return from_b.status();
  return LinkEncoded(from_a.value(), from_b.value());
}

}  // namespace cbvlink
