#include "src/linkage/online_linker.h"

#include "src/common/str.h"

namespace cbvlink {

Result<OnlineCbvHbLinker> OnlineCbvHbLinker::Create(
    CbvHbConfig config, const std::vector<Record>& calibration_sample) {
  // Reuse CbvHbLinker's validation rules.
  {
    CbvHbConfig copy = config;
    Result<CbvHbLinker> check = CbvHbLinker::Create(std::move(copy));
    if (!check.ok()) return check.status();
  }

  std::vector<double> expected = config.expected_qgrams;
  if (expected.empty()) {
    if (calibration_sample.empty()) {
      return Status::InvalidArgument(
          "online linker needs expected_qgrams or a calibration sample");
    }
    expected = EstimateExpectedQGrams(config.schema, calibration_sample);
  }

  OnlineCbvHbLinker linker;
  Rng rng(config.seed);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      config.schema, expected, rng, config.sizing);
  if (!encoder.ok()) return encoder.status();
  linker.encoder_.emplace(std::move(encoder).value());

  if (config.attribute_level_blocking) {
    AttributeBlockerOptions options;
    options.attribute_K = config.attribute_K;
    options.delta = config.delta;
    Result<AttributeLevelBlocker> blocker = AttributeLevelBlocker::Create(
        config.rule, linker.encoder_->layout(), options, rng);
    if (!blocker.ok()) return blocker.status();
    linker.attribute_blocker_.emplace(std::move(blocker).value());
    for (size_t s = 0; s < linker.attribute_blocker_->num_structures(); ++s) {
      linker.blocking_groups_ += linker.attribute_blocker_->structure_L(s);
    }
  } else {
    Result<RecordLevelBlocker> blocker = RecordLevelBlocker::Create(
        linker.encoder_->total_bits(), config.record_K, config.record_theta,
        config.delta, rng);
    if (!blocker.ok()) return blocker.status();
    linker.record_blocker_.emplace(std::move(blocker).value());
    linker.blocking_groups_ = linker.record_blocker_->L();
  }

  linker.classifier_ =
      MakeRuleClassifier(config.rule, linker.encoder_->layout());
  linker.config_ = std::move(config);
  return linker;
}

Result<EncodedRecord> OnlineCbvHbLinker::Encode(const Record& record) const {
  return encoder_->Encode(record);
}

Status OnlineCbvHbLinker::Insert(const Record& record) {
  Result<EncodedRecord> encoded = Encode(record);
  if (!encoded.ok()) return encoded.status();
  if (attribute_blocker_.has_value()) {
    attribute_blocker_->Insert(encoded.value());
  } else {
    record_blocker_->Insert(encoded.value());
  }
  store_.Add(encoded.value());
  return Status::OK();
}

Status OnlineCbvHbLinker::InsertBatch(const std::vector<Record>& records,
                                      const ExecutionOptions& options) {
  ExecutionContext ctx(options);
  Result<std::vector<EncodedRecord>> encoded =
      encoder_->EncodeAll(records, ctx.pool(), ctx.chunk_size_hint());
  if (!encoded.ok()) return encoded.status();
  if (attribute_blocker_.has_value()) {
    attribute_blocker_->BulkInsert(encoded.value(), ctx.pool(),
                                   ctx.chunk_size_hint());
  } else {
    record_blocker_->BulkInsert(encoded.value(), ctx.pool(),
                                ctx.chunk_size_hint());
  }
  store_.AddAll(encoded.value());
  return Status::OK();
}

Status OnlineCbvHbLinker::Match(const Record& record,
                                std::vector<IdPair>* out) {
  Result<EncodedRecord> encoded = Encode(record);
  if (!encoded.ok()) return encoded.status();
  Matcher matcher(&source(), &store_);
  matcher.MatchOne(encoded.value(), classifier_, out, &stats_, &scratch_);
  return Status::OK();
}

Status OnlineCbvHbLinker::MatchAndInsert(const Record& record,
                                         std::vector<IdPair>* out) {
  CBVLINK_RETURN_NOT_OK(Match(record, out));
  return Insert(record);
}

Status OnlineCbvHbLinker::MatchAndInsertEncoded(const EncodedRecord& encoded,
                                                std::vector<IdPair>* out) {
  if (encoded.bits.size() != encoder_->total_bits()) {
    return Status::InvalidArgument(
        StrFormat("encoded record is %zu bits; this stream's encoder "
                  "produces %zu",
                  encoded.bits.size(), encoder_->total_bits()));
  }
  Matcher matcher(&source(), &store_);
  matcher.MatchOne(encoded, classifier_, out, &stats_, &scratch_);
  if (attribute_blocker_.has_value()) {
    attribute_blocker_->Insert(encoded);
  } else {
    record_blocker_->Insert(encoded);
  }
  store_.Add(encoded);
  return Status::OK();
}

}  // namespace cbvlink
