// Single-database duplicate detection with cBV-HB.
//
// The paper frames linkage across two (or more) custodians; the same
// embedding + blocking machinery deduplicates one data set by probing
// each record against the records indexed before it — every unordered
// pair is considered at most once — and consolidating the pairwise
// decisions into entity clusters with union-find.

#ifndef CBVLINK_LINKAGE_DEDUP_H_
#define CBVLINK_LINKAGE_DEDUP_H_

#include <vector>

#include "src/blocking/matcher.h"
#include "src/common/execution.h"
#include "src/common/record.h"
#include "src/common/status.h"
#include "src/linkage/cbv_hb_linker.h"

namespace cbvlink {

/// Result of a deduplication run.
struct DedupResult {
  /// Matched pairs, a_id < b_id in insertion order (each pair once).
  std::vector<IdPair> duplicate_pairs;
  /// Entity clusters over the *record ids*, including singletons,
  /// ordered by their smallest member.
  std::vector<std::vector<RecordId>> clusters;
  MatchStats stats;
  size_t blocking_groups = 0;
};

/// Finds duplicate records within one data set.  `config` supplies the
/// schema, rule, and blocking parameters exactly as for cross-set
/// linkage (record-level blocking; config.attribute_level_blocking is
/// honored too).  Record ids must be unique.
Result<DedupResult> FindDuplicates(const std::vector<Record>& records,
                                   const CbvHbConfig& config);

/// FindDuplicates under an execution policy: the embedding runs on the
/// policy's pool up front; the match-then-insert stream itself stays
/// sequential (each record may only probe those inserted before it), so
/// pairs, clusters, and counters are identical at any thread count.
Result<DedupResult> FindDuplicates(const std::vector<Record>& records,
                                   const CbvHbConfig& config,
                                   const ExecutionOptions& options);

}  // namespace cbvlink

#endif  // CBVLINK_LINKAGE_DEDUP_H_
