// HARRA baseline (h-CC variant; Kim & Lee, EDBT 2010 — Section 6.1).
//
// All attribute values of a record are merged into ONE record-level
// bigram set (the source of its cross-attribute ambiguity on DBLP),
// blocked with MinHash LSH over the Jaccard space, and matched with the
// Jaccard distance.  Blocking and matching run iteratively, one blocking
// group at a time; records classified as matched are removed from all
// subsequent iterations (the early pruning that makes HARRA fast but
// lossy).

#ifndef CBVLINK_LINKAGE_HARRA_LINKER_H_
#define CBVLINK_LINKAGE_HARRA_LINKER_H_

#include "src/linkage/linker.h"
#include "src/text/alphabet.h"
#include "src/text/qgram.h"

namespace cbvlink {

/// Configuration; defaults follow Section 6.1 (PL setting).
struct HarraConfig {
  /// Base hash functions per composite MinHash function.
  size_t K = 5;
  /// Blocking groups (paper: 30 for PL, 90 for PH, chosen empirically).
  size_t L = 30;
  /// Jaccard distance threshold (paper: 0.35 for PL, 0.45 for PH).
  double theta = 0.35;
  /// Alphabet of the shared record-level bigram space.
  const Alphabet* alphabet = &Alphabet::Alphanumeric();
  /// q-gram options (paper: unpadded bigrams).
  QGramOptions qgram{.q = 2, .pad = false};
  uint64_t seed = 11;
};

/// The HARRA linker.
class HarraLinker : public Linker {
 public:
  static Result<HarraLinker> Create(HarraConfig config);

  std::string_view name() const override { return "HARRA"; }

  using Linker::Link;
  Result<LinkageResult> Link(const std::vector<Record>& a,
                             const std::vector<Record>& b,
                             const ExecutionOptions& options) override;

 private:
  explicit HarraLinker(HarraConfig config) : config_(std::move(config)) {}

  HarraConfig config_;
};

}  // namespace cbvlink

#endif  // CBVLINK_LINKAGE_HARRA_LINKER_H_
