#include "src/linkage/harra_linker.h"

#include <algorithm>

#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"
#include "src/lsh/blocking_table.h"
#include "src/lsh/minhash_lsh.h"
#include "src/metrics/jaccard.h"
#include "src/text/normalize.h"

namespace cbvlink {

namespace {

/// The record-level bigram index set: the union of every field's bigrams
/// in one shared space — HARRA's single-vector representation.
std::vector<uint64_t> RecordIndexSet(const Record& record,
                                     const QGramExtractor& extractor,
                                     const Alphabet& alphabet) {
  std::vector<uint64_t> merged;
  for (const std::string& field : record.fields) {
    const std::vector<uint64_t> indexes =
        extractor.IndexSet(Normalize(field, alphabet));
    merged.insert(merged.end(), indexes.begin(), indexes.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

}  // namespace

Result<HarraLinker> HarraLinker::Create(HarraConfig config) {
  if (config.K == 0 || config.L == 0) {
    return Status::InvalidArgument("HARRA needs positive K and L");
  }
  if (config.theta < 0.0 || config.theta > 1.0) {
    return Status::InvalidArgument("Jaccard threshold outside [0, 1]");
  }
  return HarraLinker(std::move(config));
}

Result<LinkageResult> HarraLinker::Link(const std::vector<Record>& a,
                                        const std::vector<Record>& b,
                                        const ExecutionOptions& options) {
  Rng rng(config_.seed);
  LinkageResult result;
  Stopwatch watch;
  ExecutionContext ctx(options);
  result.threads_used = ctx.threads_used();

  Result<QGramExtractor> extractor =
      QGramExtractor::Create(*config_.alphabet, config_.qgram);
  if (!extractor.ok()) return extractor.status();

  // --- Embedding: one merged bigram set per record -----------------------
  // Each slot is written exactly once, so the sharded fill is identical to
  // the serial loop at any thread count.
  std::vector<std::vector<uint64_t>> sets_a(a.size());
  std::vector<std::vector<uint64_t>> sets_b(b.size());
  const auto embed_all = [&](const std::vector<Record>& records,
                             std::vector<std::vector<uint64_t>>& sets) {
    const auto fill = [&](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        sets[i] =
            RecordIndexSet(records[i], extractor.value(), *config_.alphabet);
      }
    };
    if (ctx.pool() == nullptr) {
      fill(0, 0, records.size());
    } else {
      ctx.pool()->ParallelFor(records.size(), ctx.chunk_size_hint(), fill);
    }
  };
  embed_all(a, sets_a);
  embed_all(b, sets_b);
  result.embed_seconds = watch.ElapsedSeconds();

  Result<MinHashLshFamily> family = MinHashLshFamily::Create(
      config_.K, config_.L, extractor.value().IndexSpaceSize(), rng);
  if (!family.ok()) return family.status();
  result.blocking_groups = config_.L;

  // --- Iterative block/match, one group at a time ------------------------
  std::vector<bool> alive_a(a.size(), true);
  std::vector<bool> alive_b(b.size(), true);

  // Per-probe dedup as a generation-stamped visited array over the dense
  // A indices (same scheme as the matching engine, DESIGN.md §9) instead
  // of allocating an unordered_set per probe.
  std::vector<uint32_t> stamps(a.size(), 0);
  uint32_t epoch = 0;

  watch.Restart();
  double index_seconds = 0.0;
  Stopwatch phase;
  // MinHash keys of one iteration, recomputed per group for the records
  // still alive; per-slot writes keep the parallel fill deterministic.
  std::vector<uint64_t> keys_a(a.size());
  std::vector<uint64_t> keys_b(b.size());
  const auto compute_keys = [&](const std::vector<std::vector<uint64_t>>& sets,
                                const std::vector<bool>& alive,
                                std::vector<uint64_t>& keys, size_t l) {
    const auto fill = [&](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        if (alive[i]) keys[i] = family.value().Key(sets[i], l);
      }
    };
    if (ctx.pool() == nullptr) {
      fill(0, 0, sets.size());
    } else {
      ctx.pool()->ParallelFor(sets.size(), ctx.chunk_size_hint(), fill);
    }
  };
  for (size_t l = 0; l < config_.L; ++l) {
    // Build this iteration's table over the records still alive: keys in
    // parallel, inserts serial in index order (deterministic buckets).
    phase.Restart();
    compute_keys(sets_a, alive_a, keys_a, l);
    compute_keys(sets_b, alive_b, keys_b, l);
    BlockingTable table;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!alive_a[i]) continue;
      table.Insert(keys_a[i], static_cast<RecordId>(i));
    }
    index_seconds += phase.ElapsedSeconds();

    for (size_t j = 0; j < b.size(); ++j) {
      if (!alive_b[j]) continue;
      const uint64_t key = keys_b[j];
      if (++epoch == 0) {
        std::fill(stamps.begin(), stamps.end(), 0);
        epoch = 1;
      }
      for (RecordId ai : table.Get(key)) {
        ++result.stats.candidate_occurrences;
        const size_t i = static_cast<size_t>(ai);
        if (!alive_a[i]) continue;  // matched earlier in this iteration
        if (stamps[i] == epoch) {
          ++result.stats.dedup_skipped;
          continue;
        }
        stamps[i] = epoch;
        ++result.stats.comparisons;
        if (JaccardDistance(sets_a[i], sets_b[j]) <= config_.theta) {
          ++result.stats.matches;
          result.matches.push_back(IdPair{a[i].id, b[j].id});
          // Early pruning: both records leave every later iteration.
          alive_a[i] = false;
          alive_b[j] = false;
          break;
        }
      }
    }
  }
  result.match_seconds = watch.ElapsedSeconds() - index_seconds;
  result.index_seconds = index_seconds;
  return result;
}

}  // namespace cbvlink
