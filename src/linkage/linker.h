// The Linker interface: one end-to-end blocking/matching pipeline per
// method of the paper's evaluation (cBV-HB plus the three baselines).

#ifndef CBVLINK_LINKAGE_LINKER_H_
#define CBVLINK_LINKAGE_LINKER_H_

#include <string_view>
#include <vector>

#include "src/blocking/matcher.h"
#include "src/common/execution.h"
#include "src/common/record.h"
#include "src/common/status.h"

namespace cbvlink {

/// Outcome of one linkage run.
struct LinkageResult {
  /// Matched (A, B) id pairs, duplicates possible only across methods
  /// that re-discover pairs (the matcher itself de-duplicates per probe).
  std::vector<IdPair> matches;
  /// Matcher counters (|CR| = stats.comparisons).
  MatchStats stats;
  /// Wall-clock split: embedding the records, building the blocking
  /// structures + inserting A, and probing/matching B.
  double embed_seconds = 0.0;
  double index_seconds = 0.0;
  double match_seconds = 0.0;
  /// Total blocking groups used (sum over structures for attribute-level
  /// blocking).
  size_t blocking_groups = 0;
  /// Worker threads the run actually executed on (1 = serial), so bench
  /// JSON can record real parallelism next to the timings.
  size_t threads_used = 1;

  double total_seconds() const {
    return embed_seconds + index_seconds + match_seconds;
  }
};

/// An end-to-end record-linkage method.
class Linker {
 public:
  virtual ~Linker();

  /// Human-readable method name ("cBV-HB", "BfH", ...).
  virtual std::string_view name() const = 0;

  /// Links data sets A and B under `options`' execution policy,
  /// returning matches and statistics.  Every implementation produces
  /// byte-identical matches and counters at any thread count.
  virtual Result<LinkageResult> Link(const std::vector<Record>& a,
                                     const std::vector<Record>& b,
                                     const ExecutionOptions& options) = 0;

  /// Convenience overload: serial execution.
  virtual Result<LinkageResult> Link(const std::vector<Record>& a,
                                     const std::vector<Record>& b);
};

}  // namespace cbvlink

#endif  // CBVLINK_LINKAGE_LINKER_H_
