// Multi-party linkage (Section 5.3: "our method is capable of handling an
// arbitrary number of data sets (two or more) belonging to different data
// custodians").
//
// Charlie receives one record set per custodian, embeds them all with the
// same c-vector encoders, indexes everything into one set of blocking
// groups, and reports matches between records of *different* sources.
// The de-duplicating matcher semantics of Algorithm 2 apply per probe.

#ifndef CBVLINK_LINKAGE_MULTI_PARTY_H_
#define CBVLINK_LINKAGE_MULTI_PARTY_H_

#include <optional>
#include <vector>

#include "src/blocking/matcher.h"
#include "src/blocking/record_blocker.h"
#include "src/common/record.h"
#include "src/common/status.h"
#include "src/embedding/record_encoder.h"
#include "src/linkage/linker.h"
#include "src/rules/rule.h"

namespace cbvlink {

/// Identifier of a data custodian's set.
using PartyId = size_t;

/// A match between records of two different parties.
struct MultiPartyMatch {
  PartyId party_a = 0;
  RecordId id_a = 0;
  PartyId party_b = 0;
  RecordId id_b = 0;

  bool operator==(const MultiPartyMatch&) const = default;
};

/// Configuration for multi-party linkage; parameters mirror CbvHbConfig's
/// record-level mode.
struct MultiPartyConfig {
  Schema schema;
  /// Classification rule on attribute-level Hamming distances.
  Rule rule = Rule::Pred(0, 0);
  size_t record_K = 30;
  size_t record_theta = 4;
  double delta = 0.1;
  OptimalSizeOptions sizing;
  /// Expected q-grams per attribute; estimated from the first party's
  /// records when empty.
  std::vector<double> expected_qgrams;
  size_t estimation_sample = 1000;
  uint64_t seed = 19;
};

/// Result of a multi-party run.
struct MultiPartyResult {
  std::vector<MultiPartyMatch> matches;
  MatchStats stats;
  size_t blocking_groups = 0;
};

/// Links any number of record sets pairwise in a single pass.
class MultiPartyLinker {
 public:
  /// Validates the configuration.
  static Result<MultiPartyLinker> Create(MultiPartyConfig config);

  /// Links all parties.  Record ids must be unique *within* a party; the
  /// (party, id) pair identifies a record globally.  Requires >= 2
  /// parties, each non-empty.
  Result<MultiPartyResult> Link(
      const std::vector<std::vector<Record>>& parties);

 private:
  explicit MultiPartyLinker(MultiPartyConfig config)
      : config_(std::move(config)) {}

  MultiPartyConfig config_;
};

}  // namespace cbvlink

#endif  // CBVLINK_LINKAGE_MULTI_PARTY_H_
