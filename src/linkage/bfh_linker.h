// BfH baseline (Karapiperis & Verykios, TKDE 2015 — Section 6.1).
//
// Records are embedded as concatenated field-level Bloom filters (500
// bits, 15 hash functions per bigram, after Schnell et al.), blocked with
// the standard record-level HB, and matched by evaluating the
// attribute-level Hamming thresholds on the filter segments.  The
// attribute thresholds play no role during blocking — exactly the
// record-level unawareness the paper contrasts with cBV-HB.

#ifndef CBVLINK_LINKAGE_BFH_LINKER_H_
#define CBVLINK_LINKAGE_BFH_LINKER_H_

#include <optional>

#include "src/embedding/record_encoder.h"
#include "src/linkage/linker.h"
#include "src/rules/rule.h"

namespace cbvlink {

/// Configuration; defaults follow Section 6.1.
struct BfhConfig {
  Schema schema;
  /// Classification rule on Bloom-segment Hamming distances (paper:
  /// theta = 45 per attribute for PL; 45/45/90 for PH).
  Rule rule = Rule::Pred(0, 0);
  /// Field-level Bloom filter shape (500 bits, 15 hashes).
  BloomFilterOptions bloom;
  /// Base hashes per blocking group (paper: 30).
  size_t K = 30;
  /// Record-level Hamming threshold for Equation 2's L (the sum of the
  /// rule's attribute thresholds is the natural choice).
  size_t record_theta = 45;
  double delta = 0.1;
  uint64_t seed = 13;
};

/// The BfH linker.
class BfhLinker : public Linker {
 public:
  static Result<BfhLinker> Create(BfhConfig config);

  std::string_view name() const override { return "BfH"; }

  using Linker::Link;
  Result<LinkageResult> Link(const std::vector<Record>& a,
                             const std::vector<Record>& b,
                             const ExecutionOptions& options) override;

 private:
  explicit BfhLinker(BfhConfig config) : config_(std::move(config)) {}

  BfhConfig config_;
};

}  // namespace cbvlink

#endif  // CBVLINK_LINKAGE_BFH_LINKER_H_
