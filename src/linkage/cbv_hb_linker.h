// The paper's method: cBV-HB (Section 5).
//
// Pipeline: estimate b^(f_i) from the data -> build Theorem 1-sized
// c-vector encoders -> encode both data sets -> block with HB, either
// record-level (Section 4.2) or attribute-level rule-aware (Section 5.4)
// -> match with Algorithm 2, classifying pairs by the rule on
// attribute-level Hamming distances.

#ifndef CBVLINK_LINKAGE_CBV_HB_LINKER_H_
#define CBVLINK_LINKAGE_CBV_HB_LINKER_H_

#include <optional>
#include <vector>

#include "src/embedding/optimal_size.h"
#include "src/embedding/record_encoder.h"
#include "src/linkage/linker.h"
#include "src/rules/rule.h"

namespace cbvlink {

/// Configuration of a cBV-HB run; defaults follow Section 6.
struct CbvHbConfig {
  /// The common attribute set.
  Schema schema;
  /// Classification rule over attribute-level Hamming thresholds; always
  /// applied at match time, and drives the blocking structures when
  /// attribute_level_blocking is set.
  Rule rule = Rule::Pred(0, 0);
  /// Attribute-level (Section 5.4) vs standard record-level blocking.
  bool attribute_level_blocking = false;

  /// K^(f_i) per attribute (attribute-level mode; Table 3 column K).
  std::vector<size_t> attribute_K;
  /// K for record-level mode (paper: 30).
  size_t record_K = 30;
  /// Record-level Hamming threshold for Equation 2's L (paper: 4 for PL).
  size_t record_theta = 4;

  /// Miss probability delta of Equation 2.
  double delta = 0.1;
  /// Theorem 1 parameters (rho, r).
  OptimalSizeOptions sizing;
  /// Expected q-grams per attribute; when empty they are estimated from a
  /// sample of data set A (the paper's Charlie samples the data sets).
  std::vector<double> expected_qgrams;
  /// Sample size for that estimation.
  size_t estimation_sample = 1000;
  /// Seed for every random component of the pipeline.
  uint64_t seed = 7;
};

/// The cBV-HB linker.
class CbvHbLinker : public Linker {
 public:
  /// Validates the configuration.
  static Result<CbvHbLinker> Create(CbvHbConfig config);

  std::string_view name() const override { return "cBV-HB"; }

  using Linker::Link;
  Result<LinkageResult> Link(const std::vector<Record>& a,
                             const std::vector<Record>& b,
                             const ExecutionOptions& options) override;

  /// The record encoder built during the last Link() call, exposed for
  /// Table 3-style introspection of m_opt.  FailedPrecondition before the
  /// first Link() — the encoder only exists once sizing has run.
  Result<const CVectorRecordEncoder*> encoder() const {
    if (!encoder_) {
      return Status::FailedPrecondition(
          "CbvHbLinker::encoder() called before Link()");
    }
    return &*encoder_;
  }

 private:
  explicit CbvHbLinker(CbvHbConfig config) : config_(std::move(config)) {}

  CbvHbConfig config_;
  std::optional<CVectorRecordEncoder> encoder_;
};

}  // namespace cbvlink

#endif  // CBVLINK_LINKAGE_CBV_HB_LINKER_H_
