#include "src/linkage/multi_party.h"

#include <unordered_map>

#include "src/common/str.h"

namespace cbvlink {

namespace {

/// Packs (party, record-id) into one 64-bit key for the blocking tables.
/// 16 bits of party leave 48 bits of record id — plenty for any realistic
/// custodian count and set size.
uint64_t GlobalId(PartyId party, RecordId id) {
  return (static_cast<uint64_t>(party) << 48) | (id & ((uint64_t{1} << 48) - 1));
}

PartyId PartyOf(uint64_t global_id) {
  return static_cast<PartyId>(global_id >> 48);
}

RecordId LocalOf(uint64_t global_id) {
  return global_id & ((uint64_t{1} << 48) - 1);
}

}  // namespace

Result<MultiPartyLinker> MultiPartyLinker::Create(MultiPartyConfig config) {
  if (config.schema.num_attributes() == 0) {
    return Status::InvalidArgument("schema has no attributes");
  }
  CBVLINK_RETURN_NOT_OK(config.rule.Validate(config.schema.num_attributes()));
  if (config.record_K == 0) {
    return Status::InvalidArgument("K must be positive");
  }
  return MultiPartyLinker(std::move(config));
}

Result<MultiPartyResult> MultiPartyLinker::Link(
    const std::vector<std::vector<Record>>& parties) {
  if (parties.size() < 2) {
    return Status::InvalidArgument(
        StrFormat("multi-party linkage needs >= 2 parties, got %zu",
                  parties.size()));
  }
  for (size_t p = 0; p < parties.size(); ++p) {
    if (parties[p].empty()) {
      return Status::InvalidArgument(StrFormat("party %zu is empty", p));
    }
    if (parties[p].size() >= (uint64_t{1} << 48)) {
      return Status::OutOfRange("party too large for 48-bit record ids");
    }
  }
  if (parties.size() >= (uint64_t{1} << 16)) {
    return Status::OutOfRange("too many parties for 16-bit party ids");
  }

  Rng rng(config_.seed);

  // Shared encoders so identical values collide across custodians.
  std::vector<double> expected = config_.expected_qgrams;
  if (expected.empty()) {
    std::vector<Record> sample;
    const size_t n = std::min(config_.estimation_sample, parties[0].size());
    sample.reserve(n);
    for (size_t i = 0; i < n; ++i) sample.push_back(parties[0][i]);
    expected = EstimateExpectedQGrams(config_.schema, sample);
  }
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      config_.schema, expected, rng, config_.sizing);
  if (!encoder.ok()) return encoder.status();

  Result<RecordLevelBlocker> blocker = RecordLevelBlocker::Create(
      encoder.value().total_bits(), config_.record_K, config_.record_theta,
      config_.delta, rng);
  if (!blocker.ok()) return blocker.status();

  MultiPartyResult result;
  result.blocking_groups = blocker.value().L();

  VectorStore store;
  Matcher matcher(&blocker.value(), &store);
  const PairClassifier classifier =
      MakeRuleClassifier(config_.rule, encoder.value().layout());

  // Incremental pass: probe each party against everything indexed so far,
  // then index it.  Every cross-party pair is considered exactly once.
  for (PartyId p = 0; p < parties.size(); ++p) {
    std::vector<EncodedRecord> encoded;
    encoded.reserve(parties[p].size());
    for (const Record& record : parties[p]) {
      Result<EncodedRecord> enc = encoder.value().Encode(record);
      if (!enc.ok()) return enc.status();
      EncodedRecord tagged = std::move(enc).value();
      tagged.id = GlobalId(p, record.id);
      encoded.push_back(std::move(tagged));
    }
    if (p > 0) {
      std::vector<IdPair> found;
      for (const EncodedRecord& probe : encoded) {
        matcher.MatchOne(probe, classifier, &found, &result.stats);
      }
      for (const IdPair& pair : found) {
        // a_id is the earlier-indexed record; b_id the probing one.
        result.matches.push_back(MultiPartyMatch{
            PartyOf(pair.a_id), LocalOf(pair.a_id), p, LocalOf(pair.b_id)});
      }
    }
    blocker.value().Index(encoded);
    store.AddAll(encoded);
  }
  return result;
}

}  // namespace cbvlink
