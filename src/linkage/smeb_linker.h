// SM-EB baseline: StringMap embedding + Euclidean LSH (Section 6.1).
//
// Each attribute is embedded into a d = 20 dimensional Euclidean space
// via StringMap (trained on the pooled values of both data sets — the
// expensive pivot scans of Figure 8(b)); record vectors are the
// concatenation.  Blocking uses p-stable Euclidean LSH over the whole
// record vector; matching tests every attribute's Euclidean distance
// against its threshold (AND semantics, as in the paper's experiments).

#ifndef CBVLINK_LINKAGE_SMEB_LINKER_H_
#define CBVLINK_LINKAGE_SMEB_LINKER_H_

#include <optional>
#include <vector>

#include "src/embedding/record_encoder.h"
#include "src/embedding/stringmap.h"
#include "src/linkage/linker.h"

namespace cbvlink {

/// Configuration; defaults follow Section 6.1.
struct SmEbConfig {
  Schema schema;
  /// Per-attribute Euclidean thresholds (paper: 4.5 each for PL;
  /// 4.5/4.5/7.7 for PH).  Attributes beyond the vector's size are
  /// unconstrained.
  std::vector<double> thresholds;
  /// StringMap parameters (d = 20 per attribute).
  StringMapOptions stringmap;
  /// Base projections per blocking group (paper: 5).
  size_t K = 5;
  /// Explicit L; when 0, L is derived from Equation 2 at the record-level
  /// distance sqrt(sum theta_i^2).
  size_t L = 0;
  /// p-stable bucket width w (Datar et al. default).
  double width = 4.0;
  double delta = 0.1;
  uint64_t seed = 17;
};

/// The SM-EB linker.
class SmEbLinker : public Linker {
 public:
  static Result<SmEbLinker> Create(SmEbConfig config);

  std::string_view name() const override { return "SM-EB"; }

  using Linker::Link;
  Result<LinkageResult> Link(const std::vector<Record>& a,
                             const std::vector<Record>& b,
                             const ExecutionOptions& options) override;

 private:
  explicit SmEbLinker(SmEbConfig config) : config_(std::move(config)) {}

  SmEbConfig config_;
};

}  // namespace cbvlink

#endif  // CBVLINK_LINKAGE_SMEB_LINKER_H_
