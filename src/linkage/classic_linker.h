// Classic blocking + edit-distance matching pipelines: the sorted
// neighborhood method and canopy clustering (Section 2's related work),
// matching candidate pairs directly in the original space E with the
// banded Levenshtein test.
//
// These linkers exist as reference points: they need no embedding at all
// but provide no completeness guarantee and compare strings, not bits —
// exactly the trade-off the paper's compact Hamming space removes.

#ifndef CBVLINK_LINKAGE_CLASSIC_LINKER_H_
#define CBVLINK_LINKAGE_CLASSIC_LINKER_H_

#include <unordered_map>

#include "src/blocking/classic.h"
#include "src/linkage/linker.h"

namespace cbvlink {

/// Which classic blocking method drives candidate generation.
enum class ClassicBlocking { kSortedNeighborhood, kCanopy };

/// Configuration for the classic pipelines.
struct ClassicConfig {
  ClassicBlocking blocking = ClassicBlocking::kSortedNeighborhood;
  SortedNeighborhoodOptions sorted_neighborhood;
  CanopyOptions canopy;
  /// Edit-distance threshold per attribute (theta_E^(f_i)); a pair
  /// matches when every attribute is within its threshold.  Attributes
  /// beyond the vector are unconstrained.
  std::vector<size_t> edit_thresholds;
};

/// The classic linker.
class ClassicLinker : public Linker {
 public:
  static Result<ClassicLinker> Create(ClassicConfig config);

  std::string_view name() const override {
    return config_.blocking == ClassicBlocking::kSortedNeighborhood
               ? "SortedNbh"
               : "Canopy";
  }

  using Linker::Link;
  Result<LinkageResult> Link(const std::vector<Record>& a,
                             const std::vector<Record>& b,
                             const ExecutionOptions& options) override;

 private:
  explicit ClassicLinker(ClassicConfig config) : config_(std::move(config)) {}

  ClassicConfig config_;
};

}  // namespace cbvlink

#endif  // CBVLINK_LINKAGE_CLASSIC_LINKER_H_
