#include "src/linkage/linker.h"

namespace cbvlink {

// Linker is a pure interface; this translation unit anchors its vtable /
// key function so every user does not emit a copy.
Linker::~Linker() = default;

Result<LinkageResult> Linker::Link(const std::vector<Record>& a,
                                   const std::vector<Record>& b) {
  return Link(a, b, ExecutionOptions::Serial());
}

}  // namespace cbvlink
