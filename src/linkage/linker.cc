#include "src/linkage/linker.h"

namespace cbvlink {

// Linker is a pure interface; this translation unit anchors its vtable /
// key function so every user does not emit a copy.
Linker::~Linker() = default;

}  // namespace cbvlink
