#include "src/linkage/classic_linker.h"

#include "src/common/stopwatch.h"
#include "src/metrics/edit_distance.h"
#include "src/text/normalize.h"

namespace cbvlink {

Result<ClassicLinker> ClassicLinker::Create(ClassicConfig config) {
  if (config.edit_thresholds.empty()) {
    return Status::InvalidArgument(
        "classic linker needs at least one edit threshold");
  }
  return ClassicLinker(std::move(config));
}

Result<LinkageResult> ClassicLinker::Link(const std::vector<Record>& a,
                                          const std::vector<Record>& b) {
  LinkageResult result;
  Stopwatch watch;

  // Index records by id for candidate resolution.  Classic methods skip
  // the embedding step entirely (embed_seconds stays 0).
  std::unordered_map<RecordId, const Record*> by_id_a;
  std::unordered_map<RecordId, const Record*> by_id_b;
  by_id_a.reserve(a.size());
  by_id_b.reserve(b.size());
  for (const Record& r : a) by_id_a.emplace(r.id, &r);
  for (const Record& r : b) by_id_b.emplace(r.id, &r);

  Result<std::vector<IdPair>> candidates =
      config_.blocking == ClassicBlocking::kSortedNeighborhood
          ? SortedNeighborhoodCandidates(a, b, config_.sorted_neighborhood)
          : CanopyCandidates(a, b, config_.canopy);
  if (!candidates.ok()) return candidates.status();
  result.index_seconds = watch.ElapsedSeconds();

  watch.Restart();
  for (const IdPair& pair : candidates.value()) {
    ++result.stats.candidate_occurrences;
    const auto it_a = by_id_a.find(pair.a_id);
    const auto it_b = by_id_b.find(pair.b_id);
    if (it_a == by_id_a.end() || it_b == by_id_b.end()) continue;
    ++result.stats.comparisons;
    const Record& ra = *it_a->second;
    const Record& rb = *it_b->second;
    bool match = true;
    const size_t nf = std::min(ra.fields.size(), rb.fields.size());
    for (size_t i = 0; i < nf && i < config_.edit_thresholds.size(); ++i) {
      const std::string na = Normalize(ra.fields[i], Alphabet::Alphanumeric());
      const std::string nb = Normalize(rb.fields[i], Alphabet::Alphanumeric());
      if (!EditDistanceWithin(na, nb, config_.edit_thresholds[i])) {
        match = false;
        break;
      }
    }
    if (match) {
      ++result.stats.matches;
      result.matches.push_back(pair);
    }
  }
  result.match_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace cbvlink
