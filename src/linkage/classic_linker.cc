#include "src/linkage/classic_linker.h"

#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"
#include "src/metrics/edit_distance.h"
#include "src/text/normalize.h"

namespace cbvlink {

Result<ClassicLinker> ClassicLinker::Create(ClassicConfig config) {
  if (config.edit_thresholds.empty()) {
    return Status::InvalidArgument(
        "classic linker needs at least one edit threshold");
  }
  return ClassicLinker(std::move(config));
}

Result<LinkageResult> ClassicLinker::Link(const std::vector<Record>& a,
                                          const std::vector<Record>& b,
                                          const ExecutionOptions& options) {
  LinkageResult result;
  Stopwatch watch;
  ExecutionContext ctx(options);
  result.threads_used = ctx.threads_used();

  // Index records by id for candidate resolution.  Classic methods skip
  // the embedding step entirely (embed_seconds stays 0).
  std::unordered_map<RecordId, const Record*> by_id_a;
  std::unordered_map<RecordId, const Record*> by_id_b;
  by_id_a.reserve(a.size());
  by_id_b.reserve(b.size());
  for (const Record& r : a) by_id_a.emplace(r.id, &r);
  for (const Record& r : b) by_id_b.emplace(r.id, &r);

  Result<std::vector<IdPair>> candidates =
      config_.blocking == ClassicBlocking::kSortedNeighborhood
          ? SortedNeighborhoodCandidates(a, b, config_.sorted_neighborhood)
          : CanopyCandidates(a, b, config_.canopy);
  if (!candidates.ok()) return candidates.status();
  result.index_seconds = watch.ElapsedSeconds();

  watch.Restart();
  // The candidate comparisons are independent; shard them over the pool
  // with per-chunk stats and matches, merged in chunk order so the output
  // sequence (candidate order) and counters match the serial loop.
  const std::vector<IdPair>& pairs = candidates.value();
  const auto compare_range = [&](size_t begin, size_t end, MatchStats* stats,
                                 std::vector<IdPair>* matches) {
    for (size_t p = begin; p < end; ++p) {
      const IdPair& pair = pairs[p];
      ++stats->candidate_occurrences;
      const auto it_a = by_id_a.find(pair.a_id);
      const auto it_b = by_id_b.find(pair.b_id);
      if (it_a == by_id_a.end() || it_b == by_id_b.end()) continue;
      ++stats->comparisons;
      const Record& ra = *it_a->second;
      const Record& rb = *it_b->second;
      bool match = true;
      const size_t nf = std::min(ra.fields.size(), rb.fields.size());
      for (size_t i = 0; i < nf && i < config_.edit_thresholds.size(); ++i) {
        const std::string na =
            Normalize(ra.fields[i], Alphabet::Alphanumeric());
        const std::string nb =
            Normalize(rb.fields[i], Alphabet::Alphanumeric());
        if (!EditDistanceWithin(na, nb, config_.edit_thresholds[i])) {
          match = false;
          break;
        }
      }
      if (match) {
        ++stats->matches;
        matches->push_back(pair);
      }
    }
  };
  if (ctx.pool() == nullptr) {
    compare_range(0, pairs.size(), &result.stats, &result.matches);
  } else {
    std::vector<MatchStats> chunk_stats(ctx.pool()->num_threads());
    std::vector<std::vector<IdPair>> chunk_matches(ctx.pool()->num_threads());
    ctx.pool()->ParallelFor(
        pairs.size(), ctx.chunk_size_hint(),
        [&](size_t chunk, size_t begin, size_t end) {
          compare_range(begin, end, &chunk_stats[chunk],
                        &chunk_matches[chunk]);
        });
    for (size_t c = 0; c < chunk_stats.size(); ++c) {
      result.stats.candidate_occurrences +=
          chunk_stats[c].candidate_occurrences;
      result.stats.comparisons += chunk_stats[c].comparisons;
      result.stats.matches += chunk_stats[c].matches;
      result.stats.dedup_skipped += chunk_stats[c].dedup_skipped;
      result.matches.insert(result.matches.end(), chunk_matches[c].begin(),
                            chunk_matches[c].end());
    }
  }
  result.match_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace cbvlink
