#include "src/linkage/cbv_hb_linker.h"

#include <algorithm>

#include "src/blocking/attribute_blocker.h"
#include "src/blocking/record_blocker.h"
#include "src/common/stopwatch.h"
#include "src/common/str.h"
#include "src/common/thread_pool.h"

namespace cbvlink {

Result<CbvHbLinker> CbvHbLinker::Create(CbvHbConfig config) {
  if (config.schema.num_attributes() == 0) {
    return Status::InvalidArgument("schema has no attributes");
  }
  CBVLINK_RETURN_NOT_OK(config.rule.Validate(config.schema.num_attributes()));
  if (config.attribute_level_blocking &&
      config.attribute_K.size() != config.schema.num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("attribute-level blocking needs %zu K values, got %zu",
                  config.schema.num_attributes(),
                  config.attribute_K.size()));
  }
  if (!config.expected_qgrams.empty() &&
      config.expected_qgrams.size() != config.schema.num_attributes()) {
    return Status::InvalidArgument("expected_qgrams size mismatch");
  }
  return CbvHbLinker(std::move(config));
}

Result<LinkageResult> CbvHbLinker::Link(const std::vector<Record>& a,
                                        const std::vector<Record>& b,
                                        const ExecutionOptions& options) {
  Rng rng(config_.seed);
  LinkageResult result;
  Stopwatch watch;

  // One execution context for every parallel stage (embedding, index
  // build, matching); pool() is null when the run resolves serial.
  ExecutionContext ctx(options);
  result.threads_used = ctx.threads_used();

  // --- Embedding ---------------------------------------------------------
  std::vector<double> expected = config_.expected_qgrams;
  if (expected.empty()) {
    if (a.empty()) {
      // The sizing estimate has nothing to sample from; an empty sample
      // would silently produce degenerate vector sizes.
      return Status::InvalidArgument(
          "data set A is empty; provide expected_qgrams");
    }
    // Charlie samples the records to estimate b^(f_i) (Section 5.2).
    std::vector<Record> sample;
    const size_t n = std::min(config_.estimation_sample, a.size());
    sample.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      sample.push_back(a[a.size() <= config_.estimation_sample
                             ? i
                             : rng.Below(a.size())]);
    }
    expected = EstimateExpectedQGrams(config_.schema, sample);
  }

  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      config_.schema, expected, rng, config_.sizing);
  if (!encoder.ok()) return encoder.status();
  encoder_.emplace(std::move(encoder).value());

  // Embedding is embarrassingly parallel over records; EncodeAll shards
  // both data sets over the context's pool (byte-identical to serial).
  Result<std::vector<EncodedRecord>> encoded_a_result =
      encoder_->EncodeAll(a, ctx.pool(), ctx.chunk_size_hint());
  if (!encoded_a_result.ok()) return encoded_a_result.status();
  std::vector<EncodedRecord> encoded_a = std::move(encoded_a_result).value();
  Result<std::vector<EncodedRecord>> encoded_b_result =
      encoder_->EncodeAll(b, ctx.pool(), ctx.chunk_size_hint());
  if (!encoded_b_result.ok()) return encoded_b_result.status();
  std::vector<EncodedRecord> encoded_b = std::move(encoded_b_result).value();
  result.embed_seconds = watch.ElapsedSeconds();

  // --- Blocking ----------------------------------------------------------
  watch.Restart();
  std::optional<RecordLevelBlocker> record_blocker;
  std::optional<AttributeLevelBlocker> attribute_blocker;
  const CandidateSource* source = nullptr;

  if (config_.attribute_level_blocking) {
    AttributeBlockerOptions options;
    options.attribute_K = config_.attribute_K;
    options.delta = config_.delta;
    Result<AttributeLevelBlocker> blocker = AttributeLevelBlocker::Create(
        config_.rule, encoder_->layout(), options, rng);
    if (!blocker.ok()) return blocker.status();
    attribute_blocker.emplace(std::move(blocker).value());
    attribute_blocker->BulkInsert(encoded_a, ctx.pool(),
                                  ctx.chunk_size_hint());
    for (size_t s = 0; s < attribute_blocker->num_structures(); ++s) {
      result.blocking_groups += attribute_blocker->structure_L(s);
    }
    source = &*attribute_blocker;
  } else {
    Result<RecordLevelBlocker> blocker =
        RecordLevelBlocker::Create(encoder_->total_bits(), config_.record_K,
                                   config_.record_theta, config_.delta, rng);
    if (!blocker.ok()) return blocker.status();
    record_blocker.emplace(std::move(blocker).value());
    record_blocker->BulkInsert(encoded_a, ctx.pool(),
                               ctx.chunk_size_hint());
    result.blocking_groups = record_blocker->L();
    source = &*record_blocker;
  }

  VectorStore store_a;
  store_a.AddAll(encoded_a);
  result.index_seconds = watch.ElapsedSeconds();

  // --- Matching (Algorithm 2) --------------------------------------------
  watch.Restart();
  Matcher matcher(source, &store_a);
  const PairClassifier classifier =
      MakeRuleClassifier(config_.rule, encoder_->layout());
  result.matches =
      matcher.MatchAll(encoded_b, classifier, &result.stats, ctx.pool());
  result.match_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace cbvlink
