#include "src/linkage/bfh_linker.h"

#include <memory>

#include "src/blocking/record_blocker.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"

namespace cbvlink {

Result<BfhLinker> BfhLinker::Create(BfhConfig config) {
  if (config.schema.num_attributes() == 0) {
    return Status::InvalidArgument("schema has no attributes");
  }
  CBVLINK_RETURN_NOT_OK(config.rule.Validate(config.schema.num_attributes()));
  if (config.K == 0) return Status::InvalidArgument("K must be positive");
  return BfhLinker(std::move(config));
}

Result<LinkageResult> BfhLinker::Link(const std::vector<Record>& a,
                                      const std::vector<Record>& b) {
  Rng rng(config_.seed);
  LinkageResult result;
  Stopwatch watch;

  // --- Embedding ----------------------------------------------------------
  Result<BloomRecordEncoder> encoder =
      BloomRecordEncoder::Create(config_.schema, config_.bloom);
  if (!encoder.ok()) return encoder.status();

  std::vector<EncodedRecord> encoded_a;
  encoded_a.reserve(a.size());
  for (const Record& record : a) {
    Result<EncodedRecord> enc = encoder.value().Encode(record);
    if (!enc.ok()) return enc.status();
    encoded_a.push_back(std::move(enc).value());
  }
  std::vector<EncodedRecord> encoded_b;
  encoded_b.reserve(b.size());
  for (const Record& record : b) {
    Result<EncodedRecord> enc = encoder.value().Encode(record);
    if (!enc.ok()) return enc.status();
    encoded_b.push_back(std::move(enc).value());
  }
  result.embed_seconds = watch.ElapsedSeconds();

  // --- Blocking: standard record-level HB ---------------------------------
  watch.Restart();
  Result<RecordLevelBlocker> blocker =
      RecordLevelBlocker::Create(encoder.value().total_bits(), config_.K,
                                 config_.record_theta, config_.delta, rng);
  if (!blocker.ok()) return blocker.status();
  blocker.value().Index(encoded_a);
  result.blocking_groups = blocker.value().L();

  VectorStore store_a;
  store_a.AddAll(encoded_a);
  result.index_seconds = watch.ElapsedSeconds();

  // --- Matching: attribute thresholds on filter segments ------------------
  watch.Restart();
  Matcher matcher(&blocker.value(), &store_a);
  const PairClassifier classifier =
      MakeRuleClassifier(config_.rule, encoder.value().layout());
  std::unique_ptr<ThreadPool> pool;
  if (config_.num_threads != 1) {
    pool = std::make_unique<ThreadPool>(config_.num_threads);
  }
  result.matches =
      matcher.MatchAll(encoded_b, classifier, &result.stats, pool.get());
  result.match_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace cbvlink
