#include "src/linkage/bfh_linker.h"

#include "src/blocking/record_blocker.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"

namespace cbvlink {

Result<BfhLinker> BfhLinker::Create(BfhConfig config) {
  if (config.schema.num_attributes() == 0) {
    return Status::InvalidArgument("schema has no attributes");
  }
  CBVLINK_RETURN_NOT_OK(config.rule.Validate(config.schema.num_attributes()));
  if (config.K == 0) return Status::InvalidArgument("K must be positive");
  return BfhLinker(std::move(config));
}

Result<LinkageResult> BfhLinker::Link(const std::vector<Record>& a,
                                      const std::vector<Record>& b,
                                      const ExecutionOptions& options) {
  Rng rng(config_.seed);
  LinkageResult result;
  Stopwatch watch;
  ExecutionContext ctx(options);
  result.threads_used = ctx.threads_used();

  // --- Embedding ----------------------------------------------------------
  Result<BloomRecordEncoder> encoder =
      BloomRecordEncoder::Create(config_.schema, config_.bloom);
  if (!encoder.ok()) return encoder.status();

  Result<std::vector<EncodedRecord>> encoded_a_result =
      encoder.value().EncodeAll(a, ctx.pool(), ctx.chunk_size_hint());
  if (!encoded_a_result.ok()) return encoded_a_result.status();
  std::vector<EncodedRecord> encoded_a = std::move(encoded_a_result).value();
  Result<std::vector<EncodedRecord>> encoded_b_result =
      encoder.value().EncodeAll(b, ctx.pool(), ctx.chunk_size_hint());
  if (!encoded_b_result.ok()) return encoded_b_result.status();
  std::vector<EncodedRecord> encoded_b = std::move(encoded_b_result).value();
  result.embed_seconds = watch.ElapsedSeconds();

  // --- Blocking: standard record-level HB ---------------------------------
  watch.Restart();
  Result<RecordLevelBlocker> blocker =
      RecordLevelBlocker::Create(encoder.value().total_bits(), config_.K,
                                 config_.record_theta, config_.delta, rng);
  if (!blocker.ok()) return blocker.status();
  blocker.value().BulkInsert(encoded_a, ctx.pool(), ctx.chunk_size_hint());
  result.blocking_groups = blocker.value().L();

  VectorStore store_a;
  store_a.AddAll(encoded_a);
  result.index_seconds = watch.ElapsedSeconds();

  // --- Matching: attribute thresholds on filter segments ------------------
  watch.Restart();
  Matcher matcher(&blocker.value(), &store_a);
  const PairClassifier classifier =
      MakeRuleClassifier(config_.rule, encoder.value().layout());
  result.matches =
      matcher.MatchAll(encoded_b, classifier, &result.stats, ctx.pool());
  result.match_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace cbvlink
