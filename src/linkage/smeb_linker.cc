#include "src/linkage/smeb_linker.h"

#include <cmath>
#include <unordered_set>

#include "src/common/stopwatch.h"
#include "src/lsh/blocking_table.h"
#include "src/lsh/euclidean_lsh.h"
#include "src/lsh/params.h"
#include "src/metrics/euclidean.h"
#include "src/text/normalize.h"

namespace cbvlink {

Result<SmEbLinker> SmEbLinker::Create(SmEbConfig config) {
  if (config.schema.num_attributes() == 0) {
    return Status::InvalidArgument("schema has no attributes");
  }
  if (config.thresholds.empty()) {
    return Status::InvalidArgument("SM-EB needs at least one threshold");
  }
  if (config.K == 0) return Status::InvalidArgument("K must be positive");
  if (config.width <= 0.0) {
    return Status::InvalidArgument("bucket width must be positive");
  }
  return SmEbLinker(std::move(config));
}

Result<LinkageResult> SmEbLinker::Link(const std::vector<Record>& a,
                                       const std::vector<Record>& b) {
  Rng rng(config_.seed);
  LinkageResult result;
  Stopwatch watch;

  const size_t nf = config_.schema.num_attributes();
  const size_t d = config_.stringmap.dimensions;

  // --- Embedding: train one StringMap per attribute, embed all records ----
  std::vector<StringMapEmbedder> embedders;
  embedders.reserve(nf);
  for (size_t attr = 0; attr < nf; ++attr) {
    const AttributeSpec& spec = config_.schema.attributes[attr];
    // Pool normalized values from both data sets (the paper's StringMap
    // "iterates the strings of both data sets" to form the axes).
    std::vector<std::string> corpus;
    corpus.reserve(a.size() + b.size());
    for (const Record& r : a) {
      if (attr < r.fields.size()) {
        corpus.push_back(Normalize(r.fields[attr], *spec.alphabet));
      }
    }
    for (const Record& r : b) {
      if (attr < r.fields.size()) {
        corpus.push_back(Normalize(r.fields[attr], *spec.alphabet));
      }
    }
    StringMapOptions options = config_.stringmap;
    options.seed = config_.seed + attr * 1000003ULL;
    Result<StringMapEmbedder> embedder =
        StringMapEmbedder::Train(corpus, options);
    if (!embedder.ok()) return embedder.status();
    embedders.push_back(std::move(embedder).value());
  }

  const auto embed_record =
      [&](const Record& record) -> std::vector<double> {
    std::vector<double> out;
    out.reserve(nf * d);
    for (size_t attr = 0; attr < nf; ++attr) {
      const AttributeSpec& spec = config_.schema.attributes[attr];
      const std::vector<double> coords = embedders[attr].Embed(
          Normalize(record.fields[attr], *spec.alphabet));
      out.insert(out.end(), coords.begin(), coords.end());
    }
    return out;
  };

  std::vector<std::vector<double>> points_a(a.size());
  std::vector<std::vector<double>> points_b(b.size());
  for (size_t i = 0; i < a.size(); ++i) points_a[i] = embed_record(a[i]);
  for (size_t j = 0; j < b.size(); ++j) points_b[j] = embed_record(b[j]);
  result.embed_seconds = watch.ElapsedSeconds();

  // --- Blocking: p-stable LSH over the concatenated vectors ---------------
  watch.Restart();
  size_t L = config_.L;
  if (L == 0) {
    double c2 = 0.0;
    for (double theta : config_.thresholds) c2 += theta * theta;
    Result<double> p =
        EuclideanBaseProbability(std::sqrt(c2), config_.width);
    if (!p.ok()) return p.status();
    Result<size_t> computed =
        OptimalGroups(p.value(), config_.K, config_.delta);
    if (!computed.ok()) return computed.status();
    L = computed.value();
  }
  result.blocking_groups = L;

  Result<EuclideanLshFamily> family =
      EuclideanLshFamily::Create(config_.K, L, nf * d, config_.width, rng);
  if (!family.ok()) return family.status();

  std::vector<BlockingTable> tables(L);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t l = 0; l < L; ++l) {
      tables[l].Insert(family.value().Key(points_a[i], l),
                       static_cast<RecordId>(i));
    }
  }
  result.index_seconds = watch.ElapsedSeconds();

  // --- Matching: attribute-level Euclidean thresholds, AND semantics ------
  watch.Restart();
  const auto classify = [&](const std::vector<double>& pa,
                            const std::vector<double>& pb) {
    for (size_t attr = 0; attr < nf && attr < config_.thresholds.size();
         ++attr) {
      double dist2 = 0.0;
      for (size_t k = attr * d; k < (attr + 1) * d; ++k) {
        const double diff = pa[k] - pb[k];
        dist2 += diff * diff;
      }
      const double theta = config_.thresholds[attr];
      if (dist2 > theta * theta) return false;
    }
    return true;
  };

  for (size_t j = 0; j < b.size(); ++j) {
    std::unordered_set<RecordId> compared;
    for (size_t l = 0; l < L; ++l) {
      const uint64_t key = family.value().Key(points_b[j], l);
      for (RecordId ai : tables[l].Get(key)) {
        ++result.stats.candidate_occurrences;
        if (!compared.insert(ai).second) {
          ++result.stats.dedup_skipped;
          continue;
        }
        ++result.stats.comparisons;
        if (classify(points_a[static_cast<size_t>(ai)], points_b[j])) {
          ++result.stats.matches;
          result.matches.push_back(
              IdPair{a[static_cast<size_t>(ai)].id, b[j].id});
        }
      }
    }
  }
  result.match_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace cbvlink
