#include "src/linkage/smeb_linker.h"

#include <cmath>
#include <unordered_set>

#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"
#include "src/lsh/blocking_table.h"
#include "src/lsh/euclidean_lsh.h"
#include "src/lsh/params.h"
#include "src/metrics/euclidean.h"
#include "src/text/normalize.h"

namespace cbvlink {

Result<SmEbLinker> SmEbLinker::Create(SmEbConfig config) {
  if (config.schema.num_attributes() == 0) {
    return Status::InvalidArgument("schema has no attributes");
  }
  if (config.thresholds.empty()) {
    return Status::InvalidArgument("SM-EB needs at least one threshold");
  }
  if (config.K == 0) return Status::InvalidArgument("K must be positive");
  if (config.width <= 0.0) {
    return Status::InvalidArgument("bucket width must be positive");
  }
  return SmEbLinker(std::move(config));
}

Result<LinkageResult> SmEbLinker::Link(const std::vector<Record>& a,
                                       const std::vector<Record>& b,
                                       const ExecutionOptions& options) {
  Rng rng(config_.seed);
  LinkageResult result;
  Stopwatch watch;
  // StringMap training stays serial (pivot selection walks the pooled
  // corpus in order); everything per-record runs on the context's pool.
  ExecutionContext ctx(options);
  result.threads_used = ctx.threads_used();

  const size_t nf = config_.schema.num_attributes();
  const size_t d = config_.stringmap.dimensions;

  // --- Embedding: train one StringMap per attribute, embed all records ----
  std::vector<StringMapEmbedder> embedders;
  embedders.reserve(nf);
  for (size_t attr = 0; attr < nf; ++attr) {
    const AttributeSpec& spec = config_.schema.attributes[attr];
    // Pool normalized values from both data sets (the paper's StringMap
    // "iterates the strings of both data sets" to form the axes).
    std::vector<std::string> corpus;
    corpus.reserve(a.size() + b.size());
    for (const Record& r : a) {
      if (attr < r.fields.size()) {
        corpus.push_back(Normalize(r.fields[attr], *spec.alphabet));
      }
    }
    for (const Record& r : b) {
      if (attr < r.fields.size()) {
        corpus.push_back(Normalize(r.fields[attr], *spec.alphabet));
      }
    }
    StringMapOptions options = config_.stringmap;
    options.seed = config_.seed + attr * 1000003ULL;
    Result<StringMapEmbedder> embedder =
        StringMapEmbedder::Train(corpus, options);
    if (!embedder.ok()) return embedder.status();
    embedders.push_back(std::move(embedder).value());
  }

  const auto embed_record =
      [&](const Record& record) -> std::vector<double> {
    std::vector<double> out;
    out.reserve(nf * d);
    for (size_t attr = 0; attr < nf; ++attr) {
      const AttributeSpec& spec = config_.schema.attributes[attr];
      const std::vector<double> coords = embedders[attr].Embed(
          Normalize(record.fields[attr], *spec.alphabet));
      out.insert(out.end(), coords.begin(), coords.end());
    }
    return out;
  };

  // Per-slot writes keep the parallel embedding identical to the serial
  // loop at any thread count.
  std::vector<std::vector<double>> points_a(a.size());
  std::vector<std::vector<double>> points_b(b.size());
  const auto embed_all = [&](const std::vector<Record>& records,
                             std::vector<std::vector<double>>& points) {
    const auto fill = [&](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) points[i] = embed_record(records[i]);
    };
    if (ctx.pool() == nullptr) {
      fill(0, 0, records.size());
    } else {
      ctx.pool()->ParallelFor(records.size(), ctx.chunk_size_hint(), fill);
    }
  };
  embed_all(a, points_a);
  embed_all(b, points_b);
  result.embed_seconds = watch.ElapsedSeconds();

  // --- Blocking: p-stable LSH over the concatenated vectors ---------------
  watch.Restart();
  size_t L = config_.L;
  if (L == 0) {
    double c2 = 0.0;
    for (double theta : config_.thresholds) c2 += theta * theta;
    Result<double> p =
        EuclideanBaseProbability(std::sqrt(c2), config_.width);
    if (!p.ok()) return p.status();
    Result<size_t> computed =
        OptimalGroups(p.value(), config_.K, config_.delta);
    if (!computed.ok()) return computed.status();
    L = computed.value();
  }
  result.blocking_groups = L;

  Result<EuclideanLshFamily> family =
      EuclideanLshFamily::Create(config_.K, L, nf * d, config_.width, rng);
  if (!family.ok()) return family.status();

  std::vector<BlockingTable> tables(L);
  if (ctx.pool() == nullptr) {
    for (size_t i = 0; i < a.size(); ++i) {
      for (size_t l = 0; l < L; ++l) {
        tables[l].Insert(family.value().Key(points_a[i], l),
                         static_cast<RecordId>(i));
      }
    }
  } else {
    // Two-phase build (DESIGN.md §10): keys into a per-slot matrix, then
    // one deterministic column merge per table.
    std::vector<uint64_t> keys(a.size() * L);
    std::vector<RecordId> ids(a.size());
    ctx.pool()->ParallelFor(a.size(), ctx.chunk_size_hint(),
                            [&](size_t, size_t begin, size_t end) {
                              for (size_t i = begin; i < end; ++i) {
                                ids[i] = static_cast<RecordId>(i);
                                for (size_t l = 0; l < L; ++l) {
                                  keys[i * L + l] =
                                      family.value().Key(points_a[i], l);
                                }
                              }
                            });
    ctx.pool()->ParallelFor(L, [&](size_t, size_t begin, size_t end) {
      for (size_t l = begin; l < end; ++l) {
        tables[l].BulkInsert(keys.data() + l, L, ids);
      }
    });
  }
  result.index_seconds = watch.ElapsedSeconds();

  // --- Matching: attribute-level Euclidean thresholds, AND semantics ------
  watch.Restart();
  const auto classify = [&](const std::vector<double>& pa,
                            const std::vector<double>& pb) {
    for (size_t attr = 0; attr < nf && attr < config_.thresholds.size();
         ++attr) {
      double dist2 = 0.0;
      for (size_t k = attr * d; k < (attr + 1) * d; ++k) {
        const double diff = pa[k] - pb[k];
        dist2 += diff * diff;
      }
      const double theta = config_.thresholds[attr];
      if (dist2 > theta * theta) return false;
    }
    return true;
  };

  // Probes only read the tables, so they shard over the pool; per-chunk
  // stats and matches are merged in chunk order, matching the serial
  // probe sequence exactly.
  const auto match_range = [&](size_t begin, size_t end, MatchStats* stats,
                               std::vector<IdPair>* matches) {
    for (size_t j = begin; j < end; ++j) {
      std::unordered_set<RecordId> compared;
      for (size_t l = 0; l < L; ++l) {
        const uint64_t key = family.value().Key(points_b[j], l);
        for (RecordId ai : tables[l].Get(key)) {
          ++stats->candidate_occurrences;
          if (!compared.insert(ai).second) {
            ++stats->dedup_skipped;
            continue;
          }
          ++stats->comparisons;
          if (classify(points_a[static_cast<size_t>(ai)], points_b[j])) {
            ++stats->matches;
            matches->push_back(
                IdPair{a[static_cast<size_t>(ai)].id, b[j].id});
          }
        }
      }
    }
  };
  if (ctx.pool() == nullptr) {
    match_range(0, b.size(), &result.stats, &result.matches);
  } else {
    std::vector<MatchStats> chunk_stats(ctx.pool()->num_threads());
    std::vector<std::vector<IdPair>> chunk_matches(ctx.pool()->num_threads());
    ctx.pool()->ParallelFor(
        b.size(), ctx.chunk_size_hint(),
        [&](size_t chunk, size_t begin, size_t end) {
          match_range(begin, end, &chunk_stats[chunk], &chunk_matches[chunk]);
        });
    for (size_t c = 0; c < chunk_stats.size(); ++c) {
      result.stats.candidate_occurrences +=
          chunk_stats[c].candidate_occurrences;
      result.stats.comparisons += chunk_stats[c].comparisons;
      result.stats.matches += chunk_stats[c].matches;
      result.stats.dedup_skipped += chunk_stats[c].dedup_skipped;
      result.matches.insert(result.matches.end(), chunk_matches[c].begin(),
                            chunk_matches[c].end());
    }
  }
  result.match_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace cbvlink
