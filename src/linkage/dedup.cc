#include "src/linkage/dedup.h"

#include <unordered_map>

#include "src/common/union_find.h"
#include "src/linkage/online_linker.h"

namespace cbvlink {

Result<DedupResult> FindDuplicates(const std::vector<Record>& records,
                                   const CbvHbConfig& config) {
  return FindDuplicates(records, config, ExecutionOptions::Serial());
}

Result<DedupResult> FindDuplicates(const std::vector<Record>& records,
                                   const CbvHbConfig& config,
                                   const ExecutionOptions& options) {
  // The online linker's match-then-insert loop visits each unordered
  // pair at most once (a record only probes those inserted before it).
  Result<OnlineCbvHbLinker> linker =
      OnlineCbvHbLinker::Create(config, records);
  if (!linker.ok()) return linker.status();

  DedupResult result;
  result.blocking_groups = linker.value().blocking_groups();
  // Embedding is the parallel part; the stream itself is order-dependent
  // by construction and stays serial.
  ExecutionContext ctx(options);
  Result<std::vector<EncodedRecord>> encoded = linker.value().encoder().EncodeAll(
      records, ctx.pool(), ctx.chunk_size_hint());
  if (!encoded.ok()) return encoded.status();
  for (const EncodedRecord& record : encoded.value()) {
    CBVLINK_RETURN_NOT_OK(linker.value().MatchAndInsertEncoded(
        record, &result.duplicate_pairs));
  }
  result.stats = linker.value().stats();

  // Consolidate pairwise matches into clusters over dense positions.
  std::unordered_map<RecordId, size_t> position;
  position.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    position.emplace(records[i].id, i);
  }
  UnionFind sets(records.size());
  for (const IdPair& pair : result.duplicate_pairs) {
    const auto a = position.find(pair.a_id);
    const auto b = position.find(pair.b_id);
    if (a != position.end() && b != position.end()) {
      sets.Union(a->second, b->second);
    }
  }
  for (const std::vector<size_t>& members : sets.Sets()) {
    std::vector<RecordId> cluster;
    cluster.reserve(members.size());
    for (size_t index : members) cluster.push_back(records[index].id);
    result.clusters.push_back(std::move(cluster));
  }
  return result;
}

}  // namespace cbvlink
