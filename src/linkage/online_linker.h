// Online (streaming) cBV-HB linkage — the introduction's real-time
// integration scenario as a first-class API.
//
// A registry is built once (or grown incrementally); each arriving query
// record is embedded, probed through the blocking groups, classified by
// the rule, and optionally inserted so later arrivals can match it.
// This is the "nearly real-time analysis ... involving streaming data"
// deployment the paper motivates compact embeddings with.

#ifndef CBVLINK_LINKAGE_ONLINE_LINKER_H_
#define CBVLINK_LINKAGE_ONLINE_LINKER_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/blocking/attribute_blocker.h"
#include "src/blocking/matcher.h"
#include "src/blocking/record_blocker.h"
#include "src/common/execution.h"
#include "src/linkage/cbv_hb_linker.h"

namespace cbvlink {

/// Streaming cBV-HB: persistent blocking structures with per-record
/// insert and match operations.  Reuses CbvHbConfig; the expected
/// q-gram counts must be known up front (supplied directly or estimated
/// from a calibration sample), since the encoder is fixed for the
/// stream's lifetime.
class OnlineCbvHbLinker {
 public:
  /// Creates the linker.  When config.expected_qgrams is empty, they are
  /// estimated from `calibration_sample` (which must then be non-empty).
  static Result<OnlineCbvHbLinker> Create(
      CbvHbConfig config, const std::vector<Record>& calibration_sample = {});

  /// Encodes and indexes a registry record.
  Status Insert(const Record& record);

  /// Encodes and indexes a batch of registry records: EncodeAll over the
  /// execution policy's pool, then the blocker's two-phase BulkInsert —
  /// the resulting index is byte-identical to a serial Insert() loop at
  /// any thread count.
  Status InsertBatch(const std::vector<Record>& records,
                     const ExecutionOptions& options = {});

  /// Matches a query record against everything inserted so far; appends
  /// matched (registry_id, query_id) pairs to `out`.
  Status Match(const Record& record, std::vector<IdPair>* out);

  /// Match, then insert the query so future arrivals can link to it.
  Status MatchAndInsert(const Record& record, std::vector<IdPair>* out);

  /// MatchAndInsert for a record encoded up front (e.g. by a parallel
  /// EncodeAll pass); InvalidArgument when the vector width does not
  /// match this stream's encoder.
  Status MatchAndInsertEncoded(const EncodedRecord& encoded,
                               std::vector<IdPair>* out);

  /// Matcher counters accumulated across every Match call.
  const MatchStats& stats() const { return stats_; }

  /// Records currently indexed.
  size_t size() const { return store_.size(); }

  /// Total blocking groups behind the stream.
  size_t blocking_groups() const { return blocking_groups_; }

  /// The record encoder (layout introspection).
  const CVectorRecordEncoder& encoder() const { return *encoder_; }

 private:
  OnlineCbvHbLinker() = default;

  Result<EncodedRecord> Encode(const Record& record) const;

  /// The active candidate source (derived, so the object stays safely
  /// movable).
  const CandidateSource& source() const {
    return attribute_blocker_.has_value()
               ? static_cast<const CandidateSource&>(*attribute_blocker_)
               : static_cast<const CandidateSource&>(*record_blocker_);
  }

  CbvHbConfig config_;
  std::optional<CVectorRecordEncoder> encoder_;
  std::optional<RecordLevelBlocker> record_blocker_;
  std::optional<AttributeLevelBlocker> attribute_blocker_;
  PairClassifier classifier_;
  VectorStore store_;
  MatchStats stats_;
  /// Probe scratch reused across Match calls, so the steady-state stream
  /// path allocates nothing per query.
  Matcher::Scratch scratch_;
  size_t blocking_groups_ = 0;
};

}  // namespace cbvlink

#endif  // CBVLINK_LINKAGE_ONLINE_LINKER_H_
