#include "src/datagen/perturbator.h"

#include "src/common/str.h"

namespace cbvlink {

namespace {

/// Perturbations draw replacement characters from the plain upper-case
/// alphabet, matching the letter-centric errors the paper models.
char RandomLetter(Rng& rng) {
  return static_cast<char>('A' + rng.Below(26));
}

PerturbationType RandomType(Rng& rng) {
  switch (rng.Below(3)) {
    case 0:
      return PerturbationType::kSubstitute;
    case 1:
      return PerturbationType::kInsert;
    default:
      return PerturbationType::kDelete;
  }
}

}  // namespace

const char* PerturbationTypeName(PerturbationType type) {
  switch (type) {
    case PerturbationType::kSubstitute:
      return "substitute";
    case PerturbationType::kInsert:
      return "insert";
    case PerturbationType::kDelete:
      return "delete";
    case PerturbationType::kClearField:
      return "clear-field";
  }
  return "unknown";
}

std::string Perturbator::ApplyOp(const std::string& value,
                                 PerturbationType type, Rng& rng) {
  if (type == PerturbationType::kClearField) return std::string();
  std::string out = value;
  if (out.empty() && type != PerturbationType::kInsert) {
    type = PerturbationType::kInsert;
  }
  switch (type) {
    case PerturbationType::kSubstitute: {
      const size_t pos = rng.Below(out.size());
      char replacement = RandomLetter(rng);
      // Guarantee a real change even when the draw repeats the original.
      while (replacement == out[pos]) replacement = RandomLetter(rng);
      out[pos] = replacement;
      return out;
    }
    case PerturbationType::kInsert: {
      const size_t pos = rng.Below(out.size() + 1);
      out.insert(out.begin() + static_cast<ptrdiff_t>(pos),
                 RandomLetter(rng));
      return out;
    }
    case PerturbationType::kDelete: {
      const size_t pos = rng.Below(out.size());
      out.erase(out.begin() + static_cast<ptrdiff_t>(pos));
      return out;
    }
    case PerturbationType::kClearField:
      return std::string();  // handled above; keep the switch exhaustive
  }
  return out;
}

Result<Record> Perturbator::Apply(const Record& record,
                                  const PerturbationScheme& scheme, Rng& rng,
                                  std::vector<AppliedPerturbation>* ops) {
  Record out = record;
  const auto apply_one = [&](size_t attr) {
    const PerturbationType type =
        scheme.forced_type.has_value() ? *scheme.forced_type : RandomType(rng);
    out.fields[attr] = ApplyOp(out.fields[attr], type, rng);
    if (ops != nullptr) ops->push_back({attr, type});
  };

  const auto maybe_clear_field = [&]() {
    if (scheme.missing_value_probability <= 0.0 || out.fields.empty()) return;
    if (!rng.NextBool(scheme.missing_value_probability)) return;
    const size_t attr = rng.Below(out.fields.size());
    out.fields[attr].clear();
    if (ops != nullptr) {
      ops->push_back({attr, PerturbationType::kClearField});
    }
  };

  if (scheme.single_random_attribute) {
    if (out.fields.empty()) {
      return Status::InvalidArgument("cannot perturb a record with no fields");
    }
    apply_one(rng.Below(out.fields.size()));
    maybe_clear_field();
    return out;
  }

  if (scheme.ops_per_attribute.size() > out.fields.size()) {
    return Status::InvalidArgument(
        StrFormat("scheme covers %zu attributes, record has %zu",
                  scheme.ops_per_attribute.size(), out.fields.size()));
  }
  for (size_t attr = 0; attr < scheme.ops_per_attribute.size(); ++attr) {
    for (size_t i = 0; i < scheme.ops_per_attribute[attr]; ++i) {
      apply_one(attr);
    }
  }
  maybe_clear_field();
  return out;
}

}  // namespace cbvlink
