// Perturbation engine (Section 6).
//
// The paper's prototype perturbs selected records from data set A before
// placing them into data set B, using the three basic edit operations of
// Section 5.1.  Two schemes are evaluated:
//   PL (light): one operation on one randomly chosen attribute;
//   PH (heavy): one operation on each of the first two attributes and two
//               operations on the third.
// A scheme may force a single operation type, which is how the per-type
// accuracy breakdown of Figure 11 is produced.

#ifndef CBVLINK_DATAGEN_PERTURBATOR_H_
#define CBVLINK_DATAGEN_PERTURBATOR_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/record.h"
#include "src/common/status.h"

namespace cbvlink {

/// The basic perturbation operations of Section 5.1, plus the missing-
/// value corruption of the paper's future-work evaluation (Section 7):
/// kClearField empties an attribute entirely.
enum class PerturbationType { kSubstitute, kInsert, kDelete, kClearField };

/// Returns "substitute" / "insert" / "delete".
const char* PerturbationTypeName(PerturbationType type);

/// One applied operation, for ground-truth bookkeeping.
struct AppliedPerturbation {
  size_t attribute = 0;
  PerturbationType type = PerturbationType::kSubstitute;
};

/// A perturbation scheme: how many operations hit each attribute.
struct PerturbationScheme {
  /// When set, one operation is applied to a single uniformly chosen
  /// attribute (the PL scheme); ops_per_attribute is ignored.
  bool single_random_attribute = false;
  /// Operations per attribute, by schema position (the PH scheme uses
  /// {1, 1, 2, 0} for a four-attribute schema).
  std::vector<size_t> ops_per_attribute;
  /// When set, every operation uses this type; otherwise types are drawn
  /// uniformly from the three basic operations.
  std::optional<PerturbationType> forced_type;
  /// Probability that, after the edit operations, one uniformly chosen
  /// attribute is cleared entirely (a missing value — the corruption the
  /// paper's future-work evaluation targets).
  double missing_value_probability = 0.0;

  /// The paper's PL scheme.
  static PerturbationScheme Light() {
    PerturbationScheme s;
    s.single_random_attribute = true;
    return s;
  }

  /// The paper's PH scheme for a `num_attributes`-wide schema: one op on
  /// f1 and f2, two ops on f3.
  static PerturbationScheme Heavy(size_t num_attributes) {
    PerturbationScheme s;
    s.ops_per_attribute.assign(num_attributes, 0);
    if (num_attributes > 0) s.ops_per_attribute[0] = 1;
    if (num_attributes > 1) s.ops_per_attribute[1] = 1;
    if (num_attributes > 2) s.ops_per_attribute[2] = 2;
    return s;
  }
};

/// Applies perturbation schemes to records.
class Perturbator {
 public:
  /// Applies one operation of `type` to `value` at a random position.
  /// Substituting or deleting on an empty string degrades to insertion so
  /// an operation is always materialized.
  static std::string ApplyOp(const std::string& value, PerturbationType type,
                             Rng& rng);

  /// Applies `scheme` to a copy of `record`, appending each applied
  /// operation to `ops` (may be nullptr).  Returns InvalidArgument when
  /// the scheme's per-attribute list is longer than the record.
  static Result<Record> Apply(const Record& record,
                              const PerturbationScheme& scheme, Rng& rng,
                              std::vector<AppliedPerturbation>* ops);
};

}  // namespace cbvlink

#endif  // CBVLINK_DATAGEN_PERTURBATOR_H_
