#include "src/datagen/dataset.h"

#include "src/common/str.h"

namespace cbvlink {

Result<LinkagePair> BuildLinkagePair(const RecordGenerator& generator,
                                     const PerturbationScheme& scheme,
                                     const LinkagePairOptions& options) {
  if (options.num_records == 0) {
    return Status::InvalidArgument("num_records must be positive");
  }
  if (options.selection_probability < 0.0 ||
      options.selection_probability > 1.0) {
    return Status::InvalidArgument(
        StrFormat("selection probability %f outside [0, 1]",
                  options.selection_probability));
  }
  if (options.copies_per_selected == 0) {
    return Status::InvalidArgument("copies_per_selected must be positive");
  }

  Rng rng(options.seed);
  LinkagePair out;
  out.a.reserve(options.num_records);
  out.b.reserve(options.num_records);

  RecordId next_b_id = static_cast<RecordId>(options.num_records);

  for (size_t i = 0; i < options.num_records; ++i) {
    Record a = generator.Generate(static_cast<RecordId>(i), rng);
    if (rng.NextBool(options.selection_probability)) {
      for (size_t c = 0;
           c < options.copies_per_selected && out.b.size() < options.num_records;
           ++c) {
        GroundTruthEntry entry;
        Result<Record> perturbed =
            Perturbator::Apply(a, scheme, rng, &entry.ops);
        if (!perturbed.ok()) return perturbed.status();
        Record b = std::move(perturbed).value();
        b.id = next_b_id++;
        entry.pair = IdPair{a.id, b.id};
        out.truth.push_back(std::move(entry));
        out.b.push_back(std::move(b));
      }
    }
    out.a.push_back(std::move(a));
  }

  // Fill B with fresh non-matching records up to |A|.
  while (out.b.size() < options.num_records) {
    out.b.push_back(generator.Generate(next_b_id++, rng));
  }
  return out;
}

}  // namespace cbvlink
