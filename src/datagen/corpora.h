// Embedded text corpora and length-calibrated sampling.
//
// The paper evaluates on the NCVR voter file and the DBLP bibliography,
// neither of which can be redistributed here.  The generators instead
// sample from embedded corpora of realistic names, street names, towns,
// and computer-science title words, *calibrated* so the per-attribute
// average bigram counts b^(f_i) match Table 3 of the paper — the only
// property of the data the algorithms under test are sensitive to (they
// consume q-gram sets, not semantics).
//
// Calibration uses a two-group weighting: the pool is split into words
// not longer / longer than the target mean, and the sampling probability
// between the groups is solved so the expected length equals the target
// exactly.

#ifndef CBVLINK_DATAGEN_CORPORA_H_
#define CBVLINK_DATAGEN_CORPORA_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"

namespace cbvlink {

/// Raw word pools (upper-case ASCII).
const std::vector<std::string>& FirstNamePool();
const std::vector<std::string>& LastNamePool();
const std::vector<std::string>& StreetNamePool();
const std::vector<std::string>& StreetTypePool();
const std::vector<std::string>& TownPool();
const std::vector<std::string>& TitleWordPool();

/// A pool with two-group length calibration towards a target mean length.
class CalibratedPool {
 public:
  /// Builds a calibrated sampler.  Returns InvalidArgument when the pool
  /// is empty.  When the target is outside the pool's achievable range
  /// (below the shortest-group mean or above the longest-group mean) the
  /// sampler degrades to uniform and ExpectedLength() reports the
  /// achievable value.
  static Result<CalibratedPool> Create(const std::vector<std::string>* words,
                                       double target_mean_length);

  /// Draws one word.
  const std::string& Sample(Rng& rng) const;

  /// The exact expected length of Sample() output.
  double ExpectedLength() const { return expected_length_; }

 private:
  CalibratedPool(std::vector<const std::string*> short_group,
                 std::vector<const std::string*> long_group,
                 double short_probability, double expected_length)
      : short_group_(std::move(short_group)),
        long_group_(std::move(long_group)),
        short_probability_(short_probability),
        expected_length_(expected_length) {}

  std::vector<const std::string*> short_group_;
  std::vector<const std::string*> long_group_;
  double short_probability_;
  double expected_length_;
};

}  // namespace cbvlink

#endif  // CBVLINK_DATAGEN_CORPORA_H_
