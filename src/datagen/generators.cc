#include "src/datagen/generators.h"

#include <cmath>

#include "src/common/str.h"

namespace cbvlink {

namespace {

/// The paper's bigram convention (Figure 1): unpadded bigrams over the
/// names' 26-letter alphabet — so a value with target bigram count b must
/// have mean length b + 1.
double TargetLength(double target_b) { return target_b + 1.0; }

/// Mean length of the street-number component: the digit count is drawn
/// uniformly from {1, 2, 3, 4}.
constexpr double kMeanNumberLength = 2.5;

/// Mean length of a uniformly drawn street-type token.
double MeanStreetTypeLength() {
  const auto& pool = StreetTypePool();
  double sum = 0.0;
  for (const std::string& t : pool) sum += static_cast<double>(t.size());
  return sum / static_cast<double>(pool.size());
}

/// Mean length of a uniformly drawn title word.
double MeanTitleWordLength() {
  const auto& pool = TitleWordPool();
  double sum = 0.0;
  for (const std::string& w : pool) sum += static_cast<double>(w.size());
  return sum / static_cast<double>(pool.size());
}

std::string SampleStreetNumber(Rng& rng) {
  const size_t digits = 1 + rng.Below(4);
  std::string out;
  out.reserve(digits);
  out.push_back(static_cast<char>('1' + rng.Below(9)));  // no leading zero
  for (size_t i = 1; i < digits; ++i) {
    out.push_back(static_cast<char>('0' + rng.Below(10)));
  }
  return out;
}

}  // namespace

NcvrGenerator::NcvrGenerator(Schema schema, CalibratedPool first,
                             CalibratedPool last, CalibratedPool street,
                             CalibratedPool town)
    : schema_(std::move(schema)),
      first_names_(std::move(first)),
      last_names_(std::move(last)),
      streets_(std::move(street)),
      towns_(std::move(town)) {}

Result<NcvrGenerator> NcvrGenerator::Create(NcvrTargets targets) {
  Schema schema;
  // Paper-reproduction convention: unpadded bigrams; names and towns over
  // the plain upper-case alphabet, addresses over the alphanumeric one.
  const QGramOptions unpadded{.q = 2, .pad = false};
  schema.attributes = {
      {"FirstName", &Alphabet::Uppercase(), unpadded},
      {"LastName", &Alphabet::Uppercase(), unpadded},
      {"Address", &Alphabet::Alphanumeric(), unpadded},
      {"Town", &Alphabet::Uppercase(), unpadded},
  };

  Result<CalibratedPool> first = CalibratedPool::Create(
      &FirstNamePool(), TargetLength(targets.first_name_b));
  if (!first.ok()) return first.status();
  Result<CalibratedPool> last = CalibratedPool::Create(
      &LastNamePool(), TargetLength(targets.last_name_b));
  if (!last.ok()) return last.status();

  // Address = "<number> <street> <type>"; solve for the street-name
  // target so the full string hits the attribute target.
  const double address_target = TargetLength(targets.address_b);
  const double street_target =
      address_target - kMeanNumberLength - MeanStreetTypeLength() - 2.0;
  Result<CalibratedPool> street =
      CalibratedPool::Create(&StreetNamePool(), street_target);
  if (!street.ok()) return street.status();

  Result<CalibratedPool> town =
      CalibratedPool::Create(&TownPool(), TargetLength(targets.town_b));
  if (!town.ok()) return town.status();

  return NcvrGenerator(std::move(schema), std::move(first).value(),
                       std::move(last).value(), std::move(street).value(),
                       std::move(town).value());
}

Record NcvrGenerator::Generate(RecordId id, Rng& rng) const {
  Record record;
  record.id = id;
  record.fields.reserve(4);
  record.fields.push_back(first_names_.Sample(rng));
  record.fields.push_back(last_names_.Sample(rng));
  record.fields.push_back(SampleStreetNumber(rng) + " " +
                          streets_.Sample(rng) + " " +
                          StreetTypePool()[rng.Below(StreetTypePool().size())]);
  record.fields.push_back(towns_.Sample(rng));
  return record;
}

DblpGenerator::DblpGenerator(Schema schema, CalibratedPool first,
                             CalibratedPool last, double mean_title_words)
    : schema_(std::move(schema)),
      first_names_(std::move(first)),
      last_names_(std::move(last)),
      mean_title_words_(mean_title_words) {}

Result<DblpGenerator> DblpGenerator::Create(DblpTargets targets) {
  Schema schema;
  const QGramOptions unpadded{.q = 2, .pad = false};
  schema.attributes = {
      {"FirstName", &Alphabet::Uppercase(), unpadded},
      {"LastName", &Alphabet::Uppercase(), unpadded},
      {"Title", &Alphabet::Alphanumeric(), unpadded},
      {"Year", &Alphabet::Alphanumeric(), unpadded},
  };

  Result<CalibratedPool> first = CalibratedPool::Create(
      &FirstNamePool(), TargetLength(targets.first_name_b));
  if (!first.ok()) return first.status();
  Result<CalibratedPool> last = CalibratedPool::Create(
      &LastNamePool(), TargetLength(targets.last_name_b));
  if (!last.ok()) return last.status();

  // A k-word title has length k * (W + 1) - 1 in expectation, where W is
  // the mean word length; solve E[k] for the title target.
  const double title_target = TargetLength(targets.title_b);
  const double mean_words = (title_target + 1.0) / (MeanTitleWordLength() + 1.0);
  if (mean_words < 1.0) {
    return Status::InvalidArgument(
        StrFormat("title target %f shorter than one word", title_target));
  }
  return DblpGenerator(std::move(schema), std::move(first).value(),
                       std::move(last).value(), mean_words);
}

Record DblpGenerator::Generate(RecordId id, Rng& rng) const {
  Record record;
  record.id = id;
  record.fields.reserve(4);
  record.fields.push_back(first_names_.Sample(rng));
  record.fields.push_back(last_names_.Sample(rng));

  // Word count: floor/ceil two-point mix hitting mean_title_words_
  // exactly in expectation.
  const double lo = std::floor(mean_title_words_);
  const double frac = mean_title_words_ - lo;
  size_t words = static_cast<size_t>(lo) + (rng.NextDouble() < frac ? 1 : 0);
  if (words == 0) words = 1;
  const auto& pool = TitleWordPool();
  std::string title;
  for (size_t i = 0; i < words; ++i) {
    if (i != 0) title.push_back(' ');
    title += pool[rng.Below(pool.size())];
  }
  record.fields.push_back(std::move(title));

  record.fields.push_back(StrFormat("%d", 1970 + static_cast<int>(rng.Below(46))));
  return record;
}

}  // namespace cbvlink
