#include "src/datagen/corpora.h"

#include <numeric>

namespace cbvlink {

namespace {

std::vector<std::string> MakePool(std::initializer_list<const char*> words) {
  std::vector<std::string> pool;
  pool.reserve(words.size());
  for (const char* w : words) pool.emplace_back(w);
  return pool;
}

}  // namespace

const std::vector<std::string>& FirstNamePool() {
  static const auto* kPool = new std::vector<std::string>(MakePool({
      "JOHN",      "MARY",      "JAMES",    "LINDA",     "ROBERT",
      "PATRICIA",  "MICHAEL",   "BARBARA",  "WILLIAM",   "ELIZABETH",
      "DAVID",     "JENNIFER",  "RICHARD",  "MARIA",     "CHARLES",
      "SUSAN",     "JOSEPH",    "MARGARET", "THOMAS",    "DOROTHY",
      "ANN",       "BOB",       "JIM",      "SUE",       "AMY",
      "JOE",       "TOM",       "DAN",      "RAY",       "ROY",
      "LEE",       "KAY",       "MAY",      "IDA",       "EVA",
      "GUY",       "SAM",       "MAX",      "BEN",       "TED",
      "ANNA",      "EMMA",      "NOAH",     "LIAM",      "OWEN",
      "RUTH",      "ROSE",      "JACK",     "RYAN",      "KYLE",
      "SEAN",      "DEAN",      "NEIL",     "CARL",      "ERIC",
      "ADAM",      "ALAN",      "GARY",     "DALE",      "EARL",
      "GLEN",      "HUGH",      "IVAN",     "JOEL",      "KURT",
      "LUKE",      "MARK",      "NEAL",     "OTIS",      "PAUL",
      "REED",      "SETH",      "TROY",     "WADE",      "ZANE",
      "CHRISTOPHER", "ALEXANDRA", "STEPHANIE", "KATHERINE", "JACQUELINE",
      "FREDERICK", "NATHANIEL", "SEBASTIAN", "GABRIELLA", "MAXIMILIAN",
      "HENRY",     "OSCAR",     "PETER",    "DIANA",     "KAREN",
      "NANCY",     "BETTY",     "HELEN",    "SANDRA",    "DONNA",
      "CAROL",     "SHARON",    "MICHELLE", "LAURA",     "SARAH",
      "KIMBERLY",  "DEBORAH",   "JESSICA",  "SHIRLEY",   "CYNTHIA",
      "ANGELA",    "MELISSA",   "BRENDA",   "PAMELA",    "NICOLE",
      "DANIEL",    "MATTHEW",   "ANTHONY",  "DONALD",    "STEVEN",
      "KENNETH",   "ANDREW",    "JOSHUA",   "KEVIN",     "BRIAN",
      "GEORGE",    "EDWARD",    "RONALD",   "TIMOTHY",   "JASON",
      "JEFFREY",   "GREGORY",   "PATRICK",  "DENNIS",    "JERRY",
      "TYLER",     "AARON",     "JOSE",     "HENRIETTA", "NATHAN",
      "AMANDA",    "KELLY",     "TINA",     "JEAN",      "LOIS",
      "GAIL",      "EDNA",      "IRIS",     "JUNE",      "LENA",
      "MYRA",      "NINA",      "OPAL",     "RITA",      "VERA",
  }));
  return *kPool;
}

const std::vector<std::string>& LastNamePool() {
  static const auto* kPool = new std::vector<std::string>(MakePool({
      "SMITH",     "JOHNSON",   "WILLIAMS", "BROWN",     "JONES",
      "GARCIA",    "MILLER",    "DAVIS",    "RODRIGUEZ", "MARTINEZ",
      "HERNANDEZ", "LOPEZ",     "GONZALEZ", "WILSON",    "ANDERSON",
      "THOMAS",    "TAYLOR",    "MOORE",    "JACKSON",   "MARTIN",
      "LEE",       "PEREZ",     "THOMPSON", "WHITE",     "HARRIS",
      "SANCHEZ",   "CLARK",     "RAMIREZ",  "LEWIS",     "ROBINSON",
      "WALKER",    "YOUNG",     "ALLEN",    "KING",      "WRIGHT",
      "SCOTT",     "TORRES",    "NGUYEN",   "HILL",      "FLORES",
      "GREEN",     "ADAMS",     "NELSON",   "BAKER",     "HALL",
      "RIVERA",    "CAMPBELL",  "MITCHELL", "CARTER",    "ROBERTS",
      "GOMEZ",     "PHILLIPS",  "EVANS",    "TURNER",    "DIAZ",
      "PARKER",    "CRUZ",      "EDWARDS",  "COLLINS",   "REYES",
      "STEWART",   "MORRIS",    "MORALES",  "MURPHY",    "COOK",
      "ROGERS",    "GUTIERREZ", "ORTIZ",    "MORGAN",    "COOPER",
      "PETERSON",  "BAILEY",    "REED",     "KELLY",     "HOWARD",
      "RAMOS",     "KIM",       "COX",      "WARD",      "RICHARDSON",
      "WATSON",    "BROOKS",    "CHAVEZ",   "WOOD",      "JAMES",
      "BENNETT",   "GRAY",      "MENDOZA",  "RUIZ",      "HUGHES",
      "PRICE",     "ALVAREZ",   "CASTILLO", "SANDERS",   "PATEL",
      "MYERS",     "LONG",      "ROSS",     "FOSTER",    "JIMENEZ",
      "POWELL",    "JENKINS",   "PERRY",    "RUSSELL",   "SULLIVAN",
      "BELL",      "COLEMAN",   "BUTLER",   "HENDERSON", "BARNES",
      "GONZALES",  "FISHER",    "VASQUEZ",  "SIMMONS",   "ROMERO",
      "JORDAN",    "PATTERSON", "ALEXANDER","HAMILTON",  "GRAHAM",
      "WALLACE",   "GRIFFIN",   "WEST",     "COLE",      "HAYES",
      "CHEN",      "SHAW",      "FORD",     "DEAN",      "KANE",
      "POPE",      "LANE",      "RHODES",   "BLACK",     "STONE",
      "MEYER",     "BOYD",      "MASON",    "MORENO",    "BOWMAN",
      "OLIVER",    "SNYDER",    "HART",     "CUNNINGHAM","BRADLEY",
      "LAMBERT",   "HOLLOWAY",  "STEPHENSON", "FITZGERALD", "MONTGOMERY",
  }));
  return *kPool;
}

const std::vector<std::string>& StreetNamePool() {
  static const auto* kPool = new std::vector<std::string>(MakePool({
      "MAPLE",          "OAK",            "ELM",
      "PINE",           "CEDAR",          "WALNUT",
      "CHESTNUT",       "SYCAMORE",       "MAGNOLIA",
      "DOGWOOD",        "HICKORY",        "JUNIPER",
      "WILLOW CREEK",   "FALLING WATER",  "STONE MOUNTAIN",
      "ROLLING HILLS",  "MEADOW BROOK",   "HUNTERS RIDGE",
      "FOX HOLLOW",     "DEER RUN",       "EAGLE CREST",
      "TIMBER RIDGE",   "RIVER BIRCH",    "SPRING GARDEN",
      "AUTUMN LEAF",    "WINTER PARK",    "SUMMER FIELD",
      "OLD STAGE",      "NEW HOPE",       "SANDY RIDGE",
      "HOLLY SPRINGS",  "WAKE FOREST",    "CHAPEL HILL",
      "SIX FORKS",      "GLENWOOD",       "HILLSBOROUGH",
      "CREEDMOOR",      "FALLS OF NEUSE", "CAPITAL",
      "WESTERN",        "SOUTHERN",       "NORTHERN",
      "LAKE WHEELER",   "POOLE",          "BUFFALOE",
      "MILLBROOK",      "STRICKLAND",     "LEESVILLE",
      "HARRISON",       "DAVIS",          "MORRISVILLE",
      "APEX PEAKWAY",   "KILDAIRE FARM",  "TRYON",
      "GARNER",         "PERSON",         "BLOUNT",
      "WILMINGTON",     "FAYETTEVILLE",   "SALISBURY",
      "MARTIN LUTHER KING", "PLEASANT GROVE CHURCH", "ROCK QUARRY",
      "GREEN LEVEL CHURCH", "CARPENTER FIRE STATION", "HIGH HOUSE",
      "BUCK JONES",     "AVENT FERRY",    "GORMAN",
      "DIXIE TRAIL",    "BROOKHAVEN",     "CRABTREE VALLEY",
  }));
  return *kPool;
}

const std::vector<std::string>& StreetTypePool() {
  static const auto* kPool = new std::vector<std::string>(MakePool({
      "ST", "AVE", "RD", "DR", "LN", "BLVD", "CT", "WAY", "PL", "CIR",
      "TRL", "PKWY", "TER", "LOOP",
  }));
  return *kPool;
}

const std::vector<std::string>& TownPool() {
  static const auto* kPool = new std::vector<std::string>(MakePool({
      "RALEIGH",       "DURHAM",       "CARY",         "APEX",
      "GARNER",        "CLAYTON",      "WENDELL",      "ZEBULON",
      "KNIGHTDALE",    "MORRISVILLE",  "FUQUAY VARINA","HOLLY SPRINGS",
      "WAKE FOREST",   "ROLESVILLE",   "CHARLOTTE",    "GREENSBORO",
      "WINSTON SALEM", "FAYETTEVILLE", "WILMINGTON",   "ASHEVILLE",
      "CONCORD",       "GASTONIA",     "GREENVILLE",   "JACKSONVILLE",
      "HICKORY",       "GOLDSBORO",    "BURLINGTON",   "WILSON",
      "ROCKY MOUNT",   "KANNAPOLIS",   "MONROE",       "SALISBURY",
      "NEW BERN",      "SANFORD",      "MATTHEWS",     "THOMASVILLE",
      "CORNELIUS",     "MINT HILL",    "KINSTON",      "LUMBERTON",
      "CARRBORO",      "HAVELOCK",     "SHELBY",       "CLEMMONS",
      "LEXINGTON",     "ELIZABETH CITY","BOONE",       "HOPE MILLS",
      "DUNN",          "EDEN",         "LENOIR",       "MORGANTON",
      "ALBEMARLE",     "HENDERSON",    "MOUNT AIRY",   "OXFORD",
      "SELMA",         "SMITHFIELD",   "TARBORO",      "WAXHAW",
  }));
  return *kPool;
}

const std::vector<std::string>& TitleWordPool() {
  static const auto* kPool = new std::vector<std::string>(MakePool({
      "EFFICIENT",     "SCALABLE",     "DISTRIBUTED",  "PARALLEL",
      "ADAPTIVE",      "ROBUST",       "OPTIMAL",      "FAST",
      "APPROXIMATE",   "INCREMENTAL",  "DYNAMIC",      "ONLINE",
      "QUERY",         "PROCESSING",   "OPTIMIZATION", "DATABASE",
      "SYSTEMS",       "INDEXING",     "RETRIEVAL",    "MINING",
      "LEARNING",      "CLASSIFICATION","CLUSTERING",  "REGRESSION",
      "ALGORITHMS",    "STRUCTURES",   "NETWORKS",     "GRAPHS",
      "STREAMS",       "RECORDS",      "LINKAGE",      "RESOLUTION",
      "ENTITY",        "MATCHING",     "BLOCKING",     "HASHING",
      "EMBEDDING",     "SIMILARITY",   "DISTANCE",     "METRIC",
      "SEARCH",        "NEAREST",      "NEIGHBOR",     "DIMENSIONALITY",
      "REDUCTION",     "COMPRESSION",  "ENCODING",     "SKETCHES",
      "SAMPLING",      "ESTIMATION",   "INFERENCE",    "PROBABILISTIC",
      "PRIVACY",       "PRESERVING",   "SECURE",       "ANONYMIZATION",
      "FRAMEWORK",     "APPROACH",     "METHOD",       "TECHNIQUE",
      "ANALYSIS",      "EVALUATION",   "SURVEY",       "BENCHMARK",
      "LARGE",         "SCALE",        "HIGH",         "PERFORMANCE",
      "MEMORY",        "STORAGE",      "CACHE",        "TRANSACTIONAL",
      "CONCURRENT",    "CONSISTENT",   "FAULT",        "TOLERANT",
      "CLOUD",         "EDGE",         "FEDERATED",    "HETEROGENEOUS",
      "SEMANTIC",      "ONTOLOGY",     "KNOWLEDGE",    "EXTRACTION",
      "INTEGRATION",   "CLEANING",     "DEDUPLICATION","PROVENANCE",
      "TEMPORAL",      "SPATIAL",      "MULTIDIMENSIONAL", "HIERARCHICAL",
      "FOR",           "WITH",         "USING",        "OVER",
      "UNDER",         "VIA",          "TOWARDS",      "BEYOND",
      "DATA",          "BIG",          "REAL",         "TIME",
      "STREAMING",     "BATCH",        "HYBRID",       "UNIFIED",
  }));
  return *kPool;
}

Result<CalibratedPool> CalibratedPool::Create(
    const std::vector<std::string>* words, double target_mean_length) {
  if (words == nullptr || words->empty()) {
    return Status::InvalidArgument("calibrated pool needs a non-empty corpus");
  }
  std::vector<const std::string*> short_group;
  std::vector<const std::string*> long_group;
  double short_sum = 0.0;
  double long_sum = 0.0;
  for (const std::string& w : *words) {
    if (static_cast<double>(w.size()) <= target_mean_length) {
      short_group.push_back(&w);
      short_sum += static_cast<double>(w.size());
    } else {
      long_group.push_back(&w);
      long_sum += static_cast<double>(w.size());
    }
  }

  if (short_group.empty() || long_group.empty()) {
    // Target outside the achievable range: degrade to uniform sampling.
    std::vector<const std::string*> all = short_group.empty()
                                              ? std::move(long_group)
                                              : std::move(short_group);
    const double mean = (short_sum + long_sum) / static_cast<double>(all.size());
    return CalibratedPool(std::move(all), {}, 1.0, mean);
  }

  const double mean_short = short_sum / static_cast<double>(short_group.size());
  const double mean_long = long_sum / static_cast<double>(long_group.size());
  // Solve w * mean_short + (1 - w) * mean_long = target for the
  // probability w of drawing from the short group.
  double w = (mean_long - target_mean_length) / (mean_long - mean_short);
  if (w < 0.0) w = 0.0;
  if (w > 1.0) w = 1.0;
  const double expected = w * mean_short + (1.0 - w) * mean_long;
  return CalibratedPool(std::move(short_group), std::move(long_group), w,
                        expected);
}

const std::string& CalibratedPool::Sample(Rng& rng) const {
  if (long_group_.empty() || rng.NextDouble() < short_probability_) {
    return *short_group_[rng.Below(short_group_.size())];
  }
  return *long_group_[rng.Below(long_group_.size())];
}

}  // namespace cbvlink
