// Synthetic record generators calibrated to the paper's data sets.
//
// NcvrGenerator emits records shaped like the North Carolina Voter
// Registration extract used in Section 6 (FirstName, LastName, Address,
// Town), and DblpGenerator like the DBLP bibliography (FirstName,
// LastName, Title, Year).  Pools are length-calibrated so the average
// bigram count b^(f_i) of each attribute matches Table 3; the bigram
// convention follows the paper's Figure 1 ('JOHN' has 3 bigrams — i.e.
// b = len - 1, no padding), which is the convention under which Table 3's
// numbers are self-consistent (Year: '2003' -> b = 3.0).

#ifndef CBVLINK_DATAGEN_GENERATORS_H_
#define CBVLINK_DATAGEN_GENERATORS_H_

#include <memory>

#include "src/common/random.h"
#include "src/common/record.h"
#include "src/common/status.h"
#include "src/datagen/corpora.h"
#include "src/embedding/record_encoder.h"

namespace cbvlink {

/// Target mean bigram counts from Table 3.
struct NcvrTargets {
  double first_name_b = 5.1;
  double last_name_b = 5.0;
  double address_b = 20.0;
  double town_b = 7.2;
};

struct DblpTargets {
  double first_name_b = 4.8;
  double last_name_b = 6.2;
  double title_b = 64.8;
  double year_b = 3.0;  // fixed by the 4-digit year format
};

/// Source of synthetic records over a fixed schema.
class RecordGenerator {
 public:
  virtual ~RecordGenerator() = default;

  /// The schema of generated records.
  virtual const Schema& schema() const = 0;

  /// Generates one record with the given id.
  virtual Record Generate(RecordId id, Rng& rng) const = 0;
};

/// NCVR-shaped generator (FirstName, LastName, Address, Town).
class NcvrGenerator : public RecordGenerator {
 public:
  static Result<NcvrGenerator> Create(NcvrTargets targets = {});

  const Schema& schema() const override { return schema_; }
  Record Generate(RecordId id, Rng& rng) const override;

 private:
  NcvrGenerator(Schema schema, CalibratedPool first, CalibratedPool last,
                CalibratedPool street, CalibratedPool town);

  Schema schema_;
  CalibratedPool first_names_;
  CalibratedPool last_names_;
  CalibratedPool streets_;
  CalibratedPool towns_;
};

/// DBLP-shaped generator (FirstName, LastName, Title, Year).
class DblpGenerator : public RecordGenerator {
 public:
  static Result<DblpGenerator> Create(DblpTargets targets = {});

  const Schema& schema() const override { return schema_; }
  Record Generate(RecordId id, Rng& rng) const override;

 private:
  DblpGenerator(Schema schema, CalibratedPool first, CalibratedPool last,
                double mean_title_words);

  Schema schema_;
  CalibratedPool first_names_;
  CalibratedPool last_names_;
  /// Expected number of title words; sampled as a floor/ceil two-point
  /// mix so the expectation is hit exactly.
  double mean_title_words_;
};

}  // namespace cbvlink

#endif  // CBVLINK_DATAGEN_GENERATORS_H_
