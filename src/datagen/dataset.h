// Linkage data set construction (Section 6's experimental setup).
//
// From a record generator, BuildLinkagePair materializes data sets A and
// B: every record of A is, with the selection probability (paper: 0.5),
// perturbed under the chosen scheme and placed into B; the remaining B
// slots are filled with fresh non-matching records so |A| = |B|.  The
// ground truth M — the truly matching pairs with the operations that
// were applied — is returned alongside.

#ifndef CBVLINK_DATAGEN_DATASET_H_
#define CBVLINK_DATAGEN_DATASET_H_

#include <vector>

#include "src/common/record.h"
#include "src/common/status.h"
#include "src/datagen/generators.h"
#include "src/datagen/perturbator.h"

namespace cbvlink {

/// One truly matching pair and the perturbations that produced it.
struct GroundTruthEntry {
  IdPair pair;
  std::vector<AppliedPerturbation> ops;
};

/// The experimental unit: two data sets plus ground truth.
struct LinkagePair {
  std::vector<Record> a;
  std::vector<Record> b;
  std::vector<GroundTruthEntry> truth;
};

/// Options for BuildLinkagePair.
struct LinkagePairOptions {
  /// |A| (and |B|).
  size_t num_records = 10000;
  /// Probability that an A record gets a perturbed counterpart in B
  /// (paper: 0.5).
  double selection_probability = 0.5;
  /// Perturbed copies placed in B per selected A record (paper default 1;
  /// the prototype exposes this as a knob).
  size_t copies_per_selected = 1;
  /// RNG seed.
  uint64_t seed = 42;
};

/// Builds (A, B, M).  B record ids start at num_records so the two id
/// spaces never collide.  Returns InvalidArgument for a zero-record
/// request, an out-of-range probability, or zero copies.
Result<LinkagePair> BuildLinkagePair(const RecordGenerator& generator,
                                     const PerturbationScheme& scheme,
                                     const LinkagePairOptions& options);

}  // namespace cbvlink

#endif  // CBVLINK_DATAGEN_DATASET_H_
