// Concurrent sharded HB blocking index (the serving-layer counterpart of
// RecordLevelBlocker).
//
// The L blocking tables of Section 4.2 are partitioned across N shards:
// bucket (l, key) lives in shard key mod N, guarded by that shard's
// std::shared_mutex.  Inserts take exclusive locks one shard at a time;
// queries take shared locks, so readers never block readers and the
// service layer scales Match throughput with cores.
//
// Each bucket is capped at `max_bucket_size` entries (0 = unlimited).
// Inserting into a full bucket marks it overflowed and drops the entry —
// the Section 5.2 "few overpopulated buckets" failure mode then costs a
// flag instead of an ever-growing candidate list; the service layer
// decides how to compensate (see OverflowPolicy in linkage_service.h).

#ifndef CBVLINK_SERVICE_SHARDED_INDEX_H_
#define CBVLINK_SERVICE_SHARDED_INDEX_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/blocking/record_blocker.h"
#include "src/common/bitvector.h"
#include "src/common/record.h"
#include "src/common/status.h"
#include "src/embedding/record_encoder.h"
#include "src/io/serialization.h"
#include "src/lsh/hamming_lsh.h"

namespace cbvlink {

class ThreadPool;

/// Options of a sharded index.
struct ShardedIndexOptions {
  /// Number of lock shards; rounded up to a power of two, clamped to >= 1.
  size_t num_shards = 16;
  /// Bucket entry cap; 0 = unlimited.
  size_t max_bucket_size = 0;
};

/// Per-blocking-group health statistics (one of the L tables).
struct TableHealth {
  size_t buckets = 0;       ///< non-empty buckets
  size_t entries = 0;       ///< stored ids across buckets
  size_t max_bucket = 0;    ///< largest bucket
  size_t overflowed = 0;    ///< buckets that hit the cap and dropped ids
  double mean_bucket = 0;   ///< entries / buckets (0 when empty)
};

/// A point-in-time health snapshot of the whole index.  `occupancy` is
/// the log2 bucket-size histogram across every (group, key) bucket:
/// slot i counts buckets of size in [2^i, 2^(i+1)), the last slot
/// absorbing anything larger — the distribution Eq. 2's collision
/// behaviour shows up in (uniform spread when the tuned L/K hold,
/// heavy tail under the Section 5.2 skew).
struct IndexHealth {
  static constexpr size_t kOccupancySlots = 16;
  std::vector<TableHealth> tables;            ///< size L()
  std::array<uint64_t, kOccupancySlots> occupancy{};
  uint64_t overflowed_buckets = 0;
  uint64_t dropped_entries = 0;
};

/// L blocking tables sharded by key with per-shard reader/writer locks.
/// Thread-safe: Insert/Query/statistics may be called concurrently.
class ShardedHammingIndex : public CandidateSource {
 public:
  /// Creates an index over `family`'s L composite hash functions.
  static Result<ShardedHammingIndex> Create(HammingLshFamily family,
                                            const ShardedIndexOptions& options);

  /// Hashes `record` into every group's bucket.  Entries beyond the bucket
  /// cap are dropped and counted (see dropped_entries()).
  void Insert(const EncodedRecord& record);

  /// Two-phase parallel bulk Insert: phase 1 computes blocking keys into
  /// per-chunk, per-shard staging buffers over `pool`; phase 2 merges
  /// each shard's entries in (chunk, record, group) order — the exact
  /// arrival order a serial Insert() loop produces per shard, so bucket
  /// contents, overflow flags, and drop counters are identical at any
  /// thread count.  Thread-safe against concurrent queries (phase 2
  /// takes each shard's exclusive lock once).  Null `pool` (or a single
  /// worker) degrades to the serial Insert() loop.
  void BulkInsert(std::span<const EncodedRecord> records,
                  ThreadPool* pool = nullptr, size_t min_chunk = 0);

  /// Appends the candidate Ids of `probe` (duplicates across groups
  /// included, as in Algorithm 2's input) to `out`.  Sets `*saw_overflow`
  /// when any probed bucket had dropped entries, so callers can fall back
  /// to a scan for guaranteed recall.
  void Collect(const BitVector& probe, std::vector<RecordId>* out,
               bool* saw_overflow) const;

  /// CandidateSource adapter (overflow information discarded), so the
  /// index is a drop-in source for the single-threaded Matcher.
  void ForEachCandidate(
      const BitVector& probe,
      const std::function<void(RecordId)>& cb) const override;

  /// Restores one bucket from a snapshot, replacing any current contents.
  /// Returns InvalidArgument for a group index >= L().
  Status RestoreBucket(const IndexBucketSnapshot& bucket);

  /// Parallel RestoreBucket over every snapshot bucket: buckets are
  /// partitioned by owning shard and each shard restored by one worker.
  /// (group, key) pairs are unique within a snapshot, so the result is
  /// order-independent and identical to sequential RestoreBucket calls.
  /// Validates every group index before touching any shard.
  Status BulkRestore(const std::vector<IndexBucketSnapshot>& buckets,
                     ThreadPool* pool = nullptr);

  /// Every non-empty bucket, for snapshots.  Deterministically ordered
  /// (by group, then key).
  std::vector<IndexBucketSnapshot> ExportBuckets() const;

  size_t L() const { return family_.L(); }
  size_t K() const { return family_.K(); }
  size_t num_shards() const { return shards_.size(); }
  size_t max_bucket_size() const { return max_bucket_size_; }

  /// Aggregate statistics (each takes the shard locks shared).
  size_t NumBuckets() const;
  size_t NumEntries() const;
  size_t MaxBucketSize() const;

  /// Full LSH-health sweep: per-table bucket/entry/max/mean statistics
  /// plus the cross-table occupancy histogram, in one pass that takes
  /// each shard lock shared exactly once.  Weakly consistent against
  /// concurrent inserts (like every statistic here).
  IndexHealth CollectHealth() const;

  /// Entries dropped by the bucket cap since construction.
  uint64_t dropped_entries() const;

 private:
  struct Bucket {
    std::vector<RecordId> ids;
    bool overflowed = false;
  };

  /// One lock shard: a bucket map per blocking group.  unique_ptr keeps
  /// the index movable despite the mutex and counter.
  struct Shard {
    mutable std::shared_mutex mu;
    std::vector<std::unordered_map<uint64_t, Bucket>> tables;
    std::atomic<uint64_t> dropped{0};
  };

  ShardedHammingIndex(HammingLshFamily family, size_t num_shards,
                      size_t max_bucket_size);

  size_t ShardOf(uint64_t key) const { return key & shard_mask_; }

  HammingLshFamily family_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_ = 0;
  size_t max_bucket_size_ = 0;
};

}  // namespace cbvlink

#endif  // CBVLINK_SERVICE_SHARDED_INDEX_H_
