#include "src/service/linkage_service.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <unordered_set>

#include "src/common/failpoint.h"
#include "src/common/hamming_kernels.h"
#include "src/common/str.h"
#include "src/lsh/params.h"
#include "src/rules/rule_parser.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace cbvlink {

namespace {

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void AtomicMinRelaxed(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur > value &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxRelaxed(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

ConcurrentVectorStore::ConcurrentVectorStore(size_t num_shards) {
  const size_t n = RoundUpPowerOfTwo(std::max<size_t>(num_shards, 1));
  mask_ = n - 1;
  shards_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void ConcurrentVectorStore::Add(const EncodedRecord& record) {
  CBVLINK_FAILPOINT_DELAY("store.add");
  Shard& shard = *shards_[ShardOf(record.id)];
  std::unique_lock lock(shard.mu);
  shard.vectors.insert_or_assign(record.id, record.bits);
}

bool ConcurrentVectorStore::Remove(RecordId id) {
  CBVLINK_FAILPOINT_DELAY("store.add");
  Shard& shard = *shards_[ShardOf(id)];
  std::unique_lock lock(shard.mu);
  return shard.vectors.erase(id) != 0;
}

bool ConcurrentVectorStore::Find(RecordId id, BitVector* out) const {
  CBVLINK_FAILPOINT_DELAY("store.find");
  const Shard& shard = *shards_[ShardOf(id)];
  std::shared_lock lock(shard.mu);
  const auto it = shard.vectors.find(id);
  if (it == shard.vectors.end()) return false;
  *out = it->second;
  return true;
}

bool ConcurrentVectorStore::CopyWords(RecordId id, size_t num_words,
                                      uint64_t* dst) const {
  CBVLINK_FAILPOINT_DELAY("store.find");
  const Shard& shard = *shards_[ShardOf(id)];
  std::shared_lock lock(shard.mu);
  const auto it = shard.vectors.find(id);
  if (it == shard.vectors.end()) return false;
  const std::vector<uint64_t>& words = it->second.words();
  if (words.size() != num_words) return false;
  std::copy(words.begin(), words.end(), dst);
  return true;
}

bool ConcurrentVectorStore::Contains(RecordId id) const {
  const Shard& shard = *shards_[ShardOf(id)];
  std::shared_lock lock(shard.mu);
  return shard.vectors.contains(id);
}

void ConcurrentVectorStore::ForEach(
    const std::function<void(RecordId, const BitVector&)>& fn) const {
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& [id, bits] : shard->vectors) fn(id, bits);
  }
}

size_t ConcurrentVectorStore::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    total += shard->vectors.size();
  }
  return total;
}

std::vector<EncodedRecord> ConcurrentVectorStore::Export() const {
  std::vector<EncodedRecord> out;
  out.reserve(size());
  ForEach([&out](RecordId id, const BitVector& bits) {
    out.push_back(EncodedRecord{id, bits});
  });
  std::sort(out.begin(), out.end(),
            [](const EncodedRecord& a, const EncodedRecord& b) {
              return a.id < b.id;
            });
  return out;
}

LinkageService::LinkageService(CbvHbConfig config,
                               LinkageServiceOptions options)
    : config_(std::move(config)),
      options_(options),
      store_(options.num_shards),
      epoch_(std::chrono::steady_clock::now()) {
  // Normalize eagerly so options(), snapshots, and the sharded
  // structures all agree on the effective shard count — Restore()
  // validates the persisted value as a power of two.
  options_.num_shards = RoundUpPowerOfTwo(std::max<size_t>(options.num_shards, 1));
}

Result<std::unique_ptr<LinkageService>> LinkageService::Create(
    CbvHbConfig config, LinkageServiceOptions options,
    const std::vector<Record>& calibration_sample) {
  if (config.attribute_level_blocking) {
    return Status::InvalidArgument(
        "LinkageService shards record-level HB blocking; "
        "attribute-level structures are not supported");
  }
  // Reuse the batch linker's validation rules.
  {
    CbvHbConfig copy = config;
    Result<CbvHbLinker> check = CbvHbLinker::Create(std::move(copy));
    if (!check.ok()) return check.status();
  }
  if (config.expected_qgrams.empty()) {
    if (calibration_sample.empty()) {
      return Status::InvalidArgument(
          "linkage service needs expected_qgrams or a calibration sample");
    }
    config.expected_qgrams =
        EstimateExpectedQGrams(config.schema, calibration_sample);
  }
  std::unique_ptr<LinkageService> service(
      new LinkageService(std::move(config), options));
  Status init = service->Init();
  if (!init.ok()) return init;
  return service;
}

Status LinkageService::Init() {
  // The RNG consumption order (encoder, then family) must stay fixed:
  // Restore() depends on the seed reproducing both exactly.
  Rng rng(config_.seed);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      config_.schema, config_.expected_qgrams, rng, config_.sizing);
  if (!encoder.ok()) return encoder.status();
  encoder_.emplace(std::move(encoder).value());

  // Distinct sampling caps K at the record width; a larger configured K
  // was pure duplicate draws before, so clamp (deterministically — the
  // clamp depends only on the persisted config, keeping Restore's RNG
  // stream reproducible) instead of rejecting old configs.
  const size_t record_K =
      std::min(config_.record_K, encoder_->total_bits());
  if (record_K != config_.record_K) {
    std::fprintf(stderr,
                 "cbvlink: record_K = %zu exceeds the %zu-bit record; "
                 "clamping to %zu (distinct bit positions)\n",
                 config_.record_K, encoder_->total_bits(), record_K);
  }
  Result<double> p =
      HammingBaseProbability(config_.record_theta, encoder_->total_bits());
  if (!p.ok()) return p.status();
  Result<size_t> L = OptimalGroups(p.value(), record_K, config_.delta);
  if (!L.ok()) return L.status();
  Result<HammingLshFamily> family = HammingLshFamily::CreateFull(
      record_K, L.value(), encoder_->total_bits(), rng);
  if (!family.ok()) return family.status();
  // Keep a copy of the family: Compact() rebuilds a successor index with
  // the identical blocking keys.
  family_.emplace(family.value());

  ShardedIndexOptions index_options;
  index_options.num_shards = options_.num_shards;
  index_options.max_bucket_size = options_.max_bucket_size;
  Result<ShardedHammingIndex> index =
      ShardedHammingIndex::Create(std::move(family).value(), index_options);
  if (!index.ok()) return index.status();
  index_ = std::make_shared<ShardedHammingIndex>(std::move(index).value());

  classifier_ = MakeRuleClassifier(config_.rule, encoder_->layout());
  const ExecutionOptions& exec = options_.execution;
  if (exec.pool != nullptr) {
    pool_ = exec.pool;
  } else {
    owned_pool_ = std::make_unique<ThreadPool>(exec.num_threads);
    pool_ = owned_pool_.get();
  }

  // Resolve process-wide telemetry handles once; every Record/Add after
  // this point is lock-free.  Several services in one process share
  // these series by design (the registry is process-scoped).
  telemetry::Registry& reg = telemetry::Registry::Global();
  t_query_latency_ = reg.GetHistogram("query_latency_us");
  t_insert_latency_ = reg.GetHistogram("insert_latency_us");
  t_batch_latency_ = reg.GetHistogram("batch_latency_us");
  t_queries_ = reg.GetCounter("service_queries_total");
  t_inserts_ = reg.GetCounter("service_inserts_total");
  t_deletes_ = reg.GetCounter("service_deletes_total");
  t_updates_ = reg.GetCounter("service_updates_total");
  t_compactions_ = reg.GetCounter("compaction_runs_total");
  t_compaction_reclaimed_ = reg.GetCounter("compaction_reclaimed_total");
  t_compaction_pause_ = reg.GetHistogram("compaction_pause_us");
  t_candidates_ = reg.GetCounter("service_candidates_total");
  t_comparisons_ = reg.GetCounter("service_comparisons_total");
  t_matches_ = reg.GetCounter("service_matches_total");
  t_scan_fallbacks_ = reg.GetCounter("service_scan_fallbacks_total");
  return Status::OK();
}

LinkageService::~LinkageService() { StopBackgroundCompaction(); }

uint64_t LinkageService::NowNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void LinkageService::RecordSpan(uint64_t start, uint64_t end,
                                std::atomic<uint64_t>* nanos,
                                std::atomic<uint64_t>* first_start,
                                std::atomic<uint64_t>* last_end) {
  nanos->fetch_add(end - start, std::memory_order_relaxed);
  AtomicMinRelaxed(first_start, start);
  AtomicMaxRelaxed(last_end, end);
}

void LinkageService::InsertEncoded(const EncodedRecord& record) {
  // Shared against the compactor: no insert may land between its
  // survivor export and the epoch swap, or the record would vanish from
  // the published index.
  std::shared_lock compaction_guard(compaction_mu_);
  // Store before index: a concurrent Match that sees the id in a bucket
  // must be able to retrieve the vector.
  store_.Add(record);
  PinIndex()->Insert(record);
  // An insert of a tombstoned id resurrects it (same outcome live and in
  // replay order).  Gated on the counter so the steady insert path never
  // touches the tombstone lock.
  if (tombstone_count_.load(std::memory_order_relaxed) != 0) {
    ClearTombstone(record.id);
  }
}

void LinkageService::ClearTombstone(RecordId id) {
  std::unique_lock lock(tombstones_mu_);
  if (tombstones_.erase(id) != 0) {
    tombstone_count_.store(tombstones_.size(), std::memory_order_relaxed);
  }
}

Status LinkageService::InsertUnjournaled(const Record& record) {
  CBVLINK_FAILPOINT("service.insert");
  const uint64_t start = NowNanos();
  telemetry::TraceSpan encode_span("encode");
  Result<EncodedRecord> encoded = encoder_->Encode(record);
  encode_span.End();
  if (!encoded.ok()) return encoded.status();
  telemetry::TraceSpan insert_span("insert");
  InsertEncoded(encoded.value());
  insert_span.End();
  const uint64_t end = NowNanos();
  inserts_.fetch_add(1, std::memory_order_relaxed);
  RecordSpan(start, end, &insert_nanos_, &first_insert_start_ns_,
             &last_insert_end_ns_);
  t_inserts_->Add(1);
  t_insert_latency_->Record((end - start) / 1000);
  return Status::OK();
}

Status LinkageService::Insert(const Record& record) {
  CBVLINK_RETURN_NOT_OK(InsertUnjournaled(record));
  return JournalAppend(record);
}

Status LinkageService::JournalAppend(const Record& record) {
  std::shared_ptr<Journal> journal = this->journal();
  if (journal == nullptr) return Status::OK();
  telemetry::TraceSpan span("journal");
  const uint64_t before = span.active() ? journal->EndOffset() : 0;
  Status st = journal->AppendInsert(record);
  if (span.active() && st.ok()) {
    // Approximate under concurrent appends (the delta may include a
    // neighbour's frame); exact enough to explain an fsync stall.
    span.Annotate("bytes", journal->EndOffset() - before);
  }
  return st;
}

Status LinkageService::JournalAppend(const MutationOp& op) {
  std::shared_ptr<Journal> journal = this->journal();
  if (journal == nullptr) return Status::OK();
  telemetry::TraceSpan span("journal");
  return journal->Append(op);
}

Status LinkageService::DeleteUnjournaled(RecordId id, uint64_t* sequence) {
  CBVLINK_FAILPOINT("service.delete");
  std::shared_lock compaction_guard(compaction_mu_);
  // Remove + tombstone under the tombstone lock, so a racing Update of
  // the same id serializes against the delete (it would otherwise leave
  // the id live *and* tombstoned).
  std::unique_lock lock(tombstones_mu_);
  if (!store_.Remove(id)) {
    return Status::NotFound(
        StrFormat("record %llu is not live", static_cast<unsigned long long>(id)));
  }
  tombstones_.insert(id);
  tombstone_count_.store(tombstones_.size(), std::memory_order_relaxed);
  // Stamp the acknowledgement sequence AFTER the state change: a
  // snapshot reads the floor before exporting, so floor >= seq implies
  // the removal is already in the export.
  *sequence = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  deletes_.fetch_add(1, std::memory_order_relaxed);
  t_deletes_->Add(1);
  return Status::OK();
}

Status LinkageService::UpdateUnjournaled(const Record& record,
                                         uint64_t* sequence) {
  CBVLINK_FAILPOINT("service.update");
  telemetry::TraceSpan encode_span("encode");
  Result<EncodedRecord> encoded = encoder_->Encode(record);
  encode_span.End();
  if (!encoded.ok()) return encoded.status();
  std::shared_lock compaction_guard(compaction_mu_);
  std::unique_lock lock(tombstones_mu_);
  if (!store_.Contains(record.id)) {
    return Status::NotFound(StrFormat(
        "record %llu is not live", static_cast<unsigned long long>(record.id)));
  }
  // Overwrite the vector, then index the new blocking keys into the
  // current epoch.  Keys from the previous bits stay until compaction;
  // they only ever produce candidates that classify on the new bits.
  store_.Add(encoded.value());
  PinIndex()->Insert(encoded.value());
  *sequence = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  updates_.fetch_add(1, std::memory_order_relaxed);
  t_updates_->Add(1);
  return Status::OK();
}

Status LinkageService::Delete(RecordId id) {
  uint64_t sequence = 0;
  CBVLINK_RETURN_NOT_OK(DeleteUnjournaled(id, &sequence));
  return JournalAppend(MutationOp::Delete(id, sequence));
}

Status LinkageService::Update(const Record& record) {
  uint64_t sequence = 0;
  CBVLINK_RETURN_NOT_OK(UpdateUnjournaled(record, &sequence));
  return JournalAppend(MutationOp::Update(record, sequence));
}

Status LinkageService::DeleteBatch(const std::vector<RecordId>& ids) {
  std::shared_ptr<Journal> journal = this->journal();
  for (RecordId id : ids) {
    uint64_t sequence = 0;
    CBVLINK_RETURN_NOT_OK(DeleteUnjournaled(id, &sequence));
    if (journal != nullptr) {
      CBVLINK_RETURN_NOT_OK(journal->Append(MutationOp::Delete(id, sequence)));
    }
  }
  if (journal != nullptr && journal->options().fsync_every != 0) {
    CBVLINK_RETURN_NOT_OK(journal->Sync());
  }
  return Status::OK();
}

Status LinkageService::UpdateBatch(const std::vector<Record>& records) {
  std::shared_ptr<Journal> journal = this->journal();
  for (const Record& record : records) {
    uint64_t sequence = 0;
    CBVLINK_RETURN_NOT_OK(UpdateUnjournaled(record, &sequence));
    if (journal != nullptr) {
      CBVLINK_RETURN_NOT_OK(
          journal->Append(MutationOp::Update(record, sequence)));
    }
  }
  if (journal != nullptr && journal->options().fsync_every != 0) {
    CBVLINK_RETURN_NOT_OK(journal->Sync());
  }
  return Status::OK();
}

Result<bool> LinkageService::ApplyMutation(const MutationOp& op) {
  switch (op.kind) {
    case MutationKind::kInsert: {
      // Replay dedupe by id: the restored snapshot (or an earlier frame)
      // already carries the record.  Re-inserting would resurrect a
      // tombstone the journal deletes later — the skip is what keeps
      // replay order and live order equivalent.
      if (Contains(op.record.id)) return false;
      CBVLINK_RETURN_NOT_OK(InsertUnjournaled(op.record));
      return true;
    }
    case MutationKind::kDelete: {
      if (op.sequence != 0 &&
          op.sequence <= sequence_.load(std::memory_order_relaxed)) {
        return false;  // at or below the snapshot's sequence floor
      }
      AtomicMaxRelaxed(&sequence_, op.sequence);
      std::shared_lock compaction_guard(compaction_mu_);
      std::unique_lock lock(tombstones_mu_);
      if (!store_.Remove(op.record.id)) return false;  // idempotent
      tombstones_.insert(op.record.id);
      tombstone_count_.store(tombstones_.size(), std::memory_order_relaxed);
      deletes_.fetch_add(1, std::memory_order_relaxed);
      t_deletes_->Add(1);
      return true;
    }
    case MutationKind::kUpdate: {
      if (op.sequence != 0 &&
          op.sequence <= sequence_.load(std::memory_order_relaxed)) {
        return false;
      }
      AtomicMaxRelaxed(&sequence_, op.sequence);
      Result<EncodedRecord> encoded = encoder_->Encode(op.record);
      if (!encoded.ok()) return encoded.status();
      // Upsert: in replay order the record existed when the update was
      // acknowledged, but a snapshot/journal overlap can present the
      // update before the insert frame is deduped — applying it as an
      // insert converges to the same state.
      std::shared_lock compaction_guard(compaction_mu_);
      std::unique_lock lock(tombstones_mu_);
      store_.Add(encoded.value());
      PinIndex()->Insert(encoded.value());
      if (tombstones_.erase(op.record.id) != 0) {
        tombstone_count_.store(tombstones_.size(), std::memory_order_relaxed);
      }
      updates_.fetch_add(1, std::memory_order_relaxed);
      t_updates_->Add(1);
      return true;
    }
  }
  return Status::InvalidArgument("unknown mutation kind");
}

void LinkageService::AttachJournal(std::shared_ptr<Journal> journal) {
  std::scoped_lock lock(journal_mu_);
  journal_ = std::move(journal);
}

std::shared_ptr<Journal> LinkageService::journal() const {
  std::scoped_lock lock(journal_mu_);
  return journal_;
}

bool LinkageService::Contains(RecordId id) const {
  return store_.Contains(id);
}

Result<JournalReplayStats> LinkageService::ReplayJournalFile(
    const std::string& path) {
  uint64_t applied = 0;
  Result<JournalReplayStats> replayed =
      ReplayJournal(path, [this, &applied](const MutationOp& op) {
        Result<bool> changed = ApplyMutation(op);
        if (!changed.ok()) return changed.status();
        if (changed.value()) ++applied;
        return Status::OK();
      });
  if (!replayed.ok()) return replayed;
  JournalReplayStats stats = replayed.value();
  stats.applied = applied;
  return stats;
}

Result<uint64_t> LinkageService::MergeSnapshotRecords(
    const ServiceSnapshot& snapshot) {
  const size_t expected_bits = encoder_->total_bits();
  for (const EncodedRecord& record : snapshot.records) {
    if (record.bits.size() != expected_bits) {
      return Status::InvalidArgument(
          "snapshot record width does not match this service's encoder");
    }
  }
  uint64_t applied = 0;
  std::unordered_set<RecordId> snapshot_live;
  snapshot_live.reserve(snapshot.records.size());
  for (const EncodedRecord& record : snapshot.records) {
    snapshot_live.insert(record.id);
    if (Contains(record.id)) continue;
    InsertEncoded(record);
    inserts_.fetch_add(1, std::memory_order_relaxed);
    t_inserts_->Add(1);
    ++applied;
  }
  // Reconcile deletions.  The snapshot is newer than every local frame
  // (it is fetched precisely because the local cursor fell behind), so
  // its verdict on each id is authoritative: tombstoned there -> dead
  // here; live neither there nor in its tombstones -> the primary
  // deleted it and compaction already cleared the tombstone -> dead here
  // too.
  const std::unordered_set<RecordId> snapshot_tombstones(
      snapshot.tombstones.begin(), snapshot.tombstones.end());
  std::vector<RecordId> to_delete(snapshot.tombstones.begin(),
                                  snapshot.tombstones.end());
  store_.ForEach([&](RecordId id, const BitVector&) {
    if (!snapshot_live.contains(id) && !snapshot_tombstones.contains(id)) {
      to_delete.push_back(id);
    }
  });
  AtomicMaxRelaxed(&sequence_, snapshot.last_sequence);
  for (RecordId id : to_delete) {
    std::shared_lock compaction_guard(compaction_mu_);
    std::unique_lock lock(tombstones_mu_);
    if (!store_.Remove(id)) continue;
    tombstones_.insert(id);
    tombstone_count_.store(tombstones_.size(), std::memory_order_relaxed);
    deletes_.fetch_add(1, std::memory_order_relaxed);
    t_deletes_->Add(1);
    ++applied;
  }
  return applied;
}

Status LinkageService::Compact() {
  // Exclusive against mutators (they hold compaction_mu_ shared): from
  // here to the epoch swap the live set is frozen, so the rebuilt index
  // covers exactly the survivors.  Match never takes this lock — readers
  // keep serving the old epoch throughout; this exclusive section is the
  // "compaction pause" and it stalls writes only.
  const uint64_t pause_start = NowNanos();
  std::unique_lock compaction_guard(compaction_mu_);
  const std::vector<EncodedRecord> survivors = store_.Export();
  ShardedIndexOptions index_options;
  index_options.num_shards = options_.num_shards;
  index_options.max_bucket_size = options_.max_bucket_size;
  Result<ShardedHammingIndex> rebuilt =
      ShardedHammingIndex::Create(*family_, index_options);
  if (!rebuilt.ok()) return rebuilt.status();
  auto fresh =
      std::make_shared<ShardedHammingIndex>(std::move(rebuilt).value());
  // Deterministic re-block: BulkInsert over id-sorted survivors produces
  // the same buckets a fresh build of the live set would.
  fresh->BulkInsert(survivors, pool_);
  uint64_t reclaimed = 0;
  {
    // Publish the new epoch.  In-flight Matches pinned the old
    // shared_ptr and drain on it; the old index is retired when the last
    // pin drops.
    std::unique_lock swap_lock(index_mu_);
    const size_t before = index_->NumEntries();
    const size_t after = fresh->NumEntries();
    reclaimed = before > after ? before - after : 0;
    index_ = std::move(fresh);
  }
  {
    std::unique_lock lock(tombstones_mu_);
    tombstones_.clear();
    tombstone_count_.store(0, std::memory_order_relaxed);
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  compaction_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
  t_compactions_->Add(1);
  if (reclaimed != 0) t_compaction_reclaimed_->Add(reclaimed);
  t_compaction_pause_->Record((NowNanos() - pause_start) / 1000);
  return Status::OK();
}

void LinkageService::CompactorLoop() {
  std::unique_lock lock(compactor_mu_);
  while (!compactor_stop_) {
    compactor_cv_.wait_for(lock, options_.compaction_interval,
                           [this] { return compactor_stop_; });
    if (compactor_stop_) break;
    const uint64_t dead = tombstone_count_.load(std::memory_order_relaxed);
    if (dead == 0) continue;
    const size_t live = store_.size();
    const double ratio =
        static_cast<double>(dead) / static_cast<double>(dead + live);
    if (ratio < options_.compaction_dead_ratio) continue;
    lock.unlock();
    Status st = Compact();
    if (!st.ok()) {
      std::fprintf(stderr, "cbvlink: background compaction failed: %s\n",
                   st.ToString().c_str());
    }
    lock.lock();
  }
}

void LinkageService::StartBackgroundCompaction() {
  std::scoped_lock lock(compactor_mu_);
  if (compactor_.joinable()) return;
  compactor_stop_ = false;
  compactor_ = std::thread([this] { CompactorLoop(); });
}

void LinkageService::StopBackgroundCompaction() {
  std::thread worker;
  {
    std::scoped_lock lock(compactor_mu_);
    compactor_stop_ = true;
    worker = std::move(compactor_);
  }
  compactor_cv_.notify_all();
  if (worker.joinable()) worker.join();
}

void LinkageService::MatchEncoded(const EncodedRecord& b,
                                  std::vector<IdPair>* out) const {
  std::vector<RecordId> candidates;
  bool saw_overflow = false;
  telemetry::TraceSpan candidates_span("candidates");
  // Pin the index epoch for the whole probe: the compactor may publish a
  // successor mid-call, but this Match keeps reading the epoch it
  // started on (the shared_ptr refcount retires the old index after the
  // last in-flight reader drains).
  const std::shared_ptr<ShardedHammingIndex> index = PinIndex();
  index->Collect(b.bits, &candidates, &saw_overflow);
  candidate_occurrences_.fetch_add(candidates.size(),
                                   std::memory_order_relaxed);
  t_candidates_->Add(candidates.size());
  candidates_span.Annotate("occurrences", candidates.size());
  // Algorithm 2's unique collection C, as sort+unique over the gathered
  // occurrences (cheaper than a hash set at bucket-sized cardinalities).
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  candidates_span.Annotate("candidates", candidates.size());
  candidates_span.Annotate("overflow", saw_overflow ? 1 : 0);
  candidates_span.End();

  telemetry::TraceSpan compare_span("compare");
  uint64_t compared = 0;
  uint64_t matched = 0;
  size_t theta = 0;
  if (classifier_.AsWholeRecordThreshold(encoder_->total_bits(), &theta)) {
    // Batched path (DESIGN.md §14): gather the candidates' words into a
    // flat buffer (one CopyWords per id under its shard lock), then run
    // the active batch kernel over the contiguous rows.  Same compared /
    // matched counts and the same id-sorted emit order as the per-pair
    // loop below.
    const size_t num_words = b.bits.words().size();
    std::vector<uint64_t> gathered(candidates.size() * num_words);
    std::vector<RecordId> present;
    present.reserve(candidates.size());
    for (RecordId id : candidates) {
      if (!store_.CopyWords(id, num_words,
                            gathered.data() + present.size() * num_words)) {
        continue;  // indexed but not yet stored
      }
      present.push_back(id);
    }
    const size_t n = present.size();
    compared += n;
    if (n != 0) {
      std::vector<uint8_t> verdicts(n);
      KernelBatchLeq(ActiveKernels(), b.bits.words().data(), gathered.data(),
                     num_words, /*dense=*/nullptr, n, num_words, theta,
                     verdicts.data());
      for (size_t i = 0; i < n; ++i) {
        if (verdicts[i] != 0) {
          ++matched;
          out->push_back(IdPair{present[i], b.id});
        }
      }
    }
  } else {
    BitVector scratch;
    for (RecordId id : candidates) {
      if (!store_.Find(id, &scratch)) continue;  // indexed but not yet stored
      ++compared;
      if (classifier_(scratch, b.bits)) {
        ++matched;
        out->push_back(IdPair{id, b.id});
      }
    }
  }

  if (saw_overflow &&
      options_.overflow_policy == OverflowPolicy::kScanFallback) {
    // A probed bucket dropped entries: preserve recall by scanning the
    // store, skipping ids the blocked path already compared.
    scan_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    t_scan_fallbacks_->Add(1);
    store_.ForEach([&](RecordId id, const BitVector& bits) {
      if (std::binary_search(candidates.begin(), candidates.end(), id)) {
        return;
      }
      ++compared;
      if (classifier_(bits, b.bits)) {
        ++matched;
        out->push_back(IdPair{id, b.id});
      }
    });
  }

  compare_span.Annotate("compared", compared);
  compare_span.Annotate("matched", matched);
  compare_span.End();
  comparisons_.fetch_add(compared, std::memory_order_relaxed);
  matches_.fetch_add(matched, std::memory_order_relaxed);
  // Match-funnel telemetry: candidates -> comparisons -> matches.  The
  // ratios are the paper's RR/PQ analogues at serving time (a drifting
  // comparisons/candidates ratio means the Eq. 2 tables stopped
  // discriminating).
  t_comparisons_->Add(compared);
  t_matches_->Add(matched);
}

Status LinkageService::Match(const Record& record,
                             std::vector<IdPair>* out) const {
  CBVLINK_FAILPOINT("service.match");
  const uint64_t start = NowNanos();
  telemetry::TraceSpan encode_span("encode");
  Result<EncodedRecord> encoded = encoder_->Encode(record);
  encode_span.End();
  if (!encoded.ok()) return encoded.status();
  MatchEncoded(encoded.value(), out);
  const uint64_t end = NowNanos();
  queries_.fetch_add(1, std::memory_order_relaxed);
  RecordSpan(start, end, &query_nanos_, &first_query_start_ns_,
             &last_query_end_ns_);
  t_queries_->Add(1);
  t_query_latency_->Record((end - start) / 1000);
  return Status::OK();
}

Status LinkageService::MatchAndInsert(const Record& record,
                                      std::vector<IdPair>* out) {
  CBVLINK_FAILPOINT("service.match");
  CBVLINK_FAILPOINT("service.insert");
  const uint64_t start = NowNanos();
  telemetry::TraceSpan encode_span("encode");
  Result<EncodedRecord> encoded = encoder_->Encode(record);
  encode_span.End();
  if (!encoded.ok()) return encoded.status();
  MatchEncoded(encoded.value(), out);
  const uint64_t mid = NowNanos();
  queries_.fetch_add(1, std::memory_order_relaxed);
  RecordSpan(start, mid, &query_nanos_, &first_query_start_ns_,
             &last_query_end_ns_);
  t_queries_->Add(1);
  t_query_latency_->Record((mid - start) / 1000);
  telemetry::TraceSpan insert_span("insert");
  InsertEncoded(encoded.value());
  insert_span.End();
  const uint64_t end = NowNanos();
  inserts_.fetch_add(1, std::memory_order_relaxed);
  RecordSpan(mid, end, &insert_nanos_, &first_insert_start_ns_,
             &last_insert_end_ns_);
  t_inserts_->Add(1);
  t_insert_latency_->Record((end - mid) / 1000);
  return JournalAppend(record);
}

Status LinkageService::InsertBatch(const std::vector<Record>& records) {
  std::mutex mu;
  Status first_error;
  telemetry::ScopedTimer batch_timer(t_batch_latency_);
  // Carry the caller's trace onto the pool threads: each chunk records
  // its own span into the request's collector (slot claiming makes the
  // concurrent writes safe; ParallelFor's completion orders the reads).
  const telemetry::TraceContext parent_ctx = telemetry::CurrentTraceContext();
  pool_->ParallelFor(records.size(),
                     [&](size_t /*chunk*/, size_t begin, size_t end) {
                       telemetry::ScopedTraceContext scope(
                           parent_ctx.collector, parent_ctx.parent_span_id);
                       telemetry::TraceSpan chunk_span("insert_chunk");
                       chunk_span.Annotate("begin", begin);
                       chunk_span.Annotate("count", end - begin);
                       for (size_t i = begin; i < end; ++i) {
                         Status st = InsertUnjournaled(records[i]);
                         if (!st.ok()) {
                           std::scoped_lock lock(mu);
                           if (first_error.ok()) first_error = st;
                           return;
                         }
                       }
                     });
  if (!first_error.ok()) return first_error;
  // Journal in record order after the parallel apply, so the journal's
  // frame order is deterministic for a given batch; sync once at the
  // batch boundary so the whole batch is durable before the caller's
  // acknowledgement even under a relaxed per-append fsync policy.
  std::shared_ptr<Journal> journal = this->journal();
  if (journal != nullptr) {
    telemetry::TraceSpan journal_span("journal");
    const uint64_t before = journal_span.active() ? journal->EndOffset() : 0;
    for (const Record& record : records) {
      CBVLINK_RETURN_NOT_OK(journal->AppendInsert(record));
    }
    if (journal->options().fsync_every != 0) {
      CBVLINK_RETURN_NOT_OK(journal->Sync());
    }
    if (journal_span.active()) {
      journal_span.Annotate("records", records.size());
      journal_span.Annotate("bytes", journal->EndOffset() - before);
    }
  }
  return Status::OK();
}

Status LinkageService::MatchBatch(const std::vector<Record>& records,
                                  std::vector<IdPair>* out) {
  std::mutex mu;
  Status first_error;
  telemetry::ScopedTimer batch_timer(t_batch_latency_);
  const telemetry::TraceContext parent_ctx = telemetry::CurrentTraceContext();
  pool_->ParallelFor(records.size(),
                     [&](size_t /*chunk*/, size_t begin, size_t end) {
                       telemetry::ScopedTraceContext scope(
                           parent_ctx.collector, parent_ctx.parent_span_id);
                       telemetry::TraceSpan chunk_span("match_chunk");
                       chunk_span.Annotate("begin", begin);
                       chunk_span.Annotate("count", end - begin);
                       std::vector<IdPair> local;
                       for (size_t i = begin; i < end; ++i) {
                         Status st = Match(records[i], &local);
                         if (!st.ok()) {
                           std::scoped_lock lock(mu);
                           if (first_error.ok()) first_error = st;
                           return;
                         }
                       }
                       std::scoped_lock lock(mu);
                       out->insert(out->end(), local.begin(), local.end());
                     });
  return first_error;
}

ServiceSnapshot LinkageService::ExportSnapshot() const {
  ServiceSnapshot snapshot;
  // Shared against the compactor only: an epoch swap or tombstone sweep
  // mid-export would tear the buckets/records/tombstones triple apart.
  // Mutators also hold this lock shared, so they are unaffected.
  std::shared_lock compaction_guard(compaction_mu_);
  // Read the sequence floor FIRST: any delete/update stamped at or below
  // it completed before this point (the sequence is assigned after the
  // state change), so its effect is in the export below and replay may
  // skip the frame.  Later-stamped mutations may or may not be captured;
  // their frames stay above the floor and replay re-applies them.
  snapshot.last_sequence = sequence_.load(std::memory_order_relaxed);
  for (const AttributeSpec& attr : config_.schema.attributes) {
    snapshot.attributes.push_back(SnapshotAttribute{
        attr.name, attr.alphabet->symbols(), attr.qgram.q, attr.qgram.pad});
  }
  snapshot.expected_qgrams = config_.expected_qgrams;
  snapshot.rule_text = config_.rule.ToString();
  snapshot.record_K = config_.record_K;
  snapshot.record_theta = config_.record_theta;
  snapshot.delta = config_.delta;
  snapshot.sizing_max_collisions = config_.sizing.max_collisions;
  snapshot.sizing_confidence_ratio = config_.sizing.confidence_ratio;
  snapshot.seed = config_.seed;
  snapshot.num_shards = options_.num_shards;
  snapshot.max_bucket_size = options_.max_bucket_size;
  snapshot.overflow_policy = static_cast<uint32_t>(options_.overflow_policy);
  // Buckets before records: Insert() stores the vector before indexing
  // it, so every id visible in a bucket here is already in the store —
  // the later record export can only be a superset, and Restore()'s
  // bucket-ids-are-stored invariant holds even when inserts race the
  // snapshot.
  snapshot.buckets = PinIndex()->ExportBuckets();
  snapshot.records = store_.Export();
  {
    std::shared_lock lock(tombstones_mu_);
    snapshot.tombstones.assign(tombstones_.begin(), tombstones_.end());
  }
  // A racing resurrect (insert of a tombstoned id) between the record
  // export and the tombstone read can list an id in both sets; keep the
  // record (the insert frame is journaled, so replay converges) and drop
  // the tombstone so the snapshot stays self-consistent.
  {
    std::unordered_set<RecordId> live;
    live.reserve(snapshot.records.size());
    for (const EncodedRecord& record : snapshot.records) live.insert(record.id);
    std::erase_if(snapshot.tombstones,
                  [&](RecordId id) { return live.contains(id); });
  }
  std::sort(snapshot.tombstones.begin(), snapshot.tombstones.end());
  return snapshot;
}

Status LinkageService::SaveSnapshot(std::ostream& out) const {
  return WriteServiceSnapshot(ExportSnapshot(), out);
}

Status LinkageService::SaveSnapshotToFile(const std::string& path) const {
  // Capture the journal mark BEFORE exporting: every frame below the
  // mark was applied before the export began and is therefore in the
  // snapshot, so dropping [0, mark) can never lose an acknowledged
  // insert.  Frames past the mark are kept even when the export also
  // caught them — replay's id-dedupe makes the overlap harmless.
  std::shared_ptr<Journal> journal = this->journal();
  const uint64_t mark = journal != nullptr ? journal->EndOffset() : 0;
  CBVLINK_RETURN_NOT_OK(WriteServiceSnapshotToFile(ExportSnapshot(), path));
  if (journal != nullptr) {
    CBVLINK_RETURN_NOT_OK(journal->DropCommitted(mark));
  }
  return Status::OK();
}

namespace {

/// Cross-checks a decoded snapshot before any of it is acted on: a
/// snapshot that passed the CRC can still be semantically inconsistent
/// (hand-edited, produced by a buggy writer, or a v1 file with flipped
/// bits predating checksums).
Status ValidateSnapshot(const ServiceSnapshot& snapshot) {
  if (snapshot.attributes.empty()) {
    return Status::InvalidArgument("snapshot has no attributes");
  }
  if (snapshot.expected_qgrams.size() != snapshot.attributes.size()) {
    return Status::InvalidArgument(
        "snapshot expected_qgrams/attribute count mismatch");
  }
  for (double b : snapshot.expected_qgrams) {
    if (!std::isfinite(b) || b <= 0) {
      return Status::InvalidArgument(
          "snapshot expected q-gram counts must be finite and positive");
    }
  }
  if (!std::isfinite(snapshot.delta) || snapshot.delta <= 0 ||
      snapshot.delta >= 1) {
    return Status::InvalidArgument(
        "snapshot delta must be finite and in (0, 1)");
  }
  if (!std::isfinite(snapshot.sizing_max_collisions) ||
      snapshot.sizing_max_collisions <= 0) {
    return Status::InvalidArgument(
        "snapshot sizing_max_collisions must be finite and positive");
  }
  if (!std::isfinite(snapshot.sizing_confidence_ratio) ||
      snapshot.sizing_confidence_ratio <= 0 ||
      snapshot.sizing_confidence_ratio > 1) {
    return Status::InvalidArgument(
        "snapshot sizing_confidence_ratio must be finite and in (0, 1]");
  }
  if (snapshot.num_shards == 0 ||
      (snapshot.num_shards & (snapshot.num_shards - 1)) != 0) {
    return Status::InvalidArgument(
        "snapshot num_shards must be a nonzero power of two");
  }
  if (snapshot.overflow_policy > 1) {
    return Status::InvalidArgument("snapshot overflow policy unknown");
  }
  std::unordered_set<RecordId> stored;
  stored.reserve(snapshot.records.size());
  for (const EncodedRecord& record : snapshot.records) {
    if (!stored.insert(record.id).second) {
      return Status::InvalidArgument(
          "snapshot contains duplicate record ids");
    }
  }
  std::unordered_set<RecordId> tombstoned;
  tombstoned.reserve(snapshot.tombstones.size());
  for (RecordId id : snapshot.tombstones) {
    if (stored.contains(id)) {
      return Status::InvalidArgument(
          "snapshot tombstones a record id it also stores");
    }
    tombstoned.insert(id);
  }
  for (const IndexBucketSnapshot& bucket : snapshot.buckets) {
    for (RecordId id : bucket.ids) {
      // A tombstoned id may linger in buckets until compaction; anything
      // else unbacked is corruption.
      if (!stored.contains(id) && !tombstoned.contains(id)) {
        return Status::InvalidArgument(
            "snapshot bucket references a record id that is neither "
            "stored nor tombstoned");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<LinkageService>> LinkageService::Restore(
    const ServiceSnapshot& snapshot) {
  CBVLINK_RETURN_NOT_OK(ValidateSnapshot(snapshot));
  Result<Rule> rule = ParseRule(snapshot.rule_text);
  if (!rule.ok()) return rule.status();

  // Rebuild the schema over owned alphabets (the snapshot stores each
  // alphabet by value).
  std::vector<std::unique_ptr<Alphabet>> alphabets;
  CbvHbConfig config;
  for (const SnapshotAttribute& attr : snapshot.attributes) {
    alphabets.push_back(std::make_unique<Alphabet>(attr.alphabet_symbols));
    config.schema.attributes.push_back(AttributeSpec{
        attr.name, alphabets.back().get(),
        QGramOptions{static_cast<size_t>(attr.qgram_q), attr.qgram_pad}});
  }
  config.rule = std::move(rule).value();
  config.expected_qgrams = snapshot.expected_qgrams;
  config.record_K = static_cast<size_t>(snapshot.record_K);
  config.record_theta = static_cast<size_t>(snapshot.record_theta);
  config.delta = snapshot.delta;
  config.sizing.max_collisions = snapshot.sizing_max_collisions;
  config.sizing.confidence_ratio = snapshot.sizing_confidence_ratio;
  config.seed = snapshot.seed;

  LinkageServiceOptions options;
  options.num_shards = static_cast<size_t>(snapshot.num_shards);
  options.max_bucket_size = static_cast<size_t>(snapshot.max_bucket_size);
  options.overflow_policy =
      snapshot.overflow_policy == 0 ? OverflowPolicy::kTruncate
                                    : OverflowPolicy::kScanFallback;

  Result<std::unique_ptr<LinkageService>> service =
      Create(std::move(config), options);
  if (!service.ok()) return service.status();
  service.value()->owned_alphabets_ = std::move(alphabets);

  const size_t expected_bits = service.value()->encoder_->total_bits();
  for (const EncodedRecord& record : snapshot.records) {
    if (record.bits.size() != expected_bits) {
      return Status::InvalidArgument(
          "snapshot record width does not match the restored encoder");
    }
  }
  // Widths validated; load the store over the service pool (Add is
  // thread-safe and ids are unique, so the result is order-independent)
  // and the buckets through the index's shard-parallel restore.
  ThreadPool* pool = service.value()->pool_;
  pool->ParallelFor(snapshot.records.size(),
                    [&](size_t, size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) {
                        service.value()->store_.Add(snapshot.records[i]);
                      }
                    });
  CBVLINK_RETURN_NOT_OK(
      service.value()->index_->BulkRestore(snapshot.buckets, pool));
  service.value()->inserts_.store(snapshot.records.size(),
                                  std::memory_order_relaxed);
  // Mutation state (version 3+; defaults for older snapshots): restored
  // tombstones keep deleted records dead across the restart, and the
  // sequence floor lets journal replay skip delete/update frames the
  // snapshot already reflects.
  service.value()->tombstones_.insert(snapshot.tombstones.begin(),
                                      snapshot.tombstones.end());
  service.value()->tombstone_count_.store(
      service.value()->tombstones_.size(), std::memory_order_relaxed);
  service.value()->sequence_.store(snapshot.last_sequence,
                                   std::memory_order_relaxed);
  return service;
}

Result<std::unique_ptr<LinkageService>> LinkageService::RestoreFromFile(
    const std::string& path) {
  Status primary_error;
  {
    Result<ServiceSnapshot> snapshot = ReadServiceSnapshotFromFile(path);
    if (snapshot.ok()) {
      Result<std::unique_ptr<LinkageService>> service =
          Restore(snapshot.value());
      if (service.ok()) return service;
      primary_error = service.status();
    } else {
      primary_error = snapshot.status();
    }
  }
  // Primary unreadable or invalid: the atomic saver keeps the previous
  // good snapshot hard-linked at path.bak — the newest committed state
  // that can still be valid.  (path.tmp is deliberately not a candidate:
  // rename is the commit point, so tmp contents were never committed.)
  Result<ServiceSnapshot> backup =
      ReadServiceSnapshotFromFile(SnapshotBackupPath(path));
  if (backup.ok()) {
    Result<std::unique_ptr<LinkageService>> service =
        Restore(backup.value());
    if (service.ok()) {
      service.value()->restore_fallbacks_.fetch_add(
          1, std::memory_order_relaxed);
      telemetry::Registry::Global()
          .GetCounter("service_restore_fallbacks_total")
          ->Add(1);
      return service;
    }
  }
  return primary_error;
}

ServiceMetrics LinkageService::metrics() const {
  ServiceMetrics m;
  m.inserts = inserts_.load(std::memory_order_relaxed);
  m.deletes = deletes_.load(std::memory_order_relaxed);
  m.updates = updates_.load(std::memory_order_relaxed);
  m.live_records = store_.size();
  m.tombstones = tombstone_count_.load(std::memory_order_relaxed);
  m.compactions = compactions_.load(std::memory_order_relaxed);
  m.compaction_reclaimed =
      compaction_reclaimed_.load(std::memory_order_relaxed);
  m.queries = queries_.load(std::memory_order_relaxed);
  m.candidate_occurrences =
      candidate_occurrences_.load(std::memory_order_relaxed);
  m.comparisons = comparisons_.load(std::memory_order_relaxed);
  m.matches = matches_.load(std::memory_order_relaxed);
  m.scan_fallbacks = scan_fallbacks_.load(std::memory_order_relaxed);
  m.restore_fallbacks = restore_fallbacks_.load(std::memory_order_relaxed);
  m.skipped_rows = skipped_rows_.load(std::memory_order_relaxed);
  m.dropped_entries = PinIndex()->dropped_entries();
  m.insert_seconds =
      static_cast<double>(insert_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  m.query_seconds =
      static_cast<double>(query_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  const auto wall_span = [](const std::atomic<uint64_t>& first,
                            const std::atomic<uint64_t>& last) {
    const uint64_t start = first.load(std::memory_order_relaxed);
    const uint64_t end = last.load(std::memory_order_relaxed);
    return end > start ? static_cast<double>(end - start) * 1e-9 : 0.0;
  };
  m.insert_wall_seconds =
      wall_span(first_insert_start_ns_, last_insert_end_ns_);
  m.query_wall_seconds = wall_span(first_query_start_ns_, last_query_end_ns_);
  return m;
}

void LinkageService::RecordSkippedRows(uint64_t n) {
  skipped_rows_.fetch_add(n, std::memory_order_relaxed);
  telemetry::Registry::Global()
      .GetCounter("service_skipped_rows_total")
      ->Add(n);
}

void LinkageService::FillTelemetry(telemetry::Registry* registry) const {
  telemetry::Registry& reg =
      registry != nullptr ? *registry : telemetry::Registry::Global();

  // Which Hamming kernel set the process dispatches to (scalar / avx2 /
  // avx512): the named series is set to 1, so a scrape can alert on an
  // unexpected downgrade after a deploy or host move.
  reg.GetGauge(telemetry::LabeledName("hamming_kernel_active", "kernel",
                                      ActiveKernels().name))
      ->Set(1.0);
  reg.GetGauge("service_records")->Set(static_cast<double>(store_.size()));
  reg.GetGauge("service_shards")
      ->Set(static_cast<double>(options_.num_shards));
  const ServiceMetrics m = metrics();
  reg.GetGauge("service_query_wall_seconds")->Set(m.query_wall_seconds);
  reg.GetGauge("service_insert_wall_seconds")->Set(m.insert_wall_seconds);
  reg.GetGauge("service_queries_per_second")->Set(m.QueriesPerSecond());

  // Mutation-lifecycle gauges: live vs dead is the compactor's trigger
  // ratio, surfaced so operators can see reclaim pressure build.
  reg.GetGauge("index_live")->Set(static_cast<double>(store_.size()));
  reg.GetGauge("index_dead")->Set(static_cast<double>(
      tombstone_count_.load(std::memory_order_relaxed)));
  reg.GetGauge("compaction_tombstone_ratio")
      ->Set([&]() -> double {
        const double dead = static_cast<double>(
            tombstone_count_.load(std::memory_order_relaxed));
        const double live = static_cast<double>(store_.size());
        return dead + live == 0 ? 0.0 : dead / (dead + live);
      }());

  const std::shared_ptr<ShardedHammingIndex> index = PinIndex();
  const IndexHealth health = index->CollectHealth();
  reg.GetGauge("lsh_tables")->Set(static_cast<double>(index->L()));
  reg.GetGauge("lsh_k")->Set(static_cast<double>(index->K()));
  reg.GetGauge("lsh_dropped_entries")
      ->Set(static_cast<double>(health.dropped_entries));
  reg.GetGauge("lsh_overflowed_buckets")
      ->Set(static_cast<double>(health.overflowed_buckets));
  for (size_t l = 0; l < health.tables.size(); ++l) {
    const TableHealth& table = health.tables[l];
    const std::string label = StrFormat("%zu", l);
    reg.GetGauge(telemetry::LabeledName("lsh_table_buckets", "table", label))
        ->Set(static_cast<double>(table.buckets));
    reg.GetGauge(telemetry::LabeledName("lsh_table_entries", "table", label))
        ->Set(static_cast<double>(table.entries));
    reg.GetGauge(
           telemetry::LabeledName("lsh_table_max_bucket", "table", label))
        ->Set(static_cast<double>(table.max_bucket));
    reg.GetGauge(
           telemetry::LabeledName("lsh_table_mean_bucket", "table", label))
        ->Set(table.mean_bucket);
  }
  // Cross-table occupancy: bin k counts buckets of size in
  // [2^k, 2^(k+1)).  All bins are always exported so a scrape sees the
  // full distribution shape, including its zeros.
  for (size_t bin = 0; bin < IndexHealth::kOccupancySlots; ++bin) {
    reg.GetGauge(telemetry::LabeledName("lsh_bucket_occupancy", "size_log2",
                                        StrFormat("%zu", bin)))
        ->Set(static_cast<double>(health.occupancy[bin]));
  }
}

}  // namespace cbvlink
