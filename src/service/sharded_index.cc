#include "src/service/sharded_index.h"

#include <algorithm>
#include <bit>
#include <mutex>

#include "src/common/failpoint.h"
#include "src/common/thread_pool.h"
#include "src/telemetry/metrics.h"

namespace cbvlink {

namespace {

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ShardedHammingIndex::ShardedHammingIndex(HammingLshFamily family,
                                         size_t num_shards,
                                         size_t max_bucket_size)
    : family_(std::move(family)),
      shard_mask_(num_shards - 1),
      max_bucket_size_(max_bucket_size) {
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->tables.resize(family_.L());
    shards_.push_back(std::move(shard));
  }
}

Result<ShardedHammingIndex> ShardedHammingIndex::Create(
    HammingLshFamily family, const ShardedIndexOptions& options) {
  const size_t num_shards =
      RoundUpPowerOfTwo(std::max<size_t>(options.num_shards, 1));
  return ShardedHammingIndex(std::move(family), num_shards,
                             options.max_bucket_size);
}

void ShardedHammingIndex::Insert(const EncodedRecord& record) {
  CBVLINK_FAILPOINT_DELAY("index.insert");
  // Keys are computed lock-free; each group then takes exactly one
  // exclusive shard lock.
  for (size_t l = 0; l < family_.L(); ++l) {
    const uint64_t key = family_.Key(record.bits, l);
    Shard& shard = *shards_[ShardOf(key)];
    std::unique_lock lock(shard.mu);
    Bucket& bucket = shard.tables[l][key];
    if (max_bucket_size_ != 0 && bucket.ids.size() >= max_bucket_size_) {
      bucket.overflowed = true;
      shard.dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    bucket.ids.push_back(record.id);
  }
}

void ShardedHammingIndex::BulkInsert(std::span<const EncodedRecord> records,
                                     ThreadPool* pool, size_t min_chunk) {
  telemetry::Registry& reg = telemetry::Registry::Global();
  telemetry::ScopedTimer timer(
      reg.GetHistogram("index_build_batch_latency_us"));
  if (pool == nullptr || pool->num_threads() <= 1 || records.size() <= 1) {
    for (const EncodedRecord& record : records) Insert(record);
    reg.GetCounter("index_build_records_total")->Add(records.size());
    return;
  }
  const size_t L = family_.L();
  const size_t num_shards = shards_.size();
  // Phase 1: stage (group, key, id) entries per (chunk, shard).  Within a
  // chunk a shard's entries are appended in (record, group) order, and
  // chunk boundaries are deterministic, so concatenating chunks in order
  // reproduces the per-shard arrival sequence of a serial Insert() loop.
  struct Staged {
    uint32_t l;
    uint64_t key;
    RecordId id;
  };
  std::vector<std::vector<std::vector<Staged>>> staged(
      pool->num_threads(),
      std::vector<std::vector<Staged>>(num_shards));
  pool->ParallelFor(
      records.size(), min_chunk, [&](size_t chunk, size_t begin, size_t end) {
        std::vector<std::vector<Staged>>& mine = staged[chunk];
        for (size_t i = begin; i < end; ++i) {
          for (size_t l = 0; l < L; ++l) {
            const uint64_t key = family_.Key(records[i].bits, l);
            mine[ShardOf(key)].push_back(
                Staged{static_cast<uint32_t>(l), key, records[i].id});
          }
        }
      });
  // Phase 2: each shard is merged by exactly one worker under one
  // exclusive lock, applying the staged chunks in chunk order — the same
  // bucket contents, overflow flags and drop counts as serial Insert().
  pool->ParallelFor(num_shards, [&](size_t, size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      Shard& shard = *shards_[s];
      std::unique_lock lock(shard.mu);
      for (const std::vector<std::vector<Staged>>& chunk : staged) {
        for (const Staged& entry : chunk[s]) {
          Bucket& bucket = shard.tables[entry.l][entry.key];
          if (max_bucket_size_ != 0 &&
              bucket.ids.size() >= max_bucket_size_) {
            bucket.overflowed = true;
            shard.dropped.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          bucket.ids.push_back(entry.id);
        }
      }
    }
  });
  reg.GetCounter("index_build_records_total")->Add(records.size());
}

void ShardedHammingIndex::Collect(const BitVector& probe,
                                  std::vector<RecordId>* out,
                                  bool* saw_overflow) const {
  CBVLINK_FAILPOINT_DELAY("index.collect");
  if (saw_overflow != nullptr) *saw_overflow = false;
  for (size_t l = 0; l < family_.L(); ++l) {
    const uint64_t key = family_.Key(probe, l);
    const Shard& shard = *shards_[ShardOf(key)];
    std::shared_lock lock(shard.mu);
    const auto it = shard.tables[l].find(key);
    if (it == shard.tables[l].end()) continue;
    out->insert(out->end(), it->second.ids.begin(), it->second.ids.end());
    if (it->second.overflowed && saw_overflow != nullptr) {
      *saw_overflow = true;
    }
  }
}

void ShardedHammingIndex::ForEachCandidate(
    const BitVector& probe, const std::function<void(RecordId)>& cb) const {
  std::vector<RecordId> candidates;
  Collect(probe, &candidates, nullptr);
  for (RecordId id : candidates) cb(id);
}

Status ShardedHammingIndex::RestoreBucket(
    const IndexBucketSnapshot& bucket) {
  if (bucket.group >= family_.L()) {
    return Status::InvalidArgument("bucket group out of range");
  }
  Shard& shard = *shards_[ShardOf(bucket.key)];
  std::unique_lock lock(shard.mu);
  Bucket& target = shard.tables[bucket.group][bucket.key];
  target.ids = bucket.ids;
  target.overflowed = bucket.overflowed;
  return Status::OK();
}

Status ShardedHammingIndex::BulkRestore(
    const std::vector<IndexBucketSnapshot>& buckets, ThreadPool* pool) {
  for (const IndexBucketSnapshot& bucket : buckets) {
    if (bucket.group >= family_.L()) {
      return Status::InvalidArgument("bucket group out of range");
    }
  }
  if (pool == nullptr || pool->num_threads() <= 1 || buckets.size() <= 1) {
    for (const IndexBucketSnapshot& bucket : buckets) {
      CBVLINK_RETURN_NOT_OK(RestoreBucket(bucket));
    }
    return Status::OK();
  }
  // (group, key) pairs are unique within a snapshot, so restoring the
  // buckets of different shards concurrently is order-independent.
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    by_shard[ShardOf(buckets[i].key)].push_back(i);
  }
  pool->ParallelFor(shards_.size(), [&](size_t, size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      if (by_shard[s].empty()) continue;
      Shard& shard = *shards_[s];
      std::unique_lock lock(shard.mu);
      for (size_t i : by_shard[s]) {
        Bucket& target = shard.tables[buckets[i].group][buckets[i].key];
        target.ids = buckets[i].ids;
        target.overflowed = buckets[i].overflowed;
      }
    }
  });
  return Status::OK();
}

std::vector<IndexBucketSnapshot> ShardedHammingIndex::ExportBuckets() const {
  std::vector<IndexBucketSnapshot> out;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (size_t l = 0; l < shard->tables.size(); ++l) {
      for (const auto& [key, bucket] : shard->tables[l]) {
        if (bucket.ids.empty() && !bucket.overflowed) continue;
        out.push_back(
            IndexBucketSnapshot{l, key, bucket.overflowed, bucket.ids});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const IndexBucketSnapshot& a,
                                       const IndexBucketSnapshot& b) {
    return a.group != b.group ? a.group < b.group : a.key < b.key;
  });
  return out;
}

size_t ShardedHammingIndex::NumBuckets() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& table : shard->tables) total += table.size();
  }
  return total;
}

size_t ShardedHammingIndex::NumEntries() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& table : shard->tables) {
      for (const auto& [key, bucket] : table) total += bucket.ids.size();
    }
  }
  return total;
}

size_t ShardedHammingIndex::MaxBucketSize() const {
  size_t best = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& table : shard->tables) {
      for (const auto& [key, bucket] : table) {
        best = std::max(best, bucket.ids.size());
      }
    }
  }
  return best;
}

IndexHealth ShardedHammingIndex::CollectHealth() const {
  IndexHealth health;
  health.tables.resize(family_.L());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (size_t l = 0; l < shard->tables.size(); ++l) {
      TableHealth& table = health.tables[l];
      for (const auto& [key, bucket] : shard->tables[l]) {
        if (bucket.overflowed) {
          ++table.overflowed;
          ++health.overflowed_buckets;
        }
        if (bucket.ids.empty()) continue;
        ++table.buckets;
        table.entries += bucket.ids.size();
        table.max_bucket = std::max(table.max_bucket, bucket.ids.size());
        const size_t slot = std::min(
            IndexHealth::kOccupancySlots - 1,
            static_cast<size_t>(std::bit_width(bucket.ids.size()) - 1));
        ++health.occupancy[slot];
      }
    }
    health.dropped_entries +=
        shard->dropped.load(std::memory_order_relaxed);
  }
  for (TableHealth& table : health.tables) {
    table.mean_bucket = table.buckets == 0
                            ? 0
                            : static_cast<double>(table.entries) /
                                  static_cast<double>(table.buckets);
  }
  return health;
}

uint64_t ShardedHammingIndex::dropped_entries() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace cbvlink
