#include "src/service/sharded_index.h"

#include <algorithm>
#include <bit>
#include <mutex>

#include "src/common/failpoint.h"

namespace cbvlink {

namespace {

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ShardedHammingIndex::ShardedHammingIndex(HammingLshFamily family,
                                         size_t num_shards,
                                         size_t max_bucket_size)
    : family_(std::move(family)),
      shard_mask_(num_shards - 1),
      max_bucket_size_(max_bucket_size) {
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->tables.resize(family_.L());
    shards_.push_back(std::move(shard));
  }
}

Result<ShardedHammingIndex> ShardedHammingIndex::Create(
    HammingLshFamily family, const ShardedIndexOptions& options) {
  const size_t num_shards =
      RoundUpPowerOfTwo(std::max<size_t>(options.num_shards, 1));
  return ShardedHammingIndex(std::move(family), num_shards,
                             options.max_bucket_size);
}

void ShardedHammingIndex::Insert(const EncodedRecord& record) {
  CBVLINK_FAILPOINT_DELAY("index.insert");
  // Keys are computed lock-free; each group then takes exactly one
  // exclusive shard lock.
  for (size_t l = 0; l < family_.L(); ++l) {
    const uint64_t key = family_.Key(record.bits, l);
    Shard& shard = *shards_[ShardOf(key)];
    std::unique_lock lock(shard.mu);
    Bucket& bucket = shard.tables[l][key];
    if (max_bucket_size_ != 0 && bucket.ids.size() >= max_bucket_size_) {
      bucket.overflowed = true;
      shard.dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    bucket.ids.push_back(record.id);
  }
}

void ShardedHammingIndex::Collect(const BitVector& probe,
                                  std::vector<RecordId>* out,
                                  bool* saw_overflow) const {
  CBVLINK_FAILPOINT_DELAY("index.collect");
  if (saw_overflow != nullptr) *saw_overflow = false;
  for (size_t l = 0; l < family_.L(); ++l) {
    const uint64_t key = family_.Key(probe, l);
    const Shard& shard = *shards_[ShardOf(key)];
    std::shared_lock lock(shard.mu);
    const auto it = shard.tables[l].find(key);
    if (it == shard.tables[l].end()) continue;
    out->insert(out->end(), it->second.ids.begin(), it->second.ids.end());
    if (it->second.overflowed && saw_overflow != nullptr) {
      *saw_overflow = true;
    }
  }
}

void ShardedHammingIndex::ForEachCandidate(
    const BitVector& probe, const std::function<void(RecordId)>& cb) const {
  std::vector<RecordId> candidates;
  Collect(probe, &candidates, nullptr);
  for (RecordId id : candidates) cb(id);
}

Status ShardedHammingIndex::RestoreBucket(
    const IndexBucketSnapshot& bucket) {
  if (bucket.group >= family_.L()) {
    return Status::InvalidArgument("bucket group out of range");
  }
  Shard& shard = *shards_[ShardOf(bucket.key)];
  std::unique_lock lock(shard.mu);
  Bucket& target = shard.tables[bucket.group][bucket.key];
  target.ids = bucket.ids;
  target.overflowed = bucket.overflowed;
  return Status::OK();
}

std::vector<IndexBucketSnapshot> ShardedHammingIndex::ExportBuckets() const {
  std::vector<IndexBucketSnapshot> out;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (size_t l = 0; l < shard->tables.size(); ++l) {
      for (const auto& [key, bucket] : shard->tables[l]) {
        if (bucket.ids.empty() && !bucket.overflowed) continue;
        out.push_back(
            IndexBucketSnapshot{l, key, bucket.overflowed, bucket.ids});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const IndexBucketSnapshot& a,
                                       const IndexBucketSnapshot& b) {
    return a.group != b.group ? a.group < b.group : a.key < b.key;
  });
  return out;
}

size_t ShardedHammingIndex::NumBuckets() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& table : shard->tables) total += table.size();
  }
  return total;
}

size_t ShardedHammingIndex::NumEntries() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& table : shard->tables) {
      for (const auto& [key, bucket] : table) total += bucket.ids.size();
    }
  }
  return total;
}

size_t ShardedHammingIndex::MaxBucketSize() const {
  size_t best = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& table : shard->tables) {
      for (const auto& [key, bucket] : table) {
        best = std::max(best, bucket.ids.size());
      }
    }
  }
  return best;
}

IndexHealth ShardedHammingIndex::CollectHealth() const {
  IndexHealth health;
  health.tables.resize(family_.L());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (size_t l = 0; l < shard->tables.size(); ++l) {
      TableHealth& table = health.tables[l];
      for (const auto& [key, bucket] : shard->tables[l]) {
        if (bucket.overflowed) {
          ++table.overflowed;
          ++health.overflowed_buckets;
        }
        if (bucket.ids.empty()) continue;
        ++table.buckets;
        table.entries += bucket.ids.size();
        table.max_bucket = std::max(table.max_bucket, bucket.ids.size());
        const size_t slot = std::min(
            IndexHealth::kOccupancySlots - 1,
            static_cast<size_t>(std::bit_width(bucket.ids.size()) - 1));
        ++health.occupancy[slot];
      }
    }
    health.dropped_entries +=
        shard->dropped.load(std::memory_order_relaxed);
  }
  for (TableHealth& table : health.tables) {
    table.mean_bucket = table.buckets == 0
                            ? 0
                            : static_cast<double>(table.entries) /
                                  static_cast<double>(table.buckets);
  }
  return health;
}

uint64_t ShardedHammingIndex::dropped_entries() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace cbvlink
