// LinkageService — the long-lived, concurrent serving layer over cBV-HB.
//
// The introduction motivates 120-bit embeddings with "nearly real-time
// analysis ... involving streaming data"; this facade turns the one-shot
// pipeline into that service: a fixed encoder, a sharded blocking index
// (src/service/sharded_index.h), and a concurrent vector store behind
// thread-safe Match / MatchAndInsert calls, batch APIs driven by a thread
// pool, per-call latency and volume counters, and snapshot/restore so a
// restarted process resumes warm from disk (src/io/serialization.h).
//
// Concurrency model: Match is wait-free against other Matches (shared
// locks only); Insert takes exclusive locks one shard at a time.  A
// MatchAndInsert is atomic per shard, not globally: two concurrent
// arrivals of the same entity may each miss the other (both match before
// either inserts) — the same anomaly any eventually-consistent ingest
// path has, and why batch deduplication remains available offline.
//
// Mutation lifecycle (DESIGN.md §15): Delete tombstones a record in O(1)
// — the vector leaves the store, the id joins the tombstone set, and the
// blocking tables keep their (now stale) entries, which the matcher
// skips because the store lookup fails.  Update re-encodes in place and
// inserts the new blocking keys; stale keys produce candidates that
// classify on the *current* bits, so results match a fresh build.  A
// background compactor reclaims the stale entries: it rebuilds the index
// from the live survivors offline and publishes it with an atomic
// shared_ptr swap — readers pin the index epoch by holding the
// shared_ptr, so an in-flight Match keeps its epoch until it drains and
// never observes torn state; match output is byte-identical before and
// after compaction at any thread count.  Mutators hold a shared
// compaction lock; only the compactor's rebuild+swap takes it exclusive,
// so compaction stalls writes (briefly) but never reads.

#ifndef CBVLINK_SERVICE_LINKAGE_SERVICE_H_
#define CBVLINK_SERVICE_LINKAGE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/blocking/matcher.h"
#include "src/common/execution.h"
#include "src/common/thread_pool.h"
#include "src/io/journal.h"
#include "src/io/serialization.h"
#include "src/linkage/cbv_hb_linker.h"
#include "src/service/sharded_index.h"
#include "src/text/alphabet.h"

namespace cbvlink {

namespace telemetry {
class Counter;
class Histogram;
class Registry;
}  // namespace telemetry

/// What a query does when a probed bucket hit the bucket-size cap.
enum class OverflowPolicy : uint32_t {
  /// Accept the capped bucket as-is (bounded latency, possible recall
  /// loss on the overpopulated key).
  kTruncate = 0,
  /// Additionally scan the whole vector store for that query, so recall
  /// is preserved at a latency cost paid only by affected queries.
  kScanFallback = 1,
};

/// Service-layer options on top of CbvHbConfig.
struct LinkageServiceOptions {
  /// Lock shards for the blocking index and the vector store.
  size_t num_shards = 16;
  /// Bucket entry cap; 0 = unlimited.
  size_t max_bucket_size = 0;
  OverflowPolicy overflow_policy = OverflowPolicy::kScanFallback;
  /// Execution policy for the batch APIs and snapshot restore.  A
  /// supplied pool is borrowed (must outlive the service); otherwise the
  /// service owns a pool of `execution.num_threads` workers
  /// (0 = hardware concurrency, the service default).
  ExecutionOptions execution = ExecutionOptions::WithThreads(0);
  /// Dead-slot ratio (tombstones / (live + tombstones)) at which the
  /// background compactor rewrites the index.  Only consulted by
  /// StartBackgroundCompaction.
  double compaction_dead_ratio = 0.25;
  /// Poll cadence of the background compactor thread.
  std::chrono::milliseconds compaction_interval{200};
};

/// A point-in-time copy of the service counters.
struct ServiceMetrics {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t updates = 0;
  /// Records currently live (stored and not tombstoned).
  uint64_t live_records = 0;
  /// Tombstoned ids awaiting compaction.
  uint64_t tombstones = 0;
  /// Compaction runs completed, and stale index entries they reclaimed.
  uint64_t compactions = 0;
  uint64_t compaction_reclaimed = 0;
  uint64_t queries = 0;
  uint64_t candidate_occurrences = 0;
  uint64_t comparisons = 0;
  uint64_t matches = 0;
  uint64_t scan_fallbacks = 0;
  uint64_t dropped_entries = 0;
  /// 1 when RestoreFromFile served this process from the .bak snapshot
  /// because the primary was corrupt.
  uint64_t restore_fallbacks = 0;
  /// Malformed input rows the feeding layer skipped (RecordSkippedRows).
  uint64_t skipped_rows = 0;
  /// Busy time summed across calls — and across threads for the batch
  /// APIs, so with T workers this can exceed wall time by up to T×.
  double insert_seconds = 0;
  double query_seconds = 0;
  /// Wall-clock span from the first call's start to the last call's
  /// end (0 before any call).  Under the batch APIs this is the real
  /// elapsed time, not the per-thread sum; it also includes idle gaps
  /// between calls, so it measures the serving window, not busy time.
  double insert_wall_seconds = 0;
  double query_wall_seconds = 0;

  /// Mean per-call latency (busy time / calls; thread count does not
  /// distort this one).
  double AvgQueryMicros() const {
    return queries == 0 ? 0 : query_seconds * 1e6 / static_cast<double>(queries);
  }
  /// Wall-clock throughput: queries / query_wall_seconds.  This is the
  /// number operators compare against offered load.
  double QueriesPerSecond() const {
    return query_wall_seconds <= 0
               ? 0
               : static_cast<double>(queries) / query_wall_seconds;
  }
  /// Per-thread throughput: queries / summed busy seconds.  With T
  /// batch workers this is ~QueriesPerSecond() / T — useful for
  /// spotting per-core regressions, misleading as "QPS" (the bug the
  /// old single QueriesPerSecond() had).
  double PerThreadQueriesPerSecond() const {
    return query_seconds <= 0 ? 0 : static_cast<double>(queries) / query_seconds;
  }
};

/// Id -> BitVector storage sharded like the index, so concurrent Match
/// calls can retrieve vectors while inserts land.  Find() copies the
/// vector out under the shard lock (a pointer would dangle on rehash).
class ConcurrentVectorStore {
 public:
  explicit ConcurrentVectorStore(size_t num_shards);

  void Add(const EncodedRecord& record);

  /// Erases `id`; returns true when it was stored.  After a Remove every
  /// lookup (Find/CopyWords/Contains) reports the id unknown, which is
  /// exactly the state the matcher already skips — deletion needs no
  /// matcher changes.
  bool Remove(RecordId id);

  /// Copies the vector for `id` into `*out`; false when unknown.
  bool Find(RecordId id, BitVector* out) const;

  /// Copies the raw words of `id` into `dst` (capacity `num_words`);
  /// false when the id is unknown or its vector does not hold exactly
  /// `num_words` words.  The allocation-free gather behind the batched
  /// Hamming kernels: the caller stages candidates in a flat scratch
  /// buffer instead of copying BitVector objects.
  bool CopyWords(RecordId id, size_t num_words, uint64_t* dst) const;

  /// True when `id` is stored (no vector copy — the journal-replay
  /// dedupe check).
  bool Contains(RecordId id) const;

  /// Invokes `fn(id, bits)` for every stored record, one shard at a time
  /// under that shard's shared lock.  Weakly consistent against
  /// concurrent Adds (a record inserted mid-scan may or may not appear).
  void ForEach(
      const std::function<void(RecordId, const BitVector&)>& fn) const;

  size_t size() const;

  /// Every stored record, ordered by id (snapshot determinism).
  std::vector<EncodedRecord> Export() const;

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<RecordId, BitVector> vectors;
  };

  size_t ShardOf(RecordId id) const { return id & mask_; }

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t mask_;
};

/// The concurrent linkage service.  All public methods are thread-safe.
class LinkageService {
 public:
  /// Creates a service.  `config` follows CbvHbLinker semantics except
  /// that attribute-level blocking is rejected (the sharded index covers
  /// record-level HB).  When config.expected_qgrams is empty they are
  /// estimated from `calibration_sample` (which must then be non-empty).
  static Result<std::unique_ptr<LinkageService>> Create(
      CbvHbConfig config, LinkageServiceOptions options = {},
      const std::vector<Record>& calibration_sample = {});

  /// Rebuilds a service from a snapshot: the encoder and LSH family are
  /// reproduced from the persisted configuration and seed; the store,
  /// blocking tables, and (version 3+) the mutation state — tombstoned
  /// ids and the delete/update sequence floor — are loaded from the
  /// persisted data, so a restore keeps deleted records dead.  The
  /// snapshot is semantically validated first (finite parameters,
  /// power-of-two num_shards, known overflow policy, unique record ids,
  /// tombstones disjoint from the records, every bucket id backed by a
  /// stored or tombstoned record, record widths matching the rebuilt
  /// encoder) — InvalidArgument on any violation.
  static Result<std::unique_ptr<LinkageService>> Restore(
      const ServiceSnapshot& snapshot);

  /// Restores the snapshotted records *and tombstones* from `path`; when
  /// the primary file is corrupt or invalid, falls back to the backup
  /// the atomic saver keeps at SnapshotBackupPath(path)
  /// (metrics().restore_fallbacks records the fallback).  `path.tmp` is
  /// never trusted — rename is the commit point.  Returns the primary's
  /// error when both fail.
  static Result<std::unique_ptr<LinkageService>> RestoreFromFile(
      const std::string& path);

  /// Stops the background compactor, if running.
  ~LinkageService();

  /// Encodes and indexes one registry record.
  Status Insert(const Record& record);

  /// Matches one query against everything indexed so far; appends
  /// (registry_id, query_id) pairs to `out`.  Never blocks other Match
  /// calls.
  Status Match(const Record& record, std::vector<IdPair>* out) const;

  /// Match, then insert the query so future arrivals can link to it.
  Status MatchAndInsert(const Record& record, std::vector<IdPair>* out);

  /// Tombstones `id`: the vector leaves the store immediately (O(1); no
  /// index surgery — stale bucket entries are skipped by every matcher
  /// and reclaimed by compaction), the delete is journaled with its
  /// acknowledgement sequence, and subsequent Matches never return the
  /// record.  NotFound when `id` is not live.
  Status Delete(RecordId id);

  /// Replaces the record's fields: re-encodes, overwrites the stored
  /// vector, and indexes the new blocking keys.  Old keys keep serving
  /// the id as a candidate, but classification runs on the current bits,
  /// so match results equal a fresh build.  NotFound when `record.id` is
  /// not live.
  Status Update(const Record& record);

  /// Sequential Delete per id, journaled and fsynced once at the batch
  /// boundary.  Stops at the first error.
  Status DeleteBatch(const std::vector<RecordId>& ids);

  /// Sequential Update per record, journaled and fsynced once at the
  /// batch boundary.  Stops at the first error.
  Status UpdateBatch(const std::vector<Record>& records);

  /// Applies one replayed/replicated mutation WITHOUT journaling it — the
  /// shared apply path of journal replay, replication, and snapshot
  /// reconcile.  Semantics differ from the live calls where idempotency
  /// requires it: insert is skipped when the id is already stored, delete
  /// of an unknown id is a no-op, update upserts.  Sequenced ops at or
  /// below the service's sequence floor are skipped (the snapshot already
  /// reflects them).  Returns true when state changed.
  Result<bool> ApplyMutation(const MutationOp& op);

  /// Rebuilds the vector-store index state from the live survivors and
  /// publishes a fresh blocking index with an atomic epoch swap: stale
  /// bucket entries (tombstoned or superseded blocking keys) are gone,
  /// the tombstone set is cleared, and match output is byte-identical
  /// before and after.  Blocks mutators for the rebuild (the "compaction
  /// pause"); never blocks Match.
  Status Compact();

  /// Starts the background compactor: every options().compaction_interval
  /// it compares the dead ratio against options().compaction_dead_ratio
  /// and runs Compact() when crossed.  Idempotent; stopped by
  /// StopBackgroundCompaction or the destructor.
  void StartBackgroundCompaction();
  void StopBackgroundCompaction();

  /// Parallel bulk insert over the service thread pool.
  Status InsertBatch(const std::vector<Record>& records);

  /// Parallel bulk match; appends every matched pair to `out` (order
  /// unspecified across queries).
  Status MatchBatch(const std::vector<Record>& records,
                    std::vector<IdPair>* out);

  /// Attaches the mutation journal: every subsequent acknowledged
  /// mutation (Insert/MatchAndInsert/Delete/Update and the batch forms)
  /// is appended (and fsynced per the journal's policy) BEFORE the call
  /// returns, so an acknowledged mutation survives a crash as snapshot +
  /// journal tail.  SaveSnapshotToFile drops the journal prefix the
  /// snapshot covers.  Attach AFTER ReplayJournalFile, or replayed
  /// frames are re-appended.
  void AttachJournal(std::shared_ptr<Journal> journal);
  std::shared_ptr<Journal> journal() const;

  /// Replays the journal at `path` into this service through
  /// ApplyMutation: inserts whose id is already stored and sequenced
  /// delete/update frames at or below the snapshot's sequence floor are
  /// skipped (which is what makes a crash between snapshot commit and
  /// journal rotation harmless).  stats.applied counts the mutations
  /// actually applied.
  Result<JournalReplayStats> ReplayJournalFile(const std::string& path);

  /// Reconciles this live service with `snapshot`: records absent here
  /// are indexed as-is (no re-encoding), ids the snapshot tombstones are
  /// deleted here, and local live ids the snapshot carries neither live
  /// nor tombstoned are deleted too (the primary may have compacted its
  /// tombstones away — absence from a newer snapshot means deleted).
  /// This is the replication follower's re-sync path — the service
  /// object (and every pointer a serving NetServer holds to it) stays
  /// stable while the state catches up past a journal rotation.  All
  /// record widths are validated against this service's encoder before
  /// anything is applied; InvalidArgument leaves the service unchanged.
  /// Returns the number of mutations actually applied.
  Result<uint64_t> MergeSnapshotRecords(const ServiceSnapshot& snapshot);

  /// True when a record with `id` is stored and live (tombstoned ids
  /// report false).
  bool Contains(RecordId id) const;

  /// Captures the full service state for persistence.
  ServiceSnapshot ExportSnapshot() const;
  Status SaveSnapshot(std::ostream& out) const;
  /// Atomic snapshot save; with a journal attached, additionally drops
  /// the journal prefix captured before the export began (frames kept
  /// past the mark may duplicate snapshot contents — replay dedupes).
  Status SaveSnapshotToFile(const std::string& path) const;

  /// A point-in-time copy of the counters.
  ServiceMetrics metrics() const;

  /// Refreshes the polled (gauge) telemetry in `registry`: record/index
  /// sizes, per-table LSH health (bucket count, max/mean bucket size,
  /// overflow counts) and the cross-table bucket-occupancy histogram —
  /// the runtime observables of Theorem 1's m_opt and Eq. 2's L.  Call
  /// before exporting (stats reporter tick, scrape, shutdown dump); the
  /// event-driven metrics (latency histograms, funnel counters) are
  /// maintained live and need no refresh.  Takes each index shard lock
  /// shared once; do not call from a latency-critical path.  Null
  /// `registry` targets the process-wide telemetry::Registry::Global().
  void FillTelemetry(telemetry::Registry* registry = nullptr) const;

  /// Lets the feeding layer (e.g. the serve CLI) account malformed input
  /// rows it skipped, so operational dashboards see them next to the
  /// serving counters.
  void RecordSkippedRows(uint64_t n);

  /// Live records (the store holds only live vectors).
  size_t size() const { return store_.size(); }
  /// Tombstoned ids awaiting compaction.
  size_t tombstone_count() const {
    return tombstone_count_.load(std::memory_order_relaxed);
  }
  /// Highest acknowledged delete/update sequence.
  uint64_t last_sequence() const {
    return sequence_.load(std::memory_order_relaxed);
  }
  size_t blocking_groups() const { return PinIndex()->L(); }
  const CVectorRecordEncoder& encoder() const { return *encoder_; }
  const LinkageServiceOptions& options() const { return options_; }

 private:
  LinkageService(CbvHbConfig config, LinkageServiceOptions options);

  Status Init();

  /// Pins the current index epoch: the returned shared_ptr keeps that
  /// index (and everything a Collect is walking) alive even if the
  /// compactor publishes a successor mid-call; the old epoch is retired
  /// when the last pin drops.
  std::shared_ptr<ShardedHammingIndex> PinIndex() const {
    std::shared_lock lock(index_mu_);
    return index_;
  }

  /// Algorithm 2 against the sharded structures, plus the overflow
  /// fallback.  `b` must be encoded by this service's encoder.
  void MatchEncoded(const EncodedRecord& b, std::vector<IdPair>* out) const;

  void InsertEncoded(const EncodedRecord& record);

  /// Insert without the journal append — the batch path journals in
  /// record order itself, after the parallel apply.
  Status InsertUnjournaled(const Record& record);

  /// Delete/Update without the journal append (the batch paths journal
  /// themselves).  Each stamps and returns the acknowledgement sequence
  /// through `*sequence`.
  Status DeleteUnjournaled(RecordId id, uint64_t* sequence);
  Status UpdateUnjournaled(const Record& record, uint64_t* sequence);

  /// Drops `id` from the tombstone set (an insert resurrected it).
  void ClearTombstone(RecordId id);

  /// Appends `record` as an insert frame to the attached journal, if any.
  Status JournalAppend(const Record& record);
  /// Appends any mutation frame to the attached journal, if any.
  Status JournalAppend(const MutationOp& op);

  /// The compactor thread body (poll loop around Compact()).
  void CompactorLoop();

  CbvHbConfig config_;
  LinkageServiceOptions options_;
  /// Alphabets reconstructed from a snapshot (Create()d services borrow
  /// the caller's alphabets instead).
  std::vector<std::unique_ptr<Alphabet>> owned_alphabets_;
  std::optional<CVectorRecordEncoder> encoder_;
  /// The LSH family, kept so Compact() can build a successor index with
  /// identical blocking keys.
  std::optional<HammingLshFamily> family_;
  /// The current index epoch.  Readers pin it via PinIndex(); Compact()
  /// publishes a successor under the unique lock.  Never null after
  /// Init().
  mutable std::shared_mutex index_mu_;
  std::shared_ptr<ShardedHammingIndex> index_;
  ConcurrentVectorStore store_;
  PairClassifier classifier_;

  /// Mutation/compaction exclusion: every mutator (insert/delete/update,
  /// live or replayed) holds it shared; Compact()'s rebuild+swap holds it
  /// unique so no mutation lands between the survivor export and the
  /// epoch swap (it would vanish from the new index).  Match never
  /// touches this lock.
  mutable std::shared_mutex compaction_mu_;

  /// Tombstoned ids awaiting compaction (persisted by snapshots).
  mutable std::shared_mutex tombstones_mu_;
  std::unordered_set<RecordId> tombstones_;
  /// tombstones_.size() mirror, readable without the lock.
  mutable std::atomic<uint64_t> tombstone_count_{0};
  /// Monotonic delete/update acknowledgement sequence; doubles as the
  /// replay dedupe floor (Restore seeds it from the snapshot).
  std::atomic<uint64_t> sequence_{0};

  /// Background compactor state.
  std::thread compactor_;
  std::mutex compactor_mu_;
  std::condition_variable compactor_cv_;
  bool compactor_stop_ = false;
  // ParallelFor keeps a per-call completion latch, so concurrent batch
  // calls share the pool without serializing on each other.  `pool_`
  // points at either the owned pool or a borrowed
  // options_.execution.pool (never null after Init()).
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;

  /// The attached insert journal (null until AttachJournal).  Guarded by
  /// journal_mu_ only for the pointer swap; Journal itself is
  /// thread-safe.
  mutable std::mutex journal_mu_;
  std::shared_ptr<Journal> journal_;

  /// Nanoseconds since `epoch_` (the service's construction instant —
  /// the zero point for the wall-clock span tracking below).
  uint64_t NowNanos() const;

  /// Folds one call's [start, end) span (NowNanos() values) into the
  /// busy-time sum and the first-start/last-end wall markers.
  static void RecordSpan(uint64_t start, uint64_t end,
                         std::atomic<uint64_t>* nanos,
                         std::atomic<uint64_t>* first_start,
                         std::atomic<uint64_t>* last_end);

  // Counters (relaxed; read via metrics()).
  mutable std::atomic<uint64_t> inserts_{0};
  mutable std::atomic<uint64_t> deletes_{0};
  mutable std::atomic<uint64_t> updates_{0};
  mutable std::atomic<uint64_t> compactions_{0};
  mutable std::atomic<uint64_t> compaction_reclaimed_{0};
  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> candidate_occurrences_{0};
  mutable std::atomic<uint64_t> comparisons_{0};
  mutable std::atomic<uint64_t> matches_{0};
  mutable std::atomic<uint64_t> scan_fallbacks_{0};
  mutable std::atomic<uint64_t> restore_fallbacks_{0};
  mutable std::atomic<uint64_t> skipped_rows_{0};
  mutable std::atomic<uint64_t> insert_nanos_{0};
  mutable std::atomic<uint64_t> query_nanos_{0};
  // Wall-clock activity spans (see ServiceMetrics::*_wall_seconds):
  // first call start and last call end, as NowNanos() values.
  std::chrono::steady_clock::time_point epoch_;
  mutable std::atomic<uint64_t> first_query_start_ns_{UINT64_MAX};
  mutable std::atomic<uint64_t> last_query_end_ns_{0};
  mutable std::atomic<uint64_t> first_insert_start_ns_{UINT64_MAX};
  mutable std::atomic<uint64_t> last_insert_end_ns_{0};

  // Process-wide telemetry handles (resolved once in Init(); the
  // registry outlives every service, so raw pointers are safe).
  telemetry::Histogram* t_query_latency_ = nullptr;
  telemetry::Histogram* t_insert_latency_ = nullptr;
  telemetry::Histogram* t_batch_latency_ = nullptr;
  telemetry::Counter* t_queries_ = nullptr;
  telemetry::Counter* t_inserts_ = nullptr;
  telemetry::Counter* t_deletes_ = nullptr;
  telemetry::Counter* t_updates_ = nullptr;
  telemetry::Counter* t_compactions_ = nullptr;
  telemetry::Counter* t_compaction_reclaimed_ = nullptr;
  telemetry::Histogram* t_compaction_pause_ = nullptr;
  telemetry::Counter* t_candidates_ = nullptr;
  telemetry::Counter* t_comparisons_ = nullptr;
  telemetry::Counter* t_matches_ = nullptr;
  telemetry::Counter* t_scan_fallbacks_ = nullptr;
};

}  // namespace cbvlink

#endif  // CBVLINK_SERVICE_LINKAGE_SERVICE_H_
