// LinkageService — the long-lived, concurrent serving layer over cBV-HB.
//
// The introduction motivates 120-bit embeddings with "nearly real-time
// analysis ... involving streaming data"; this facade turns the one-shot
// pipeline into that service: a fixed encoder, a sharded blocking index
// (src/service/sharded_index.h), and a concurrent vector store behind
// thread-safe Match / MatchAndInsert calls, batch APIs driven by a thread
// pool, per-call latency and volume counters, and snapshot/restore so a
// restarted process resumes warm from disk (src/io/serialization.h).
//
// Concurrency model: Match is wait-free against other Matches (shared
// locks only); Insert takes exclusive locks one shard at a time.  A
// MatchAndInsert is atomic per shard, not globally: two concurrent
// arrivals of the same entity may each miss the other (both match before
// either inserts) — the same anomaly any eventually-consistent ingest
// path has, and why batch deduplication remains available offline.

#ifndef CBVLINK_SERVICE_LINKAGE_SERVICE_H_
#define CBVLINK_SERVICE_LINKAGE_SERVICE_H_

#include <atomic>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/blocking/matcher.h"
#include "src/common/thread_pool.h"
#include "src/io/serialization.h"
#include "src/linkage/cbv_hb_linker.h"
#include "src/service/sharded_index.h"
#include "src/text/alphabet.h"

namespace cbvlink {

/// What a query does when a probed bucket hit the bucket-size cap.
enum class OverflowPolicy : uint32_t {
  /// Accept the capped bucket as-is (bounded latency, possible recall
  /// loss on the overpopulated key).
  kTruncate = 0,
  /// Additionally scan the whole vector store for that query, so recall
  /// is preserved at a latency cost paid only by affected queries.
  kScanFallback = 1,
};

/// Service-layer options on top of CbvHbConfig.
struct LinkageServiceOptions {
  /// Lock shards for the blocking index and the vector store.
  size_t num_shards = 16;
  /// Bucket entry cap; 0 = unlimited.
  size_t max_bucket_size = 0;
  OverflowPolicy overflow_policy = OverflowPolicy::kScanFallback;
  /// Worker threads for the batch APIs; 0 = hardware concurrency.
  size_t num_threads = 0;
};

/// A point-in-time copy of the service counters.
struct ServiceMetrics {
  uint64_t inserts = 0;
  uint64_t queries = 0;
  uint64_t candidate_occurrences = 0;
  uint64_t comparisons = 0;
  uint64_t matches = 0;
  uint64_t scan_fallbacks = 0;
  uint64_t dropped_entries = 0;
  /// 1 when RestoreFromFile served this process from the .bak snapshot
  /// because the primary was corrupt.
  uint64_t restore_fallbacks = 0;
  /// Malformed input rows the feeding layer skipped (RecordSkippedRows).
  uint64_t skipped_rows = 0;
  /// CPU-side time summed across calls (and threads, for batches).
  double insert_seconds = 0;
  double query_seconds = 0;

  double AvgQueryMicros() const {
    return queries == 0 ? 0 : query_seconds * 1e6 / static_cast<double>(queries);
  }
  double QueriesPerSecond() const {
    return query_seconds <= 0 ? 0 : static_cast<double>(queries) / query_seconds;
  }
};

/// Id -> BitVector storage sharded like the index, so concurrent Match
/// calls can retrieve vectors while inserts land.  Find() copies the
/// vector out under the shard lock (a pointer would dangle on rehash).
class ConcurrentVectorStore {
 public:
  explicit ConcurrentVectorStore(size_t num_shards);

  void Add(const EncodedRecord& record);

  /// Copies the vector for `id` into `*out`; false when unknown.
  bool Find(RecordId id, BitVector* out) const;

  /// Invokes `fn(id, bits)` for every stored record, one shard at a time
  /// under that shard's shared lock.  Weakly consistent against
  /// concurrent Adds (a record inserted mid-scan may or may not appear).
  void ForEach(
      const std::function<void(RecordId, const BitVector&)>& fn) const;

  size_t size() const;

  /// Every stored record, ordered by id (snapshot determinism).
  std::vector<EncodedRecord> Export() const;

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<RecordId, BitVector> vectors;
  };

  size_t ShardOf(RecordId id) const { return id & mask_; }

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t mask_;
};

/// The concurrent linkage service.  All public methods are thread-safe.
class LinkageService {
 public:
  /// Creates a service.  `config` follows CbvHbLinker semantics except
  /// that attribute-level blocking is rejected (the sharded index covers
  /// record-level HB).  When config.expected_qgrams is empty they are
  /// estimated from `calibration_sample` (which must then be non-empty).
  static Result<std::unique_ptr<LinkageService>> Create(
      CbvHbConfig config, LinkageServiceOptions options = {},
      const std::vector<Record>& calibration_sample = {});

  /// Rebuilds a service from a snapshot: the encoder and LSH family are
  /// reproduced from the persisted configuration and seed, the store and
  /// blocking tables are loaded from the persisted data.  The snapshot
  /// is semantically validated first (finite parameters, power-of-two
  /// num_shards, known overflow policy, unique record ids, every bucket
  /// id backed by a stored record, record widths matching the rebuilt
  /// encoder) — InvalidArgument on any violation.
  static Result<std::unique_ptr<LinkageService>> Restore(
      const ServiceSnapshot& snapshot);

  /// Restore from `path`; when the primary file is corrupt or invalid,
  /// falls back to the backup the atomic saver keeps at
  /// SnapshotBackupPath(path) (metrics().restore_fallbacks records the
  /// fallback).  `path.tmp` is never trusted — rename is the commit
  /// point.  Returns the primary's error when both fail.
  static Result<std::unique_ptr<LinkageService>> RestoreFromFile(
      const std::string& path);

  /// Encodes and indexes one registry record.
  Status Insert(const Record& record);

  /// Matches one query against everything indexed so far; appends
  /// (registry_id, query_id) pairs to `out`.  Never blocks other Match
  /// calls.
  Status Match(const Record& record, std::vector<IdPair>* out) const;

  /// Match, then insert the query so future arrivals can link to it.
  Status MatchAndInsert(const Record& record, std::vector<IdPair>* out);

  /// Parallel bulk insert over the service thread pool.
  Status InsertBatch(const std::vector<Record>& records);

  /// Parallel bulk match; appends every matched pair to `out` (order
  /// unspecified across queries).
  Status MatchBatch(const std::vector<Record>& records,
                    std::vector<IdPair>* out);

  /// Captures the full service state for persistence.
  ServiceSnapshot ExportSnapshot() const;
  Status SaveSnapshot(std::ostream& out) const;
  Status SaveSnapshotToFile(const std::string& path) const;

  /// A point-in-time copy of the counters.
  ServiceMetrics metrics() const;

  /// Lets the feeding layer (e.g. the serve CLI) account malformed input
  /// rows it skipped, so operational dashboards see them next to the
  /// serving counters.
  void RecordSkippedRows(uint64_t n) {
    skipped_rows_.fetch_add(n, std::memory_order_relaxed);
  }

  size_t size() const { return store_.size(); }
  size_t blocking_groups() const { return index_->L(); }
  const CVectorRecordEncoder& encoder() const { return *encoder_; }
  const LinkageServiceOptions& options() const { return options_; }

 private:
  LinkageService(CbvHbConfig config, LinkageServiceOptions options);

  Status Init();

  /// Algorithm 2 against the sharded structures, plus the overflow
  /// fallback.  `b` must be encoded by this service's encoder.
  void MatchEncoded(const EncodedRecord& b, std::vector<IdPair>* out) const;

  void InsertEncoded(const EncodedRecord& record);

  CbvHbConfig config_;
  LinkageServiceOptions options_;
  /// Alphabets reconstructed from a snapshot (Create()d services borrow
  /// the caller's alphabets instead).
  std::vector<std::unique_ptr<Alphabet>> owned_alphabets_;
  std::optional<CVectorRecordEncoder> encoder_;
  std::optional<ShardedHammingIndex> index_;
  ConcurrentVectorStore store_;
  PairClassifier classifier_;
  std::unique_ptr<ThreadPool> pool_;
  std::mutex pool_mu_;  // ThreadPool::ParallelFor is not reentrant

  // Counters (relaxed; read via metrics()).
  mutable std::atomic<uint64_t> inserts_{0};
  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> candidate_occurrences_{0};
  mutable std::atomic<uint64_t> comparisons_{0};
  mutable std::atomic<uint64_t> matches_{0};
  mutable std::atomic<uint64_t> scan_fallbacks_{0};
  mutable std::atomic<uint64_t> restore_fallbacks_{0};
  mutable std::atomic<uint64_t> skipped_rows_{0};
  mutable std::atomic<uint64_t> insert_nanos_{0};
  mutable std::atomic<uint64_t> query_nanos_{0};
};

}  // namespace cbvlink

#endif  // CBVLINK_SERVICE_LINKAGE_SERVICE_H_
