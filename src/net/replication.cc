#include "src/net/replication.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "src/io/serialization.h"
#include "src/service/linkage_service.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/telemetry/trace_sink.h"

namespace cbvlink {
namespace net {

namespace {

telemetry::Gauge* LagGauge() {
  static telemetry::Gauge* g =
      telemetry::Registry::Global().GetGauge("replication_lag_bytes");
  return g;
}
telemetry::Counter* AppliedCounter() {
  static telemetry::Counter* c =
      telemetry::Registry::Global().GetCounter("replication_applied_total");
  return c;
}
telemetry::Counter* SyncsCounter() {
  static telemetry::Counter* c =
      telemetry::Registry::Global().GetCounter("replication_syncs_total");
  return c;
}
telemetry::Gauge* CircuitGauge() {
  static telemetry::Gauge* g =
      telemetry::Registry::Global().GetGauge("replication_circuit_state");
  return g;
}

}  // namespace

Result<std::unique_ptr<Replica>> Replica::Start(ReplicaOptions options) {
  auto replica = std::unique_ptr<Replica>(new Replica());
  replica->options_ = std::move(options);
  // Mix the instance address into the jitter seed so a fleet of
  // followers spreads its retries even when nobody tuned the seed.
  BackoffOptions backoff = replica->options_.failure_backoff;
  backoff.seed ^= reinterpret_cast<uintptr_t>(replica.get());
  replica->backoff_ = Backoff(backoff);
  // The initial sync runs synchronously so a returned Replica already
  // holds a serviceable copy of the primary.
  CBVLINK_RETURN_NOT_OK(replica->SyncFromSnapshot());
  replica->follow_thread_ = std::thread([r = replica.get()] { r->FollowLoop(); });
  return replica;
}

Replica::~Replica() { Stop(); }

void Replica::Stop() {
  stopping_.store(true, std::memory_order_release);
  // Empty critical section: pairs with SleepFor so the notify cannot
  // land between its predicate check and its wait.
  { std::lock_guard<std::mutex> lock(mu_); }
  wake_cv_.notify_all();
  if (follow_thread_.joinable()) follow_thread_.join();
}

bool Replica::SleepFor(int64_t ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return !wake_cv_.wait_for(lock, std::chrono::milliseconds(ms), [this] {
    return stopping_.load(std::memory_order_acquire);
  });
}

void Replica::NoteSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  progress_.consecutive_failures = 0;
  progress_.last_error.clear();
  if (progress_.circuit != CircuitState::kClosed) {
    progress_.circuit = CircuitState::kClosed;
    CircuitGauge()->Set(0.0);
  }
}

void Replica::NoteFailure(const Status& error) {
  std::lock_guard<std::mutex> lock(mu_);
  progress_.last_error = error.ToString();
  ++progress_.consecutive_failures;
  if (progress_.circuit == CircuitState::kHalfOpen ||
      (progress_.circuit == CircuitState::kClosed &&
       progress_.consecutive_failures >=
           static_cast<uint64_t>(options_.circuit_open_after_failures))) {
    // A failed half-open probe re-opens; enough closed-state failures
    // open for the first time.
    progress_.circuit = CircuitState::kOpen;
  }
  CircuitGauge()->Set(static_cast<double>(progress_.circuit));
}

void Replica::MaybeHalfOpen() {
  std::lock_guard<std::mutex> lock(mu_);
  if (progress_.circuit == CircuitState::kOpen) {
    progress_.circuit = CircuitState::kHalfOpen;
    CircuitGauge()->Set(static_cast<double>(progress_.circuit));
  }
}

LinkageService* Replica::service() const { return service_.get(); }

ReplicaProgress Replica::progress() const {
  std::lock_guard<std::mutex> lock(mu_);
  return progress_;
}

std::unique_ptr<LinkageService> Replica::Promote() {
  Stop();
  return std::move(service_);
}

Status Replica::SyncFromSnapshot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    progress_.syncing = true;
  }
  const Status st = SyncFromSnapshotImpl();
  {
    // Cleared on every exit path: a failed sync must not report
    // `syncing` while the follow loop is sleeping before its retry.
    std::lock_guard<std::mutex> lock(mu_);
    progress_.syncing = false;
  }
  return st;
}

Status Replica::SyncFromSnapshotImpl() {
  auto client = NetClient::Connect(
      options_.primary_host, options_.primary_port,
      NetClientOptions{options_.connect_timeout_ms, options_.io_timeout_ms});
  CBVLINK_RETURN_NOT_OK(client.status());
  client_ = std::move(client).value();

  telemetry::TraceSpan sync_span("replica_sync");
  std::string bytes;
  CBVLINK_RETURN_NOT_OK(client_->FetchSnapshot(&bytes));
  sync_span.Annotate("snapshot_bytes", bytes.size());
  std::istringstream in(bytes);
  auto snapshot = ReadServiceSnapshot(in);
  CBVLINK_RETURN_NOT_OK(snapshot.status());
  uint64_t merged_records = 0;
  if (service_ == nullptr) {
    // Initial sync, before the follow thread or any serving NetServer
    // exists: building the service from scratch is safe here and only
    // here.
    auto service = LinkageService::Restore(snapshot.value());
    CBVLINK_RETURN_NOT_OK(service.status());
    service_ = std::move(service).value();
  } else {
    // Re-sync (journal rotated under the cursor, or the tail went
    // corrupt).  service_ must stay pointer-stable — a read-only
    // NetServer and Promote() hold it — so reconcile the snapshot into
    // the live service instead of swapping it: absent records are
    // inserted, snapshot tombstones (and local records the snapshot no
    // longer mentions at all — deleted then compacted away on the
    // primary) are deleted, and the sequence floor is raised, making
    // the merge equivalent to a fresh restore.
    auto merged = service_->MergeSnapshotRecords(snapshot.value());
    CBVLINK_RETURN_NOT_OK(merged.status());
    merged_records = merged.value();
    if (merged_records > 0) AppliedCounter()->Add(merged_records);
  }

  // Ask the primary where its journal stands right now; the snapshot we
  // just restored covers at least everything before the rotation that
  // snapshot save performed, and id-dedupe absorbs the overlap.
  uint64_t epoch = 0, end = 0;
  std::string frames;
  Status st = client_->FetchJournal(0, 0, &epoch, &end, &frames);
  if (st.code() == StatusCode::kFailedPrecondition) {
    // Primary runs without a journal: snapshot-only replication.
    epoch = 0;
    end = kJournalHeaderSize;
    frames.clear();
  } else {
    CBVLINK_RETURN_NOT_OK(st);
  }
  epoch_ = epoch;
  fetch_offset_ = kJournalHeaderSize;
  decoder_ = JournalFrameDecoder();
  {
    std::lock_guard<std::mutex> lock(mu_);
    progress_.epoch = epoch_;
    progress_.applied_offset = fetch_offset_;
    progress_.end_offset = end;
    progress_.lag_bytes = end > fetch_offset_ ? end - fetch_offset_ : 0;
    progress_.applied_records += merged_records;
    ++progress_.syncs;
  }
  SyncsCounter()->Add(1);
  return Status::OK();
}

Status Replica::FetchOnce(bool* made_progress) {
  *made_progress = false;
  // The failure path drops the connection and the re-sync may fail
  // before re-establishing it (primary down, connection refused);
  // reaching here with no client is a link-down condition, not a bug.
  if (client_ == nullptr) {
    return Status::IOError("replication link down: not connected");
  }
  // One trace per follow cycle.  Only cycles that made progress reach
  // the sink — offering every idle poll would evict the interesting
  // traces from the sink's ring.
  std::shared_ptr<telemetry::TraceCollector> trace;
  uint64_t cycle_start_us = 0;
  if (options_.trace_sink != nullptr) {
    trace = std::make_shared<telemetry::TraceCollector>(
        telemetry::GenerateTraceId());
    cycle_start_us = telemetry::TraceNowMicros();
  }
  telemetry::ScopedTraceContext trace_scope(
      trace.get(), trace != nullptr ? trace->root_span_id() : 0);
  auto finish_trace = [&]() {
    if (trace == nullptr || !*made_progress) return;
    const uint64_t now = telemetry::TraceNowMicros();
    telemetry::Span root;
    root.name = "replica_cycle";
    root.span_id = trace->root_span_id();
    root.start_us = cycle_start_us;
    root.dur_us = now > cycle_start_us ? now - cycle_start_us : 0;
    root.thread = telemetry::TraceThreadSlot();
    trace->Record(root);
    options_.trace_sink->Finish(*trace, root.dur_us);
  };
  uint64_t epoch = 0, end = 0;
  std::string frames;
  {
    telemetry::TraceSpan fetch_span("replica_fetch");
    CBVLINK_RETURN_NOT_OK(
        client_->FetchJournal(epoch_, fetch_offset_, &epoch, &end, &frames));
    fetch_span.Annotate("bytes", frames.size());
  }
  if (epoch != epoch_) {
    // The journal rotated under our cursor: the dropped prefix is
    // covered by a newer snapshot, so bootstrap again from it.
    CBVLINK_RETURN_NOT_OK(SyncFromSnapshot());
    *made_progress = true;
    finish_trace();
    return Status::OK();
  }
  uint64_t applied = 0;
  if (!frames.empty()) {
    *made_progress = true;
    fetch_offset_ += frames.size();
    telemetry::TraceSpan apply_span("replica_apply");
    decoder_.Feed(frames);
    while (true) {
      MutationOp op;
      JournalFrameDecoder::Next next = decoder_.Pop(&op);
      if (next == JournalFrameDecoder::Next::kNeedMore) break;
      if (next == JournalFrameDecoder::Next::kCorrupt) {
        // A corrupt frame over a CRC-checked transport means the
        // primary's journal itself is torn past our cursor; re-sync.
        apply_span.End();
        CBVLINK_RETURN_NOT_OK(SyncFromSnapshot());
        finish_trace();
        return Status::OK();
      }
      auto changed = service_->ApplyMutation(op);
      CBVLINK_RETURN_NOT_OK(changed.status());
      if (changed.value()) ++applied;
    }
    apply_span.Annotate("applied", applied);
  }
  if (applied > 0) AppliedCounter()->Add(applied);
  const uint64_t applied_offset = kJournalHeaderSize + decoder_.consumed_bytes();
  const uint64_t lag = end > applied_offset ? end - applied_offset : 0;
  LagGauge()->Set(static_cast<double>(lag));
  {
    std::lock_guard<std::mutex> lock(mu_);
    progress_.epoch = epoch_;
    progress_.applied_offset = applied_offset;
    progress_.end_offset = end;
    progress_.lag_bytes = lag;
    progress_.applied_records += applied;
  }
  finish_trace();
  return Status::OK();
}

void Replica::FollowLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    bool made_progress = false;
    Status st = FetchOnce(&made_progress);
    if (st.ok()) {
      NoteSuccess();
      backoff_.Reset();
      // Caught up: wait out the poll interval (or a Stop()).
      if (!made_progress && !SleepFor(options_.poll_interval_ms)) return;
      continue;
    }
    // Transport errors: drop the connection, back off (capped
    // exponential + jitter — consecutive failures wait longer and
    // desynchronize), then re-sync from a snapshot (the primary may
    // have restarted with a rotated journal).
    NoteFailure(st);
    client_.reset();
    if (!SleepFor(backoff_.NextDelayMs())) return;
    MaybeHalfOpen();  // the re-sync below is the circuit's probe
    Status resync = SyncFromSnapshot();
    if (resync.ok()) {
      NoteSuccess();
      backoff_.Reset();
    } else {
      NoteFailure(resync);
    }
  }
}

}  // namespace net
}  // namespace cbvlink
