#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/deadline.h"
#include "src/common/str.h"
#include "src/io/journal.h"
#include "src/io/serialization.h"
#include "src/net/protocol.h"
#include "src/net/status_map.h"
#include "src/service/linkage_service.h"
#include "src/telemetry/exporters.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/telemetry/trace_sink.h"

namespace cbvlink {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

/// Bytes the IO thread reads per recv() call.
constexpr size_t kReadChunk = 64 * 1024;

/// Journal bytes served per kFetchJournal response.
constexpr size_t kJournalSegmentBytes = 4u << 20;

/// Idle sweep cadence.
constexpr int kSweepIntervalMs = 1000;

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

/// Maps a steady_clock time point onto the trace timeline (see
/// telemetry::TraceNowMicros); both run on steady_clock, so the
/// conversion is a subtraction of the elapsed gap.
uint64_t TraceMicrosAt(Clock::time_point tp) {
  const uint64_t now_us = telemetry::TraceNowMicros();
  const int64_t behind = std::chrono::duration_cast<std::chrono::microseconds>(
                             Clock::now() - tp)
                             .count();
  const uint64_t gap = behind > 0 ? static_cast<uint64_t>(behind) : 0;
  return now_us > gap ? now_us - gap : 0;
}

/// One parsed, admitted request waiting for a worker.
struct PendingRequest {
  bool is_http = false;
  Frame frame;       // binary mode
  HttpRequest http;  // HTTP mode
  Clock::time_point admitted_at;
  /// Caller deadline (kDeadline prefix frame / X-Deadline-Ms header),
  /// re-anchored against our steady_clock at parse time.  Checked at
  /// admission and again at worker dequeue: work whose budget lapsed in
  /// the queue is answered DEADLINE_EXCEEDED instead of executed.
  Deadline deadline;
  /// Tracing (all default when the server has no sink).  `trace` is the
  /// request's span collector; `wire_trace_id`/`trace_parent` are the
  /// ids carried by kTraceContext / X-Trace-Id (0 = none, the server
  /// mints an id); `client_traced` marks peers that opted in on the
  /// wire — only those understand a kServerTiming frame.
  std::shared_ptr<telemetry::TraceCollector> trace;
  uint64_t wire_trace_id = 0;
  uint64_t trace_parent = 0;
  bool client_traced = false;
};

/// True for requests that do linkage work (the ones a draining server
/// sheds).  Probes, stats, and snapshot/journal fetches pass.
bool IsWorkRequest(const PendingRequest& req) {
  if (req.is_http) {
    return req.http.method == "POST" || req.http.method == "DELETE" ||
           req.http.method == "PUT";
  }
  switch (req.frame.type) {
    case MsgType::kMatch:
    case MsgType::kMatchAndInsert:
    case MsgType::kInsert:
    case MsgType::kDelete:
    case MsgType::kUpdate:
      return true;
    default:
      return false;
  }
}

/// Parses the {id} of a "/records/{id}" target (decimal, no trailing
/// bytes).  Returns false for any other target.
bool ParseRecordsTarget(std::string_view target, RecordId* id) {
  constexpr std::string_view kPrefix = "/records/";
  if (target.size() <= kPrefix.size() ||
      target.substr(0, kPrefix.size()) != kPrefix) {
    return false;
  }
  const std::string_view digits = target.substr(kPrefix.size());
  uint64_t n = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    const uint64_t next = n * 10 + static_cast<uint64_t>(c - '0');
    if (next < n) return false;  // overflow
    n = next;
  }
  *id = n;
  return true;
}

enum class ConnMode { kUnknown, kBinary, kHttp };

struct Connection {
  explicit Connection(int fd_in) : fd(fd_in), last_activity(Clock::now()) {}

  const int fd;
  ConnMode mode = ConnMode::kUnknown;

  // IO-thread-only state (never touched by workers).
  FrameDecoder frame_decoder;
  HttpParser http_parser;
  std::string preamble;  // first bytes until the mode is known
  bool write_armed = false;
  Clock::time_point last_activity;
  /// Armed by a kDeadline prefix frame, consumed by the next request
  /// frame on this connection.
  Deadline next_deadline;
  /// Armed by a kTraceContext prefix frame, consumed by the next
  /// request frame on this connection (0 = none).
  uint64_t next_trace_id = 0;
  uint64_t next_trace_parent = 0;
  /// Slow-loris tracking: when an *incomplete* request is buffered,
  /// `partial_since` marks when its first byte arrived; the sweep reaps
  /// the connection if completion takes longer than
  /// request_progress_timeout_ms.
  bool has_partial = false;
  Clock::time_point partial_since;

  // Shared state.
  std::mutex mu;
  std::deque<PendingRequest> pending;  // admitted, unprocessed
  bool in_worker = false;              // a worker currently owns `pending`
  std::string write_buf;               // response bytes awaiting the socket
  size_t write_pos = 0;
  bool want_close = false;  // close once write_buf drains
  bool closed = false;      // fd is gone; workers must not append output
};

}  // namespace

struct NetServer::Impl {
  LinkageService* service = nullptr;
  NetServerOptions options;

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;  // eventfd: worker -> IO thread, and shutdown
  uint16_t bound_port = 0;

  std::thread io_thread;
  std::vector<std::thread> workers;

  std::atomic<bool> stopping{false};

  // Admission control: admitted-but-unanswered requests.
  std::atomic<size_t> queued{0};

  // Graceful drain (see NetServer::Drain).
  std::atomic<bool> draining{false};
  std::mutex drain_mu;
  std::condition_variable drain_cv;

  // Queue drain rate, for Retry-After hints: FinishRequest bumps
  // finished_total; the IO thread differentiates it about once a second
  // and publishes a shed-retry hint derived from the current depth.
  std::atomic<uint64_t> finished_total{0};
  uint64_t rate_last_finished = 0;                // IO-thread only
  Clock::time_point rate_last_time{};             // IO-thread only
  std::atomic<uint32_t> retry_after_ms_hint{1000};

  // Worker job queue: connections with pending requests.
  std::mutex jobs_mu;
  std::condition_variable jobs_cv;
  std::deque<std::shared_ptr<Connection>> jobs;

  // Worker -> IO thread: connections with fresh output to flush.
  std::mutex notify_mu;
  std::vector<std::shared_ptr<Connection>> notify;

  // IO-thread-only connection table.
  std::unordered_map<int, std::shared_ptr<Connection>> connections;

  // Telemetry (registry outlives the server; raw pointers are safe).
  telemetry::Counter* t_accepted = nullptr;
  telemetry::Gauge* t_active = nullptr;
  telemetry::Counter* t_requests = nullptr;
  telemetry::Counter* t_shed = nullptr;
  telemetry::Counter* t_deadline_shed = nullptr;
  telemetry::Gauge* t_queue_depth = nullptr;
  telemetry::Gauge* t_drain_rate = nullptr;
  telemetry::Histogram* t_latency = nullptr;

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake_fd >= 0) ::close(wake_fd);
  }

  // --- setup --------------------------------------------------------------

  Status Bind();
  void StartThreads();
  void ShutdownAll();

  // --- IO thread ----------------------------------------------------------

  void IoLoop();
  void AcceptAll();
  void Wake();
  void DrainNotifications();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleWritable(const std::shared_ptr<Connection>& conn);
  void ArmWrite(const std::shared_ptr<Connection>& conn, bool want_read);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void SweepIdle();
  /// Parses whatever is buffered on `conn`, admitting or shedding each
  /// complete request.  Returns false when the connection must close
  /// (protocol corruption / unparseable HTTP).
  bool IngestParsed(const std::shared_ptr<Connection>& conn);
  /// Answers a request from the IO thread without queueing it (shed /
  /// deadline-expired / draining).  retry_after_ms == 0 omits the hint.
  void RejectBinary(const std::shared_ptr<Connection>& conn,
                    const Status& status, uint32_t retry_after_ms);
  void RejectHttp(const std::shared_ptr<Connection>& conn,
                  const Status& status, bool keep_alive, int retry_after_s);
  void Dispatch(const std::shared_ptr<Connection>& conn);
  /// IO-loop cadence: fast enough to enforce the shortest enabled
  /// timeout with ~25% slack, capped at the 1s default.
  int TickMs() const;
  /// Re-derives the Retry-After hint from the observed completion rate
  /// and current queue depth (IO thread, about once a second).
  void UpdateDrainRate();
  /// Wakes Drain() when the admitted-request count reaches zero.
  void NoteQueueDrained();
  bool DrainAll(int deadline_ms);

  // --- workers ------------------------------------------------------------

  void WorkerLoop();
  void ProcessConnection(const std::shared_ptr<Connection>& conn);
  /// Takes a batch of requests off `conn`, executes them, appends the
  /// responses.  Returns the response bytes to append under the lock.
  void ExecuteBatch(const std::shared_ptr<Connection>& conn,
                    std::vector<PendingRequest>* batch, std::string* out,
                    bool* close_after);
  void HandleBinary(const PendingRequest& req, std::string* out);
  void HandleHttp(const PendingRequest& req, std::string* out,
                  bool* close_after);
  /// Executes a run of kMatch frames as one MatchBatch when the ids are
  /// distinct; returns the number of requests consumed (>= 1).
  size_t HandleMatchRun(const std::vector<PendingRequest>& batch, size_t begin,
                        std::string* out);
  void FinishRequest(const PendingRequest& req);

  // --- tracing ------------------------------------------------------------

  /// Records the request's queue-wait span (admission -> dequeue).
  /// Call once, when a worker picks the request up.  No-op untraced.
  void StartRequestTrace(const PendingRequest& req);
  /// Per-stage durations extracted from the request's spans so far,
  /// plus the running end-to-end total — the Server-Timing payload.
  std::vector<StageTiming> StageTimingsFor(const PendingRequest& req) const;
  /// Emits the kServerTiming annotation frame (clients that sent
  /// kTraceContext expect it immediately before their response frame).
  void AppendServerTiming(const PendingRequest& req, std::string* out);
  /// Server-Timing / X-Trace-Id response headers for a traced request.
  HttpResponseExtras TraceExtras(const PendingRequest& req) const;
  /// HandleBinary plus the traced wrapping (scoped context, timing
  /// frame).  StartRequestTrace must already have run.
  void HandleBinaryTraced(const PendingRequest& req, std::string* out);
};

// --- setup ----------------------------------------------------------------

Status NetServer::Impl::Bind() {
  t_accepted = telemetry::Registry::Global().GetCounter(
      "net_connections_accepted_total");
  t_active = telemetry::Registry::Global().GetGauge("net_connections_active");
  t_requests = telemetry::Registry::Global().GetCounter("net_requests_total");
  t_shed = telemetry::Registry::Global().GetCounter("net_shed_total");
  t_deadline_shed =
      telemetry::Registry::Global().GetCounter("net_deadline_shed_total");
  t_queue_depth = telemetry::Registry::Global().GetGauge("net_queue_depth");
  t_drain_rate =
      telemetry::Registry::Global().GetGauge("net_queue_drain_rate");
  t_latency = telemetry::Registry::Global().GetHistogram(
      "net_request_latency_us");

  listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("bad bind address: %s", options.bind_address.c_str()));
  }
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return Errno("bind");
  if (::listen(listen_fd, 128) != 0) return Errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    return Errno("getsockname");
  bound_port = ntohs(bound.sin_port);

  epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) return Errno("epoll_create1");
  wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd < 0) return Errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev) != 0)
    return Errno("epoll_ctl(listen)");
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0)
    return Errno("epoll_ctl(wake)");
  return Status::OK();
}

void NetServer::Impl::StartThreads() {
  size_t n = options.num_workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 2;
  }
  workers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers.emplace_back([this] { WorkerLoop(); });
  }
  io_thread = std::thread([this] { IoLoop(); });
}

void NetServer::Impl::ShutdownAll() {
  bool was_stopping = stopping.exchange(true);
  if (!was_stopping) Wake();
  if (io_thread.joinable()) io_thread.join();
  {
    std::lock_guard<std::mutex> lock(jobs_mu);
    jobs.clear();
  }
  jobs_cv.notify_all();
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
  workers.clear();
}

// --- IO thread ------------------------------------------------------------

void NetServer::Impl::Wake() {
  uint64_t one = 1;
  ssize_t rc = ::write(wake_fd, &one, sizeof(one));
  (void)rc;  // EAGAIN just means a wakeup is already pending
}

int NetServer::Impl::TickMs() const {
  int tick = kSweepIntervalMs;
  if (options.idle_timeout_ms > 0) {
    tick = std::min(tick, std::max(10, options.idle_timeout_ms / 4));
  }
  if (options.request_progress_timeout_ms > 0) {
    tick = std::min(tick, std::max(10, options.request_progress_timeout_ms / 4));
  }
  return tick;
}

void NetServer::Impl::IoLoop() {
  std::vector<epoll_event> events(64);
  const int tick_ms = TickMs();
  Clock::time_point last_sweep = Clock::now();
  rate_last_time = last_sweep;
  while (!stopping.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd, events.data(),
                         static_cast<int>(events.size()), tick_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.fd == listen_fd) {
        AcceptAll();
        continue;
      }
      if (ev.data.fd == wake_fd) {
        uint64_t buf;
        while (::read(wake_fd, &buf, sizeof(buf)) > 0) {
        }
        DrainNotifications();
        continue;
      }
      auto it = connections.find(ev.data.fd);
      if (it == connections.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if ((ev.events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConnection(conn);
        continue;
      }
      if ((ev.events & EPOLLIN) != 0) HandleReadable(conn);
      // HandleReadable may have closed it (identity check: see
      // DrainNotifications).
      auto again = connections.find(conn->fd);
      if (again != connections.end() && again->second == conn &&
          (ev.events & EPOLLOUT) != 0) {
        HandleWritable(conn);
      }
    }
    if (Clock::now() - last_sweep >= std::chrono::milliseconds(tick_ms)) {
      UpdateDrainRate();
      if (options.idle_timeout_ms > 0 ||
          options.request_progress_timeout_ms > 0) {
        SweepIdle();
      }
      last_sweep = Clock::now();
    }
  }
  // Shutdown: close everything from the IO thread, which owns the fds.
  std::vector<std::shared_ptr<Connection>> all;
  all.reserve(connections.size());
  for (auto& [fd, conn] : connections) all.push_back(conn);
  for (auto& conn : all) CloseConnection(conn);
}

void NetServer::Impl::AcceptAll() {
  while (true) {
    int fd = ::accept4(listen_fd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (connections.size() >= options.max_connections) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    connections.emplace(fd, std::move(conn));
    t_accepted->Add(1);
    t_active->Set(static_cast<double>(connections.size()));
  }
}

void NetServer::Impl::DrainNotifications() {
  std::vector<std::shared_ptr<Connection>> batch;
  {
    std::lock_guard<std::mutex> lock(notify_mu);
    batch.swap(notify);
  }
  for (auto& conn : batch) {
    // Identity check, not fd check: the fd may have been closed and
    // reused by a newly accepted connection before this entry drained.
    auto it = connections.find(conn->fd);
    if (it == connections.end() || it->second != conn) continue;
    HandleWritable(conn);
  }
}

void NetServer::Impl::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[kReadChunk];
  bool got_bytes = false;
  while (true) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      got_bytes = true;
      std::string_view bytes(buf, static_cast<size_t>(n));
      if (conn->mode == ConnMode::kUnknown) {
        conn->preamble.append(bytes);
        if (conn->preamble.size() < sizeof(kBinaryPreamble)) continue;
        if (std::memcmp(conn->preamble.data(), kBinaryPreamble,
                        sizeof(kBinaryPreamble)) == 0) {
          conn->mode = ConnMode::kBinary;
          conn->frame_decoder.Feed(std::string_view(conn->preamble)
                                       .substr(sizeof(kBinaryPreamble)));
        } else {
          conn->mode = ConnMode::kHttp;
          conn->http_parser.Feed(conn->preamble);
        }
        conn->preamble.clear();
        conn->preamble.shrink_to_fit();
      } else if (conn->mode == ConnMode::kBinary) {
        conn->frame_decoder.Feed(bytes);
      } else {
        conn->http_parser.Feed(bytes);
      }
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConnection(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn);
    return;
  }
  if (got_bytes) conn->last_activity = Clock::now();
  if (!IngestParsed(conn)) {
    CloseConnection(conn);
    return;
  }
  auto still = connections.find(conn->fd);
  if (still == connections.end() || still->second != conn) return;
  // Slow-loris accounting: a leftover *incomplete* request starts (or
  // continues) the progress clock; a fully-consumed buffer clears it.
  bool partial;
  switch (conn->mode) {
    case ConnMode::kBinary:
      partial = conn->frame_decoder.buffered_bytes() > 0;
      break;
    case ConnMode::kHttp:
      partial = conn->http_parser.buffered_bytes() > 0;
      break;
    default:
      partial = !conn->preamble.empty();
  }
  if (partial && !conn->has_partial) {
    conn->has_partial = true;
    conn->partial_since = Clock::now();
  } else if (!partial) {
    conn->has_partial = false;
  }
}

bool NetServer::Impl::IngestParsed(const std::shared_ptr<Connection>& conn) {
  if (conn->mode == ConnMode::kUnknown) return true;
  bool dispatch = false;
  while (true) {
    {
      // Once the connection is draining toward close (shed without
      // keep-alive, a 400, or a worker honoring "Connection: close"),
      // stop admitting pipelined requests — no response may follow the
      // one marked close.
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->want_close) break;
    }
    PendingRequest req;
    if (conn->mode == ConnMode::kBinary) {
      FrameDecoder::Next next = conn->frame_decoder.Pop(&req.frame);
      if (next == FrameDecoder::Next::kNeedMore) break;
      if (next == FrameDecoder::Next::kCorrupt) return false;
      if (req.frame.type == MsgType::kDeadline) {
        // Not a request: arms a deadline for the next frame.  A
        // malformed payload is protocol corruption — drop the stream.
        uint32_t budget_ms = 0;
        if (!DecodeDeadlinePayload(req.frame.payload, &budget_ms).ok()) {
          return false;
        }
        conn->next_deadline = Deadline::AfterMs(budget_ms);
        continue;
      }
      if (req.frame.type == MsgType::kTraceContext) {
        // Same prefix discipline as kDeadline: arms trace ids for the
        // next request frame; a malformed payload is corruption.
        uint64_t trace_id = 0, parent = 0;
        if (!DecodeTraceContextPayload(req.frame.payload, &trace_id, &parent)
                 .ok()) {
          return false;
        }
        conn->next_trace_id = trace_id;
        conn->next_trace_parent = parent;
        continue;
      }
      req.deadline = conn->next_deadline;
      conn->next_deadline = Deadline::Infinite();
      req.wire_trace_id = conn->next_trace_id;
      req.trace_parent = conn->next_trace_parent;
      conn->next_trace_id = 0;
      conn->next_trace_parent = 0;
      req.is_http = false;
    } else {
      HttpParser::Next next = conn->http_parser.Pop(&req.http);
      if (next == HttpParser::Next::kNeedMore) break;
      if (next == HttpParser::Next::kBad) {
        // One parse error response, then close (the stream is unframed
        // garbage from here on).
        std::string resp = HttpResponse(
            400, "application/json",
            StatusToJson(conn->http_parser.error()), /*keep_alive=*/false);
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->write_buf.append(resp);
        conn->want_close = true;
        ArmWrite(conn, /*want_read=*/false);
        return true;  // keep open to flush the 400
      }
      if (req.http.deadline_ms >= 0) {
        req.deadline = Deadline::AfterMs(req.http.deadline_ms);
      }
      req.wire_trace_id = req.http.trace_id;
      req.trace_parent = req.http.trace_parent;
      req.is_http = true;
    }
    // Admission-time deadline check: work that is already expired (a
    // zero budget, or parse-to-admission delay ate it) is answered
    // DEADLINE_EXCEEDED without ever taking a queue slot.  Distinct
    // from the 429 shed below — the queue may have had room.
    if (req.deadline.Expired()) {
      t_deadline_shed->Add(1);
      const Status expired =
          Status::DeadlineExceeded("deadline expired before admission");
      if (conn->mode == ConnMode::kBinary) {
        RejectBinary(conn, expired, 0);
        continue;
      }
      RejectHttp(conn, expired, req.http.keep_alive, 0);
      if (!req.http.keep_alive) {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->want_close = true;
        break;
      }
      continue;
    }
    // Admission control: queue-full shed, and the drain-mode shed of
    // new work (reads, probes and journal fetches still pass so health
    // checks and replicas work through a drain).
    const bool drain_shed =
        draining.load(std::memory_order_acquire) && IsWorkRequest(req);
    size_t depth = queued.load(std::memory_order_relaxed);
    if (depth >= options.max_queue || drain_shed) {
      t_shed->Add(1);
      const Status shed =
          drain_shed
              ? Status::ResourceExhausted("server draining")
              : Status::ResourceExhausted(
                    "server overloaded: request queue full");
      const uint32_t hint_ms = retry_after_ms_hint.load(std::memory_order_relaxed);
      if (conn->mode == ConnMode::kBinary) {
        RejectBinary(conn, shed, hint_ms);
        continue;
      }
      RejectHttp(conn, shed, req.http.keep_alive,
                 static_cast<int>((hint_ms + 999) / 1000));
      if (!req.http.keep_alive) {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->want_close = true;
        break;  // the 429 said "Connection: close"; admit nothing more
      }
      continue;
    }
    queued.fetch_add(1, std::memory_order_relaxed);
    t_queue_depth->Set(static_cast<double>(depth + 1));
    req.admitted_at = Clock::now();
    if (options.trace_sink != nullptr) {
      // Every admitted request records (tail capture needs the spans of
      // traces that only turn out slow at the end); the sink's policy
      // decides at FinishRequest which trees survive.
      req.client_traced = req.wire_trace_id != 0;
      req.trace = std::make_shared<telemetry::TraceCollector>(
          req.client_traced ? req.wire_trace_id
                            : telemetry::GenerateTraceId());
    }
    // "Connection: close" makes this the connection's last request; the
    // worker will set want_close, so admit nothing pipelined behind it.
    const bool last_request = req.is_http && !req.http.keep_alive;
    bool was_idle;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      was_idle = !conn->in_worker;
      conn->in_worker = true;
      conn->pending.push_back(std::move(req));
    }
    if (was_idle) dispatch = true;
    if (last_request) break;
  }
  if (dispatch) Dispatch(conn);
  return true;
}

void NetServer::Impl::RejectBinary(const std::shared_ptr<Connection>& conn,
                                   const Status& status,
                                   uint32_t retry_after_ms) {
  std::string payload;
  EncodeErrorPayload(status, retry_after_ms, &payload);
  std::string resp;
  EncodeFrame(MsgType::kError, payload, &resp);
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->write_buf.append(resp);
  ArmWrite(conn, /*want_read=*/true);
}

void NetServer::Impl::RejectHttp(const std::shared_ptr<Connection>& conn,
                                 const Status& status, bool keep_alive,
                                 int retry_after_s) {
  std::string resp = HttpResponse(HttpCodeFor(status), "application/json",
                                  StatusToJson(status), keep_alive,
                                  retry_after_s);
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->write_buf.append(resp);
  ArmWrite(conn, /*want_read=*/true);
}

void NetServer::Impl::Dispatch(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(jobs_mu);
    jobs.push_back(conn);
  }
  jobs_cv.notify_one();
}

void NetServer::Impl::ArmWrite(const std::shared_ptr<Connection>& conn,
                               bool want_read) {
  // IO-thread only.  Arms EPOLLOUT (plus EPOLLIN unless the connection
  // is draining toward close).
  if (conn->write_armed) return;
  epoll_event ev{};
  ev.events = EPOLLOUT | (want_read ? EPOLLIN : 0u);
  ev.data.fd = conn->fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev) == 0)
    conn->write_armed = true;
}

void NetServer::Impl::HandleWritable(const std::shared_ptr<Connection>& conn) {
  bool close_now = false;
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;  // fd is gone (and may belong to someone else)
    while (conn->write_pos < conn->write_buf.size()) {
      ssize_t n = ::send(conn->fd, conn->write_buf.data() + conn->write_pos,
                         conn->write_buf.size() - conn->write_pos,
                         MSG_NOSIGNAL);
      if (n > 0) {
        conn->write_pos += static_cast<size_t>(n);
        conn->last_activity = Clock::now();
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_now = true;  // hard write error
      break;
    }
    if (conn->write_pos >= conn->write_buf.size()) {
      conn->write_buf.clear();
      conn->write_pos = 0;
      drained = true;
      if (conn->want_close) close_now = true;
    }
  }
  if (close_now) {
    CloseConnection(conn);
    return;
  }
  if (drained) {
    if (conn->write_armed) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = conn->fd;
      ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
      conn->write_armed = false;
    }
  } else {
    conn->write_armed = false;  // force a re-arm
    std::lock_guard<std::mutex> lock(conn->mu);
    ArmWrite(conn, !conn->want_close);
  }
}

void NetServer::Impl::CloseConnection(const std::shared_ptr<Connection>& conn) {
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    // Admitted requests die with the connection; release their queue
    // slots (a worker holding this connection re-checks `closed`).
    if (!conn->in_worker) {
      dropped = conn->pending.size();
      conn->pending.clear();
    }
  }
  if (dropped > 0) {
    queued.fetch_sub(dropped, std::memory_order_relaxed);
    t_queue_depth->Set(
        static_cast<double>(queued.load(std::memory_order_relaxed)));
    NoteQueueDrained();
  }
  ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  connections.erase(conn->fd);
  t_active->Set(static_cast<double>(connections.size()));
}

void NetServer::Impl::SweepIdle() {
  const auto now = Clock::now();
  const auto idle_cutoff =
      now - std::chrono::milliseconds(options.idle_timeout_ms);
  const auto progress_cutoff =
      now - std::chrono::milliseconds(options.request_progress_timeout_ms);
  std::vector<std::shared_ptr<Connection>> doomed;
  for (auto& [fd, conn] : connections) {
    // A trickling request is reaped on the progress clock no matter how
    // recently its last byte arrived (each byte resets the idle clock,
    // which is exactly the slow-loris hole).
    if (options.request_progress_timeout_ms > 0 && conn->has_partial &&
        conn->partial_since < progress_cutoff) {
      doomed.push_back(conn);
      continue;
    }
    if (options.idle_timeout_ms <= 0) continue;
    bool busy;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      busy = conn->in_worker || !conn->pending.empty();
    }
    if (!busy && conn->last_activity < idle_cutoff) doomed.push_back(conn);
  }
  for (auto& conn : doomed) CloseConnection(conn);
}

void NetServer::Impl::UpdateDrainRate() {
  const auto now = Clock::now();
  const double dt =
      std::chrono::duration<double>(now - rate_last_time).count();
  if (dt < 0.5) return;
  const uint64_t finished = finished_total.load(std::memory_order_relaxed);
  const double rate = static_cast<double>(finished - rate_last_finished) / dt;
  rate_last_finished = finished;
  rate_last_time = now;
  // Published so operators (and the serve CLI's --stats-interval line)
  // see the same drain rate the Retry-After hint is derived from.
  t_drain_rate->Set(rate);
  const double depth =
      static_cast<double>(queued.load(std::memory_order_relaxed));
  uint32_t hint_ms;
  if (rate > 0.0) {
    // Time to drain the current queue at the observed completion rate.
    hint_ms = static_cast<uint32_t>(
        std::min(30000.0, std::max(1000.0, 1000.0 * depth / rate)));
  } else if (depth > 0.0) {
    // Saturated and nothing completing: push retries out further each
    // window, up to the cap.
    hint_ms = std::min<uint32_t>(
        30000, retry_after_ms_hint.load(std::memory_order_relaxed) * 2);
  } else {
    hint_ms = 1000;
  }
  retry_after_ms_hint.store(hint_ms, std::memory_order_relaxed);
}

// --- workers --------------------------------------------------------------

void NetServer::Impl::WorkerLoop() {
  while (true) {
    std::shared_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lock(jobs_mu);
      jobs_cv.wait(lock, [this] {
        return stopping.load(std::memory_order_acquire) || !jobs.empty();
      });
      if (jobs.empty()) return;  // stopping
      conn = std::move(jobs.front());
      jobs.pop_front();
    }
    ProcessConnection(conn);
  }
}

void NetServer::Impl::ProcessConnection(
    const std::shared_ptr<Connection>& conn) {
  while (true) {
    std::vector<PendingRequest> batch;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closed || conn->pending.empty()) {
        conn->in_worker = false;
        if (!conn->pending.empty()) {
          // Closed with admitted requests still queued: release slots.
          queued.fetch_sub(conn->pending.size(), std::memory_order_relaxed);
          conn->pending.clear();
        }
        t_queue_depth->Set(
            static_cast<double>(queued.load(std::memory_order_relaxed)));
        NoteQueueDrained();
        return;
      }
      batch.reserve(conn->pending.size());
      for (auto& req : conn->pending) batch.push_back(std::move(req));
      conn->pending.clear();
    }
    std::string out;
    bool close_after = false;
    ExecuteBatch(conn, &batch, &out, &close_after);
    bool notify_io = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->closed) {
        conn->write_buf.append(out);
        if (close_after) conn->want_close = true;
        notify_io = true;
      }
    }
    queued.fetch_sub(batch.size(), std::memory_order_relaxed);
    t_queue_depth->Set(
        static_cast<double>(queued.load(std::memory_order_relaxed)));
    NoteQueueDrained();
    if (notify_io) {
      {
        std::lock_guard<std::mutex> lock(notify_mu);
        notify.push_back(conn);
      }
      Wake();
    }
    // Loop: new requests may have been admitted while we were busy
    // (in_worker stayed true, so nobody else dispatched them).
  }
}

void NetServer::Impl::ExecuteBatch(const std::shared_ptr<Connection>& conn,
                                   std::vector<PendingRequest>* batch,
                                   std::string* out, bool* close_after) {
  (void)conn;
  size_t i = 0;
  while (i < batch->size()) {
    const PendingRequest& req = (*batch)[i];
    // Dequeue-time deadline check: the budget may have lapsed while the
    // request sat behind others in the queue.  Answering is cheap;
    // executing would burn worker time on an answer nobody is waiting
    // for.
    if (req.deadline.Expired()) {
      t_deadline_shed->Add(1);
      const Status expired =
          Status::DeadlineExceeded("deadline expired in queue");
      if (req.is_http) {
        if (!req.http.keep_alive) *close_after = true;
        out->append(HttpResponse(HttpCodeFor(expired), "application/json",
                                 StatusToJson(expired), req.http.keep_alive));
      } else {
        std::string payload;
        EncodeErrorPayload(expired, &payload);
        EncodeFrame(MsgType::kError, payload, out);
      }
      FinishRequest(req);
      ++i;
      continue;
    }
    if (!req.is_http && req.frame.type == MsgType::kMatch) {
      size_t consumed = HandleMatchRun(*batch, i, out);
      for (size_t k = 0; k < consumed; ++k) FinishRequest((*batch)[i + k]);
      i += consumed;
      continue;
    }
    StartRequestTrace(req);
    if (req.is_http) {
      telemetry::ScopedTraceContext scope(
          req.trace.get(), req.trace ? req.trace->root_span_id() : 0);
      HandleHttp(req, out, close_after);
    } else {
      HandleBinaryTraced(req, out);
    }
    FinishRequest(req);
    ++i;
  }
}

void NetServer::Impl::StartRequestTrace(const PendingRequest& req) {
  if (req.trace == nullptr) return;
  telemetry::Span queue;
  queue.name = "queue";
  queue.span_id = req.trace->NextSpanId();
  queue.parent_span_id = req.trace->root_span_id();
  queue.start_us = TraceMicrosAt(req.admitted_at);
  const uint64_t now_us = telemetry::TraceNowMicros();
  queue.dur_us = now_us > queue.start_us ? now_us - queue.start_us : 0;
  queue.thread = telemetry::TraceThreadSlot();
  req.trace->Record(queue);
}

std::vector<StageTiming> NetServer::Impl::StageTimingsFor(
    const PendingRequest& req) const {
  std::vector<StageTiming> stages;
  if (req.trace == nullptr) return stages;
  constexpr TimingStage kStages[] = {
      TimingStage::kQueue, TimingStage::kEncode, TimingStage::kCandidates,
      TimingStage::kCompare, TimingStage::kInsert, TimingStage::kJournal};
  constexpr size_t kNumStages = sizeof(kStages) / sizeof(kStages[0]);
  uint64_t sums[kNumStages] = {};
  for (const telemetry::Span& span : req.trace->Spans()) {
    const std::string_view name = span.name;
    for (size_t s = 0; s < kNumStages; ++s) {
      if (name == TimingStageName(kStages[s])) {
        sums[s] += span.dur_us;
        break;
      }
    }
  }
  stages.reserve(kNumStages + 1);
  for (size_t s = 0; s < kNumStages; ++s) {
    stages.push_back(StageTiming{
        kStages[s],
        static_cast<uint32_t>(std::min<uint64_t>(sums[s], UINT32_MAX))});
  }
  const int64_t total_us =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            req.admitted_at)
          .count();
  stages.push_back(StageTiming{
      TimingStage::kTotal,
      static_cast<uint32_t>(std::min<int64_t>(
          std::max<int64_t>(total_us, 0), UINT32_MAX))});
  return stages;
}

void NetServer::Impl::AppendServerTiming(const PendingRequest& req,
                                         std::string* out) {
  if (req.trace == nullptr || !req.client_traced) return;
  std::string payload;
  EncodeServerTimingPayload(req.trace->trace_id(), StageTimingsFor(req),
                            &payload);
  EncodeFrame(MsgType::kServerTiming, payload, out);
}

HttpResponseExtras NetServer::Impl::TraceExtras(
    const PendingRequest& req) const {
  HttpResponseExtras extras;
  if (req.trace == nullptr) return extras;
  extras.server_timing = ServerTimingHeaderValue(StageTimingsFor(req));
  extras.trace_id = TraceIdHex(req.trace->trace_id());
  return extras;
}

void NetServer::Impl::HandleBinaryTraced(const PendingRequest& req,
                                         std::string* out) {
  if (req.trace == nullptr) {
    HandleBinary(req, out);
    return;
  }
  telemetry::ScopedTraceContext scope(req.trace.get(),
                                      req.trace->root_span_id());
  // The response lands in a scratch string so the kServerTiming frame —
  // which needs the handler's stage spans — can still precede it.
  std::string resp;
  HandleBinary(req, &resp);
  AppendServerTiming(req, out);
  out->append(resp);
}

void NetServer::Impl::FinishRequest(const PendingRequest& req) {
  t_requests->Add(1);
  finished_total.fetch_add(1, std::memory_order_relaxed);
  const uint64_t latency_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now() - req.admitted_at)
          .count());
  t_latency->Record(latency_us);
  if (req.trace != nullptr) {
    // Close the root span (admission -> response bytes buffered) and
    // let the sink's sampling + slow-capture policy decide whether the
    // tree survives.
    telemetry::Span root;
    root.name = "request";
    root.span_id = req.trace->root_span_id();
    root.parent_span_id = req.trace_parent;
    root.start_us = TraceMicrosAt(req.admitted_at);
    root.dur_us = latency_us;
    root.thread = telemetry::TraceThreadSlot();
    req.trace->Record(root);
    options.trace_sink->Finish(*req.trace, latency_us);
  }
}

size_t NetServer::Impl::HandleMatchRun(const std::vector<PendingRequest>& batch,
                                       size_t begin, std::string* out) {
  // Collect the run of consecutive binary kMatch frames.
  size_t end = begin;
  while (end < batch.size() && !batch[end].is_http &&
         batch[end].frame.type == MsgType::kMatch &&
         (end == begin || !batch[end].deadline.Expired())) {
    // An expired frame ends the run; the dequeue-time check in
    // ExecuteBatch answers it before the next run starts.
    ++end;
  }
  const size_t run = end - begin;
  std::vector<Record> records(run);
  bool decodable = true;
  bool distinct = true;
  std::unordered_map<RecordId, size_t> by_id;
  by_id.reserve(run);
  for (size_t k = 0; k < run; ++k) {
    size_t consumed = 0;
    Status st = WireDecodeRecord(batch[begin + k].frame.payload, &records[k],
                                 &consumed);
    if (!st.ok() || consumed != batch[begin + k].frame.payload.size()) {
      decodable = false;
      break;
    }
    if (!by_id.emplace(records[k].id, k).second) distinct = false;
  }
  for (size_t k = 0; k < run; ++k) StartRequestTrace(batch[begin + k]);
  if (run >= 2 && decodable && distinct) {
    // One MatchBatch over the service pool; demux by query id (pairs
    // are (registry_id, query_id)).
    std::vector<IdPair> pairs;
    const uint64_t batch_start_us = telemetry::TraceNowMicros();
    Status st = service->MatchBatch(records, &pairs);
    if (st.ok()) {
      const uint64_t batch_end_us = telemetry::TraceNowMicros();
      std::vector<std::vector<IdPair>> per_request(run);
      for (const IdPair& p : pairs) {
        auto it = by_id.find(p.b_id);
        if (it != by_id.end()) per_request[it->second].push_back(p);
      }
      for (size_t k = 0; k < run; ++k) {
        const PendingRequest& r = batch[begin + k];
        if (r.trace != nullptr) {
          // The fold shares one MatchBatch across the run, so each
          // request gets the shared span (with the batch size) rather
          // than per-stage attribution — the sequential path has that.
          telemetry::Span shared;
          shared.name = "match_batch";
          shared.span_id = r.trace->NextSpanId();
          shared.parent_span_id = r.trace->root_span_id();
          shared.start_us = batch_start_us;
          shared.dur_us = batch_end_us > batch_start_us
                              ? batch_end_us - batch_start_us
                              : 0;
          shared.thread = telemetry::TraceThreadSlot();
          shared.n_annotations = 1;
          shared.annotations[0] =
              telemetry::SpanAnnotation{"batch", static_cast<uint64_t>(run)};
          r.trace->Record(shared);
          AppendServerTiming(r, out);
        }
        std::string payload;
        EncodePairs(per_request[k], &payload);
        EncodeFrame(MsgType::kMatchResult, payload, out);
      }
      return run;
    }
    // Fall through: answer each request individually so one bad record
    // doesn't fail the whole run.
  }
  for (size_t k = 0; k < run; ++k) HandleBinaryTraced(batch[begin + k], out);
  return run;
}

void NetServer::Impl::HandleBinary(const PendingRequest& req,
                                   std::string* out) {
  const Frame& frame = req.frame;
  auto reply_error = [out](const Status& status) {
    std::string payload;
    EncodeErrorPayload(status, &payload);
    EncodeFrame(MsgType::kError, payload, out);
  };
  auto decode_record = [this, &frame](Record* record) -> Status {
    size_t consumed = 0;
    Status st = WireDecodeRecord(frame.payload, record, &consumed);
    if (st.ok() && consumed != frame.payload.size()) {
      st = Status::InvalidArgument("trailing bytes after record");
    }
    // A malformed record over the wire is the network-mode analogue of
    // a malformed CSV row: account it where dashboards already look.
    if (!st.ok()) service->RecordSkippedRows(1);
    return st;
  };
  switch (frame.type) {
    case MsgType::kPing: {
      EncodeFrame(MsgType::kPong, {}, out);
      return;
    }
    case MsgType::kMatch: {
      Record record;
      Status st = decode_record(&record);
      if (!st.ok()) return reply_error(st);
      std::vector<IdPair> pairs;
      st = service->Match(record, &pairs);
      if (!st.ok()) return reply_error(st);
      std::string payload;
      EncodePairs(pairs, &payload);
      EncodeFrame(MsgType::kMatchResult, payload, out);
      return;
    }
    case MsgType::kMatchAndInsert: {
      if (options.read_only) {
        return reply_error(
            Status::FailedPrecondition("replica is read-only"));
      }
      Record record;
      Status st = decode_record(&record);
      if (!st.ok()) return reply_error(st);
      std::vector<IdPair> pairs;
      st = service->MatchAndInsert(record, &pairs);
      if (!st.ok()) return reply_error(st);
      std::string payload;
      EncodePairs(pairs, &payload);
      EncodeFrame(MsgType::kMatchResult, payload, out);
      return;
    }
    case MsgType::kInsert: {
      if (options.read_only) {
        return reply_error(
            Status::FailedPrecondition("replica is read-only"));
      }
      Record record;
      Status st = decode_record(&record);
      if (!st.ok()) return reply_error(st);
      st = service->Insert(record);
      if (!st.ok()) return reply_error(st);
      EncodeFrame(MsgType::kInserted, {}, out);
      return;
    }
    case MsgType::kDelete: {
      if (options.read_only) {
        return reply_error(
            Status::FailedPrecondition("replica is read-only"));
      }
      RecordId id = 0;
      Status st = DecodeDeletePayload(frame.payload, &id);
      if (!st.ok()) return reply_error(st);
      st = service->Delete(id);
      if (!st.ok()) return reply_error(st);
      EncodeFrame(MsgType::kDeleted, {}, out);
      return;
    }
    case MsgType::kUpdate: {
      if (options.read_only) {
        return reply_error(
            Status::FailedPrecondition("replica is read-only"));
      }
      Record record;
      Status st = decode_record(&record);
      if (!st.ok()) return reply_error(st);
      st = service->Update(record);
      if (!st.ok()) return reply_error(st);
      EncodeFrame(MsgType::kUpdated, {}, out);
      return;
    }
    case MsgType::kFetchSnapshot: {
      std::ostringstream snapshot;
      Status st = service->SaveSnapshot(snapshot);
      if (!st.ok()) return reply_error(st);
      EncodeFrame(MsgType::kSnapshotData, snapshot.str(), out);
      return;
    }
    case MsgType::kFetchJournal: {
      std::shared_ptr<Journal> journal = service->journal();
      if (journal == nullptr) {
        return reply_error(
            Status::FailedPrecondition("no journal attached"));
      }
      uint64_t want_epoch = 0, offset = 0;
      Status st = DecodeJournalFetch(frame.payload, &want_epoch, &offset);
      if (!st.ok()) return reply_error(st);
      std::string payload;
      if (want_epoch != journal->epoch()) {
        // Rotation happened since the follower's cursor: answer with
        // the current epoch and no frames, which tells it to re-sync
        // from a snapshot.
        EncodeJournalData(journal->epoch(), journal->EndOffset(), {},
                          &payload);
      } else {
        std::string frames;
        uint64_t end_offset = 0, epoch = 0;
        st = journal->ReadSegment(offset, kJournalSegmentBytes, &frames,
                                  &end_offset, &epoch);
        if (!st.ok()) return reply_error(st);
        EncodeJournalData(epoch, end_offset, frames, &payload);
      }
      EncodeFrame(MsgType::kJournalData, payload, out);
      return;
    }
    case MsgType::kStats: {
      service->FillTelemetry();
      EncodeFrame(MsgType::kStatsJson,
                  telemetry::ToJson(telemetry::Registry::Global()), out);
      return;
    }
    default:
      return reply_error(Status::InvalidArgument(
          StrFormat("unknown message type %u", static_cast<unsigned>(frame.type))));
  }
}

void NetServer::Impl::HandleHttp(const PendingRequest& req, std::string* out,
                                 bool* close_after) {
  const HttpRequest& http = req.http;
  const bool keep = http.keep_alive;
  if (!keep) *close_after = true;
  auto reply_status = [&](const Status& status) {
    out->append(HttpResponse(HttpCodeFor(status), "application/json",
                             StatusToJson(status), keep, 0, TraceExtras(req)));
  };
  if (http.method == "GET") {
    if (http.target == "/healthz") {
      out->append(HttpResponse(200, "text/plain", "ok\n", keep));
      return;
    }
    if (http.target == "/readyz") {
      // Liveness vs readiness: a draining server is alive (healthz 200)
      // but must be taken out of rotation (readyz 503).
      if (draining.load(std::memory_order_acquire)) {
        out->append(HttpResponse(503, "text/plain", "draining\n", keep));
      } else {
        out->append(HttpResponse(200, "text/plain", "ok\n", keep));
      }
      return;
    }
    if (http.target == "/metrics") {
      service->FillTelemetry();
      out->append(HttpResponse(
          200, "text/plain; version=0.0.4",
          telemetry::ToPrometheusText(telemetry::Registry::Global()), keep));
      return;
    }
    if (http.target == "/stats") {
      service->FillTelemetry();
      out->append(HttpResponse(200, "application/json",
                               telemetry::ToJson(telemetry::Registry::Global()),
                               keep));
      return;
    }
    if (http.target == "/tracez") {
      if (options.trace_sink == nullptr) {
        return reply_status(
            Status::NotFound("tracing disabled (no trace sink)"));
      }
      out->append(HttpResponse(200, "application/json",
                               options.trace_sink->ToTracezJson(), keep));
      return;
    }
    return reply_status(Status::NotFound(StrFormat("no such path: %s", http.target.c_str())));
  }
  if (http.method == "DELETE" || http.method == "PUT") {
    RecordId id = 0;
    if (!ParseRecordsTarget(http.target, &id)) {
      return reply_status(
          Status::NotFound(StrFormat("no such path: %s", http.target.c_str())));
    }
    if (options.read_only) {
      return reply_status(Status::FailedPrecondition("replica is read-only"));
    }
    Status st;
    if (http.method == "DELETE") {
      st = service->Delete(id);
    } else {
      Record record;
      st = ParseJsonRecord(http.body, &record);
      if (!st.ok()) {
        // Network-mode analogue of a skipped CSV row (see HandleBinary).
        service->RecordSkippedRows(1);
      } else if (record.id != 0 && record.id != id) {
        st = Status::InvalidArgument(StrFormat(
            "body id %llu does not match target id %llu",
            static_cast<unsigned long long>(record.id),
            static_cast<unsigned long long>(id)));
      } else {
        record.id = id;
        st = service->Update(record);
      }
    }
    if (!st.ok()) return reply_status(st);
    out->append(HttpResponse(200, "application/json", PairsToJson({}), keep, 0,
                             TraceExtras(req)));
    return;
  }
  if (http.method != "POST") {
    return reply_status(
        Status::InvalidArgument(StrFormat("unsupported method: %s", http.method.c_str())));
  }
  const bool is_match = http.target == "/match";
  const bool is_insert = http.target == "/insert";
  const bool is_both = http.target == "/match_and_insert";
  if (!is_match && !is_insert && !is_both) {
    return reply_status(Status::NotFound(StrFormat("no such path: %s", http.target.c_str())));
  }
  if (options.read_only && !is_match) {
    return reply_status(Status::FailedPrecondition("replica is read-only"));
  }
  Record record;
  Status st = ParseJsonRecord(http.body, &record);
  if (!st.ok()) {
    // Network-mode analogue of a skipped CSV row (see HandleBinary).
    service->RecordSkippedRows(1);
    return reply_status(st);
  }
  std::vector<IdPair> pairs;
  if (is_match) {
    st = service->Match(record, &pairs);
  } else if (is_both) {
    st = service->MatchAndInsert(record, &pairs);
  } else {
    st = service->Insert(record);
  }
  if (!st.ok()) return reply_status(st);
  out->append(HttpResponse(200, "application/json", PairsToJson(pairs), keep,
                           0, TraceExtras(req)));
}

// --- drain ----------------------------------------------------------------

void NetServer::Impl::NoteQueueDrained() {
  if (!draining.load(std::memory_order_acquire)) return;
  if (queued.load(std::memory_order_relaxed) != 0) return;
  // Empty critical section: pairs with the wait in DrainAll so the
  // notify cannot slip between its predicate check and its sleep.
  { std::lock_guard<std::mutex> lock(drain_mu); }
  drain_cv.notify_all();
}

bool NetServer::Impl::DrainAll(int deadline_ms) {
  const Deadline deadline = Deadline::AfterMs(std::max(0, deadline_ms));
  draining.store(true, std::memory_order_release);
  // Stop accepting.  epoll_ctl is thread-safe against the IO thread's
  // epoll_wait; the listener stays open (so the port stays reserved)
  // but readiness events for it stop.
  ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
  bool drained;
  {
    std::unique_lock<std::mutex> lock(drain_mu);
    drained = drain_cv.wait_for(
        lock, std::chrono::milliseconds(deadline.RemainingMs()),
        [this] { return queued.load(std::memory_order_relaxed) == 0; });
  }
  if (!drained) return false;
  // The workers are done; give the IO thread a moment to flush the last
  // response bytes to the sockets (bounded by what's left of the
  // deadline — inserts are already journaled either way).
  Wake();
  const int64_t flush_ms = std::min<int64_t>(100, deadline.RemainingMs());
  if (flush_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(flush_ms));
  }
  return true;
}

// --- NetServer ------------------------------------------------------------

NetServer::NetServer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

NetServer::~NetServer() { Shutdown(); }

Result<std::unique_ptr<NetServer>> NetServer::Start(LinkageService* service,
                                                    NetServerOptions options) {
  if (service == nullptr)
    return Status::InvalidArgument("NetServer needs a service");
  if (options.max_queue == 0)
    return Status::InvalidArgument("max_queue must be > 0");
  auto impl = std::make_unique<Impl>();
  impl->service = service;
  impl->options = std::move(options);
  CBVLINK_RETURN_NOT_OK(impl->Bind());
  impl->StartThreads();
  return std::unique_ptr<NetServer>(new NetServer(std::move(impl)));
}

void NetServer::Shutdown() {
  if (impl_ != nullptr) impl_->ShutdownAll();
}

bool NetServer::Drain(int deadline_ms) { return impl_->DrainAll(deadline_ms); }

bool NetServer::draining() const {
  return impl_->draining.load(std::memory_order_acquire);
}

uint16_t NetServer::port() const { return impl_->bound_port; }

const NetServerOptions& NetServer::options() const { return impl_->options; }

}  // namespace net
}  // namespace cbvlink
