#include "src/net/protocol.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "src/common/crc32.h"
#include "src/common/str.h"
#include "src/net/status_map.h"

namespace cbvlink {
namespace net {

namespace {

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(static_cast<unsigned char>(v >> (8 * i))));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(static_cast<unsigned char>(v >> (8 * i))));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

/// Appends a JSON string literal (with the escapes the RFC requires).
void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Tiny JSON scanner for the record-request shape.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  /// Parses a JSON string literal into `*out`.
  Status String(std::string* out) {
    if (!Consume('"')) return Status::InvalidArgument("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (text_.size() - pos_ < 4) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<uint32_t>(h - 'A' + 10);
            else return Status::InvalidArgument("bad \\u escape digit");
          }
          // UTF-8 encode (BMP only; surrogates rejected).
          if (cp >= 0xd800 && cp <= 0xdfff) {
            return Status::InvalidArgument("surrogate \\u escape unsupported");
          }
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default:
          return Status::InvalidArgument("unknown string escape");
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  /// Parses a non-negative integer literal.
  Status U64(uint64_t* out) {
    SkipWs();
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Status::InvalidArgument("expected integer");
    }
    uint64_t v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      const uint64_t digit = static_cast<uint64_t>(text_[pos_] - '0');
      if (v > (UINT64_MAX - digit) / 10) {
        return Status::InvalidArgument("integer overflow");
      }
      v = v * 10 + digit;
      ++pos_;
    }
    *out = v;
    return Status::OK();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

constexpr size_t kMaxHttpHeaderBytes = 16u << 10;
constexpr size_t kMaxHttpBodyBytes = 8u << 20;
// X-Deadline-Ms values saturate here (~12 days) so header arithmetic
// can never overflow a steady_clock time_point.
constexpr uint64_t kMaxDeadlineMs = 1u << 30;

/// Case-insensitive ASCII compare.
bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const char* HttpReason(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

}  // namespace

void EncodeFrame(MsgType type, std::string_view payload, std::string* out) {
  PutU32(static_cast<uint32_t>(payload.size()), out);
  out->push_back(static_cast<char>(static_cast<uint8_t>(type)));
  out->append(payload.data(), payload.size());
  uint32_t crc = kCrc32cInit;
  const char type_byte = static_cast<char>(static_cast<uint8_t>(type));
  crc = Crc32cExtend(crc, &type_byte, 1);
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  PutU32(crc, out);
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (pos_ > (1u << 16) && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

FrameDecoder::Next FrameDecoder::Pop(Frame* frame) {
  if (!error_.ok()) return Next::kCorrupt;
  if (buffer_.size() - pos_ < 5) return Next::kNeedMore;
  const uint32_t payload_len = GetU32(buffer_.data() + pos_);
  if (payload_len > kMaxFramePayload) {
    error_ = Status::InvalidArgument(
        StrFormat("frame payload %u exceeds cap", payload_len));
    return Next::kCorrupt;
  }
  const size_t frame_len = 4 + 1 + static_cast<size_t>(payload_len) + 4;
  if (buffer_.size() - pos_ < frame_len) return Next::kNeedMore;
  const char* body = buffer_.data() + pos_ + 4;  // type + payload
  const uint32_t expected_crc =
      GetU32(buffer_.data() + pos_ + 4 + 1 + payload_len);
  if (Crc32c(body, 1 + payload_len) != expected_crc) {
    error_ = Status::InvalidArgument("frame CRC mismatch");
    return Next::kCorrupt;
  }
  frame->type = static_cast<MsgType>(static_cast<uint8_t>(body[0]));
  frame->payload.assign(body + 1, payload_len);
  pos_ += frame_len;
  return Next::kFrame;
}

void EncodePairs(const std::vector<IdPair>& pairs, std::string* out) {
  PutU32(static_cast<uint32_t>(pairs.size()), out);
  for (const IdPair& pair : pairs) {
    PutU64(pair.a_id, out);
    PutU64(pair.b_id, out);
  }
}

Status DecodePairs(std::string_view payload, std::vector<IdPair>* out) {
  if (payload.size() < 4) return Status::InvalidArgument("pairs truncated");
  const uint32_t n = GetU32(payload.data());
  if (payload.size() != 4 + static_cast<size_t>(n) * 16) {
    return Status::InvalidArgument("pairs length mismatch");
  }
  out->clear();
  out->reserve(n);
  const char* p = payload.data() + 4;
  for (uint32_t i = 0; i < n; ++i) {
    out->push_back({GetU64(p), GetU64(p + 8)});
    p += 16;
  }
  return Status::OK();
}

void EncodeErrorPayload(const Status& status, std::string* out) {
  EncodeErrorPayload(status, 0, out);
}

void EncodeErrorPayload(const Status& status, uint32_t retry_after_ms,
                        std::string* out) {
  PutU32(BinaryCodeFor(status), out);
  const std::string_view msg = status.message();
  PutU32(static_cast<uint32_t>(msg.size()), out);
  out->append(msg.data(), msg.size());
  if (retry_after_ms > 0) PutU32(retry_after_ms, out);
}

Status DecodeErrorPayload(std::string_view payload, Status* out) {
  return DecodeErrorPayload(payload, out, nullptr);
}

Status DecodeErrorPayload(std::string_view payload, Status* out,
                          uint32_t* retry_after_ms) {
  if (retry_after_ms != nullptr) *retry_after_ms = 0;
  if (payload.size() < 8) return Status::InvalidArgument("error truncated");
  const uint32_t code = GetU32(payload.data());
  const uint32_t len = GetU32(payload.data() + 4);
  const size_t base = 8 + static_cast<size_t>(len);
  if (payload.size() != base && payload.size() != base + 4) {
    return Status::InvalidArgument("error length mismatch");
  }
  if (payload.size() == base + 4 && retry_after_ms != nullptr) {
    *retry_after_ms = GetU32(payload.data() + base);
  }
  *out = Status(StatusFromBinaryCode(code), std::string(payload.substr(8, len)));
  return Status::OK();
}

void EncodeDeletePayload(RecordId id, std::string* out) { PutU64(id, out); }

Status DecodeDeletePayload(std::string_view payload, RecordId* id) {
  if (payload.size() != 8) {
    return Status::InvalidArgument("delete payload must be 8 bytes");
  }
  *id = GetU64(payload.data());
  return Status::OK();
}

void EncodeDeadlinePayload(uint32_t budget_ms, std::string* out) {
  PutU32(budget_ms, out);
}

Status DecodeDeadlinePayload(std::string_view payload, uint32_t* budget_ms) {
  if (payload.size() != 4) {
    return Status::InvalidArgument("deadline payload must be 4 bytes");
  }
  *budget_ms = GetU32(payload.data());
  return Status::OK();
}

void EncodeTraceContextPayload(uint64_t trace_id, uint64_t parent_span_id,
                               std::string* out) {
  PutU64(trace_id, out);
  PutU64(parent_span_id, out);
}

Status DecodeTraceContextPayload(std::string_view payload, uint64_t* trace_id,
                                 uint64_t* parent_span_id) {
  if (payload.size() != 16) {
    return Status::InvalidArgument("trace context payload must be 16 bytes");
  }
  *trace_id = GetU64(payload.data());
  *parent_span_id = GetU64(payload.data() + 8);
  if (*trace_id == 0) {
    return Status::InvalidArgument("trace id must be nonzero");
  }
  return Status::OK();
}

void EncodeServerTimingPayload(uint64_t trace_id,
                               const std::vector<StageTiming>& stages,
                               std::string* out) {
  PutU64(trace_id, out);
  PutU32(static_cast<uint32_t>(stages.size()), out);
  for (const StageTiming& timing : stages) {
    out->push_back(static_cast<char>(timing.stage));
    PutU32(timing.dur_us, out);
  }
}

Status DecodeServerTimingPayload(std::string_view payload, uint64_t* trace_id,
                                 std::vector<StageTiming>* stages) {
  if (payload.size() < 12) {
    return Status::InvalidArgument("server timing payload too short");
  }
  *trace_id = GetU64(payload.data());
  const uint32_t n = GetU32(payload.data() + 8);
  if (payload.size() != 12 + static_cast<size_t>(n) * 5) {
    return Status::InvalidArgument("server timing payload size mismatch");
  }
  stages->clear();
  stages->reserve(n);
  const char* p = payload.data() + 12;
  for (uint32_t i = 0; i < n; ++i, p += 5) {
    StageTiming timing;
    timing.stage = static_cast<TimingStage>(static_cast<uint8_t>(*p));
    timing.dur_us = GetU32(p + 1);
    stages->push_back(timing);
  }
  return Status::OK();
}

const char* TimingStageName(TimingStage stage) {
  switch (stage) {
    case TimingStage::kQueue:
      return "queue";
    case TimingStage::kEncode:
      return "encode";
    case TimingStage::kCandidates:
      return "candidates";
    case TimingStage::kCompare:
      return "compare";
    case TimingStage::kInsert:
      return "insert";
    case TimingStage::kJournal:
      return "journal";
    case TimingStage::kTotal:
      return "total";
  }
  return "unknown";
}

std::string ServerTimingHeaderValue(const std::vector<StageTiming>& stages) {
  std::string out;
  for (const StageTiming& timing : stages) {
    if (!out.empty()) out += ", ";
    // dur is fractional milliseconds per the Server-Timing spec.
    out += StrFormat("%s;dur=%.3f", TimingStageName(timing.stage),
                     static_cast<double>(timing.dur_us) / 1000.0);
  }
  return out;
}

std::vector<StageTiming> ParseServerTimingHeaderValue(std::string_view value) {
  std::vector<StageTiming> out;
  size_t pos = 0;
  while (pos < value.size()) {
    size_t comma = value.find(',', pos);
    if (comma == std::string_view::npos) comma = value.size();
    std::string_view item = value.substr(pos, comma - pos);
    pos = comma + 1;
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    const size_t semi = item.find(';');
    if (semi == std::string_view::npos) continue;
    const std::string_view name = item.substr(0, semi);
    const size_t dur = item.find("dur=", semi);
    if (dur == std::string_view::npos) continue;
    const double ms = std::atof(std::string(item.substr(dur + 4)).c_str());
    for (const TimingStage stage :
         {TimingStage::kQueue, TimingStage::kEncode, TimingStage::kCandidates,
          TimingStage::kCompare, TimingStage::kInsert, TimingStage::kJournal,
          TimingStage::kTotal}) {
      if (name == TimingStageName(stage)) {
        out.push_back(StageTiming{
            stage, static_cast<uint32_t>(ms * 1000.0 + 0.5)});
        break;
      }
    }
  }
  return out;
}

std::string TraceIdHex(uint64_t trace_id) {
  return StrFormat("%016llx", static_cast<unsigned long long>(trace_id));
}

uint64_t ParseTraceIdHex(std::string_view hex) {
  if (hex.empty() || hex.size() > 16) return 0;
  uint64_t value = 0;
  for (const char c : hex) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return 0;
    }
    value = (value << 4) | digit;
  }
  return value;
}

void EncodeJournalFetch(uint64_t epoch, uint64_t offset, std::string* out) {
  PutU64(epoch, out);
  PutU64(offset, out);
}

Status DecodeJournalFetch(std::string_view payload, uint64_t* epoch,
                          uint64_t* offset) {
  if (payload.size() != 16) {
    return Status::InvalidArgument("journal fetch payload must be 16 bytes");
  }
  *epoch = GetU64(payload.data());
  *offset = GetU64(payload.data() + 8);
  return Status::OK();
}

void EncodeJournalData(uint64_t epoch, uint64_t end_offset,
                       std::string_view frames, std::string* out) {
  PutU64(epoch, out);
  PutU64(end_offset, out);
  out->append(frames.data(), frames.size());
}

Status DecodeJournalData(std::string_view payload, uint64_t* epoch,
                         uint64_t* end_offset, std::string* frames) {
  if (payload.size() < 16) {
    return Status::InvalidArgument("journal data truncated");
  }
  *epoch = GetU64(payload.data());
  *end_offset = GetU64(payload.data() + 8);
  frames->assign(payload.substr(16));
  return Status::OK();
}

void HttpParser::Feed(std::string_view bytes) {
  buffer_.append(bytes.data(), bytes.size());
}

HttpParser::Next HttpParser::Pop(HttpRequest* request) {
  if (!error_.ok()) return Next::kBad;
  const size_t header_end = buffer_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (buffer_.size() > kMaxHttpHeaderBytes) {
      error_ = Status::InvalidArgument("HTTP header too large");
      return Next::kBad;
    }
    return Next::kNeedMore;
  }
  // The cap applies even when the terminator arrived in the same Feed
  // as the oversized header.
  if (header_end > kMaxHttpHeaderBytes) {
    error_ = Status::InvalidArgument("HTTP header too large");
    return Next::kBad;
  }
  const std::string_view head(buffer_.data(), header_end);

  // Request line: METHOD SP TARGET SP VERSION
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    error_ = Status::InvalidArgument("malformed HTTP request line");
    return Next::kBad;
  }
  request->method = std::string(request_line.substr(0, sp1));
  request->target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request->keep_alive = true;
  request->deadline_ms = -1;
  request->trace_id = 0;
  request->trace_parent = 0;

  size_t content_length = 0;
  size_t cursor = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (cursor < head.size()) {
    size_t eol = head.find("\r\n", cursor);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(cursor, eol - cursor);
    cursor = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view name = line.substr(0, colon);
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    if (IEquals(name, "content-length")) {
      if (value.empty()) {
        error_ = Status::InvalidArgument("bad Content-Length");
        return Next::kBad;
      }
      uint64_t n = 0;
      for (const char c : value) {
        if (c < '0' || c > '9') {
          error_ = Status::InvalidArgument("bad Content-Length");
          return Next::kBad;
        }
        n = n * 10 + static_cast<uint64_t>(c - '0');
        if (n > kMaxHttpBodyBytes) {
          error_ = Status::InvalidArgument("HTTP body too large");
          return Next::kBad;
        }
      }
      content_length = static_cast<size_t>(n);
    } else if (IEquals(name, "connection")) {
      if (IEquals(value, "close")) request->keep_alive = false;
    } else if (IEquals(name, "x-deadline-ms")) {
      uint64_t n = 0;
      if (value.empty()) {
        error_ = Status::InvalidArgument("bad X-Deadline-Ms");
        return Next::kBad;
      }
      for (const char c : value) {
        if (c < '0' || c > '9') {
          error_ = Status::InvalidArgument("bad X-Deadline-Ms");
          return Next::kBad;
        }
        n = n * 10 + static_cast<uint64_t>(c - '0');
        if (n > kMaxDeadlineMs) n = kMaxDeadlineMs;
      }
      request->deadline_ms = static_cast<int64_t>(n);
    } else if (IEquals(name, "x-trace-id")) {
      // Unparsable ids degrade to untraced rather than 400: tracing is
      // advisory and must never fail a request.
      request->trace_id = ParseTraceIdHex(value);
    } else if (IEquals(name, "x-trace-parent")) {
      request->trace_parent = ParseTraceIdHex(value);
    } else if (IEquals(name, "transfer-encoding")) {
      error_ = Status::InvalidArgument("chunked bodies unsupported");
      return Next::kBad;
    }
  }

  const size_t body_start = header_end + 4;
  if (buffer_.size() - body_start < content_length) return Next::kNeedMore;
  request->body.assign(buffer_, body_start, content_length);
  buffer_.erase(0, body_start + content_length);
  return Next::kRequest;
}

std::string HttpResponse(int code, std::string_view content_type,
                         std::string_view body, bool keep_alive) {
  return HttpResponse(code, content_type, body, keep_alive, 0);
}

std::string HttpResponse(int code, std::string_view content_type,
                         std::string_view body, bool keep_alive,
                         int retry_after_s) {
  return HttpResponse(code, content_type, body, keep_alive, retry_after_s,
                      HttpResponseExtras{});
}

std::string HttpResponse(int code, std::string_view content_type,
                         std::string_view body, bool keep_alive,
                         int retry_after_s, const HttpResponseExtras& extras) {
  // A 429 always advertises a retry hint; other codes only when the
  // caller supplies one.
  if (code == 429 && retry_after_s < 1) retry_after_s = 1;
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", code, HttpReason(code));
  out += StrFormat("Content-Type: %.*s\r\n",
                   static_cast<int>(content_type.size()), content_type.data());
  out += StrFormat("Content-Length: %zu\r\n", body.size());
  if (retry_after_s > 0) out += StrFormat("Retry-After: %d\r\n", retry_after_s);
  if (!extras.server_timing.empty()) {
    out += StrFormat("Server-Timing: %s\r\n", extras.server_timing.c_str());
  }
  if (!extras.trace_id.empty()) {
    out += StrFormat("X-Trace-Id: %s\r\n", extras.trace_id.c_str());
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out.append(body.data(), body.size());
  return out;
}

Status ParseJsonRecord(std::string_view json, Record* out) {
  JsonScanner scanner(json);
  out->id = 0;
  out->fields.clear();
  if (!scanner.Consume('{')) {
    return Status::InvalidArgument("record body must be a JSON object");
  }
  bool first = true;
  while (!scanner.Consume('}')) {
    if (!first && !scanner.Consume(',')) {
      return Status::InvalidArgument("expected ',' between members");
    }
    first = false;
    std::string key;
    CBVLINK_RETURN_NOT_OK(scanner.String(&key));
    if (!scanner.Consume(':')) {
      return Status::InvalidArgument("expected ':' after key");
    }
    if (key == "id") {
      CBVLINK_RETURN_NOT_OK(scanner.U64(&out->id));
    } else if (key == "fields") {
      if (!scanner.Consume('[')) {
        return Status::InvalidArgument("\"fields\" must be an array");
      }
      if (!scanner.Consume(']')) {
        for (;;) {
          std::string field;
          CBVLINK_RETURN_NOT_OK(scanner.String(&field));
          out->fields.push_back(std::move(field));
          if (scanner.Consume(']')) break;
          if (!scanner.Consume(',')) {
            return Status::InvalidArgument("expected ',' in fields array");
          }
        }
      }
    } else {
      return Status::InvalidArgument("unknown key \"" + key +
                                     "\" (expected \"id\" or \"fields\")");
    }
  }
  if (!scanner.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after JSON object");
  }
  return Status::OK();
}

std::string PairsToJson(const std::vector<IdPair>& pairs) {
  std::string out = "{\"pairs\":[";
  bool first = true;
  for (const IdPair& pair : pairs) {
    if (!first) out.push_back(',');
    first = false;
    out += StrFormat("[%llu,%llu]",
                     static_cast<unsigned long long>(pair.a_id),
                     static_cast<unsigned long long>(pair.b_id));
  }
  out += "]}";
  return out;
}

std::string StatusToJson(const Status& status) {
  std::string out = "{\"error\":{\"code\":";
  AppendJsonString(StatusCodeName(status.code()), &out);
  out += ",\"message\":";
  AppendJsonString(status.message(), &out);
  out += "}}";
  return out;
}

}  // namespace net
}  // namespace cbvlink
