// The single Status -> wire-code table of the serving tier.
//
// Every handler used to carry its own switch from StatusCode to an HTTP
// code or a binary kError code; mutation support (NotFound for
// delete/update of unknown ids) would have meant touching each one.
// This module is now the only place the mapping lives: the HTTP
// handlers, the binary kError codec, and the clients all consult it, so
// a new status maps identically on every surface by construction.

#ifndef CBVLINK_NET_STATUS_MAP_H_
#define CBVLINK_NET_STATUS_MAP_H_

#include <cstdint>

#include "src/common/status.h"

namespace cbvlink {
namespace net {

/// The HTTP status code a Status maps to: 200 OK, 400 InvalidArgument,
/// 403 FailedPrecondition, 404 NotFound (delete/update of an unknown
/// id), 429 ResourceExhausted (shed), 504 DeadlineExceeded, 500
/// otherwise.
int HttpCodeFor(const Status& status);

/// The u32 carried in a binary kError payload.  The wire values are the
/// StatusCode enumerators, pinned here so the wire contract survives
/// enum reshuffles.
uint32_t BinaryCodeFor(const Status& status);

/// Inverse of BinaryCodeFor: unknown wire values (a newer peer's codes)
/// degrade to kInternal instead of poisoning the enum.
StatusCode StatusFromBinaryCode(uint32_t code);

}  // namespace net
}  // namespace cbvlink

#endif  // CBVLINK_NET_STATUS_MAP_H_
