// A toxiproxy-style TCP fault-injection proxy, as a library so the
// chaos tests (tests/test_chaos.cc) and bench_net can run traffic
// through it in-process and mutate the faults mid-flight; the
// cbvlink_faultproxy tool is a thin CLI over it.
//
// The proxy accepts on a local port and pumps bytes to/from a single
// upstream, applying the active FaultSpec to every chunk:
//
//   latency_ms / jitter_ms   delay each chunk (uniform jitter)
//   bandwidth_bps            throttle forwarding to a byte rate
//   slice_bytes              forward at most N bytes per write (1 =
//                            the classic 1-byte slicer)
//   corrupt_ppm              flip one random bit per corrupted byte,
//                            with probability ppm / 1e6 per byte
//   reset_after_bytes        RST both sides of a connection once it
//                            has forwarded this many bytes
//   blackhole                stop forwarding (bytes already read are
//                            HELD, not dropped — like a partition, not
//                            packet loss; clearing the flag releases
//                            them, mirroring TCP retransmit semantics)
//
// All knobs are atomics: tests flip them while connections are live.
// Faults apply in both directions.  Corruption uses a deterministic,
// explicitly seeded Rng per pump so failures reproduce.

#ifndef CBVLINK_NET_FAULTPROXY_H_
#define CBVLINK_NET_FAULTPROXY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace cbvlink {
namespace net {

struct FaultSpec {
  std::atomic<int> latency_ms{0};
  std::atomic<int> jitter_ms{0};
  std::atomic<int64_t> bandwidth_bps{0};   ///< 0 = unlimited
  std::atomic<int> slice_bytes{0};         ///< 0 = no slicing
  std::atomic<int> corrupt_ppm{0};         ///< per-byte, parts per million
  std::atomic<int64_t> reset_after_bytes{0};  ///< per connection; 0 = never
  std::atomic<bool> blackhole{false};
  std::atomic<uint64_t> seed{0xfa017cafeULL};

  /// Parses the failpoint-style spec grammar
  /// "latency=5;jitter=2;slice=1;corrupt=1000;bandwidth=65536;
  ///  reset_after=4096;blackhole=1" into `*this` (unlisted knobs are
  /// left untouched).  Unknown names are InvalidArgument.
  Status Parse(std::string_view spec);
};

/// The proxy.  Start() binds and spawns the accept thread; every
/// accepted connection gets an upstream connection and two pump
/// threads.  Shutdown() (or the destructor) closes everything.
class FaultProxy {
 public:
  static Result<std::unique_ptr<FaultProxy>> Start(
      std::string upstream_host, uint16_t upstream_port,
      uint16_t listen_port = 0, std::string bind_address = "127.0.0.1");

  ~FaultProxy();

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// The bound listen port.
  uint16_t port() const;

  /// The live fault knobs (mutate at will).
  FaultSpec& faults();

  /// RSTs every active proxied connection (SO_LINGER 0 close), the
  /// "connection reset" scenario.  New connections proxy normally.
  void ResetAllConnections();

  /// Currently proxied connections.
  size_t active_connections() const;

  /// Total bytes forwarded (both directions) since Start.
  uint64_t forwarded_bytes() const;

  void Shutdown();

 private:
  struct Impl;
  explicit FaultProxy(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace cbvlink

#endif  // CBVLINK_NET_FAULTPROXY_H_
