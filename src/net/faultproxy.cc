#include "src/net/faultproxy.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/common/str.h"

namespace cbvlink {
namespace net {

namespace {

/// Pump recv/send timeout: the granularity at which pumps notice
/// shutdown, blackhole toggles, and connection kills.
constexpr int kPumpTickMs = 50;

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

void SetTickTimeouts(int fd) {
  timeval tv{};
  tv.tv_usec = kPumpTickMs * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// One proxied connection: the accepted client socket, its upstream
/// socket, and two pump threads.  The *last* pump to exit closes both
/// fds — nobody else does, so a pump can never recv() on a closed (and
/// possibly reused) descriptor.
struct ProxyConn {
  int client_fd = -1;
  int upstream_fd = -1;
  std::atomic<bool> dead{false};
  std::atomic<int64_t> forwarded{0};  // both directions
  std::atomic<int> pumps_left{2};
  std::thread pump_in, pump_out;
};

/// Abortive kill: arm SO_LINGER-0 (so the eventual close RSTs when the
/// scenario calls for it) and shutdown both sockets, which wakes the
/// pumps without freeing the fd numbers.
void KillConn(ProxyConn* conn, bool rst) {
  bool expected = false;
  if (!conn->dead.compare_exchange_strong(expected, true)) return;
  if (rst) {
    linger lg{1, 0};
    ::setsockopt(conn->client_fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::setsockopt(conn->upstream_fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  }
  ::shutdown(conn->client_fd, SHUT_RDWR);
  ::shutdown(conn->upstream_fd, SHUT_RDWR);
}

}  // namespace

Status FaultSpec::Parse(std::string_view spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string_view::npos) semi = spec.size();
    std::string_view item = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("fault spec item '%.*s' has no '='",
                    static_cast<int>(item.size()), item.data()));
    }
    const std::string_view name = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    int64_t n = 0;
    for (const char c : value) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument(
            StrFormat("fault spec value '%.*s' is not a number",
                      static_cast<int>(value.size()), value.data()));
      }
      n = n * 10 + (c - '0');
      if (n > (int64_t{1} << 40)) break;  // saturate, don't overflow
    }
    if (name == "latency") latency_ms.store(static_cast<int>(n));
    else if (name == "jitter") jitter_ms.store(static_cast<int>(n));
    else if (name == "bandwidth") bandwidth_bps.store(n);
    else if (name == "slice") slice_bytes.store(static_cast<int>(n));
    else if (name == "corrupt") corrupt_ppm.store(static_cast<int>(n));
    else if (name == "reset_after") reset_after_bytes.store(n);
    else if (name == "blackhole") blackhole.store(n != 0);
    else if (name == "seed") seed.store(static_cast<uint64_t>(n));
    else {
      return Status::InvalidArgument(
          StrFormat("unknown fault '%.*s' (latency, jitter, bandwidth, "
                    "slice, corrupt, reset_after, blackhole, seed)",
                    static_cast<int>(name.size()), name.data()));
    }
  }
  return Status::OK();
}

struct FaultProxy::Impl {
  std::string upstream_host;
  uint16_t upstream_port = 0;
  std::string bind_address;
  uint16_t listen_port = 0;

  int listen_fd = -1;
  uint16_t bound_port = 0;
  FaultSpec faults;
  std::atomic<bool> stopping{false};
  std::atomic<uint64_t> total_forwarded{0};
  std::atomic<uint64_t> conn_seq{0};

  std::thread accept_thread;
  mutable std::mutex conns_mu;
  std::vector<std::shared_ptr<ProxyConn>> conns;

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
  }

  Status Bind();
  void AcceptLoop();
  int ConnectUpstream();
  void Pump(std::shared_ptr<ProxyConn> conn, int from_fd, int to_fd,
            uint64_t seed);
  /// Joins and drops connections whose pumps have both exited.
  void Reap();
  void ShutdownAll();
};

Status FaultProxy::Impl::Bind() {
  listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listen_port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("bad bind address: %s", bind_address.c_str()));
  }
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return Errno("bind");
  if (::listen(listen_fd, 64) != 0) return Errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    return Errno("getsockname");
  bound_port = ntohs(bound.sin_port);
  // accept() honors SO_RCVTIMEO: the accept loop ticks to notice stop.
  SetTickTimeouts(listen_fd);
  return Status::OK();
}

int FaultProxy::Impl::ConnectUpstream() {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(upstream_host.c_str(),
                    std::to_string(upstream_port).c_str(), &hints, &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  return fd;
}

void FaultProxy::Impl::AcceptLoop() {
  while (!stopping.load(std::memory_order_acquire)) {
    int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        Reap();
        continue;
      }
      break;
    }
    int upstream = ConnectUpstream();
    if (upstream < 0) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::setsockopt(upstream, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetTickTimeouts(fd);
    SetTickTimeouts(upstream);
    auto conn = std::make_shared<ProxyConn>();
    conn->client_fd = fd;
    conn->upstream_fd = upstream;
    const uint64_t base_seed =
        faults.seed.load(std::memory_order_relaxed) +
        conn_seq.fetch_add(1, std::memory_order_relaxed) * 2;
    conn->pump_in = std::thread(
        [this, conn, base_seed] {
          Pump(conn, conn->client_fd, conn->upstream_fd, base_seed);
        });
    conn->pump_out = std::thread(
        [this, conn, base_seed] {
          Pump(conn, conn->upstream_fd, conn->client_fd, base_seed + 1);
        });
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      conns.push_back(std::move(conn));
    }
    Reap();
  }
}

void FaultProxy::Impl::Pump(std::shared_ptr<ProxyConn> conn, int from_fd,
                            int to_fd, uint64_t seed) {
  Rng rng(seed);
  char buf[16 * 1024];
  while (!stopping.load(std::memory_order_acquire) &&
         !conn->dead.load(std::memory_order_acquire)) {
    // Blackhole: stop reading.  The kernel's receive buffer (and the
    // peer's TCP flow control) hold the bytes, so clearing the flag
    // releases everything unharmed — a partition, not packet loss.
    if (faults.blackhole.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kPumpTickMs));
      continue;
    }
    const int slice = faults.slice_bytes.load(std::memory_order_relaxed);
    const size_t want =
        slice > 0 ? std::min<size_t>(static_cast<size_t>(slice), sizeof(buf))
                  : sizeof(buf);
    ssize_t n = ::recv(from_fd, buf, want, 0);
    if (n == 0) {
      // EOF: forward the half-close and let the other pump finish any
      // opposite-direction traffic.
      ::shutdown(to_fd, SHUT_WR);
      break;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      KillConn(conn.get(), /*rst=*/false);
      break;
    }
    // Latency + jitter, per chunk.
    const int latency = faults.latency_ms.load(std::memory_order_relaxed);
    const int jitter = faults.jitter_ms.load(std::memory_order_relaxed);
    int64_t delay = latency;
    if (jitter > 0) delay += rng.Uniform(0, jitter);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    // Byte corruption: flip one random bit per corrupted byte.
    const int ppm = faults.corrupt_ppm.load(std::memory_order_relaxed);
    if (ppm > 0) {
      const double p = static_cast<double>(ppm) * 1e-6;
      for (ssize_t i = 0; i < n; ++i) {
        if (rng.NextBool(p)) buf[i] ^= static_cast<char>(1u << rng.Below(8));
      }
    }
    // Forward (the send side also ticks so kills are prompt).
    ssize_t sent = 0;
    bool broken = false;
    while (sent < n) {
      if (stopping.load(std::memory_order_acquire) ||
          conn->dead.load(std::memory_order_acquire)) {
        broken = true;
        break;
      }
      ssize_t m = ::send(to_fd, buf + sent, static_cast<size_t>(n - sent),
                         MSG_NOSIGNAL);
      if (m > 0) {
        sent += m;
        continue;
      }
      if (m < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
        continue;
      KillConn(conn.get(), /*rst=*/false);
      broken = true;
      break;
    }
    if (broken) break;
    total_forwarded.fetch_add(static_cast<uint64_t>(n),
                              std::memory_order_relaxed);
    const int64_t conn_total =
        conn->forwarded.fetch_add(n, std::memory_order_relaxed) + n;
    // Scenario: reset the connection after N forwarded bytes.
    const int64_t reset_after =
        faults.reset_after_bytes.load(std::memory_order_relaxed);
    if (reset_after > 0 && conn_total >= reset_after) {
      KillConn(conn.get(), /*rst=*/true);
      break;
    }
    // Bandwidth cap: pay for these bytes in sleep.
    const int64_t bps = faults.bandwidth_bps.load(std::memory_order_relaxed);
    if (bps > 0) {
      const int64_t ms = n * 1000 / std::max<int64_t>(bps, 1);
      if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  }
  // Last pump out closes both fds (sole closer — see ProxyConn).
  if (conn->pumps_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    ::close(conn->client_fd);
    ::close(conn->upstream_fd);
  }
}

void FaultProxy::Impl::Reap() {
  std::vector<std::shared_ptr<ProxyConn>> done;
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    auto it = conns.begin();
    while (it != conns.end()) {
      if ((*it)->pumps_left.load(std::memory_order_acquire) == 0) {
        done.push_back(*it);
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : done) {
    if (conn->pump_in.joinable()) conn->pump_in.join();
    if (conn->pump_out.joinable()) conn->pump_out.join();
  }
}

void FaultProxy::Impl::ShutdownAll() {
  if (stopping.exchange(true)) {
    if (accept_thread.joinable()) accept_thread.join();
    return;
  }
  if (accept_thread.joinable()) accept_thread.join();
  // Release the port: without this a shut-down proxy still holds the
  // listening socket, so the kernel keeps completing handshakes into
  // the backlog and nobody can rebind the port (a "healed" proxy in the
  // partition drills restarts on the same port).
  if (listen_fd >= 0) {
    ::close(listen_fd);
    listen_fd = -1;
  }
  std::vector<std::shared_ptr<ProxyConn>> all;
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    all.swap(conns);
  }
  for (auto& conn : all) KillConn(conn.get(), /*rst=*/false);
  for (auto& conn : all) {
    if (conn->pump_in.joinable()) conn->pump_in.join();
    if (conn->pump_out.joinable()) conn->pump_out.join();
  }
}

FaultProxy::FaultProxy(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

FaultProxy::~FaultProxy() { Shutdown(); }

Result<std::unique_ptr<FaultProxy>> FaultProxy::Start(
    std::string upstream_host, uint16_t upstream_port, uint16_t listen_port,
    std::string bind_address) {
  if (upstream_port == 0) {
    return Status::InvalidArgument("upstream port must be nonzero");
  }
  auto impl = std::make_unique<Impl>();
  impl->upstream_host = std::move(upstream_host);
  impl->upstream_port = upstream_port;
  impl->bind_address = std::move(bind_address);
  impl->listen_port = listen_port;
  CBVLINK_RETURN_NOT_OK(impl->Bind());
  impl->accept_thread = std::thread([p = impl.get()] { p->AcceptLoop(); });
  return std::unique_ptr<FaultProxy>(new FaultProxy(std::move(impl)));
}

uint16_t FaultProxy::port() const { return impl_->bound_port; }

FaultSpec& FaultProxy::faults() { return impl_->faults; }

void FaultProxy::ResetAllConnections() {
  std::lock_guard<std::mutex> lock(impl_->conns_mu);
  for (auto& conn : impl_->conns) KillConn(conn.get(), /*rst=*/true);
}

size_t FaultProxy::active_connections() const {
  std::lock_guard<std::mutex> lock(impl_->conns_mu);
  size_t live = 0;
  for (auto& conn : impl_->conns) {
    if (conn->pumps_left.load(std::memory_order_acquire) > 0 &&
        !conn->dead.load(std::memory_order_acquire)) {
      ++live;
    }
  }
  return live;
}

uint64_t FaultProxy::forwarded_bytes() const {
  return impl_->total_forwarded.load(std::memory_order_relaxed);
}

void FaultProxy::Shutdown() {
  if (impl_ != nullptr) impl_->ShutdownAll();
}

}  // namespace net
}  // namespace cbvlink
