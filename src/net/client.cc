#include "src/net/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/str.h"
#include "src/io/serialization.h"

namespace cbvlink {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

void SetTimeout(int fd, int which, int ms) {
  if (ms <= 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

/// Like SetTimeout, but ms == 0 clears the timeout (blocking socket).
void SetTimeoutOrClear(int fd, int which, int ms) {
  timeval tv{};
  if (ms > 0) {
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
  }
  ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

}  // namespace

Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port) {
  std::string host_part = "127.0.0.1";
  std::string port_part = spec;
  size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) host_part = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
  }
  if (port_part.empty())
    return Status::InvalidArgument(StrFormat("missing port in '%s'", spec.c_str()));
  uint32_t value = 0;
  for (char c : port_part) {
    if (c < '0' || c > '9')
      return Status::InvalidArgument(StrFormat("bad port in '%s'", spec.c_str()));
    value = value * 10 + static_cast<uint32_t>(c - '0');
    if (value > 65535)
      return Status::InvalidArgument(StrFormat("port out of range in '%s'", spec.c_str()));
  }
  *host = host_part;
  *port = static_cast<uint16_t>(value);
  return Status::OK();
}

NetClient::NetClient(int fd, NetClientOptions options)
    : fd_(fd), options_(options) {}

NetClient::~NetClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<NetClient>> NetClient::Connect(
    const std::string& host, uint16_t port, NetClientOptions options) {
  if (port == 0) return Status::InvalidArgument("cannot connect to port 0");
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &res);
  if (rc != 0) {
    return Status::IOError(
        StrFormat("resolve %s: %s", host.c_str(), ::gai_strerror(rc)));
  }
  int fd = -1;
  Status last = Status::IOError(StrFormat("no addresses for %s", host.c_str()));
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    SetTimeout(fd, SO_SNDTIMEO, options.connect_timeout_ms);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Errno("connect");
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return last;

  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetTimeout(fd, SO_SNDTIMEO, options.io_timeout_ms);
  SetTimeout(fd, SO_RCVTIMEO, options.io_timeout_ms);

  auto client =
      std::unique_ptr<NetClient>(new NetClient(fd, options));
  CBVLINK_RETURN_NOT_OK(client->SendAll(
      std::string_view(kBinaryPreamble, sizeof(kBinaryPreamble))));
  return client;
}

Status NetClient::SendAll(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::IOError("send timed out");
    }
    return Errno("send");
  }
  return Status::OK();
}

Status NetClient::ReadFrame(Frame* frame) {
  char buf[64 * 1024];
  while (true) {
    FrameDecoder::Next next = decoder_.Pop(frame);
    if (next == FrameDecoder::Next::kFrame) return Status::OK();
    if (next == FrameDecoder::Next::kCorrupt) return decoder_.error();
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) return Status::IOError("connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO fired.  The reply may still arrive later, so this
      // connection is out of sync — an IOError tells retry layers to
      // reconnect rather than reuse it.
      return Status::IOError("recv timed out");
    }
    return Errno("recv");
  }
}

void NetClient::ApplyTimeouts(int ms) {
  SetTimeoutOrClear(fd_, SO_SNDTIMEO, ms);
  SetTimeoutOrClear(fd_, SO_RCVTIMEO, ms);
}

void NetClient::AppendTracePrefix(std::string* wire) const {
  if (trace_id_ == 0) return;
  std::string payload;
  EncodeTraceContextPayload(trace_id_, trace_parent_span_id_, &payload);
  EncodeFrame(MsgType::kTraceContext, payload, wire);
}

Status NetClient::ReadReply(Frame* reply) {
  while (true) {
    CBVLINK_RETURN_NOT_OK(ReadFrame(reply));
    if (reply->type != MsgType::kServerTiming) return Status::OK();
    // Annotation frame ahead of the real reply; stash and keep reading.
    uint64_t id = 0;
    std::vector<StageTiming> stages;
    if (DecodeServerTimingPayload(reply->payload, &id, &stages).ok()) {
      last_server_timing_ = std::move(stages);
      last_server_timing_trace_id_ = id;
    }
  }
}

Status NetClient::Call(MsgType type, std::string_view payload, Frame* reply) {
  std::string wire;
  AppendTracePrefix(&wire);
  EncodeFrame(type, payload, &wire);
  CBVLINK_RETURN_NOT_OK(SendAll(wire));
  return ReadReply(reply);
}

Status NetClient::CallWithDeadline(MsgType type, std::string_view payload,
                                   const Deadline& deadline, Frame* reply) {
  if (deadline.IsInfinite()) return Call(type, payload, reply);
  if (deadline.Expired()) {
    return Status::DeadlineExceeded("deadline expired before send");
  }
  const int64_t remaining = deadline.RemainingMs();
  // Propagate the budget, then bound the exchange's socket timeouts by
  // it (rounded up so a sub-millisecond remainder doesn't become an
  // infinite timeout).
  std::string wire;
  std::string budget;
  EncodeDeadlinePayload(
      static_cast<uint32_t>(std::min<int64_t>(remaining, UINT32_MAX)),
      &budget);
  EncodeFrame(MsgType::kDeadline, budget, &wire);
  AppendTracePrefix(&wire);
  EncodeFrame(type, payload, &wire);
  int io_ms = static_cast<int>(std::min<int64_t>(remaining + 1, INT32_MAX));
  if (options_.io_timeout_ms > 0) io_ms = std::min(io_ms, options_.io_timeout_ms);
  ApplyTimeouts(io_ms);
  Status send_st = SendAll(wire);
  Status st = send_st.ok() ? ReadReply(reply) : send_st;
  ApplyTimeouts(options_.io_timeout_ms);
  if (!st.ok() && st.code() == StatusCode::kIOError && deadline.Expired()) {
    return Status::DeadlineExceeded(
        StrFormat("deadline expired mid-call: %s", st.ToString().c_str()));
  }
  return st;
}

Status NetClient::Roundtrip(MsgType type, std::string_view payload,
                            MsgType expect, Frame* reply,
                            const Deadline& deadline) {
  last_retry_after_ms_ = 0;
  last_server_timing_.clear();
  last_server_timing_trace_id_ = 0;
  CBVLINK_RETURN_NOT_OK(CallWithDeadline(type, payload, deadline, reply));
  if (reply->type == MsgType::kError) {
    Status carried = Status::OK();
    CBVLINK_RETURN_NOT_OK(
        DecodeErrorPayload(reply->payload, &carried, &last_retry_after_ms_));
    return carried;
  }
  if (reply->type != expect) {
    return Status::IOError(
        StrFormat("unexpected reply type %u", static_cast<unsigned>(reply->type)));
  }
  return Status::OK();
}

Status NetClient::Ping(const Deadline& deadline) {
  Frame reply;
  return Roundtrip(MsgType::kPing, {}, MsgType::kPong, &reply, deadline);
}

Status NetClient::Match(const Record& record, std::vector<IdPair>* out,
                        const Deadline& deadline) {
  std::string payload;
  WireEncodeRecord(record, &payload);
  Frame reply;
  CBVLINK_RETURN_NOT_OK(Roundtrip(MsgType::kMatch, payload,
                                  MsgType::kMatchResult, &reply, deadline));
  return DecodePairs(reply.payload, out);
}

Status NetClient::MatchAndInsert(const Record& record,
                                 std::vector<IdPair>* out,
                                 const Deadline& deadline) {
  std::string payload;
  WireEncodeRecord(record, &payload);
  Frame reply;
  CBVLINK_RETURN_NOT_OK(Roundtrip(MsgType::kMatchAndInsert, payload,
                                  MsgType::kMatchResult, &reply, deadline));
  return DecodePairs(reply.payload, out);
}

Status NetClient::Insert(const Record& record, const Deadline& deadline) {
  std::string payload;
  WireEncodeRecord(record, &payload);
  Frame reply;
  return Roundtrip(MsgType::kInsert, payload, MsgType::kInserted, &reply,
                   deadline);
}

Status NetClient::Delete(RecordId id, const Deadline& deadline) {
  std::string payload;
  EncodeDeletePayload(id, &payload);
  Frame reply;
  return Roundtrip(MsgType::kDelete, payload, MsgType::kDeleted, &reply,
                   deadline);
}

Status NetClient::Update(const Record& record, const Deadline& deadline) {
  std::string payload;
  WireEncodeRecord(record, &payload);
  Frame reply;
  return Roundtrip(MsgType::kUpdate, payload, MsgType::kUpdated, &reply,
                   deadline);
}

Status NetClient::FetchSnapshot(std::string* snapshot_bytes) {
  Frame reply;
  CBVLINK_RETURN_NOT_OK(
      Roundtrip(MsgType::kFetchSnapshot, {}, MsgType::kSnapshotData, &reply));
  *snapshot_bytes = std::move(reply.payload);
  return Status::OK();
}

Status NetClient::FetchJournal(uint64_t epoch, uint64_t offset,
                               uint64_t* out_epoch, uint64_t* out_end,
                               std::string* frames) {
  std::string payload;
  EncodeJournalFetch(epoch, offset, &payload);
  Frame reply;
  CBVLINK_RETURN_NOT_OK(
      Roundtrip(MsgType::kFetchJournal, payload, MsgType::kJournalData, &reply));
  return DecodeJournalData(reply.payload, out_epoch, out_end, frames);
}

Status NetClient::PipelinedBurst(
    MsgType type, const Record& base, size_t count,
    const std::function<void(size_t, const Frame&)>& on_reply) {
  std::string wire;
  Record record = base;
  for (size_t i = 0; i < count; ++i) {
    record.id = base.id + i;
    std::string payload;
    if (type == MsgType::kDelete) {
      EncodeDeletePayload(record.id, &payload);
    } else {
      WireEncodeRecord(record, &payload);
    }
    EncodeFrame(type, payload, &wire);
  }
  CBVLINK_RETURN_NOT_OK(SendAll(wire));
  for (size_t i = 0; i < count; ++i) {
    Frame reply;
    CBVLINK_RETURN_NOT_OK(ReadFrame(&reply));
    on_reply(i, reply);
  }
  return Status::OK();
}

Status NetClient::Stats(std::string* json, const Deadline& deadline) {
  Frame reply;
  CBVLINK_RETURN_NOT_OK(
      Roundtrip(MsgType::kStats, {}, MsgType::kStatsJson, &reply, deadline));
  *json = std::move(reply.payload);
  return Status::OK();
}

// --- RetryingClient -------------------------------------------------------

RetryingClient::RetryingClient(std::string host, uint16_t port,
                               RetryPolicy policy,
                               NetClientOptions conn_options)
    : host_(std::move(host)),
      port_(port),
      policy_(policy),
      conn_options_(conn_options),
      backoff_(policy.backoff) {}

Status RetryingClient::EnsureConnected(const Deadline& attempt_deadline) {
  if (client_ != nullptr) return Status::OK();
  NetClientOptions options = conn_options_;
  const int64_t remaining = attempt_deadline.RemainingMs();
  if (!attempt_deadline.IsInfinite()) {
    const int budget = static_cast<int>(
        std::min<int64_t>(std::max<int64_t>(remaining, 1), INT32_MAX));
    if (options.connect_timeout_ms <= 0 || budget < options.connect_timeout_ms) {
      options.connect_timeout_ms = budget;
    }
  }
  auto connected = NetClient::Connect(host_, port_, options);
  if (!connected.ok()) return connected.status();
  client_ = std::move(connected).value();
  if (counters_.attempts > 1 || counters_.transport_errors > 0) {
    ++counters_.reconnects;
  }
  return Status::OK();
}

Status RetryingClient::Execute(
    const std::function<Status(NetClient&, const Deadline&)>& op) {
  const Deadline total = policy_.total_timeout_ms > 0
                             ? Deadline::AfterMs(policy_.total_timeout_ms)
                             : Deadline::Infinite();
  backoff_.Reset();
  Status last = Status::Internal("no attempts made");
  const int max_attempts = std::max(1, policy_.max_attempts);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (total.Expired()) break;
    ++counters_.attempts;
    if (attempt > 1) ++counters_.retries;
    Deadline attempt_deadline = total;
    if (policy_.per_attempt_timeout_ms > 0) {
      attempt_deadline = Deadline::Min(
          total, Deadline::AfterMs(policy_.per_attempt_timeout_ms));
    }
    Status st = EnsureConnected(attempt_deadline);
    uint32_t retry_after_ms = 0;
    if (st.ok()) {
      // Stamp the trace id before every attempt: a reconnect builds a
      // fresh NetClient, and retries must keep the original id so the
      // server's traces show them as one logical operation.
      client_->set_trace(trace_id_);
      st = op(*client_, attempt_deadline);
      if (st.ok()) {
        backoff_.Reset();
        return st;
      }
      retry_after_ms = client_->last_retry_after_ms();
    }
    last = st;
    switch (st.code()) {
      case StatusCode::kIOError:
        // Transport failure (reset, timeout, refused): the connection
        // is unusable or out of sync; reconnect on the next attempt.
        ++counters_.transport_errors;
        client_.reset();
        break;
      case StatusCode::kResourceExhausted:
        ++counters_.sheds_seen;
        break;
      case StatusCode::kDeadlineExceeded:
        // Server-side shed of expired work, or a local mid-call expiry;
        // the next attempt gets a fresh per-attempt budget.  Drop the
        // connection: a local expiry leaves it out of sync.
        ++counters_.deadline_seen;
        client_.reset();
        break;
      default:
        return st;  // not retryable (bad request, read-only, ...)
    }
    if (attempt == max_attempts) break;
    int64_t delay_ms = backoff_.NextDelayMs();
    if (policy_.honor_retry_after &&
        static_cast<int64_t>(retry_after_ms) > delay_ms) {
      delay_ms = retry_after_ms;
    }
    if (delay_ms >= total.RemainingMs()) break;  // sleep would eat the budget
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  if (total.Expired() || total.RemainingMs() == 0) {
    return Status::DeadlineExceeded(
        StrFormat("retry budget exhausted; last error: %s",
                  last.ToString().c_str()));
  }
  return last;
}

Status RetryingClient::Ping() {
  return Execute([](NetClient& client, const Deadline& deadline) {
    return client.Ping(deadline);
  });
}

Status RetryingClient::Match(const Record& record, std::vector<IdPair>* out) {
  return Execute([&](NetClient& client, const Deadline& deadline) {
    return client.Match(record, out, deadline);
  });
}

Status RetryingClient::MatchAndInsert(const Record& record,
                                      std::vector<IdPair>* out) {
  return Execute([&](NetClient& client, const Deadline& deadline) {
    return client.MatchAndInsert(record, out, deadline);
  });
}

Status RetryingClient::Insert(const Record& record) {
  return Execute([&](NetClient& client, const Deadline& deadline) {
    return client.Insert(record, deadline);
  });
}

Status RetryingClient::Delete(RecordId id) {
  return Execute([&](NetClient& client, const Deadline& deadline) {
    return client.Delete(id, deadline);
  });
}

Status RetryingClient::Update(const Record& record) {
  return Execute([&](NetClient& client, const Deadline& deadline) {
    return client.Update(record, deadline);
  });
}

Status RetryingClient::Stats(std::string* json) {
  return Execute([&](NetClient& client, const Deadline& deadline) {
    return client.Stats(json, deadline);
  });
}

}  // namespace net
}  // namespace cbvlink
