#include "src/net/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/str.h"
#include "src/io/serialization.h"

namespace cbvlink {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

void SetTimeout(int fd, int which, int ms) {
  if (ms <= 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

}  // namespace

Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port) {
  std::string host_part = "127.0.0.1";
  std::string port_part = spec;
  size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) host_part = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
  }
  if (port_part.empty())
    return Status::InvalidArgument(StrFormat("missing port in '%s'", spec.c_str()));
  uint32_t value = 0;
  for (char c : port_part) {
    if (c < '0' || c > '9')
      return Status::InvalidArgument(StrFormat("bad port in '%s'", spec.c_str()));
    value = value * 10 + static_cast<uint32_t>(c - '0');
    if (value > 65535)
      return Status::InvalidArgument(StrFormat("port out of range in '%s'", spec.c_str()));
  }
  *host = host_part;
  *port = static_cast<uint16_t>(value);
  return Status::OK();
}

NetClient::NetClient(int fd, NetClientOptions options)
    : fd_(fd), options_(options) {}

NetClient::~NetClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<NetClient>> NetClient::Connect(
    const std::string& host, uint16_t port, NetClientOptions options) {
  if (port == 0) return Status::InvalidArgument("cannot connect to port 0");
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &res);
  if (rc != 0) {
    return Status::IOError(
        StrFormat("resolve %s: %s", host.c_str(), ::gai_strerror(rc)));
  }
  int fd = -1;
  Status last = Status::IOError(StrFormat("no addresses for %s", host.c_str()));
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    SetTimeout(fd, SO_SNDTIMEO, options.connect_timeout_ms);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Errno("connect");
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return last;

  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetTimeout(fd, SO_SNDTIMEO, options.io_timeout_ms);
  SetTimeout(fd, SO_RCVTIMEO, options.io_timeout_ms);

  auto client =
      std::unique_ptr<NetClient>(new NetClient(fd, options));
  CBVLINK_RETURN_NOT_OK(client->SendAll(
      std::string_view(kBinaryPreamble, sizeof(kBinaryPreamble))));
  return client;
}

Status NetClient::SendAll(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status NetClient::ReadFrame(Frame* frame) {
  char buf[64 * 1024];
  while (true) {
    FrameDecoder::Next next = decoder_.Pop(frame);
    if (next == FrameDecoder::Next::kFrame) return Status::OK();
    if (next == FrameDecoder::Next::kCorrupt) return decoder_.error();
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) return Status::IOError("connection closed by server");
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Status NetClient::Call(MsgType type, std::string_view payload, Frame* reply) {
  std::string wire;
  EncodeFrame(type, payload, &wire);
  CBVLINK_RETURN_NOT_OK(SendAll(wire));
  return ReadFrame(reply);
}

Status NetClient::Roundtrip(MsgType type, std::string_view payload,
                            MsgType expect, Frame* reply) {
  CBVLINK_RETURN_NOT_OK(Call(type, payload, reply));
  if (reply->type == MsgType::kError) {
    Status carried = Status::OK();
    CBVLINK_RETURN_NOT_OK(DecodeErrorPayload(reply->payload, &carried));
    return carried;
  }
  if (reply->type != expect) {
    return Status::IOError(
        StrFormat("unexpected reply type %u", static_cast<unsigned>(reply->type)));
  }
  return Status::OK();
}

Status NetClient::Ping() {
  Frame reply;
  return Roundtrip(MsgType::kPing, {}, MsgType::kPong, &reply);
}

Status NetClient::Match(const Record& record, std::vector<IdPair>* out) {
  std::string payload;
  WireEncodeRecord(record, &payload);
  Frame reply;
  CBVLINK_RETURN_NOT_OK(
      Roundtrip(MsgType::kMatch, payload, MsgType::kMatchResult, &reply));
  return DecodePairs(reply.payload, out);
}

Status NetClient::MatchAndInsert(const Record& record,
                                 std::vector<IdPair>* out) {
  std::string payload;
  WireEncodeRecord(record, &payload);
  Frame reply;
  CBVLINK_RETURN_NOT_OK(Roundtrip(MsgType::kMatchAndInsert, payload,
                                  MsgType::kMatchResult, &reply));
  return DecodePairs(reply.payload, out);
}

Status NetClient::Insert(const Record& record) {
  std::string payload;
  WireEncodeRecord(record, &payload);
  Frame reply;
  return Roundtrip(MsgType::kInsert, payload, MsgType::kInserted, &reply);
}

Status NetClient::FetchSnapshot(std::string* snapshot_bytes) {
  Frame reply;
  CBVLINK_RETURN_NOT_OK(
      Roundtrip(MsgType::kFetchSnapshot, {}, MsgType::kSnapshotData, &reply));
  *snapshot_bytes = std::move(reply.payload);
  return Status::OK();
}

Status NetClient::FetchJournal(uint64_t epoch, uint64_t offset,
                               uint64_t* out_epoch, uint64_t* out_end,
                               std::string* frames) {
  std::string payload;
  EncodeJournalFetch(epoch, offset, &payload);
  Frame reply;
  CBVLINK_RETURN_NOT_OK(
      Roundtrip(MsgType::kFetchJournal, payload, MsgType::kJournalData, &reply));
  return DecodeJournalData(reply.payload, out_epoch, out_end, frames);
}

Status NetClient::PipelinedBurst(
    MsgType type, const Record& base, size_t count,
    const std::function<void(size_t, const Frame&)>& on_reply) {
  std::string wire;
  Record record = base;
  for (size_t i = 0; i < count; ++i) {
    record.id = base.id + i;
    std::string payload;
    WireEncodeRecord(record, &payload);
    EncodeFrame(type, payload, &wire);
  }
  CBVLINK_RETURN_NOT_OK(SendAll(wire));
  for (size_t i = 0; i < count; ++i) {
    Frame reply;
    CBVLINK_RETURN_NOT_OK(ReadFrame(&reply));
    on_reply(i, reply);
  }
  return Status::OK();
}

Status NetClient::Stats(std::string* json) {
  Frame reply;
  CBVLINK_RETURN_NOT_OK(
      Roundtrip(MsgType::kStats, {}, MsgType::kStatsJson, &reply));
  *json = std::move(reply.payload);
  return Status::OK();
}

}  // namespace net
}  // namespace cbvlink
