// Warm-standby replication: a Replica bootstraps from a primary's
// snapshot (kFetchSnapshot) and then follows its mutation journal
// (kFetchJournal) over the binary protocol, applying each decoded
// insert/delete/update frame to a local LinkageService.  The replica's
// service can be served read-only by a NetServer (options.read_only)
// and promoted to a primary when the original dies.
//
// Cursor protocol: the follower carries (epoch, offset).  The primary
// answers with its current epoch and end offset; an epoch change means
// the journal rotated under the cursor (a snapshot save dropped the
// covered prefix), so the follower re-syncs from a fresh snapshot —
// cheap, because rotation implies a newer snapshot exists.  Frames that
// overlap the snapshot are skipped exactly like local journal replay
// (LinkageService::ApplyMutation): inserts dedupe by record id,
// delete/update frames by their acknowledgement sequence against the
// snapshot's sequence floor.
//
// Lag is measured in journal bytes (primary end offset minus the
// follower's applied offset) and exported as the
// `replication_lag_bytes` gauge.

#ifndef CBVLINK_NET_REPLICATION_H_
#define CBVLINK_NET_REPLICATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/backoff.h"
#include "src/common/status.h"
#include "src/io/journal.h"
#include "src/net/client.h"

namespace cbvlink {

class LinkageService;

namespace telemetry {
class TraceSink;
}  // namespace telemetry

namespace net {

struct ReplicaOptions {
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  /// Journal poll cadence once caught up (a fetch returning frames
  /// polls again immediately).
  int poll_interval_ms = 200;
  /// Client timeouts for the follow connection.
  int connect_timeout_ms = 5000;
  int io_timeout_ms = 30000;
  /// Wait between retries after a failed fetch/re-sync: capped
  /// exponential with decorrelated jitter, so a fleet of followers that
  /// lost the same primary does not stampede it on recovery.
  BackoffOptions failure_backoff{/*base_ms=*/100, /*max_ms=*/5000};
  /// Consecutive failures before the circuit breaker opens.
  int circuit_open_after_failures = 3;
  /// Request tracing sink.  When set, every follow cycle that made
  /// progress (frames applied or a re-sync) records a span tree —
  /// replica_fetch / replica_apply / replica_sync — under a
  /// "replica_cycle" root; idle polls are discarded without touching
  /// the sink.  Null (default) disables tracing.  Borrowed: must
  /// outlive the Replica.
  telemetry::TraceSink* trace_sink = nullptr;
};

/// Circuit-breaker state of the follow connection, exported as the
/// `replication_circuit_state` gauge (0/1/2 in enum order).
///   closed    — following normally.
///   open      — consecutive failures crossed the threshold; the
///               follower is backing off, not hammering the primary.
///   half_open — backoff elapsed; the next sync attempt is the probe
///               that either closes the circuit or re-opens it.
enum class CircuitState : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

/// A point-in-time view of the follower's progress.
struct ReplicaProgress {
  /// True while the initial snapshot sync (or a re-sync) is running.
  bool syncing = true;
  uint64_t epoch = 0;
  /// Byte offset of the last fully applied frame boundary.
  uint64_t applied_offset = 0;
  /// The primary's end offset at the last successful fetch.
  uint64_t end_offset = 0;
  /// end_offset - applied_offset.
  uint64_t lag_bytes = 0;
  /// Journal records applied since Start (dedupe-skipped ones excluded).
  uint64_t applied_records = 0;
  /// Snapshot (re-)syncs completed.
  uint64_t syncs = 0;
  /// Last follow-loop error (transient errors are retried; cleared once
  /// the follower recovers).
  std::string last_error;
  /// Circuit breaker over the follow connection.
  CircuitState circuit = CircuitState::kClosed;
  uint64_t consecutive_failures = 0;
};

/// The warm standby.  Start() performs the initial snapshot sync
/// synchronously (so a returned Replica is immediately serviceable) and
/// spawns the follow thread.
class Replica {
 public:
  static Result<std::unique_ptr<Replica>> Start(ReplicaOptions options);

  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// The replica's service (owned by the Replica until Promote()).
  /// Serve it read-only; mutations race the follow thread.  The pointer
  /// is stable for the Replica's lifetime: re-syncs merge into this
  /// object rather than replacing it.
  LinkageService* service() const;

  ReplicaProgress progress() const;

  /// Stops following and transfers service ownership to the caller:
  /// the returned service is now a primary (attach a journal, serve
  /// writes).  The Replica is inert afterwards.
  std::unique_ptr<LinkageService> Promote();

  /// Stops the follow thread without releasing the service.  Returns
  /// promptly: the follow thread sleeps on a condition variable that
  /// Stop() signals, never on fixed ticks.
  void Stop();

 private:
  Replica() = default;

  void FollowLoop();
  /// Interruptible sleep: returns early (false) when Stop() is called.
  bool SleepFor(int64_t ms);
  void NoteSuccess();
  void NoteFailure(const Status& error);
  /// open -> half_open, once the backoff before a probe has elapsed.
  void MaybeHalfOpen();
  /// One snapshot sync: fetch, restore (first time) or merge into the
  /// existing service (re-sync — keeps service() pointer-stable), reset
  /// the cursor.  Maintains progress().syncing around the Impl body.
  Status SyncFromSnapshot();
  Status SyncFromSnapshotImpl();
  /// One journal fetch + apply pass.  Sets `*made_progress` when frames
  /// were received.
  Status FetchOnce(bool* made_progress);

  ReplicaOptions options_;
  std::unique_ptr<LinkageService> service_;

  std::thread follow_thread_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mu_;
  std::condition_variable wake_cv_;  // signalled by Stop()
  ReplicaProgress progress_;

  // Follow-thread-only retry pacing.
  Backoff backoff_;

  // Follow-thread-only cursor state (also touched by Start's initial
  // synchronous sync, before the thread exists).
  std::unique_ptr<NetClient> client_;
  uint64_t epoch_ = 0;
  uint64_t fetch_offset_ = 0;  // next byte to request
  JournalFrameDecoder decoder_;  // buffers a frame split across fetches
};

}  // namespace net
}  // namespace cbvlink

#endif  // CBVLINK_NET_REPLICATION_H_
