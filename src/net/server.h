// The network serving tier: a small epoll-based non-blocking server in
// front of a LinkageService, speaking both the CRC-framed binary
// protocol and the HTTP/JSON mapping of src/net/protocol.h on the same
// port (told apart by the "CBVP" connection preamble).
//
// Threading model: ONE IO thread owns the listener, the epoll set and
// every socket read/write; a pool of worker threads executes the
// service calls.  Parsed requests land in a per-connection queue and a
// connection is handed to at most one worker at a time, so responses
// leave in request order without any per-request sequencing machinery.
// Workers never touch file descriptors — they append to the
// connection's write buffer and nudge the IO thread over an eventfd.
//
// Admission control: the server tracks the total number of admitted,
// not-yet-answered requests.  A request parsed while that count is at
// `max_queue` is shed immediately from the IO thread — HTTP 429 with
// Retry-After, or a kError frame carrying ResourceExhausted — without
// ever reaching the workers, so overload degrades into cheap rejections
// instead of latency collapse or unbounded memory.  Connections idle
// past `idle_timeout_ms` (no bytes read or written) are closed by a
// periodic sweep, bounding the cost of dead peers.
//
// Per-connection batching: a run of consecutive binary kMatch requests
// with distinct query ids is executed as one LinkageService::MatchBatch
// over the service thread pool, then demultiplexed back into one
// response per request (pairs carry the query id).  A pipelining client
// therefore gets batch throughput without a batch API.

#ifndef CBVLINK_NET_SERVER_H_
#define CBVLINK_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/status.h"

namespace cbvlink {

class LinkageService;

namespace telemetry {
class TraceSink;
}  // namespace telemetry

namespace net {

struct NetServerOptions {
  /// IPv4 address to bind ("0.0.0.0" for all interfaces).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker threads executing service calls; 0 = hardware concurrency.
  size_t num_workers = 0;
  /// Admitted-but-unanswered request cap; requests beyond it are shed
  /// with 429 / ResourceExhausted.
  size_t max_queue = 256;
  /// Accepted-connection cap; excess accepts are closed immediately.
  size_t max_connections = 1024;
  /// A connection with no socket activity for this long is closed.
  /// 0 disables the sweep.
  int idle_timeout_ms = 60000;
  /// Slow-loris guard: once the first byte of a request has arrived,
  /// the rest must follow within this window or the connection is
  /// reaped — a peer trickling one header byte per idle-timeout can
  /// otherwise hold a connection forever (each byte resets the idle
  /// clock, but not this one).  0 disables the check.
  int request_progress_timeout_ms = 10000;
  /// Read-only mode (warm standby): kInsert / kMatchAndInsert and their
  /// HTTP POSTs answer FailedPrecondition / 403.
  bool read_only = false;
  /// Request tracing sink (src/telemetry/trace_sink.h).  Null disables
  /// tracing entirely — no collectors are allocated and the span sites
  /// stay on their no-op fast path, which is the default.  When set,
  /// every admitted request records a span tree (adopting the trace id
  /// carried by kTraceContext / X-Trace-Id, minting one otherwise), the
  /// sink's sampling policy decides which trees survive, GET /tracez
  /// serves the captured set, and traced requests earn a Server-Timing
  /// header / kServerTiming frame.  Borrowed: must outlive the server.
  telemetry::TraceSink* trace_sink = nullptr;
};

/// The server.  Start() binds, spawns the IO and worker threads and
/// returns; Shutdown() (or the destructor) stops them and closes every
/// connection.  `service` must outlive the server.
class NetServer {
 public:
  static Result<std::unique_ptr<NetServer>> Start(LinkageService* service,
                                                  NetServerOptions options = {});

  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent.
  void Shutdown();

  /// Graceful drain, the first half of a clean SIGTERM exit: stops
  /// accepting new connections, flips /readyz to 503, sheds new *work*
  /// requests (POSTs / binary match+insert — health probes and
  /// snapshot/journal fetches still answer, so replicas keep converging
  /// through a failover), and waits up to `deadline_ms` for every
  /// already-admitted request to finish and flush.  Returns true when
  /// the queue fully drained within the deadline.  Call Shutdown()
  /// afterwards.  Idempotent.
  bool Drain(int deadline_ms);

  /// True once Drain() has started (readiness probes key off this).
  bool draining() const;

  /// The bound port (the resolved one when options.port was 0).
  uint16_t port() const;

  const NetServerOptions& options() const;

 private:
  struct Impl;
  explicit NetServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace cbvlink

#endif  // CBVLINK_NET_SERVER_H_
