// Wire protocol of the network serving tier (src/net/server.h): a
// length-prefixed, CRC32C-framed binary protocol plus a minimal
// HTTP/1.1 JSON mapping, both speaking to the same LinkageService
// operations.
//
// Binary connections open with the 4-byte preamble "CBVP" (how the
// server tells them apart from HTTP, whose first bytes are an ASCII
// method).  After the preamble, both directions exchange frames:
//
//   u32 payload_len   u8 type   payload   u32 crc32c(type + payload)
//
// CRC framing reuses src/common/crc32 exactly like the v2 snapshot wire
// format, so a bit flip anywhere in a frame is detected before the
// payload is trusted; payload_len is capped so a corrupt length can
// never demand an unbounded allocation.
//
// The HTTP mapping serves the same operations for curl-ability:
//   GET    /healthz            -> 200 "ok"
//   GET    /metrics            -> Prometheus text exposition
//   GET    /stats              -> telemetry JSON
//   POST   /match              -> {"pairs": [[a_id, b_id], ...]}
//   POST   /insert             -> {"pairs": []}
//   POST   /match_and_insert   -> {"pairs": [[a_id, b_id], ...]}
//   DELETE /records/{id}       -> {"pairs": []}
//   PUT    /records/{id}       -> {"pairs": []}
// POST/PUT bodies are {"id": N, "fields": ["F1", "F2", ...]} (a PUT
// body's id must match the target id when present); a shed request
// answers 429, a malformed one 400, a read-only replica 403, a
// delete/update of an unknown id 404 (src/net/status_map.h is the one
// table those codes come from).

#ifndef CBVLINK_NET_PROTOCOL_H_
#define CBVLINK_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/record.h"
#include "src/common/status.h"

namespace cbvlink {
namespace net {

/// The binary-mode connection preamble.
inline constexpr char kBinaryPreamble[4] = {'C', 'B', 'V', 'P'};

/// Hard cap on one frame's payload (snapshot transfers are the largest
/// legitimate frames).
inline constexpr uint32_t kMaxFramePayload = 256u << 20;

/// Frame types.  Requests are < 64, responses >= 64.
enum class MsgType : uint8_t {
  kPing = 1,
  kMatch = 2,           ///< payload: WireEncodeRecord
  kMatchAndInsert = 3,  ///< payload: WireEncodeRecord
  kInsert = 4,          ///< payload: WireEncodeRecord
  kFetchSnapshot = 5,   ///< empty payload
  kFetchJournal = 6,    ///< payload: u64 epoch, u64 offset
  kStats = 7,           ///< empty payload
  /// Deadline prefix: payload u32 budget_ms.  Arms a deadline for the
  /// *next* request frame on the connection (send kDeadline, then the
  /// request).  Not a request itself — it gets no reply and does not
  /// count against the admission queue.  Prefixing (rather than a field
  /// in every request frame) keeps all existing payload codecs and
  /// pipelined-batch folding unchanged.
  kDeadline = 8,
  /// Trace-context prefix: payload u64 trace_id, u64 parent_span_id.
  /// Arms tracing for the *next* request frame on the connection, same
  /// prefixing discipline as kDeadline: no reply, no queue slot, all
  /// request payload codecs unchanged.  A server with tracing enabled
  /// adopts the carried ids as the request's trace root, so client and
  /// server spans join one tree; it also entitles the request to a
  /// kServerTiming annotation frame ahead of its response.
  kTraceContext = 9,
  kDelete = 10,  ///< payload: u64 record id
  kUpdate = 11,  ///< payload: WireEncodeRecord (full replacement)

  kPong = 65,
  kMatchResult = 66,    ///< payload: u32 n, n * (u64 a_id, u64 b_id)
  kInserted = 67,       ///< empty payload
  kError = 68,          ///< payload: u32 status code, u32 len, message
  kSnapshotData = 69,   ///< payload: a complete CBVS snapshot stream
  kJournalData = 70,    ///< payload: u64 epoch, u64 end_offset, raw frames
  kStatsJson = 71,      ///< payload: telemetry JSON text
  /// Server-timing annotation: sent immediately BEFORE the response
  /// frame of a request that carried kTraceContext (the response-side
  /// mirror of the request-side prefix discipline).  Payload: u64
  /// trace_id, u32 n, n * (u8 stage, u32 dur_us).  Peers that never
  /// send kTraceContext never receive it, so old clients are unaffected.
  kServerTiming = 72,
  kDeleted = 73,  ///< empty payload
  kUpdated = 74,  ///< empty payload
};

/// Stages a kServerTiming annotation (or Server-Timing header) reports,
/// mirroring the paper's pipeline: queue wait, embedding, HB candidate
/// generation, cBV Hamming comparison, index insertion (insert paths
/// only), journal append+fsync, and the server-side end-to-end total.
enum class TimingStage : uint8_t {
  kQueue = 0,
  kEncode = 1,
  kCandidates = 2,
  kCompare = 3,
  kInsert = 4,
  kJournal = 5,
  kTotal = 6,
};

/// Stable lowercase token for a stage ("queue", "encode", ...), used in
/// the Server-Timing header and client-side printing.
const char* TimingStageName(TimingStage stage);

/// One per-stage duration.
struct StageTiming {
  TimingStage stage = TimingStage::kTotal;
  uint32_t dur_us = 0;
};

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kPing;
  std::string payload;
};

/// Appends one encoded frame to `*out`.
void EncodeFrame(MsgType type, std::string_view payload, std::string* out);

/// Incremental frame decoder for a byte stream.  Corruption (bad CRC,
/// over-cap length) is terminal: the connection should be dropped.
class FrameDecoder {
 public:
  enum class Next { kFrame, kNeedMore, kCorrupt };

  void Feed(std::string_view bytes);
  Next Pop(Frame* frame);

  const Status& error() const { return error_; }
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;
  Status error_;
};

// --- Frame payload codecs -------------------------------------------------

void EncodePairs(const std::vector<IdPair>& pairs, std::string* out);
Status DecodePairs(std::string_view payload, std::vector<IdPair>* out);

/// kError payload <-> Status (the code survives the round trip, so a
/// client can distinguish shed RESOURCE_EXHAUSTED from hard failures).
/// The payload optionally carries a trailing u32 retry_after_ms hint
/// (the binary analogue of HTTP Retry-After, derived from the server's
/// observed queue drain rate); encoders omit it when it is 0 and
/// decoders accept both shapes, so old and new peers interoperate.
void EncodeErrorPayload(const Status& status, std::string* out);
void EncodeErrorPayload(const Status& status, uint32_t retry_after_ms,
                        std::string* out);
Status DecodeErrorPayload(std::string_view payload, Status* out);
Status DecodeErrorPayload(std::string_view payload, Status* out,
                          uint32_t* retry_after_ms);

/// kDeadline payload <-> relative budget in milliseconds.
void EncodeDeadlinePayload(uint32_t budget_ms, std::string* out);
Status DecodeDeadlinePayload(std::string_view payload, uint32_t* budget_ms);

/// kTraceContext payload <-> (trace_id, parent_span_id).  A zero
/// trace_id is rejected on decode (0 means "untraced" everywhere).
void EncodeTraceContextPayload(uint64_t trace_id, uint64_t parent_span_id,
                               std::string* out);
Status DecodeTraceContextPayload(std::string_view payload, uint64_t* trace_id,
                                 uint64_t* parent_span_id);

/// kServerTiming payload <-> (trace_id, per-stage durations).
void EncodeServerTimingPayload(uint64_t trace_id,
                               const std::vector<StageTiming>& stages,
                               std::string* out);
Status DecodeServerTimingPayload(std::string_view payload, uint64_t* trace_id,
                                 std::vector<StageTiming>* stages);

/// Renders stages as a Server-Timing header value:
/// "queue;dur=0.123, match;dur=4.5" (dur in fractional milliseconds,
/// per the header's spec).
std::string ServerTimingHeaderValue(const std::vector<StageTiming>& stages);

/// Parses a Server-Timing header value produced by
/// ServerTimingHeaderValue (unknown stage tokens are skipped).
std::vector<StageTiming> ParseServerTimingHeaderValue(std::string_view value);

/// kDelete payload <-> the record id to tombstone.
void EncodeDeletePayload(RecordId id, std::string* out);
Status DecodeDeletePayload(std::string_view payload, RecordId* id);

void EncodeJournalFetch(uint64_t epoch, uint64_t offset, std::string* out);
Status DecodeJournalFetch(std::string_view payload, uint64_t* epoch,
                          uint64_t* offset);

void EncodeJournalData(uint64_t epoch, uint64_t end_offset,
                       std::string_view frames, std::string* out);
Status DecodeJournalData(std::string_view payload, uint64_t* epoch,
                         uint64_t* end_offset, std::string* frames);

// --- HTTP/JSON mapping ----------------------------------------------------

/// One parsed HTTP request (the subset the server speaks: no chunked
/// bodies, no continuation lines).
struct HttpRequest {
  std::string method;
  std::string target;
  bool keep_alive = true;
  /// From the `X-Deadline-Ms` header: the caller's remaining budget in
  /// milliseconds, re-anchored server-side against steady_clock at
  /// parse time.  -1 when the header is absent (no caller deadline).
  int64_t deadline_ms = -1;
  /// From the `X-Trace-Id` header (16 hex digits): the caller's trace
  /// id, 0 when absent or unparsable (0 = untraced everywhere).
  uint64_t trace_id = 0;
  /// From the `X-Trace-Parent` header: the caller's span the server's
  /// root span hangs under; 0 when absent.
  uint64_t trace_parent = 0;
  std::string body;
};

/// Incremental HTTP/1.1 request parser.  kBad is terminal (respond 400
/// and close).
class HttpParser {
 public:
  enum class Next { kRequest, kNeedMore, kBad };

  void Feed(std::string_view bytes);
  Next Pop(HttpRequest* request);

  const Status& error() const { return error_; }
  /// Bytes of a not-yet-complete request sitting in the buffer (the
  /// server's slow-loris progress check keys off this going nonzero).
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  Status error_;
};

/// Renders a complete HTTP/1.1 response.  A 429 carries `Retry-After: 1`
/// by default; the overload below lets the server substitute a hint
/// computed from its queue drain rate (for any code; 0 suppresses the
/// header except on 429, which always advertises at least 1s).
std::string HttpResponse(int code, std::string_view content_type,
                         std::string_view body, bool keep_alive);
std::string HttpResponse(int code, std::string_view content_type,
                         std::string_view body, bool keep_alive,
                         int retry_after_s);

/// Extra response headers a traced request earns.  Rendered by the
/// HttpResponse overload below; both strings may be empty (header
/// omitted).
struct HttpResponseExtras {
  /// `Server-Timing:` value (see ServerTimingHeaderValue).
  std::string server_timing;
  /// `X-Trace-Id:` value (16 hex digits) echoing the request's trace.
  std::string trace_id;
};

std::string HttpResponse(int code, std::string_view content_type,
                         std::string_view body, bool keep_alive,
                         int retry_after_s, const HttpResponseExtras& extras);

/// 16-lowercase-hex-digit rendering of a trace id (the X-Trace-Id wire
/// form) and its inverse; ParseTraceIdHex returns 0 on any malformed
/// input.
std::string TraceIdHex(uint64_t trace_id);
uint64_t ParseTraceIdHex(std::string_view hex);

/// Parses {"id": N, "fields": ["A", ...]} (keys in any order, "id"
/// optional).  Strict: unknown keys or non-string fields are
/// InvalidArgument.
Status ParseJsonRecord(std::string_view json, Record* out);

/// {"pairs": [[a_id, b_id], ...]}
std::string PairsToJson(const std::vector<IdPair>& pairs);

/// {"error": {"code": "...", "message": "..."}}
std::string StatusToJson(const Status& status);

// Status <-> HTTP/binary wire codes live in src/net/status_map.h (one
// table shared by every handler and both clients).

}  // namespace net
}  // namespace cbvlink

#endif  // CBVLINK_NET_PROTOCOL_H_
