// Blocking binary-protocol client for the network serving tier — the
// counterpart of src/net/server.h used by the cbvlink_query CLI, the
// replication follower (src/net/replication.h), the network tests and
// bench_net.
//
// One NetClient is one TCP connection in binary mode (it sends the
// "CBVP" preamble on connect).  Calls are synchronous request/response
// and the object is NOT thread-safe — use one client per thread.  A
// server-side kError frame comes back as the carried Status (so a shed
// request surfaces as ResourceExhausted, distinguishable from transport
// failures, which surface as IOError).

#ifndef CBVLINK_NET_CLIENT_H_
#define CBVLINK_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/record.h"
#include "src/common/status.h"
#include "src/net/protocol.h"

namespace cbvlink {
namespace net {

struct NetClientOptions {
  /// Connect timeout (SO_SNDTIMEO during the handshake).
  int connect_timeout_ms = 5000;
  /// Per-call send/receive timeout; 0 = no timeout.
  int io_timeout_ms = 30000;
};

/// Splits "host:port" (or ":port" / "port", meaning 127.0.0.1).  Port 0
/// is accepted — its meaning (ephemeral bind) is the caller's; Connect
/// rejects it.
Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port);

class NetClient {
 public:
  static Result<std::unique_ptr<NetClient>> Connect(
      const std::string& host, uint16_t port, NetClientOptions options = {});

  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  Status Ping();
  Status Match(const Record& record, std::vector<IdPair>* out);
  Status MatchAndInsert(const Record& record, std::vector<IdPair>* out);
  Status Insert(const Record& record);

  /// Fetches a complete snapshot stream (the bytes WriteServiceSnapshot
  /// produces) into `*snapshot_bytes`.
  Status FetchSnapshot(std::string* snapshot_bytes);

  /// Fetches raw journal frames from (epoch, offset).  On return
  /// `*out_epoch` is the server's current epoch (a mismatch with
  /// `epoch` means the journal rotated and the caller must re-sync) and
  /// `*out_end` its end offset (lag = out_end - offset - frames.size()).
  Status FetchJournal(uint64_t epoch, uint64_t offset, uint64_t* out_epoch,
                      uint64_t* out_end, std::string* frames);

  /// Fetches the server's telemetry JSON.
  Status Stats(std::string* json);

  /// One raw request/response exchange (test support; production code
  /// should prefer the typed calls above).
  Status Call(MsgType type, std::string_view payload, Frame* reply);

  /// Pipelines `count` requests of `type` — copies of `base` with ids
  /// base.id, base.id+1, ... — writing them all before reading any
  /// reply, then invokes `on_reply(i, frame)` for each response in
  /// order.  This is how a client overruns the server's admission queue
  /// on purpose (shed replies arrive as kError frames carrying
  /// ResourceExhausted).  Returns the first transport error.
  Status PipelinedBurst(MsgType type, const Record& base, size_t count,
                        const std::function<void(size_t, const Frame&)>& on_reply);

 private:
  NetClient(int fd, NetClientOptions options);

  Status SendAll(std::string_view bytes);
  Status ReadFrame(Frame* frame);
  /// Call() + kError unwrapping + reply-type check.
  Status Roundtrip(MsgType type, std::string_view payload, MsgType expect,
                   Frame* reply);

  int fd_ = -1;
  NetClientOptions options_;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace cbvlink

#endif  // CBVLINK_NET_CLIENT_H_
