// Blocking binary-protocol client for the network serving tier — the
// counterpart of src/net/server.h used by the cbvlink_query CLI, the
// replication follower (src/net/replication.h), the network tests and
// bench_net.
//
// One NetClient is one TCP connection in binary mode (it sends the
// "CBVP" preamble on connect).  Calls are synchronous request/response
// and the object is NOT thread-safe — use one client per thread.  A
// server-side kError frame comes back as the carried Status (so a shed
// request surfaces as ResourceExhausted, distinguishable from transport
// failures, which surface as IOError).

#ifndef CBVLINK_NET_CLIENT_H_
#define CBVLINK_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/deadline.h"
#include "src/common/record.h"
#include "src/common/status.h"
#include "src/net/protocol.h"

namespace cbvlink {
namespace net {

struct NetClientOptions {
  /// Connect timeout (SO_SNDTIMEO during the handshake).
  int connect_timeout_ms = 5000;
  /// Per-call send/receive timeout; 0 = no timeout.
  int io_timeout_ms = 30000;
};

/// Splits "host:port" (or ":port" / "port", meaning 127.0.0.1).  Port 0
/// is accepted — its meaning (ephemeral bind) is the caller's; Connect
/// rejects it.
Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port);

class NetClient {
 public:
  static Result<std::unique_ptr<NetClient>> Connect(
      const std::string& host, uint16_t port, NetClientOptions options = {});

  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Typed calls.  A finite `deadline` is propagated to the server (a
  /// kDeadline prefix frame carrying the remaining budget) and bounds
  /// the local socket timeouts for the exchange, so the call returns —
  /// success or failure — within roughly the budget.  The default
  /// (infinite) deadline keeps the plain io_timeout_ms behavior.
  Status Ping(const Deadline& deadline = {});
  Status Match(const Record& record, std::vector<IdPair>* out,
               const Deadline& deadline = {});
  Status MatchAndInsert(const Record& record, std::vector<IdPair>* out,
                        const Deadline& deadline = {});
  Status Insert(const Record& record, const Deadline& deadline = {});
  /// Tombstones `id` (NotFound when it is not live).
  Status Delete(RecordId id, const Deadline& deadline = {});
  /// Replaces the live record with `record.id` (NotFound when absent).
  Status Update(const Record& record, const Deadline& deadline = {});

  /// Fetches a complete snapshot stream (the bytes WriteServiceSnapshot
  /// produces) into `*snapshot_bytes`.
  Status FetchSnapshot(std::string* snapshot_bytes);

  /// Fetches raw journal frames from (epoch, offset).  On return
  /// `*out_epoch` is the server's current epoch (a mismatch with
  /// `epoch` means the journal rotated and the caller must re-sync) and
  /// `*out_end` its end offset (lag = out_end - offset - frames.size()).
  Status FetchJournal(uint64_t epoch, uint64_t offset, uint64_t* out_epoch,
                      uint64_t* out_end, std::string* frames);

  /// Fetches the server's telemetry JSON.
  Status Stats(std::string* json, const Deadline& deadline = {});

  /// The retry_after_ms hint carried by the last kError reply (0 when
  /// the server sent none) — the binary analogue of HTTP Retry-After.
  uint32_t last_retry_after_ms() const { return last_retry_after_ms_; }

  /// Arms trace propagation: subsequent typed calls carry a
  /// kTraceContext prefix frame with this id, and the server answers
  /// them with a kServerTiming frame (captured below).  Sticky until
  /// changed; 0 disarms.
  void set_trace(uint64_t trace_id, uint64_t parent_span_id = 0) {
    trace_id_ = trace_id;
    trace_parent_span_id_ = parent_span_id;
  }
  uint64_t trace_id() const { return trace_id_; }

  /// The per-stage timings carried by the last reply's kServerTiming
  /// frame (empty when the call was untraced or the server predates
  /// tracing), and the trace id it was stamped with.
  const std::vector<StageTiming>& last_server_timing() const {
    return last_server_timing_;
  }
  uint64_t last_server_timing_trace_id() const {
    return last_server_timing_trace_id_;
  }

  /// One raw request/response exchange (test support; production code
  /// should prefer the typed calls above).
  Status Call(MsgType type, std::string_view payload, Frame* reply);

  /// Pipelines `count` requests of `type` — copies of `base` with ids
  /// base.id, base.id+1, ... (kDelete frames carry just the id) —
  /// writing them all before reading any
  /// reply, then invokes `on_reply(i, frame)` for each response in
  /// order.  This is how a client overruns the server's admission queue
  /// on purpose (shed replies arrive as kError frames carrying
  /// ResourceExhausted).  Returns the first transport error.
  Status PipelinedBurst(MsgType type, const Record& base, size_t count,
                        const std::function<void(size_t, const Frame&)>& on_reply);

 private:
  NetClient(int fd, NetClientOptions options);

  Status SendAll(std::string_view bytes);
  Status ReadFrame(Frame* frame);
  /// ReadFrame that absorbs kServerTiming annotation frames (stashing
  /// them into last_server_timing_) and returns the next real reply.
  Status ReadReply(Frame* frame);
  /// Appends the armed kTraceContext prefix frame, if any.
  void AppendTracePrefix(std::string* wire) const;
  /// Call() with an optional kDeadline prefix and deadline-bounded
  /// socket timeouts.
  Status CallWithDeadline(MsgType type, std::string_view payload,
                          const Deadline& deadline, Frame* reply);
  /// Call() + kError unwrapping + reply-type check.
  Status Roundtrip(MsgType type, std::string_view payload, MsgType expect,
                   Frame* reply, const Deadline& deadline = {});
  void ApplyTimeouts(int ms);

  int fd_ = -1;
  NetClientOptions options_;
  FrameDecoder decoder_;
  uint32_t last_retry_after_ms_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t trace_parent_span_id_ = 0;
  std::vector<StageTiming> last_server_timing_;
  uint64_t last_server_timing_trace_id_ = 0;
};

/// How RetryingClient retries.  Every operation is safe to retry:
/// ping/match/stats are pure reads; insert/match_and_insert are
/// idempotent because the journal replay (and replication apply) path
/// dedupes by record id — a duplicate insert of the same record is a
/// no-op (tests/test_chaos.cc asserts this); delete/update are
/// idempotent by construction (a repeated delete answers NotFound, a
/// repeated update rewrites the same bytes) and their journal frames
/// carry the acknowledgement sequence, so replay dedupes them by
/// id + sequence.  NotFound itself is non-retryable, like the other
/// request errors.
struct RetryPolicy {
  /// Total tries, including the first (1 = no retries).
  int max_attempts = 4;
  /// Budget per attempt; 0 = only the connection's io_timeout_ms.
  int per_attempt_timeout_ms = 5000;
  /// Total budget across attempts and backoff sleeps; 0 = unbounded.
  int total_timeout_ms = 0;
  /// Obey the server's Retry-After hint when it exceeds the backoff.
  bool honor_retry_after = true;
  BackoffOptions backoff;
};

/// A reconnecting, retrying wrapper over NetClient.  Transport errors
/// drop the connection and the next attempt reconnects; server sheds
/// (ResourceExhausted) honor the Retry-After hint; DEADLINE_EXCEEDED
/// retries with a fresh per-attempt budget while the total budget
/// lasts.  Non-retryable statuses (InvalidArgument, FailedPrecondition,
/// NotFound, ...) return immediately.  NOT thread-safe, like NetClient.
class RetryingClient {
 public:
  struct Counters {
    uint64_t attempts = 0;          ///< operations tried (>= calls)
    uint64_t retries = 0;           ///< attempts after the first
    uint64_t reconnects = 0;        ///< connections re-established
    uint64_t sheds_seen = 0;        ///< ResourceExhausted replies
    uint64_t deadline_seen = 0;     ///< DeadlineExceeded replies
    uint64_t transport_errors = 0;  ///< IOError (reset, timeout, EOF)
  };

  RetryingClient(std::string host, uint16_t port, RetryPolicy policy = {},
                 NetClientOptions conn_options = {});

  Status Ping();
  Status Match(const Record& record, std::vector<IdPair>* out);
  Status MatchAndInsert(const Record& record, std::vector<IdPair>* out);
  Status Insert(const Record& record);
  Status Delete(RecordId id);
  Status Update(const Record& record);
  Status Stats(std::string* json);

  /// Arms trace propagation.  The id is stamped onto the underlying
  /// connection before EVERY attempt — including after a reconnect — so
  /// all retries of one operation share one trace id and the server's
  /// captured traces tell the retries of one logical call apart from
  /// distinct calls.  Sticky until changed; 0 disarms.
  void set_trace(uint64_t trace_id) { trace_id_ = trace_id; }
  uint64_t trace_id() const { return trace_id_; }

  /// Stage timings from the last successful attempt (see
  /// NetClient::last_server_timing).
  std::vector<StageTiming> last_server_timing() const {
    return client_ != nullptr ? client_->last_server_timing()
                              : std::vector<StageTiming>{};
  }

  const Counters& counters() const { return counters_; }

 private:
  Status Execute(
      const std::function<Status(NetClient&, const Deadline&)>& op);
  Status EnsureConnected(const Deadline& attempt_deadline);

  std::string host_;
  uint16_t port_;
  RetryPolicy policy_;
  NetClientOptions conn_options_;
  Backoff backoff_;
  std::unique_ptr<NetClient> client_;
  Counters counters_;
  uint64_t trace_id_ = 0;
};

}  // namespace net
}  // namespace cbvlink

#endif  // CBVLINK_NET_CLIENT_H_
