#include "src/net/status_map.h"

namespace cbvlink {
namespace net {

int HttpCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kFailedPrecondition: return 403;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kDeadlineExceeded: return 504;
    default: return 500;
  }
}

uint32_t BinaryCodeFor(const Status& status) {
  return static_cast<uint32_t>(status.code());
}

StatusCode StatusFromBinaryCode(uint32_t code) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInternal:
    case StatusCode::kNotImplemented:
    case StatusCode::kIOError:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
      return static_cast<StatusCode>(code);
  }
  return StatusCode::kInternal;
}

}  // namespace net
}  // namespace cbvlink
