// The matching step with de-duplication (Section 5.3, Algorithm 2), as a
// parallel, allocation-free engine.
//
// For each record of data set B the matcher walks the buckets the
// blocking mechanism maps it to, skips A-Ids already seen for this B
// record (the paper's unique collection C), applies the classification
// rule to each fresh pair, and reports matches plus the counters behind
// the PC / PQ / RR measures.
//
// Engine design (DESIGN.md §9):
//  * VectorStore is a flat arena: every word-packed vector lives in one
//    contiguous uint64_t buffer at a fixed words-per-record stride, with
//    an open-addressing RecordId -> dense-index table.  The Hamming
//    kernels run directly on the arena — no per-record heap vectors, no
//    node-based hash map on the hot path.
//  * The unique collection C is a generation-stamped visited array
//    indexed by dense id: one epoch bump per probe, zero allocations in
//    steady state (a per-probe std::unordered_set in the seed engine).
//  * Candidates arrive as bucket spans (CandidateSource::
//    ForEachCandidateSpan), so the engine pays one indirect call per
//    blocking group instead of one std::function invocation per Id.
//  * MatchAll shards the B records over a ThreadPool with per-thread
//    stats and match buffers, merged in shard order — the output is
//    byte-identical to the serial engine at any thread count.

#ifndef CBVLINK_BLOCKING_MATCHER_H_
#define CBVLINK_BLOCKING_MATCHER_H_

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/blocking/record_blocker.h"
#include "src/common/bitvector.h"
#include "src/common/hamming_kernels.h"
#include "src/common/record.h"
#include "src/embedding/record_encoder.h"
#include "src/rules/rule.h"

namespace cbvlink {

class ThreadPool;

/// Counters accumulated by the matcher.
struct MatchStats {
  /// Candidate occurrences delivered by the blocking mechanism, including
  /// duplicates across blocking groups.
  uint64_t candidate_occurrences = 0;
  /// Distinct pairs actually compared — the |CR| of the PQ and RR
  /// measures.
  uint64_t comparisons = 0;
  /// Pairs classified as matches.
  uint64_t matches = 0;
  /// Duplicate occurrences skipped by the unique collection (the saving
  /// Algorithm 2 exists for).
  uint64_t dedup_skipped = 0;

  MatchStats& operator+=(const MatchStats& other) {
    candidate_occurrences += other.candidate_occurrences;
    comparisons += other.comparisons;
    matches += other.matches;
    dedup_skipped += other.dedup_skipped;
    return *this;
  }
};

/// Id-addressable storage of encoded records (the paper's retrieve(Id)),
/// laid out as a flat arena: all vectors in one contiguous word buffer at
/// a fixed stride, plus an open-addressing index from RecordId to the
/// dense position.  Every record must carry the same bit width (the
/// encoder's total_bits) — the first Add fixes the stride.  Re-adding an
/// existing live id keeps the first vector; re-adding a tombstoned id
/// resurrects the slot with the new vector.
///
/// Deletion is a tombstone, not a compaction: Remove() flips a bit in a
/// dead-slot bitmap and the arena keeps the words, so delete is O(1) and
/// no dense index ever moves (readers holding dense indices stay valid).
/// The matcher consults the bitmap per candidate and skips dead slots;
/// reclaiming the arena space is the service compactor's job (it rebuilds
/// a fresh store from the survivors).
class VectorStore {
 public:
  /// Sentinel dense index for "id not stored".
  static constexpr uint32_t kNotFound = UINT32_MAX;

  VectorStore() = default;

  void Add(const EncodedRecord& record);

  void AddAll(const std::vector<EncodedRecord>& records);

  /// Tombstones `id`.  Returns true when the id was present and live
  /// (false = unknown or already dead).  O(1): one hash probe + one bit.
  bool Remove(RecordId id);

  /// True when the slot at dense index `dense` is tombstoned.
  bool IsDead(uint32_t dense) const {
    const size_t word = static_cast<size_t>(dense) >> 6;
    return word < dead_words_.size() &&
           ((dead_words_[word] >> (dense & 63)) & 1) != 0;
  }

  /// Records stored and not tombstoned.
  size_t live_size() const { return ids_.size() - dead_count_; }

  /// Tombstoned slots awaiting compaction.
  size_t dead_count() const { return dead_count_; }

  /// Dense index of `id` in [0, size()), or kNotFound.  O(1): one hash
  /// probe over the flat slot table.
  uint32_t DenseIndex(RecordId id) const {
    if (slots_.empty()) return kNotFound;
    size_t pos = Hash(id) & slot_mask_;
    while (true) {
      const uint32_t dense = slots_[pos];
      if (dense == kNotFound) return kNotFound;
      if (ids_[dense] == id) return dense;
      pos = (pos + 1) & slot_mask_;
    }
  }

  bool Contains(RecordId id) const { return DenseIndex(id) != kNotFound; }

  /// The words of the vector at dense index `dense` — exactly
  /// words_per_record() words, zero-padded past num_bits() (the kernels
  /// read whole words and rely on that invariant).
  const uint64_t* WordsAt(uint32_t dense) const {
    return words_.data() + static_cast<size_t>(dense) * stride_;
  }

  /// RecordId of the vector at dense index `dense`.
  RecordId IdAt(uint32_t dense) const { return ids_[dense]; }

  /// Reconstructs the BitVector at dense index `dense` (copies; for
  /// tests and diagnostics, not the hot path).
  BitVector VectorAt(uint32_t dense) const;

  size_t size() const { return ids_.size(); }

  /// Bit width shared by every stored vector (0 before the first Add).
  size_t num_bits() const { return num_bits_; }

  /// Arena stride: words per record, ceil(num_bits / 64).
  size_t words_per_record() const { return stride_; }

  /// The raw arena (size() * words_per_record() words), for invariant
  /// checks.
  const std::vector<uint64_t>& arena() const { return words_; }

 private:
  static uint64_t Hash(RecordId id) {
    // Mix64 (splittable-random finalizer), inlined to keep this header
    // free of the hashing dependency.
    uint64_t z = id;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  void Rehash(size_t min_slots);

  size_t num_bits_ = 0;
  size_t stride_ = 0;
  /// Contiguous arena: vector i occupies words [i*stride_, (i+1)*stride_).
  std::vector<uint64_t> words_;
  /// Dense index -> RecordId.
  std::vector<RecordId> ids_;
  /// Open-addressing slot table: slot -> dense index or kNotFound.
  std::vector<uint32_t> slots_;
  size_t slot_mask_ = 0;
  /// Dead-slot bitmap, bit `dense` set when the slot is tombstoned.
  /// Grown lazily on the first Remove; dense indices past the bitmap end
  /// are live (Add never has to touch it).
  std::vector<uint64_t> dead_words_;
  size_t dead_count_ = 0;
};

/// Decides whether an (A, B) vector pair is a match.  A small value type
/// (not a std::function): the rule tree is compiled once into a flat node
/// program evaluated directly on raw words, so the per-candidate cost is
/// a handful of popcounts with no type-erased indirection.
class PairClassifier {
 public:
  /// An empty classifier classifies nothing (returns false); assign from
  /// MakeRuleClassifier / MakeRecordThresholdClassifier before use.
  PairClassifier() = default;

  /// Classifies a pair of equally sized vectors.
  bool operator()(const BitVector& a, const BitVector& b) const {
    return ClassifyWords(a.words().data(), b.words().data(),
                         b.words().size());
  }

  /// Hot-path entry: classifies two word-packed vectors of `num_words`
  /// words each (zero-padded past the logical width).  `num_words` is
  /// only consulted by whole-record threshold classifiers; rule
  /// classifiers read the ranges their segments name.
  bool ClassifyWords(const uint64_t* a, const uint64_t* b,
                     size_t num_words) const {
    const KernelSet& kernels = ActiveKernels();
    switch (kind_) {
      case Kind::kThreshold:
        return kernels.distance(a, b, num_words) <= theta_;
      case Kind::kConjunction:
        // AND-of-predicates (the paper's PL shape): a flat short-circuit
        // loop, no tree walk.
        for (const Node& node : nodes_) {
          if (kernels.range_distance(a, b, node.offset, node.length) >
              node.theta) {
            return false;
          }
        }
        return true;
      case Kind::kRule:
        return EvalNode(0, a, b);
      case Kind::kEmpty:
        return false;
    }
    return false;
  }

  /// True for whole-record threshold classifiers — the shape the batch
  /// kernels accelerate (one distance, one theta, no segment structure).
  bool IsWholeRecordThreshold() const { return kind_ == Kind::kThreshold; }

  /// The record-level theta (meaningful only when IsWholeRecordThreshold).
  size_t threshold() const { return theta_; }

  /// Like IsWholeRecordThreshold, but also recognises a compiled rule
  /// whose single predicate spans the whole `total_bits` record — the
  /// shape a one-attribute schema produces.  On success stores the theta
  /// and returns true; `theta` is untouched otherwise.
  bool AsWholeRecordThreshold(size_t total_bits, size_t* theta) const {
    if (kind_ == Kind::kThreshold) {
      *theta = theta_;
      return true;
    }
    if (kind_ == Kind::kConjunction && nodes_.size() == 1 &&
        nodes_[0].offset == 0 && nodes_[0].length == total_bits) {
      *theta = nodes_[0].theta;
      return true;
    }
    return false;
  }

 private:
  friend PairClassifier MakeRuleClassifier(Rule rule,
                                           const RecordLayout& layout);
  friend PairClassifier MakeRecordThresholdClassifier(size_t theta);

  enum class Kind : uint8_t { kEmpty, kThreshold, kConjunction, kRule };

  /// One node of the compiled rule: the tree flattened breadth-first so
  /// each node's children are contiguous at [first_child,
  /// first_child + num_children).
  struct Node {
    Rule::Kind kind = Rule::Kind::kPredicate;
    uint32_t first_child = 0;
    uint32_t num_children = 0;
    /// Predicate payload: the attribute's bit segment and threshold.
    uint32_t offset = 0;
    uint32_t length = 0;
    uint32_t theta = 0;
  };

  bool EvalNode(uint32_t index, const uint64_t* a, const uint64_t* b) const;

  Kind kind_ = Kind::kEmpty;
  size_t theta_ = 0;
  std::vector<Node> nodes_;
};

/// Builds a classifier that evaluates `rule` on attribute-level Hamming
/// distances under `layout`.  The rule must already be validated for the
/// layout.
PairClassifier MakeRuleClassifier(Rule rule, const RecordLayout& layout);

/// Builds a classifier for a single record-level Hamming threshold.
PairClassifier MakeRecordThresholdClassifier(size_t theta);

/// Algorithm 2 driver over a candidate source and the A-side store.
/// Both referenced objects must outlive the matcher.
class Matcher {
 public:
  /// Reusable per-thread probe state: the generation-stamped visited
  /// array that implements the unique collection C without per-probe
  /// allocations.  One Scratch must not be shared across threads.
  class Scratch {
   public:
    Scratch() = default;

   private:
    friend class Matcher;

    /// Sizes the stamp array for `num_dense` records and opens a new
    /// probe epoch (clearing stamps only on the ~never wrap of the
    /// 32-bit epoch).
    void Prepare(size_t num_dense) {
      if (stamps_.size() < num_dense) stamps_.resize(num_dense, 0);
      if (++epoch_ == 0) {
        std::fill(stamps_.begin(), stamps_.end(), 0);
        epoch_ = 1;
      }
      if (!unknown_.empty()) unknown_.clear();
      fresh_dense_.clear();
      fresh_ids_.clear();
    }

    /// stamps_[dense] == epoch_  <=>  dense already seen this probe.
    std::vector<uint32_t> stamps_;
    uint32_t epoch_ = 0;
    /// Dedup for candidate Ids absent from the store (indexed but vector
    /// unknown) — they have no dense index to stamp.  Empty in steady
    /// state, so it never allocates on the healthy path.
    std::unordered_set<RecordId> unknown_;
    /// Batch-kernel staging: the probe's fresh (first-seen) candidates in
    /// arrival order, and the per-candidate <=theta verdicts.  Capacity
    /// persists across probes, so steady state never allocates.
    std::vector<uint32_t> fresh_dense_;
    std::vector<RecordId> fresh_ids_;
    std::vector<uint8_t> verdicts_;
  };

  Matcher(const CandidateSource* source, const VectorStore* store_a)
      : source_(source), store_a_(store_a) {}

  /// Matches one B record; appends matched pairs to `out`.  `stats` may
  /// be null when the caller does not need counters.  Uses the matcher's
  /// internal scratch — not thread-safe across concurrent MatchOne calls
  /// on one Matcher; use the Scratch overload for that.
  void MatchOne(const EncodedRecord& b, const PairClassifier& classifier,
                std::vector<IdPair>* out, MatchStats* stats) const;

  /// MatchOne with caller-owned scratch (per-thread reuse).
  void MatchOne(const EncodedRecord& b, const PairClassifier& classifier,
                std::vector<IdPair>* out, MatchStats* stats,
                Scratch* scratch) const;

  /// Matches every B record in sequence.  `stats` may be null.
  std::vector<IdPair> MatchAll(const std::vector<EncodedRecord>& b_records,
                               const PairClassifier& classifier,
                               MatchStats* stats) const;

  /// Parallel MatchAll: shards the B records over `pool` (null or a
  /// single-worker pool falls back to the serial path).  Each shard keeps
  /// private stats and match buffers; buffers are concatenated in shard
  /// order, so pairs and stats totals are identical to the serial engine
  /// at any thread count.
  std::vector<IdPair> MatchAll(const std::vector<EncodedRecord>& b_records,
                               const PairClassifier& classifier,
                               MatchStats* stats, ThreadPool* pool) const;

 private:
  const CandidateSource* source_;
  const VectorStore* store_a_;
  /// Scratch behind the scratch-less MatchOne overload.
  mutable Scratch scratch_;
};

}  // namespace cbvlink

#endif  // CBVLINK_BLOCKING_MATCHER_H_
