// The matching step with de-duplication (Section 5.3, Algorithm 2).
//
// For each record of data set B the matcher walks the buckets the
// blocking mechanism maps it to, skips A-Ids already seen for this B
// record (the paper's unique collection C), applies the classification
// rule to each fresh pair, and reports matches plus the counters behind
// the PC / PQ / RR measures.

#ifndef CBVLINK_BLOCKING_MATCHER_H_
#define CBVLINK_BLOCKING_MATCHER_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "src/blocking/record_blocker.h"
#include "src/common/bitvector.h"
#include "src/common/record.h"
#include "src/embedding/record_encoder.h"
#include "src/rules/rule.h"

namespace cbvlink {

/// Counters accumulated by the matcher.
struct MatchStats {
  /// Candidate occurrences delivered by the blocking mechanism, including
  /// duplicates across blocking groups.
  uint64_t candidate_occurrences = 0;
  /// Distinct pairs actually compared — the |CR| of the PQ and RR
  /// measures.
  uint64_t comparisons = 0;
  /// Pairs classified as matches.
  uint64_t matches = 0;
  /// Duplicate occurrences skipped by the unique collection (the saving
  /// Algorithm 2 exists for).
  uint64_t dedup_skipped = 0;

  MatchStats& operator+=(const MatchStats& other) {
    candidate_occurrences += other.candidate_occurrences;
    comparisons += other.comparisons;
    matches += other.matches;
    dedup_skipped += other.dedup_skipped;
    return *this;
  }
};

/// Id-addressable storage of encoded records (the paper's retrieve(Id)).
class VectorStore {
 public:
  void Add(const EncodedRecord& record) {
    vectors_.emplace(record.id, record.bits);
  }

  void AddAll(const std::vector<EncodedRecord>& records) {
    vectors_.reserve(vectors_.size() + records.size());
    for (const EncodedRecord& r : records) Add(r);
  }

  /// The vector for `id`, or nullptr when unknown.
  const BitVector* Find(RecordId id) const {
    const auto it = vectors_.find(id);
    return it == vectors_.end() ? nullptr : &it->second;
  }

  size_t size() const { return vectors_.size(); }

 private:
  std::unordered_map<RecordId, BitVector> vectors_;
};

/// Decides whether an (A, B) vector pair is a match.
using PairClassifier =
    std::function<bool(const BitVector& a, const BitVector& b)>;

/// Builds a classifier that evaluates `rule` on attribute-level Hamming
/// distances under `layout`.  The rule must already be validated for the
/// layout.
PairClassifier MakeRuleClassifier(Rule rule, const RecordLayout& layout);

/// Builds a classifier for a single record-level Hamming threshold.
PairClassifier MakeRecordThresholdClassifier(size_t theta);

/// Algorithm 2 driver over a candidate source and the A-side store.
/// Both referenced objects must outlive the matcher.
class Matcher {
 public:
  Matcher(const CandidateSource* source, const VectorStore* store_a)
      : source_(source), store_a_(store_a) {}

  /// Matches one B record; appends matched pairs to `out`.
  void MatchOne(const EncodedRecord& b, const PairClassifier& classifier,
                std::vector<IdPair>* out, MatchStats* stats) const;

  /// Matches every B record in sequence.
  std::vector<IdPair> MatchAll(const std::vector<EncodedRecord>& b_records,
                               const PairClassifier& classifier,
                               MatchStats* stats) const;

 private:
  const CandidateSource* source_;
  const VectorStore* store_a_;
};

}  // namespace cbvlink

#endif  // CBVLINK_BLOCKING_MATCHER_H_
