// Standard record-level HB blocking (Section 4.2).
//
// The blocker samples K bit positions uniformly from the *whole*
// record-level vector for each of L blocking groups, inserts data set A's
// vectors into the groups' hash tables, and serves candidate Ids for each
// probe vector from data set B.  This is the baseline that Section 5.4's
// attribute-level blocking improves upon.

#ifndef CBVLINK_BLOCKING_RECORD_BLOCKER_H_
#define CBVLINK_BLOCKING_RECORD_BLOCKER_H_

#include <functional>
#include <span>
#include <vector>

#include "src/common/bitvector.h"
#include "src/common/function_ref.h"
#include "src/common/random.h"
#include "src/common/record.h"
#include "src/common/status.h"
#include "src/embedding/record_encoder.h"
#include "src/lsh/blocking_table.h"
#include "src/lsh/hamming_lsh.h"

namespace cbvlink {

class ThreadPool;

/// Source of candidate Ids for a probe vector; implemented by both the
/// record-level and the attribute-level blockers so the matcher is
/// agnostic to the blocking strategy.
class CandidateSource {
 public:
  virtual ~CandidateSource() = default;

  /// Invokes `cb` for every candidate Id of `probe`, in blocking-group
  /// order.  Ids may repeat across groups (the matcher de-duplicates, as
  /// in Algorithm 2).
  virtual void ForEachCandidate(
      const BitVector& probe,
      const std::function<void(RecordId)>& cb) const = 0;

  /// Bucket-span variant of ForEachCandidate: invokes `cb` once per
  /// candidate group with a view of that group's Ids, in the same order
  /// ForEachCandidate would deliver them, so the matching engine iterates
  /// raw bucket storage with one indirect call per *group* instead of one
  /// std::function invocation per Id.  Spans are only valid for the
  /// duration of the callback.  The default adapter wraps
  /// ForEachCandidate with single-Id spans (exact same Ids and order);
  /// sources whose buckets are contiguous in memory override it.
  virtual void ForEachCandidateSpan(
      const BitVector& probe,
      FunctionRef<void(std::span<const RecordId>)> cb) const {
    ForEachCandidate(probe, [&cb](RecordId id) {
      cb(std::span<const RecordId>(&id, 1));
    });
  }
};

/// Record-level Hamming LSH blocker.
class RecordLevelBlocker : public CandidateSource {
 public:
  /// Creates a blocker for `num_bits`-wide record vectors with `K` base
  /// hashes per group; L is derived from Equation 2 for Hamming threshold
  /// `theta` and miss probability `delta`.
  static Result<RecordLevelBlocker> Create(size_t num_bits, size_t K,
                                           size_t theta, double delta,
                                           Rng& rng);

  /// Creates a blocker with an explicit number of groups L.
  static Result<RecordLevelBlocker> CreateWithL(size_t num_bits, size_t K,
                                                size_t L, Rng& rng);

  /// Inserts every record of data set A.  May be called repeatedly to add
  /// more records.
  void Index(const std::vector<EncodedRecord>& records);

  /// Bulk Index with a two-phase parallel build: phase 1 computes the
  /// L-wide blocking-key matrix sharded over `pool` (per-slot writes, so
  /// chunking cannot reorder anything); phase 2 merges each table's key
  /// column in record order.  The resulting tables are identical to
  /// Index() at any thread count — same buckets, same per-bucket id
  /// order, same counters.  Null `pool` (or a single worker) runs the
  /// plain serial path; `min_chunk` only bounds phase-1 scheduling
  /// overhead.
  void BulkInsert(std::span<const EncodedRecord> records,
                  ThreadPool* pool = nullptr, size_t min_chunk = 0);

  /// Inserts a single record (streaming ingestion).
  void Insert(const EncodedRecord& record);

  void ForEachCandidate(
      const BitVector& probe,
      const std::function<void(RecordId)>& cb) const override;

  /// Emits each probed bucket as one span over the table's own storage —
  /// no per-Id callback, no copying.
  void ForEachCandidateSpan(
      const BitVector& probe,
      FunctionRef<void(std::span<const RecordId>)> cb) const override;

  size_t L() const { return tables_.size(); }
  size_t K() const { return family_.K(); }

  /// Aggregate statistics over the L tables, for diagnostics.
  size_t TotalBuckets() const;
  size_t MaxBucketSize() const;

  /// The L blocking tables, for distribution diagnostics
  /// (eval/block_stats.h).
  const std::vector<BlockingTable>& tables() const { return tables_; }

 private:
  RecordLevelBlocker(HammingLshFamily family)
      : family_(std::move(family)), tables_(family_.L()) {}

  HammingLshFamily family_;
  std::vector<BlockingTable> tables_;
};

}  // namespace cbvlink

#endif  // CBVLINK_BLOCKING_RECORD_BLOCKER_H_
