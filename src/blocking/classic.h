// Classic (pre-LSH) blocking methods from the paper's related work
// (Section 2): the sorted neighborhood method [Hernandez & Stolfo,
// SIGMOD 1995] and canopy clustering [Cohen & Richman, SIGKDD 2002].
//
// Both produce candidate pairs between two data sets without any
// completeness guarantee — the contrast the paper draws against
// LSH-based blocking.  They operate on the raw string records (the
// original space E), so they pair naturally with edit-distance matching.

#ifndef CBVLINK_BLOCKING_CLASSIC_H_
#define CBVLINK_BLOCKING_CLASSIC_H_

#include <vector>

#include "src/common/random.h"
#include "src/common/record.h"
#include "src/common/status.h"

namespace cbvlink {

/// Options for the sorted neighborhood method.
struct SortedNeighborhoodOptions {
  /// Sliding window size over the merged sorted list (paper default
  /// idiom: a fixed small window).
  size_t window = 10;
  /// The blocking key: the first `key_prefix_chars` characters of each
  /// field, concatenated.
  size_t key_prefix_chars = 3;
};

/// Runs one sorted-neighborhood pass over A ∪ B and returns the
/// candidate cross-source pairs formed inside the sliding window.
/// Record ids must be disjoint between A and B.  Returns InvalidArgument
/// for a zero window.
Result<std::vector<IdPair>> SortedNeighborhoodCandidates(
    const std::vector<Record>& a, const std::vector<Record>& b,
    const SortedNeighborhoodOptions& options = {});

/// Options for canopy clustering.
struct CanopyOptions {
  /// Loose threshold: records with cheap distance <= loose join the
  /// canopy (and become candidates).
  double loose_threshold = 0.7;
  /// Tight threshold: records within it are removed from the pool and
  /// never seed another canopy.  Requires tight <= loose.
  double tight_threshold = 0.4;
  /// q of the q-gram sets behind the cheap Jaccard distance.
  size_t q = 2;
  uint64_t seed = 29;
};

/// Runs canopy clustering over A ∪ B with the cheap distance
/// 1 - Jaccard(bigram sets of the whole record) and returns candidate
/// cross-source pairs (each pair reported once).  Returns InvalidArgument
/// when tight > loose or thresholds are outside [0, 1].
Result<std::vector<IdPair>> CanopyCandidates(const std::vector<Record>& a,
                                             const std::vector<Record>& b,
                                             const CanopyOptions& options = {});

}  // namespace cbvlink

#endif  // CBVLINK_BLOCKING_CLASSIC_H_
