#include "src/blocking/attribute_blocker.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/hashing.h"
#include "src/common/str.h"
#include "src/common/thread_pool.h"
#include "src/lsh/params.h"
#include "src/telemetry/metrics.h"

namespace cbvlink {

namespace {

/// True when every child of `rule` is a bare predicate.
bool AllChildrenArePredicates(const Rule& rule) {
  for (const Rule& child : rule.children()) {
    if (child.kind() != Rule::Kind::kPredicate) return false;
  }
  return true;
}

}  // namespace

Result<AttributeLevelBlocker> AttributeLevelBlocker::Create(
    const Rule& rule, const RecordLayout& layout,
    const AttributeBlockerOptions& options, Rng& rng) {
  CBVLINK_RETURN_NOT_OK(rule.Validate(layout.num_attributes()));
  if (options.attribute_K.size() != layout.num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("attribute_K has %zu entries for %zu attributes",
                  options.attribute_K.size(), layout.num_attributes()));
  }

  std::vector<Structure> structures;

  // Builds a structure for an AND/OR of predicates (or one predicate) and
  // returns its index.
  auto build_structure = [&](Structure::Kind kind,
                             std::vector<Predicate> preds) -> Result<size_t> {
    Structure s;
    s.kind = kind;
    s.predicates = std::move(preds);

    // Per-structure L from the rule-composed probability (Eqs. 10-11 into
    // Eq. 2).
    std::vector<AttributeLshParams> params(layout.num_attributes());
    for (size_t i = 0; i < layout.num_attributes(); ++i) {
      params[i].vector_size = layout.segment(i).size;
      // Distinct sampling caps K at the segment width (a larger K was
      // pure duplicate draws); clamp for both the L calibration and the
      // family below so they stay consistent.
      params[i].num_base_hashes =
          std::min(options.attribute_K[i], layout.segment(i).size);
    }
    std::vector<Rule> pred_rules;
    pred_rules.reserve(s.predicates.size());
    for (const Predicate& p : s.predicates) {
      pred_rules.push_back(Rule::Pred(p.attribute, p.threshold));
    }
    const Rule effective =
        pred_rules.size() == 1 ? std::move(pred_rules[0])
        : kind == Structure::Kind::kAnd ? Rule::And(std::move(pred_rules))
                                        : Rule::Or(std::move(pred_rules));
    Result<size_t> L = RuleOptimalGroups(effective, params, options.delta,
                                         options.max_groups);
    if (!L.ok()) return L.status();
    s.L = L.value();

    // One family per predicate, sampled inside that attribute's segment.
    for (const Predicate& p : s.predicates) {
      const RecordLayout::Segment& seg = layout.segment(p.attribute);
      Result<HammingLshFamily> family = HammingLshFamily::Create(
          std::min(options.attribute_K[p.attribute], seg.size), s.L,
          seg.offset, seg.size, rng);
      if (!family.ok()) return family.status();
      s.families.push_back(std::move(family).value());
    }

    s.tables.resize(s.kind == Structure::Kind::kAnd
                        ? s.L
                        : s.L * s.predicates.size());
    structures.push_back(std::move(s));
    return structures.size() - 1;
  };

  // Recursively lowers the rule tree into structures + expression.
  std::function<Result<Expr>(const Rule&)> lower =
      [&](const Rule& node) -> Result<Expr> {
    Expr expr;
    switch (node.kind()) {
      case Rule::Kind::kPredicate: {
        Result<size_t> s = build_structure(Structure::Kind::kAnd,
                                           {node.predicate()});
        if (!s.ok()) return s.status();
        expr.kind = Expr::Kind::kStructure;
        expr.structure = s.value();
        return expr;
      }
      case Rule::Kind::kAnd:
      case Rule::Kind::kOr: {
        const bool is_and = node.kind() == Rule::Kind::kAnd;
        if (AllChildrenArePredicates(node)) {
          std::vector<Predicate> preds;
          node.CollectPredicates(&preds);
          Result<size_t> s = build_structure(
              is_and ? Structure::Kind::kAnd : Structure::Kind::kOr,
              std::move(preds));
          if (!s.ok()) return s.status();
          expr.kind = Expr::Kind::kStructure;
          expr.structure = s.value();
          return expr;
        }
        expr.kind = is_and ? Expr::Kind::kAnd : Expr::Kind::kOr;
        for (const Rule& child : node.children()) {
          Result<Expr> sub = lower(child);
          if (!sub.ok()) return sub.status();
          expr.children.push_back(std::move(sub).value());
        }
        return expr;
      }
      case Rule::Kind::kNot: {
        Result<Expr> sub = lower(node.children()[0]);
        if (!sub.ok()) return sub.status();
        expr.kind = Expr::Kind::kNot;
        expr.children.push_back(std::move(sub).value());
        return expr;
      }
    }
    return Status::Internal("unhandled rule kind");
  };

  Result<Expr> expr = lower(rule);
  if (!expr.ok()) return expr.status();

  // Generating structures: the positive part of the expression that can
  // serve candidates.
  std::function<void(const Expr&, std::vector<size_t>*)> collect =
      [&](const Expr& e, std::vector<size_t>* out) {
        switch (e.kind) {
          case Expr::Kind::kStructure:
            out->push_back(e.structure);
            return;
          case Expr::Kind::kOr:
            for (const Expr& child : e.children) collect(child, out);
            return;
          case Expr::Kind::kAnd:
            // One conjunct suffices: a pair must collide in every
            // conjunct, so probing the first positive child generates a
            // superset of the rule-formulated pairs.
            for (const Expr& child : e.children) {
              std::vector<size_t> sub;
              collect(child, &sub);
              if (!sub.empty()) {
                out->insert(out->end(), sub.begin(), sub.end());
                return;
              }
            }
            return;
          case Expr::Kind::kNot:
            return;  // absence cannot generate candidates
        }
      };
  std::vector<size_t> generating;
  collect(expr.value(), &generating);
  if (generating.empty()) {
    return Status::InvalidArgument(
        "rule has no positive component to generate candidates from "
        "(e.g. a bare NOT)");
  }

  // A disjunction branch that is purely negative is non-blockable: pairs
  // satisfying only that branch (almost all pairs) could never be
  // generated, so the rule's completeness guarantee would silently not
  // hold.  Reject instead.
  std::function<Status(const Expr&)> check_or_branches =
      [&](const Expr& e) -> Status {
    if (e.kind == Expr::Kind::kOr) {
      for (const Expr& child : e.children) {
        std::vector<size_t> child_generating;
        collect(child, &child_generating);
        if (child_generating.empty()) {
          return Status::InvalidArgument(
              "an OR branch consists only of NOT components; pairs "
              "satisfying it alone cannot be generated by blocking");
        }
      }
    }
    for (const Expr& child : e.children) {
      CBVLINK_RETURN_NOT_OK(check_or_branches(child));
    }
    return Status::OK();
  };
  CBVLINK_RETURN_NOT_OK(check_or_branches(expr.value()));

  return AttributeLevelBlocker(rule, std::move(structures),
                               std::move(expr).value(),
                               std::move(generating));
}

uint64_t AttributeLevelBlocker::CompoundKey(const Structure& s,
                                            const BitVector& bv, size_t l) {
  uint64_t acc = Mix64(l + 1);
  for (const HammingLshFamily& family : s.families) {
    acc = HashCombine(acc, family.Key(bv, l));
  }
  return acc;
}

void AttributeLevelBlocker::Insert(const EncodedRecord& record) {
  for (Structure& s : structures_) {
    for (size_t l = 0; l < s.L; ++l) {
      if (s.kind == Structure::Kind::kAnd) {
        s.tables[l].Insert(CompoundKey(s, record.bits, l), record.id);
      } else {
        for (size_t i = 0; i < s.predicates.size(); ++i) {
          s.tables[i * s.L + l].Insert(s.families[i].Key(record.bits, l),
                                       record.id);
        }
      }
    }
  }
  indexed_.emplace(record.id, record.bits);
}

void AttributeLevelBlocker::Index(const std::vector<EncodedRecord>& records) {
  indexed_.reserve(indexed_.size() + records.size());
  for (const EncodedRecord& record : records) Insert(record);
}

void AttributeLevelBlocker::BulkInsert(std::span<const EncodedRecord> records,
                                       ThreadPool* pool, size_t min_chunk) {
  telemetry::Registry& reg = telemetry::Registry::Global();
  telemetry::ScopedTimer timer(
      reg.GetHistogram("index_build_batch_latency_us"));
  if (pool == nullptr || pool->num_threads() <= 1 || records.size() <= 1) {
    indexed_.reserve(indexed_.size() + records.size());
    for (const EncodedRecord& record : records) Insert(record);
    reg.GetCounter("index_build_records_total")->Add(records.size());
    return;
  }

  // Flatten the per-structure tables into one global enumeration so
  // phase 2 can shard them uniformly.  Global table t of structure s is
  // local table t - base: AND structures key group l = local index;
  // OR structures key (predicate, group) = (local / L, local % L).
  struct TableRef {
    size_t structure;
    size_t local;
  };
  std::vector<TableRef> table_refs;
  std::vector<size_t> structure_base(structures_.size(), 0);
  for (size_t s = 0; s < structures_.size(); ++s) {
    structure_base[s] = table_refs.size();
    for (size_t t = 0; t < structures_[s].tables.size(); ++t) {
      table_refs.push_back(TableRef{s, t});
    }
  }
  const size_t total_tables = table_refs.size();

  // Phase 1: the key matrix keys[i * total_tables + global_table],
  // sharded over records.
  std::vector<uint64_t> keys(records.size() * total_tables);
  std::vector<RecordId> ids(records.size());
  pool->ParallelFor(
      records.size(), min_chunk, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          ids[i] = records[i].id;
          uint64_t* row = keys.data() + i * total_tables;
          for (size_t s = 0; s < structures_.size(); ++s) {
            const Structure& st = structures_[s];
            uint64_t* cell = row + structure_base[s];
            if (st.kind == Structure::Kind::kAnd) {
              for (size_t l = 0; l < st.L; ++l) {
                cell[l] = CompoundKey(st, records[i].bits, l);
              }
            } else {
              for (size_t p = 0; p < st.predicates.size(); ++p) {
                for (size_t l = 0; l < st.L; ++l) {
                  cell[p * st.L + l] = st.families[p].Key(records[i].bits, l);
                }
              }
            }
          }
        }
      });

  // Phase 2: per-table merge in record order.
  pool->ParallelFor(total_tables, [&](size_t, size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      const TableRef& ref = table_refs[t];
      structures_[ref.structure].tables[ref.local].BulkInsert(
          keys.data() + t, total_tables, ids);
    }
  });

  // The retained vector map is filled serially (unordered_map is not
  // concurrent); identical contents either way since ids are the keys.
  indexed_.reserve(indexed_.size() + records.size());
  for (const EncodedRecord& record : records) {
    indexed_.emplace(record.id, record.bits);
  }
  reg.GetCounter("index_build_records_total")->Add(records.size());
}

bool AttributeLevelBlocker::CollidesInStructure(const Structure& s,
                                                const BitVector& a,
                                                const BitVector& b) {
  for (size_t l = 0; l < s.L; ++l) {
    if (s.kind == Structure::Kind::kAnd) {
      if (CompoundKey(s, a, l) == CompoundKey(s, b, l)) return true;
    } else {
      for (const HammingLshFamily& family : s.families) {
        if (family.Key(a, l) == family.Key(b, l)) return true;
      }
    }
  }
  return false;
}

bool AttributeLevelBlocker::EvaluateExpr(const Expr& expr, const BitVector& a,
                                         const BitVector& b) const {
  switch (expr.kind) {
    case Expr::Kind::kStructure:
      return CollidesInStructure(structures_[expr.structure], a, b);
    case Expr::Kind::kAnd:
      for (const Expr& child : expr.children) {
        if (!EvaluateExpr(child, a, b)) return false;
      }
      return true;
    case Expr::Kind::kOr:
      for (const Expr& child : expr.children) {
        if (EvaluateExpr(child, a, b)) return true;
      }
      return false;
    case Expr::Kind::kNot:
      return !EvaluateExpr(expr.children[0], a, b);
  }
  return false;
}

bool AttributeLevelBlocker::FormulatedByRule(const BitVector& a,
                                             const BitVector& b) const {
  return EvaluateExpr(expr_, a, b);
}

void AttributeLevelBlocker::ForEachCandidate(
    const BitVector& probe, const std::function<void(RecordId)>& cb) const {
  // When the rule lowered to a single structure, every generated candidate
  // is formulated by construction — skip the membership re-check.
  const bool trivial_membership = expr_.kind == Expr::Kind::kStructure;

  std::unordered_set<RecordId> seen;
  for (size_t si : generating_) {
    const Structure& s = structures_[si];
    for (size_t l = 0; l < s.L; ++l) {
      if (s.kind == Structure::Kind::kAnd) {
        for (RecordId id : s.tables[l].Get(CompoundKey(s, probe, l))) {
          if (!seen.insert(id).second) continue;
          if (trivial_membership) {
            cb(id);
            continue;
          }
          const auto it = indexed_.find(id);
          if (it != indexed_.end() &&
              FormulatedByRule(it->second, probe)) {
            cb(id);
          }
        }
      } else {
        for (size_t i = 0; i < s.predicates.size(); ++i) {
          const uint64_t key = s.families[i].Key(probe, l);
          for (RecordId id : s.tables[i * s.L + l].Get(key)) {
            if (!seen.insert(id).second) continue;
            if (trivial_membership) {
              cb(id);
              continue;
            }
            const auto it = indexed_.find(id);
            if (it != indexed_.end() &&
                FormulatedByRule(it->second, probe)) {
              cb(id);
            }
          }
        }
      }
    }
  }
}

size_t AttributeLevelBlocker::TotalTables() const {
  size_t total = 0;
  for (const Structure& s : structures_) total += s.tables.size();
  return total;
}

}  // namespace cbvlink
