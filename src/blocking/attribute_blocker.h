// Attribute-level, rule-aware HB blocking (Section 5.4).
//
// Instead of sampling bits uniformly from the whole record vector, the
// blocker derives *blocking structures* from the classification rule:
//
//  * a conjunction of predicates becomes one structure whose groups use a
//    compound key — the concatenated attribute-level keys (Definition 4);
//  * a disjunction becomes one structure with an independent table per
//    attribute in every group (Definition 5);
//  * NOT contributes no tables; its truth is the *absence* of collision
//    (Definition 6);
//  * compound rules (the paper's C1/C2/C3) become a boolean expression
//    over structure-membership outcomes.
//
// Each structure gets its own L from Equation 2 with the rule-composed
// probability (Eqs. 10-11), so blocking adapts to how strict each part of
// the rule is.  Candidate generation probes the positive structures and
// discards pairs the rule-expression says were "never formulated" — the
// behaviour that gives Figure 6 its C3 gap.

#ifndef CBVLINK_BLOCKING_ATTRIBUTE_BLOCKER_H_
#define CBVLINK_BLOCKING_ATTRIBUTE_BLOCKER_H_

#include <unordered_map>
#include <vector>

#include "src/blocking/record_blocker.h"
#include "src/common/bitvector.h"
#include "src/common/random.h"
#include "src/common/record.h"
#include "src/common/status.h"
#include "src/embedding/record_encoder.h"
#include "src/lsh/blocking_table.h"
#include "src/lsh/hamming_lsh.h"
#include "src/rules/probability.h"
#include "src/rules/rule.h"

namespace cbvlink {

/// Options for building an attribute-level blocker.
struct AttributeBlockerOptions {
  /// K^(f_i) per schema attribute (Table 3 column K).  Attributes not
  /// referenced by the rule may carry any value.
  std::vector<size_t> attribute_K;
  /// Miss probability per blocking structure (Equation 2's delta).
  double delta = 0.1;
  /// Upper bound on L per structure; beyond it Create() fails.
  size_t max_groups = 100000;
};

/// Rule-aware blocker over concatenated attribute-level c-vectors.
class AttributeLevelBlocker : public CandidateSource {
 public:
  /// Builds the blocking structures for `rule` over record vectors laid
  /// out by `layout`.  Fails when the rule is invalid for the layout, has
  /// no positive component (e.g. a bare NOT), or a structure's L exceeds
  /// options.max_groups.
  static Result<AttributeLevelBlocker> Create(
      const Rule& rule, const RecordLayout& layout,
      const AttributeBlockerOptions& options, Rng& rng);

  /// Inserts data set A's records into every structure's tables and
  /// retains their vectors for rule-membership evaluation.
  void Index(const std::vector<EncodedRecord>& records);

  /// Bulk Index with the two-phase parallel build (see
  /// RecordLevelBlocker::BulkInsert): phase 1 computes every structure's
  /// keys into a per-record matrix over `pool`; phase 2 merges each of
  /// the TotalTables() tables in record order.  Tables and the retained
  /// vector map are identical to Index() at any thread count.
  void BulkInsert(std::span<const EncodedRecord> records,
                  ThreadPool* pool = nullptr, size_t min_chunk = 0);

  /// Inserts a single record (streaming ingestion).
  void Insert(const EncodedRecord& record);

  /// Candidates of `probe`: Ids colliding with it in the generating
  /// structures and whose pair passes the structure-membership expression
  /// (pairs ruled out by a NOT or a missing conjunct are never emitted).
  void ForEachCandidate(
      const BitVector& probe,
      const std::function<void(RecordId)>& cb) const override;

  /// True iff the pair (a, b) is formulated according to the rule's
  /// blocking structures (Section 5.4 compound-rule semantics).
  bool FormulatedByRule(const BitVector& a, const BitVector& b) const;

  /// Number of blocking structures derived from the rule.
  size_t num_structures() const { return structures_.size(); }

  /// L of structure `s`.
  size_t structure_L(size_t s) const { return structures_[s].L; }

  /// Total hash tables across structures (space accounting: O(L) per AND
  /// structure, O(n_c * L) per OR structure).
  size_t TotalTables() const;

  const Rule& rule() const { return rule_; }

 private:
  /// One blocking structure: an AND- or OR-composition of predicates with
  /// its own L and tables.
  struct Structure {
    enum class Kind { kAnd, kOr };
    Kind kind = Kind::kAnd;
    std::vector<Predicate> predicates;
    size_t L = 0;
    /// One family per predicate, each with L composite functions sampled
    /// from that attribute's bit segment.
    std::vector<HammingLshFamily> families;
    /// AND: tables[l] (compound keys).  OR: tables[i * L + l] for
    /// predicate i.
    std::vector<BlockingTable> tables;
  };

  /// Boolean expression over structure membership.
  struct Expr {
    enum class Kind { kStructure, kAnd, kOr, kNot };
    Kind kind = Kind::kStructure;
    size_t structure = 0;
    std::vector<Expr> children;
  };

  AttributeLevelBlocker(Rule rule, std::vector<Structure> structures,
                        Expr expr, std::vector<size_t> generating)
      : rule_(std::move(rule)),
        structures_(std::move(structures)),
        expr_(std::move(expr)),
        generating_(std::move(generating)) {}

  /// Compound key of `bv` in AND-structure `s`, group l.
  static uint64_t CompoundKey(const Structure& s, const BitVector& bv,
                              size_t l);

  /// True iff (a, b) collide in structure `s` in any group/table.
  static bool CollidesInStructure(const Structure& s, const BitVector& a,
                                  const BitVector& b);

  bool EvaluateExpr(const Expr& expr, const BitVector& a,
                    const BitVector& b) const;

  Rule rule_;
  std::vector<Structure> structures_;
  Expr expr_;
  /// Structures probed for candidate generation.
  std::vector<size_t> generating_;
  /// A-side vectors retained for membership evaluation.
  std::unordered_map<RecordId, BitVector> indexed_;
};

}  // namespace cbvlink

#endif  // CBVLINK_BLOCKING_ATTRIBUTE_BLOCKER_H_
