#include "src/blocking/record_blocker.h"

#include "src/lsh/params.h"

namespace cbvlink {

Result<RecordLevelBlocker> RecordLevelBlocker::Create(size_t num_bits,
                                                      size_t K, size_t theta,
                                                      double delta, Rng& rng) {
  Result<double> p = HammingBaseProbability(theta, num_bits);
  if (!p.ok()) return p.status();
  Result<size_t> L = OptimalGroups(p.value(), K, delta);
  if (!L.ok()) return L.status();
  return CreateWithL(num_bits, K, L.value(), rng);
}

Result<RecordLevelBlocker> RecordLevelBlocker::CreateWithL(size_t num_bits,
                                                           size_t K, size_t L,
                                                           Rng& rng) {
  Result<HammingLshFamily> family =
      HammingLshFamily::CreateFull(K, L, num_bits, rng);
  if (!family.ok()) return family.status();
  return RecordLevelBlocker(std::move(family).value());
}

void RecordLevelBlocker::Index(const std::vector<EncodedRecord>& records) {
  for (const EncodedRecord& record : records) Insert(record);
}

void RecordLevelBlocker::Insert(const EncodedRecord& record) {
  for (size_t l = 0; l < tables_.size(); ++l) {
    tables_[l].Insert(family_.Key(record.bits, l), record.id);
  }
}

void RecordLevelBlocker::ForEachCandidate(
    const BitVector& probe, const std::function<void(RecordId)>& cb) const {
  for (size_t l = 0; l < tables_.size(); ++l) {
    for (RecordId id : tables_[l].Get(family_.Key(probe, l))) {
      cb(id);
    }
  }
}

void RecordLevelBlocker::ForEachCandidateSpan(
    const BitVector& probe,
    FunctionRef<void(std::span<const RecordId>)> cb) const {
  for (size_t l = 0; l < tables_.size(); ++l) {
    const std::span<const RecordId> bucket =
        tables_[l].Get(family_.Key(probe, l));
    if (!bucket.empty()) cb(bucket);
  }
}

size_t RecordLevelBlocker::TotalBuckets() const {
  size_t total = 0;
  for (const BlockingTable& table : tables_) total += table.NumBuckets();
  return total;
}

size_t RecordLevelBlocker::MaxBucketSize() const {
  size_t best = 0;
  for (const BlockingTable& table : tables_) {
    best = std::max(best, table.MaxBucketSize());
  }
  return best;
}

}  // namespace cbvlink
