#include "src/blocking/record_blocker.h"

#include <cstdio>

#include "src/common/thread_pool.h"
#include "src/lsh/params.h"
#include "src/telemetry/metrics.h"

namespace cbvlink {

namespace {

/// Effective K for an m-bit space.  Distinct sampling cannot draw more
/// positions than the range holds; a larger configured K never added
/// selectivity anyway (the extra draws were guaranteed duplicates under
/// the old with-replacement sampling), so it is clamped with a notice
/// rather than rejected.
size_t ClampK(size_t K, size_t num_bits, const char* what) {
  if (K <= num_bits) return K;
  std::fprintf(stderr,
               "cbvlink: %s K = %zu exceeds the %zu-bit space; clamping "
               "to %zu (distinct bit positions)\n",
               what, K, num_bits, num_bits);
  return num_bits;
}

}  // namespace

Result<RecordLevelBlocker> RecordLevelBlocker::Create(size_t num_bits,
                                                      size_t K, size_t theta,
                                                      double delta, Rng& rng) {
  K = ClampK(K, num_bits, "record-level");
  Result<double> p = HammingBaseProbability(theta, num_bits);
  if (!p.ok()) return p.status();
  Result<size_t> L = OptimalGroups(p.value(), K, delta);
  if (!L.ok()) return L.status();
  return CreateWithL(num_bits, K, L.value(), rng);
}

Result<RecordLevelBlocker> RecordLevelBlocker::CreateWithL(size_t num_bits,
                                                           size_t K, size_t L,
                                                           Rng& rng) {
  K = ClampK(K, num_bits, "record-level");
  Result<HammingLshFamily> family =
      HammingLshFamily::CreateFull(K, L, num_bits, rng);
  if (!family.ok()) return family.status();
  return RecordLevelBlocker(std::move(family).value());
}

void RecordLevelBlocker::Index(const std::vector<EncodedRecord>& records) {
  for (const EncodedRecord& record : records) Insert(record);
}

void RecordLevelBlocker::BulkInsert(std::span<const EncodedRecord> records,
                                    ThreadPool* pool, size_t min_chunk) {
  telemetry::Registry& reg = telemetry::Registry::Global();
  telemetry::ScopedTimer timer(
      reg.GetHistogram("index_build_batch_latency_us"));
  const size_t L = tables_.size();
  if (pool == nullptr || pool->num_threads() <= 1 || records.size() <= 1) {
    for (const EncodedRecord& record : records) Insert(record);
  } else {
    // Phase 1: the key matrix keys[i * L + l], sharded over records.
    // Every slot is written by exactly one chunk, so the matrix is
    // independent of the chunking.
    std::vector<uint64_t> keys(records.size() * L);
    std::vector<RecordId> ids(records.size());
    pool->ParallelFor(records.size(), min_chunk,
                      [&](size_t, size_t begin, size_t end) {
                        for (size_t i = begin; i < end; ++i) {
                          ids[i] = records[i].id;
                          for (size_t l = 0; l < L; ++l) {
                            keys[i * L + l] = family_.Key(records[i].bits, l);
                          }
                        }
                      });
    // Phase 2: per-table merge in record order — each table is owned by
    // one chunk, and the column walk reproduces the serial insertion
    // sequence exactly.
    pool->ParallelFor(L, [&](size_t, size_t begin, size_t end) {
      for (size_t l = begin; l < end; ++l) {
        tables_[l].BulkInsert(keys.data() + l, L, ids);
      }
    });
  }
  reg.GetCounter("index_build_records_total")->Add(records.size());
}

void RecordLevelBlocker::Insert(const EncodedRecord& record) {
  for (size_t l = 0; l < tables_.size(); ++l) {
    tables_[l].Insert(family_.Key(record.bits, l), record.id);
  }
}

void RecordLevelBlocker::ForEachCandidate(
    const BitVector& probe, const std::function<void(RecordId)>& cb) const {
  for (size_t l = 0; l < tables_.size(); ++l) {
    for (RecordId id : tables_[l].Get(family_.Key(probe, l))) {
      cb(id);
    }
  }
}

void RecordLevelBlocker::ForEachCandidateSpan(
    const BitVector& probe,
    FunctionRef<void(std::span<const RecordId>)> cb) const {
  for (size_t l = 0; l < tables_.size(); ++l) {
    const std::span<const RecordId> bucket =
        tables_[l].Get(family_.Key(probe, l));
    if (!bucket.empty()) cb(bucket);
  }
}

size_t RecordLevelBlocker::TotalBuckets() const {
  size_t total = 0;
  for (const BlockingTable& table : tables_) total += table.NumBuckets();
  return total;
}

size_t RecordLevelBlocker::MaxBucketSize() const {
  size_t best = 0;
  for (const BlockingTable& table : tables_) {
    best = std::max(best, table.MaxBucketSize());
  }
  return best;
}

}  // namespace cbvlink
