#include "src/blocking/classic.h"

#include <algorithm>
#include <set>
#include <string>

#include "src/common/str.h"
#include "src/metrics/jaccard.h"
#include "src/text/normalize.h"
#include "src/text/qgram.h"

namespace cbvlink {

namespace {

/// One entry of the merged A ∪ B pool.
struct PoolEntry {
  RecordId id = 0;
  bool from_a = false;
  std::string key;                  // sorted-neighborhood blocking key
  std::vector<uint64_t> gram_set;   // canopy cheap-distance representation
};

std::string BlockingKey(const Record& record, size_t prefix_chars) {
  std::string key;
  for (const std::string& field : record.fields) {
    const std::string normalized = Normalize(field, Alphabet::Alphanumeric());
    key.append(normalized.substr(0, prefix_chars));
    key.push_back('|');  // field separator keeps prefixes aligned
  }
  return key;
}

}  // namespace

Result<std::vector<IdPair>> SortedNeighborhoodCandidates(
    const std::vector<Record>& a, const std::vector<Record>& b,
    const SortedNeighborhoodOptions& options) {
  if (options.window == 0) {
    return Status::InvalidArgument("window must be positive");
  }
  std::vector<PoolEntry> pool;
  pool.reserve(a.size() + b.size());
  for (const Record& r : a) {
    pool.push_back({r.id, true, BlockingKey(r, options.key_prefix_chars), {}});
  }
  for (const Record& r : b) {
    pool.push_back({r.id, false, BlockingKey(r, options.key_prefix_chars), {}});
  }
  std::sort(pool.begin(), pool.end(),
            [](const PoolEntry& x, const PoolEntry& y) {
              return x.key < y.key;
            });

  std::set<IdPair> unique_pairs;
  for (size_t i = 0; i < pool.size(); ++i) {
    const size_t end = std::min(pool.size(), i + options.window);
    for (size_t j = i + 1; j < end; ++j) {
      if (pool[i].from_a == pool[j].from_a) continue;
      const PoolEntry& from_a = pool[i].from_a ? pool[i] : pool[j];
      const PoolEntry& from_b = pool[i].from_a ? pool[j] : pool[i];
      unique_pairs.insert(IdPair{from_a.id, from_b.id});
    }
  }
  return std::vector<IdPair>(unique_pairs.begin(), unique_pairs.end());
}

Result<std::vector<IdPair>> CanopyCandidates(const std::vector<Record>& a,
                                             const std::vector<Record>& b,
                                             const CanopyOptions& options) {
  if (options.loose_threshold < 0.0 || options.loose_threshold > 1.0 ||
      options.tight_threshold < 0.0 || options.tight_threshold > 1.0) {
    return Status::InvalidArgument("canopy thresholds must lie in [0, 1]");
  }
  if (options.tight_threshold > options.loose_threshold) {
    return Status::InvalidArgument("tight threshold exceeds loose threshold");
  }
  Result<QGramExtractor> extractor = QGramExtractor::Create(
      Alphabet::Alphanumeric(), {.q = options.q, .pad = false});
  if (!extractor.ok()) return extractor.status();

  std::vector<PoolEntry> pool;
  pool.reserve(a.size() + b.size());
  const auto add = [&](const Record& r, bool from_a) {
    PoolEntry entry;
    entry.id = r.id;
    entry.from_a = from_a;
    std::vector<uint64_t> merged;
    for (const std::string& field : r.fields) {
      const std::vector<uint64_t> set = extractor.value().IndexSet(
          Normalize(field, Alphabet::Alphanumeric()));
      merged.insert(merged.end(), set.begin(), set.end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    entry.gram_set = std::move(merged);
    pool.push_back(std::move(entry));
  };
  for (const Record& r : a) add(r, true);
  for (const Record& r : b) add(r, false);

  Rng rng(options.seed);
  std::vector<bool> removed(pool.size(), false);
  std::vector<size_t> alive(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) alive[i] = i;

  std::set<IdPair> unique_pairs;
  while (!alive.empty()) {
    // Pick a random remaining record as the canopy center.
    const size_t pick = rng.Below(alive.size());
    const size_t center = alive[pick];

    std::vector<size_t> members;
    for (size_t idx : alive) {
      const double dist =
          JaccardDistance(pool[center].gram_set, pool[idx].gram_set);
      if (dist <= options.loose_threshold) {
        members.push_back(idx);
        if (dist <= options.tight_threshold) removed[idx] = true;
      }
    }
    removed[center] = true;  // the center never seeds again

    // Candidate pairs: all cross-source pairs inside this canopy.
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        const PoolEntry& x = pool[members[i]];
        const PoolEntry& y = pool[members[j]];
        if (x.from_a == y.from_a) continue;
        const PoolEntry& from_a = x.from_a ? x : y;
        const PoolEntry& from_b = x.from_a ? y : x;
        unique_pairs.insert(IdPair{from_a.id, from_b.id});
      }
    }

    // Compact the alive list.
    std::vector<size_t> next;
    next.reserve(alive.size());
    for (size_t idx : alive) {
      if (!removed[idx]) next.push_back(idx);
    }
    alive.swap(next);
  }
  return std::vector<IdPair>(unique_pairs.begin(), unique_pairs.end());
}

}  // namespace cbvlink
