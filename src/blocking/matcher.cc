#include "src/blocking/matcher.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/telemetry/metrics.h"

namespace cbvlink {
namespace {

/// Match-stage funnel counters, resolved once per process.
struct MatcherMetrics {
  telemetry::Counter* candidates;
  telemetry::Counter* comparisons;
  telemetry::Counter* matches;
  telemetry::Counter* dedup_skipped;
  telemetry::Histogram* batch_latency;

  static const MatcherMetrics& Get() {
    static const MatcherMetrics m = [] {
      telemetry::Registry& reg = telemetry::Registry::Global();
      MatcherMetrics out;
      out.candidates = reg.GetCounter("matcher_candidates_total");
      out.comparisons = reg.GetCounter("matcher_comparisons_total");
      out.matches = reg.GetCounter("matcher_matches_total");
      out.dedup_skipped = reg.GetCounter("matcher_dedup_skipped_total");
      out.batch_latency = reg.GetHistogram("matcher_batch_latency_us");
      return out;
    }();
    return m;
  }

  void Record(const MatchStats& stats) const {
    if (stats.candidate_occurrences != 0)
      candidates->Add(stats.candidate_occurrences);
    if (stats.comparisons != 0) comparisons->Add(stats.comparisons);
    if (stats.matches != 0) matches->Add(stats.matches);
    if (stats.dedup_skipped != 0) dedup_skipped->Add(stats.dedup_skipped);
  }
};

}  // namespace

void VectorStore::Add(const EncodedRecord& record) {
  if (ids_.empty()) {
    num_bits_ = record.bits.size();
    stride_ = record.bits.words().size();
  }
  // The arena has one stride for every record (the first Add fixes it);
  // admitting a different width would silently corrupt the layout — every
  // later record lands at the wrong offset and the kernels read garbage.
  // Enforced unconditionally: an abort here is a caller bug surfaced at
  // the boundary, not data-dependent misbehaviour three stages later.
  if (record.bits.size() != num_bits_) {
    std::fprintf(stderr,
                 "cbvlink: VectorStore::Add id=%llu bit width %zu != store "
                 "width %zu (all vectors must share one encoder layout)\n",
                 static_cast<unsigned long long>(record.id),
                 record.bits.size(), num_bits_);
    std::abort();
  }
  if (ids_.size() + 1 > (slots_.size() * 3) / 4) {
    Rehash(slots_.empty() ? 16 : slots_.size() * 2);
  }
  // First Add wins for a live slot, matching the emplace semantics of the
  // map-based store.  A tombstoned slot is resurrected in place with the
  // new vector (an update may have changed the bits), so the dense index
  // stays stable.
  size_t pos = Hash(record.id) & slot_mask_;
  while (true) {
    const uint32_t dense = slots_[pos];
    if (dense == kNotFound) break;
    if (ids_[dense] == record.id) {
      if (IsDead(dense)) {
        const std::vector<uint64_t>& words = record.bits.words();
        std::copy(words.begin(), words.end(),
                  words_.begin() + static_cast<size_t>(dense) * stride_);
        dead_words_[dense >> 6] &= ~(uint64_t{1} << (dense & 63));
        --dead_count_;
      }
      return;
    }
    pos = (pos + 1) & slot_mask_;
  }
  const uint32_t dense = static_cast<uint32_t>(ids_.size());
  slots_[pos] = dense;
  ids_.push_back(record.id);
  const std::vector<uint64_t>& words = record.bits.words();
  words_.insert(words_.end(), words.begin(), words.end());
  // BitVector zero-pads past size(); the arena inherits the invariant, so
  // whole-word kernels are exact.
}

void VectorStore::AddAll(const std::vector<EncodedRecord>& records) {
  if (!records.empty() && ids_.empty()) {
    words_.reserve(records.size() * records.front().bits.words().size());
    ids_.reserve(records.size());
  }
  for (const EncodedRecord& record : records) Add(record);
}

bool VectorStore::Remove(RecordId id) {
  const uint32_t dense = DenseIndex(id);
  if (dense == kNotFound || IsDead(dense)) return false;
  const size_t word = static_cast<size_t>(dense) >> 6;
  if (word >= dead_words_.size()) dead_words_.resize(word + 1, 0);
  dead_words_[word] |= uint64_t{1} << (dense & 63);
  ++dead_count_;
  return true;
}

void VectorStore::Rehash(size_t min_slots) {
  size_t n = 16;
  while (n < min_slots) n *= 2;
  slots_.assign(n, kNotFound);
  slot_mask_ = n - 1;
  for (uint32_t dense = 0; dense < ids_.size(); ++dense) {
    size_t pos = Hash(ids_[dense]) & slot_mask_;
    while (slots_[pos] != kNotFound) pos = (pos + 1) & slot_mask_;
    slots_[pos] = dense;
  }
}

BitVector VectorStore::VectorAt(uint32_t dense) const {
  const uint64_t* words = WordsAt(dense);
  return BitVector::FromWords(num_bits_,
                              std::vector<uint64_t>(words, words + stride_));
}

namespace {

/// True when the rule is a bare predicate or an AND of predicates — the
/// shape the conjunction fast path handles.
bool IsConjunctionOfPredicates(const Rule& rule) {
  if (rule.kind() == Rule::Kind::kPredicate) return true;
  if (rule.kind() != Rule::Kind::kAnd) return false;
  for (const Rule& child : rule.children()) {
    if (child.kind() != Rule::Kind::kPredicate) return false;
  }
  return true;
}

}  // namespace

PairClassifier MakeRuleClassifier(Rule rule, const RecordLayout& layout) {
  PairClassifier classifier;
  if (IsConjunctionOfPredicates(rule)) {
    classifier.kind_ = PairClassifier::Kind::kConjunction;
    const auto add_pred = [&](const Predicate& pred) {
      const RecordLayout::Segment& seg = layout.segment(pred.attribute);
      PairClassifier::Node node;
      node.offset = static_cast<uint32_t>(seg.offset);
      node.length = static_cast<uint32_t>(seg.size);
      node.theta = static_cast<uint32_t>(pred.threshold);
      classifier.nodes_.push_back(node);
    };
    if (rule.kind() == Rule::Kind::kPredicate) {
      add_pred(rule.predicate());
    } else {
      for (const Rule& child : rule.children()) add_pred(child.predicate());
    }
    return classifier;
  }
  classifier.kind_ = PairClassifier::Kind::kRule;
  // Flatten the tree breadth-first so every node's children sit
  // contiguously; evaluation then walks small indices instead of chasing
  // child vectors.
  std::vector<const Rule*> order;
  order.push_back(&rule);
  for (size_t i = 0; i < order.size(); ++i) {
    for (const Rule& child : order[i]->children()) order.push_back(&child);
  }
  classifier.nodes_.resize(order.size());
  uint32_t next_child = 1;
  for (size_t i = 0; i < order.size(); ++i) {
    const Rule& node = *order[i];
    PairClassifier::Node& compiled = classifier.nodes_[i];
    compiled.kind = node.kind();
    compiled.first_child = next_child;
    compiled.num_children = static_cast<uint32_t>(node.children().size());
    next_child += compiled.num_children;
    if (node.kind() == Rule::Kind::kPredicate) {
      const RecordLayout::Segment& seg =
          layout.segment(node.predicate().attribute);
      compiled.offset = static_cast<uint32_t>(seg.offset);
      compiled.length = static_cast<uint32_t>(seg.size);
      compiled.theta = static_cast<uint32_t>(node.predicate().threshold);
    }
  }
  return classifier;
}

PairClassifier MakeRecordThresholdClassifier(size_t theta) {
  PairClassifier classifier;
  classifier.kind_ = PairClassifier::Kind::kThreshold;
  classifier.theta_ = theta;
  return classifier;
}

bool PairClassifier::EvalNode(uint32_t index, const uint64_t* a,
                              const uint64_t* b) const {
  const Node& node = nodes_[index];
  switch (node.kind) {
    case Rule::Kind::kPredicate:
      return ActiveKernels().range_distance(a, b, node.offset, node.length) <=
             node.theta;
    case Rule::Kind::kAnd:
      for (uint32_t c = 0; c < node.num_children; ++c) {
        if (!EvalNode(node.first_child + c, a, b)) return false;
      }
      return true;
    case Rule::Kind::kOr:
      for (uint32_t c = 0; c < node.num_children; ++c) {
        if (EvalNode(node.first_child + c, a, b)) return true;
      }
      return false;
    case Rule::Kind::kNot:
      return !EvalNode(node.first_child, a, b);
  }
  return false;
}

void Matcher::MatchOne(const EncodedRecord& b, const PairClassifier& classifier,
                       std::vector<IdPair>* out, MatchStats* stats) const {
  MatchOne(b, classifier, out, stats, &scratch_);
}

void Matcher::MatchOne(const EncodedRecord& b, const PairClassifier& classifier,
                       std::vector<IdPair>* out, MatchStats* stats,
                       Scratch* scratch) const {
  scratch->Prepare(store_a_->size());
  uint32_t* const stamps = scratch->stamps_.data();
  const uint32_t epoch = scratch->epoch_;
  // Counters are optional (some callers only want the pairs); fold into a
  // local and copy out once so the hot loop never branches on stats.
  MatchStats local;
  MatchStats* const s = stats != nullptr ? stats : &local;
  const uint64_t* const b_words = b.bits.words().data();
  const size_t num_words = store_a_->words_per_record();
  if (classifier.IsWholeRecordThreshold()) {
    // Batched path (DESIGN.md §14): stage every first-seen candidate
    // while walking the bucket spans, then hand the probe's whole fresh
    // set to the batch kernel in one call — candidates sit at a fixed
    // stride in the arena, so the SIMD kernels stream them via the dense
    // index list.  Verdicts come back in staging order, which is the
    // arrival order the per-pair loop used, so pairs and stats are
    // byte-identical to the scalar engine.
    std::vector<uint32_t>& fresh_dense = scratch->fresh_dense_;
    std::vector<RecordId>& fresh_ids = scratch->fresh_ids_;
    source_->ForEachCandidateSpan(
        b.bits, [&](std::span<const RecordId> bucket) {
          s->candidate_occurrences += bucket.size();
          for (const RecordId a_id : bucket) {
            const uint32_t dense = store_a_->DenseIndex(a_id);
            if (dense == VectorStore::kNotFound) {
              if (!scratch->unknown_.insert(a_id).second) ++s->dedup_skipped;
              continue;
            }
            if (stamps[dense] == epoch) {
              ++s->dedup_skipped;
              continue;
            }
            stamps[dense] = epoch;
            // Tombstoned slot: stamped (so repeats dedupe for free) but
            // never compared — a deleted record matches nothing.
            if (store_a_->IsDead(dense)) continue;
            fresh_dense.push_back(dense);
            fresh_ids.push_back(a_id);
          }
        });
    const size_t n = fresh_dense.size();
    s->comparisons += n;
    if (n == 0) return;
    if (scratch->verdicts_.size() < n) scratch->verdicts_.resize(n);
    KernelBatchLeq(ActiveKernels(), b_words, store_a_->arena().data(),
                   num_words, fresh_dense.data(), n, num_words,
                   classifier.threshold(), scratch->verdicts_.data());
    for (size_t i = 0; i < n; ++i) {
      if (scratch->verdicts_[i] != 0) {
        ++s->matches;
        out->push_back(IdPair{fresh_ids[i], b.id});
      }
    }
    return;
  }
  source_->ForEachCandidateSpan(
      b.bits, [&](std::span<const RecordId> bucket) {
        s->candidate_occurrences += bucket.size();
        for (const RecordId a_id : bucket) {
          const uint32_t dense = store_a_->DenseIndex(a_id);
          if (dense == VectorStore::kNotFound) {
            // Id indexed but vector unknown: no dense slot to stamp, so
            // de-duplicate through the (steady-state empty) side set.
            if (!scratch->unknown_.insert(a_id).second) ++s->dedup_skipped;
            continue;
          }
          if (stamps[dense] == epoch) {
            ++s->dedup_skipped;
            continue;
          }
          stamps[dense] = epoch;
          if (store_a_->IsDead(dense)) continue;  // tombstoned: skip
          ++s->comparisons;
          if (classifier.ClassifyWords(store_a_->WordsAt(dense), b_words,
                                       num_words)) {
            ++s->matches;
            out->push_back(IdPair{a_id, b.id});
          }
        }
      });
}

std::vector<IdPair> Matcher::MatchAll(
    const std::vector<EncodedRecord>& b_records,
    const PairClassifier& classifier, MatchStats* stats) const {
  return MatchAll(b_records, classifier, stats, nullptr);
}

std::vector<IdPair> Matcher::MatchAll(
    const std::vector<EncodedRecord>& b_records,
    const PairClassifier& classifier, MatchStats* stats,
    ThreadPool* pool) const {
  const MatcherMetrics& metrics = MatcherMetrics::Get();
  telemetry::ScopedTimer timer(metrics.batch_latency);
  MatchStats batch;
  std::vector<IdPair> out;
  if (pool == nullptr || pool->num_threads() <= 1 || b_records.size() <= 1) {
    Scratch scratch;
    for (const EncodedRecord& b : b_records) {
      MatchOne(b, classifier, &out, &batch, &scratch);
    }
  } else {
    // One shard per ParallelFor chunk.  Chunk boundaries depend only on
    // the record count and the pool size (thread_pool.h), so buffers
    // concatenated in chunk order reproduce the serial output exactly.
    const size_t max_chunks = std::min(b_records.size(), pool->num_threads());
    std::vector<std::vector<IdPair>> shard_pairs(max_chunks);
    std::vector<MatchStats> shard_stats(max_chunks);
    pool->ParallelFor(
        b_records.size(), [&](size_t chunk, size_t begin, size_t end) {
          Scratch scratch;
          for (size_t i = begin; i < end; ++i) {
            MatchOne(b_records[i], classifier, &shard_pairs[chunk],
                     &shard_stats[chunk], &scratch);
          }
        });
    size_t total_pairs = 0;
    for (const std::vector<IdPair>& shard : shard_pairs) {
      total_pairs += shard.size();
    }
    out.reserve(total_pairs);
    for (size_t c = 0; c < max_chunks; ++c) {
      out.insert(out.end(), shard_pairs[c].begin(), shard_pairs[c].end());
      batch += shard_stats[c];
    }
  }
  metrics.Record(batch);
  if (stats != nullptr) *stats += batch;
  return out;
}

}  // namespace cbvlink
