#include "src/blocking/matcher.h"

#include <unordered_set>

namespace cbvlink {

PairClassifier MakeRuleClassifier(Rule rule, const RecordLayout& layout) {
  // Copy the segments so the classifier does not dangle on the layout.
  std::vector<RecordLayout::Segment> segments;
  segments.reserve(layout.num_attributes());
  for (size_t i = 0; i < layout.num_attributes(); ++i) {
    segments.push_back(layout.segment(i));
  }
  return [rule = std::move(rule), segments = std::move(segments)](
             const BitVector& a, const BitVector& b) {
    return rule.Evaluate([&](size_t attr) {
      const RecordLayout::Segment& seg = segments[attr];
      return a.HammingDistanceRange(b, seg.offset, seg.size);
    });
  };
}

PairClassifier MakeRecordThresholdClassifier(size_t theta) {
  return [theta](const BitVector& a, const BitVector& b) {
    return a.HammingDistance(b) <= theta;
  };
}

void Matcher::MatchOne(const EncodedRecord& b, const PairClassifier& classifier,
                       std::vector<IdPair>* out, MatchStats* stats) const {
  // The paper's unique collection C of already-compared A-Ids (line 1 of
  // Algorithm 2).
  std::unordered_set<RecordId> compared;
  source_->ForEachCandidate(b.bits, [&](RecordId a_id) {
    ++stats->candidate_occurrences;
    if (!compared.insert(a_id).second) {
      ++stats->dedup_skipped;
      return;
    }
    const BitVector* a_bits = store_a_->Find(a_id);
    if (a_bits == nullptr) return;  // Id indexed but vector unknown
    ++stats->comparisons;
    if (classifier(*a_bits, b.bits)) {
      ++stats->matches;
      out->push_back(IdPair{a_id, b.id});
    }
  });
}

std::vector<IdPair> Matcher::MatchAll(
    const std::vector<EncodedRecord>& b_records,
    const PairClassifier& classifier, MatchStats* stats) const {
  std::vector<IdPair> out;
  for (const EncodedRecord& b : b_records) {
    MatchOne(b, classifier, &out, stats);
  }
  return out;
}

}  // namespace cbvlink
