#include "src/metrics/jaccard.h"

#include <cstddef>

namespace cbvlink {

namespace {

/// Computes |a ∩ b| for sorted unique vectors by linear merge.
size_t IntersectionSize(const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

double JaccardSimilarity(const std::vector<uint64_t>& a,
                         const std::vector<uint64_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t inter = IntersectionSize(a, b);
  const size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double JaccardDistance(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b) {
  return 1.0 - JaccardSimilarity(a, b);
}

}  // namespace cbvlink
