// Jaro and Jaro-Winkler similarity.
//
// The paper names a distance-preserving embedding for Jaro-Winkler as its
// primary future-work direction (Section 7); the metric is provided here
// so downstream users can evaluate it alongside edit distance.

#ifndef CBVLINK_METRICS_JARO_WINKLER_H_
#define CBVLINK_METRICS_JARO_WINKLER_H_

#include <string_view>

namespace cbvlink {

/// Jaro similarity in [0, 1]; 1 for identical strings, 0 when no characters
/// match.  Two empty strings are defined to have similarity 1.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity: Jaro boosted by common-prefix length (up to 4
/// characters) scaled by `prefix_weight` (standard value 0.1; values above
/// 0.25 would allow similarities > 1 and are clamped).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_weight = 0.1);

/// 1 - JaroWinklerSimilarity.
double JaroWinklerDistance(std::string_view a, std::string_view b,
                           double prefix_weight = 0.1);

}  // namespace cbvlink

#endif  // CBVLINK_METRICS_JARO_WINKLER_H_
