// Euclidean (L2) distance over real vectors — the metric of the space into
// which the SM-EB baseline embeds strings (Section 6.1).

#ifndef CBVLINK_METRICS_EUCLIDEAN_H_
#define CBVLINK_METRICS_EUCLIDEAN_H_

#include <cassert>
#include <cmath>
#include <vector>

namespace cbvlink {

/// Squared L2 distance between equal-length vectors.
inline double SquaredEuclideanDistance(const std::vector<double>& a,
                                       const std::vector<double>& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// L2 distance between equal-length vectors.
inline double EuclideanDistance(const std::vector<double>& a,
                                const std::vector<double>& b) {
  return std::sqrt(SquaredEuclideanDistance(a, b));
}

}  // namespace cbvlink

#endif  // CBVLINK_METRICS_EUCLIDEAN_H_
