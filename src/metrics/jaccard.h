// Jaccard distance over q-gram index sets — the metric of the space J in
// which the HARRA baseline operates (Section 5.1).

#ifndef CBVLINK_METRICS_JACCARD_H_
#define CBVLINK_METRICS_JACCARD_H_

#include <cstdint>
#include <vector>

namespace cbvlink {

/// Jaccard distance 1 - |a ∩ b| / |a ∪ b| between two sorted,
/// de-duplicated index sets.  Two empty sets have distance 0.
double JaccardDistance(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b);

/// Jaccard similarity |a ∩ b| / |a ∪ b| (1 for two empty sets).
double JaccardSimilarity(const std::vector<uint64_t>& a,
                         const std::vector<uint64_t>& b);

}  // namespace cbvlink

#endif  // CBVLINK_METRICS_JACCARD_H_
