// Levenshtein edit distance — the metric d_E of the paper's original
// space (Definition 1).
//
// Two entry points are provided: the plain O(|a|*|b|) distance, and a
// banded "within threshold" test that runs in O(theta * min(|a|, |b|))
// and is what the matching step uses when verifying candidate pairs
// against attribute-level thresholds.

#ifndef CBVLINK_METRICS_EDIT_DISTANCE_H_
#define CBVLINK_METRICS_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace cbvlink {

/// Levenshtein distance between `a` and `b` (unit-cost substitute, insert,
/// delete — the basic perturbation operations of Section 5.1).
size_t EditDistance(std::string_view a, std::string_view b);

/// True iff EditDistance(a, b) <= threshold, computed with a band of width
/// 2*threshold+1 so mismatches exit early.
bool EditDistanceWithin(std::string_view a, std::string_view b,
                        size_t threshold);

}  // namespace cbvlink

#endif  // CBVLINK_METRICS_EDIT_DISTANCE_H_
