#include "src/metrics/jaro_winkler.h"

#include <algorithm>
#include <vector>

namespace cbvlink {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;

  const size_t match_window =
      std::max(a.size(), b.size()) / 2 == 0
          ? 0
          : std::max(a.size(), b.size()) / 2 - 1;

  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);

  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = (i > match_window) ? i - match_window : 0;
    const size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }

  const double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() +
          (m - transpositions / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_weight) {
  prefix_weight = std::clamp(prefix_weight, 0.0, 0.25);
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + prefix * prefix_weight * (1.0 - jaro);
}

double JaroWinklerDistance(std::string_view a, std::string_view b,
                           double prefix_weight) {
  return 1.0 - JaroWinklerSimilarity(a, b, prefix_weight);
}

}  // namespace cbvlink
