#include "src/metrics/edit_distance.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace cbvlink {

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter string
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;

  // Two-row dynamic program over the shorter dimension.
  std::vector<size_t> prev(n + 1);
  std::vector<size_t> curr(n + 1);
  for (size_t j = 0; j <= n; ++j) prev[j] = j;
  for (size_t i = 1; i <= m; ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= n; ++j) {
      const size_t sub = prev[j - 1] + (a[j - 1] == b[i - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, sub});
    }
    std::swap(prev, curr);
  }
  return prev[n];
}

bool EditDistanceWithin(std::string_view a, std::string_view b,
                        size_t threshold) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (m - n > threshold) return false;  // length gap alone exceeds threshold
  if (threshold == 0) return a == b;

  constexpr size_t kInf = std::numeric_limits<size_t>::max() / 2;
  // Banded DP: only cells with |i - j| <= threshold can be <= threshold.
  std::vector<size_t> prev(n + 1, kInf);
  std::vector<size_t> curr(n + 1, kInf);
  for (size_t j = 0; j <= std::min(n, threshold); ++j) prev[j] = j;
  for (size_t i = 1; i <= m; ++i) {
    const size_t lo = (i > threshold) ? i - threshold : 0;
    const size_t hi = std::min(n, i + threshold);
    curr.assign(n + 1, kInf);
    if (lo == 0) curr[0] = i;
    size_t row_min = kInf;
    for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
      const size_t sub = prev[j - 1] + (a[j - 1] == b[i - 1] ? 0 : 1);
      const size_t del = prev[j] + 1;   // delete from b
      const size_t ins = curr[j - 1] + 1;  // insert into b
      curr[j] = std::min({sub, del, ins});
      row_min = std::min(row_min, curr[j]);
    }
    if (lo == 0) row_min = std::min(row_min, curr[0]);
    if (row_min > threshold) return false;  // band exhausted
    std::swap(prev, curr);
  }
  return prev[n] <= threshold;
}

}  // namespace cbvlink
