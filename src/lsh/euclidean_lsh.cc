#include "src/lsh/euclidean_lsh.h"

#include <cassert>
#include <cmath>

#include "src/common/hashing.h"

namespace cbvlink {

Result<EuclideanLshFamily> EuclideanLshFamily::Create(size_t K, size_t L,
                                                      size_t dimensions,
                                                      double width, Rng& rng) {
  if (K == 0) return Status::InvalidArgument("K must be positive");
  if (L == 0) return Status::InvalidArgument("L must be positive");
  if (dimensions == 0) {
    return Status::InvalidArgument("dimensions must be positive");
  }
  if (width <= 0.0) {
    return Status::InvalidArgument("bucket width must be positive");
  }
  std::vector<Projection> projections;
  projections.reserve(K * L);
  for (size_t i = 0; i < K * L; ++i) {
    Projection proj;
    proj.direction.reserve(dimensions);
    for (size_t d = 0; d < dimensions; ++d) {
      proj.direction.push_back(rng.NextGaussian());
    }
    proj.shift = rng.NextDouble() * width;
    projections.push_back(std::move(proj));
  }
  return EuclideanLshFamily(K, L, dimensions, width, std::move(projections));
}

uint64_t EuclideanLshFamily::Key(const std::vector<double>& point,
                                 size_t l) const {
  assert(point.size() == dimensions_);
  uint64_t acc = Mix64(l + 1);
  for (size_t k = 0; k < K_; ++k) {
    const Projection& proj = projections_[l * K_ + k];
    double dot = proj.shift;
    for (size_t d = 0; d < dimensions_; ++d) {
      dot += proj.direction[d] * point[d];
    }
    const auto bucket = static_cast<int64_t>(std::floor(dot / width_));
    acc = HashCombine(acc, static_cast<uint64_t>(bucket));
  }
  return acc;
}

}  // namespace cbvlink
