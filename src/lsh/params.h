// LSH parameter calculators (Section 4.2, Equation 2).
//
// The completeness guarantee of every LSH blocking mechanism in this
// library comes from choosing the number of blocking groups
//
//   L = ceil( ln(delta) / ln(1 - p^K) ),
//
// where p is the per-base-function collision probability at the distance
// threshold and delta the tolerated miss probability: each pair within the
// threshold is then found with probability >= 1 - delta.  The helpers here
// compute p for each of the three metric spaces used in the paper and turn
// (p, K, delta) — or a pre-composed rule probability p^K — into L.

#ifndef CBVLINK_LSH_PARAMS_H_
#define CBVLINK_LSH_PARAMS_H_

#include <cstddef>

#include "src/common/status.h"

namespace cbvlink {

/// Base-function success probability in a Hamming space of `m` bits at
/// distance threshold `theta`: p = 1 - theta/m (Definition 3).
/// Returns InvalidArgument when theta > m or m == 0.
Result<double> HammingBaseProbability(size_t theta, size_t m);

/// Base-function success probability for MinHash at Jaccard distance
/// threshold `theta` in [0, 1]: p = 1 - theta (the Jaccard similarity).
Result<double> JaccardBaseProbability(double theta);

/// Base-function success probability for p-stable Euclidean LSH with
/// bucket width `w` at L2 distance `c` (Datar et al. 2004):
///   p(c) = 1 - 2*Phi(-w/c) - 2c/(sqrt(2*pi)*w) * (1 - exp(-w^2/(2 c^2))).
/// For c == 0 returns 1.  Requires w > 0, c >= 0.
Result<double> EuclideanBaseProbability(double c, double w);

/// Equation 2 applied to an already-composed collision probability
/// `p_composite` (= p^K for a single space, or the rule-level bound of
/// Eqs. 10-11).  Returns the optimal number of blocking groups so any
/// within-threshold pair is emitted with probability >= 1 - delta.
/// Requires 0 < delta < 1 and 0 < p_composite <= 1; a composite
/// probability of 1 needs a single group.  The result is capped at
/// `max_groups` (InvalidArgument beyond it — the configuration is
/// infeasible rather than silently truncated).
Result<size_t> OptimalGroupsFromComposite(double p_composite, double delta,
                                          size_t max_groups = 100000);

/// Equation 2 from base probability and K: L(p^K, delta).
Result<size_t> OptimalGroups(double p_base, size_t K, double delta,
                             size_t max_groups = 100000);

/// The miss probability actually achieved by `L` groups at composite
/// collision probability `p_composite`: (1 - p^K)^L.
double MissProbability(double p_composite, size_t L);

}  // namespace cbvlink

#endif  // CBVLINK_LSH_PARAMS_H_
