#include "src/lsh/params.h"

#include <cmath>

#include "src/common/str.h"

namespace cbvlink {

namespace {

/// Standard normal CDF.
double NormCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

Result<double> HammingBaseProbability(size_t theta, size_t m) {
  if (m == 0) return Status::InvalidArgument("vector size m must be positive");
  if (theta > m) {
    return Status::InvalidArgument(
        StrFormat("threshold %zu exceeds vector size %zu", theta, m));
  }
  return 1.0 - static_cast<double>(theta) / static_cast<double>(m);
}

Result<double> JaccardBaseProbability(double theta) {
  if (theta < 0.0 || theta > 1.0) {
    return Status::InvalidArgument(
        StrFormat("Jaccard threshold %f outside [0, 1]", theta));
  }
  return 1.0 - theta;
}

Result<double> EuclideanBaseProbability(double c, double w) {
  if (w <= 0.0) {
    return Status::InvalidArgument("bucket width w must be positive");
  }
  if (c < 0.0) {
    return Status::InvalidArgument("distance c must be non-negative");
  }
  if (c == 0.0) return 1.0;
  const double ratio = w / c;
  const double p = 1.0 - 2.0 * NormCdf(-ratio) -
                   2.0 / (std::sqrt(2.0 * M_PI) * ratio) *
                       (1.0 - std::exp(-ratio * ratio / 2.0));
  return p < 0.0 ? 0.0 : p;
}

Result<size_t> OptimalGroupsFromComposite(double p_composite, double delta,
                                          size_t max_groups) {
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument(
        StrFormat("delta %f outside (0, 1)", delta));
  }
  if (p_composite <= 0.0 || p_composite > 1.0) {
    return Status::InvalidArgument(
        StrFormat("composite probability %g outside (0, 1]", p_composite));
  }
  if (p_composite >= 1.0) return size_t{1};
  // L = ceil(ln(delta) / ln(1 - p^K)).  Use log1p for the small-p regime.
  const double denom = std::log1p(-p_composite);
  const double l_real = std::log(delta) / denom;
  if (!(l_real > 0.0) || l_real > static_cast<double>(max_groups)) {
    return Status::InvalidArgument(
        StrFormat("configuration needs %g blocking groups (cap %zu); "
                  "raise K selectivity or thresholds",
                  l_real, max_groups));
  }
  return static_cast<size_t>(std::ceil(l_real));
}

Result<size_t> OptimalGroups(double p_base, size_t K, double delta,
                             size_t max_groups) {
  if (p_base < 0.0 || p_base > 1.0) {
    return Status::InvalidArgument(
        StrFormat("base probability %f outside [0, 1]", p_base));
  }
  return OptimalGroupsFromComposite(std::pow(p_base, static_cast<double>(K)),
                                    delta, max_groups);
}

double MissProbability(double p_composite, size_t L) {
  return std::pow(1.0 - p_composite, static_cast<double>(L));
}

}  // namespace cbvlink
