#include "src/lsh/hamming_lsh.h"

#include "src/common/str.h"

namespace cbvlink {

HammingHashFunction HammingHashFunction::Sample(size_t K, size_t offset,
                                                size_t range_bits, Rng& rng) {
  // K distinct positions via Floyd's algorithm: for j in [range-K, range)
  // draw t uniform on [0, j]; take t unless already chosen, else j.  Each
  // K-subset is equally likely, with exactly K draws from `rng`.
  // Sampling with replacement here silently weakened the composite hash:
  // a repeated position contributes no selectivity, so an h_l with d
  // duplicates behaves like K-d and the family's collision probability
  // drifts above the (1 - u/m)^K the L calibration assumed.
  std::vector<uint32_t> positions;
  positions.reserve(K);
  const auto chosen = [&](uint32_t pos) {
    for (const uint32_t p : positions) {
      if (p == pos) return true;
    }
    return false;
  };
  for (size_t j = range_bits - K; j < range_bits; ++j) {
    const size_t t = rng.Below(j + 1);
    const uint32_t candidate = static_cast<uint32_t>(offset + t);
    positions.push_back(chosen(candidate)
                            ? static_cast<uint32_t>(offset + j)
                            : candidate);
  }
  return HammingHashFunction(std::move(positions));
}

uint64_t HammingHashFunction::Key(const BitVector& bv) const {
  return KeyWithSeed(bv, 0);
}

uint64_t HammingHashFunction::KeyWithSeed(const BitVector& bv,
                                          uint64_t seed) const {
  // Pack sampled bits into 64-bit chunks and fold; for K <= 64 this is a
  // single mix of the exact bit pattern, so distinct patterns get distinct
  // keys up to 64-bit hash collisions.
  uint64_t acc = seed;
  uint64_t chunk = 0;
  size_t bits_in_chunk = 0;
  for (uint32_t pos : positions_) {
    chunk = (chunk << 1) | static_cast<uint64_t>(bv.Test(pos));
    if (++bits_in_chunk == 64) {
      acc = HashCombine(acc, chunk);
      chunk = 0;
      bits_in_chunk = 0;
    }
  }
  if (bits_in_chunk > 0) acc = HashCombine(acc, chunk);
  return acc;
}

Result<HammingLshFamily> HammingLshFamily::Create(size_t K, size_t L,
                                                  size_t offset,
                                                  size_t range_bits,
                                                  Rng& rng) {
  if (K == 0) return Status::InvalidArgument("K must be positive");
  if (L == 0) return Status::InvalidArgument("L must be positive");
  if (range_bits == 0) {
    return Status::InvalidArgument(
        StrFormat("empty sampling range at offset %zu", offset));
  }
  if (K > range_bits) {
    return Status::InvalidArgument(
        StrFormat("K = %zu exceeds the %zu-bit sampling range at offset %zu "
                  "(distinct positions require K <= range)",
                  K, range_bits, offset));
  }
  std::vector<HammingHashFunction> functions;
  functions.reserve(L);
  for (size_t l = 0; l < L; ++l) {
    functions.push_back(HammingHashFunction::Sample(K, offset, range_bits, rng));
  }
  return HammingLshFamily(K, std::move(functions));
}

}  // namespace cbvlink
