#include "src/lsh/hamming_lsh.h"

#include "src/common/str.h"

namespace cbvlink {

HammingHashFunction HammingHashFunction::Sample(size_t K, size_t offset,
                                                size_t range_bits, Rng& rng) {
  std::vector<uint32_t> positions;
  positions.reserve(K);
  for (size_t i = 0; i < K; ++i) {
    positions.push_back(
        static_cast<uint32_t>(offset + rng.Below(range_bits)));
  }
  return HammingHashFunction(std::move(positions));
}

uint64_t HammingHashFunction::Key(const BitVector& bv) const {
  return KeyWithSeed(bv, 0);
}

uint64_t HammingHashFunction::KeyWithSeed(const BitVector& bv,
                                          uint64_t seed) const {
  // Pack sampled bits into 64-bit chunks and fold; for K <= 64 this is a
  // single mix of the exact bit pattern, so distinct patterns get distinct
  // keys up to 64-bit hash collisions.
  uint64_t acc = seed;
  uint64_t chunk = 0;
  size_t bits_in_chunk = 0;
  for (uint32_t pos : positions_) {
    chunk = (chunk << 1) | static_cast<uint64_t>(bv.Test(pos));
    if (++bits_in_chunk == 64) {
      acc = HashCombine(acc, chunk);
      chunk = 0;
      bits_in_chunk = 0;
    }
  }
  if (bits_in_chunk > 0) acc = HashCombine(acc, chunk);
  return acc;
}

Result<HammingLshFamily> HammingLshFamily::Create(size_t K, size_t L,
                                                  size_t offset,
                                                  size_t range_bits,
                                                  Rng& rng) {
  if (K == 0) return Status::InvalidArgument("K must be positive");
  if (L == 0) return Status::InvalidArgument("L must be positive");
  if (range_bits == 0) {
    return Status::InvalidArgument(
        StrFormat("empty sampling range at offset %zu", offset));
  }
  std::vector<HammingHashFunction> functions;
  functions.reserve(L);
  for (size_t l = 0; l < L; ++l) {
    functions.push_back(HammingHashFunction::Sample(K, offset, range_bits, rng));
  }
  return HammingLshFamily(K, std::move(functions));
}

}  // namespace cbvlink
