#include "src/lsh/minhash_lsh.h"

#include <limits>

namespace cbvlink {

namespace {
/// Key reserved for the empty index set so empty values block together.
constexpr uint64_t kEmptySetKey = 0x9d5a1d1d5eedbeefULL;
}  // namespace

Result<MinHashLshFamily> MinHashLshFamily::Create(size_t K, size_t L,
                                                  uint64_t universe,
                                                  Rng& rng) {
  if (K == 0) return Status::InvalidArgument("K must be positive");
  if (L == 0) return Status::InvalidArgument("L must be positive");
  if (universe == 0) {
    return Status::InvalidArgument("index universe must be non-empty");
  }
  std::vector<PairwiseHash> hashes;
  hashes.reserve(K * L);
  // Permutation values range over the full prime field so ties (which
  // would bias the min) are vanishingly rare.
  for (size_t i = 0; i < K * L; ++i) {
    hashes.push_back(PairwiseHash::Random(rng, kHashPrime));
  }
  return MinHashLshFamily(K, L, std::move(hashes));
}

uint64_t MinHashLshFamily::BaseValue(const std::vector<uint64_t>& indexes,
                                     size_t i) const {
  uint64_t min_value = std::numeric_limits<uint64_t>::max();
  for (uint64_t x : indexes) {
    const uint64_t v = hashes_[i](x);
    if (v < min_value) min_value = v;
  }
  return min_value;
}

uint64_t MinHashLshFamily::Key(const std::vector<uint64_t>& indexes,
                               size_t l) const {
  if (indexes.empty()) return HashCombine(kEmptySetKey, l);
  uint64_t acc = Mix64(l + 1);
  for (size_t k = 0; k < K_; ++k) {
    acc = HashCombine(acc, BaseValue(indexes, l * K_ + k));
  }
  return acc;
}

std::vector<uint64_t> MinHashLshFamily::Keys(
    const std::vector<uint64_t>& indexes) const {
  std::vector<uint64_t> keys;
  keys.reserve(L_);
  for (size_t l = 0; l < L_; ++l) keys.push_back(Key(indexes, l));
  return keys;
}

}  // namespace cbvlink
