// p-stable Euclidean LSH (Datar, Immorlica, Indyk & Mirrokni, SCG 2004) —
// the blocking mechanism of the SM-EB baseline (Section 6.1).
//
// A base function projects a point onto a random Gaussian direction,
// shifts it by a uniform offset, and quantizes into buckets of width w:
//   h(v) = floor((a . v + b) / w).
// Nearby points land in the same bucket with the probability given by
// EuclideanBaseProbability() in lsh/params.h.

#ifndef CBVLINK_LSH_EUCLIDEAN_LSH_H_
#define CBVLINK_LSH_EUCLIDEAN_LSH_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"

namespace cbvlink {

/// A family of L composite functions of K p-stable projections each, over
/// d-dimensional real vectors.
class EuclideanLshFamily {
 public:
  /// Creates the family.  Returns InvalidArgument for zero K/L/dimensions
  /// or non-positive bucket width.
  static Result<EuclideanLshFamily> Create(size_t K, size_t L,
                                           size_t dimensions, double width,
                                           Rng& rng);

  size_t K() const { return K_; }
  size_t L() const { return L_; }
  size_t dimensions() const { return dimensions_; }
  double width() const { return width_; }

  /// Blocking key of `point` under the l-th composite function.  Requires
  /// point.size() == dimensions().
  uint64_t Key(const std::vector<double>& point, size_t l) const;

 private:
  struct Projection {
    std::vector<double> direction;  // a ~ N(0,1)^d
    double shift = 0.0;             // b ~ U[0, w)
  };

  EuclideanLshFamily(size_t K, size_t L, size_t dimensions, double width,
                     std::vector<Projection> projections)
      : K_(K),
        L_(L),
        dimensions_(dimensions),
        width_(width),
        projections_(std::move(projections)) {}

  size_t K_;
  size_t L_;
  size_t dimensions_;
  double width_;
  std::vector<Projection> projections_;  // K*L projections, row-major by l
};

}  // namespace cbvlink

#endif  // CBVLINK_LSH_EUCLIDEAN_LSH_H_
