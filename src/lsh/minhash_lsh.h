// MinHash LSH over the Jaccard space — the blocking mechanism of the
// HARRA baseline (Kim & Lee, EDBT 2010; Sections 2 and 6.1).
//
// A base function applies a random permutation to the q-gram index
// universe and returns the minimum permuted value of the set; two sets
// agree on a base function with probability equal to their Jaccard
// similarity.  The paper implements the permutation by scanning a
// permuted bigram vector for the first set bit; we use the standard
// equivalent of taking the minimum under a pairwise-independent hash of
// the index set, which avoids materializing permutations of the 26^q
// universe.

#ifndef CBVLINK_LSH_MINHASH_LSH_H_
#define CBVLINK_LSH_MINHASH_LSH_H_

#include <cstdint>
#include <vector>

#include "src/common/hashing.h"
#include "src/common/random.h"
#include "src/common/status.h"

namespace cbvlink {

/// A family of L composite MinHash functions, each of K base permutations.
class MinHashLshFamily {
 public:
  /// Creates the family over index universe [0, universe).  Returns
  /// InvalidArgument for zero K, L, or universe.
  static Result<MinHashLshFamily> Create(size_t K, size_t L, uint64_t universe,
                                         Rng& rng);

  size_t K() const { return K_; }
  size_t L() const { return L_; }

  /// Blocking key of (sorted or unsorted) index set `indexes` under the
  /// l-th composite function.  The empty set gets a reserved sentinel key.
  uint64_t Key(const std::vector<uint64_t>& indexes, size_t l) const;

  /// All L keys at once; cheaper than L separate calls because the per-
  /// element hash values are shared across the composite functions of one
  /// signature computation.
  std::vector<uint64_t> Keys(const std::vector<uint64_t>& indexes) const;

 private:
  MinHashLshFamily(size_t K, size_t L, std::vector<PairwiseHash> hashes)
      : K_(K), L_(L), hashes_(std::move(hashes)) {}

  /// MinHash signature value for base function `i`.
  uint64_t BaseValue(const std::vector<uint64_t>& indexes, size_t i) const;

  size_t K_;
  size_t L_;
  std::vector<PairwiseHash> hashes_;  // K*L base permutations, row-major by l
};

}  // namespace cbvlink

#endif  // CBVLINK_LSH_MINHASH_LSH_H_
