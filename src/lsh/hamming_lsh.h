// Hamming LSH — the HB mechanism's hash family (Section 4.2).
//
// A base hash function returns the bit at a uniformly sampled position; a
// composite function h_l concatenates K base functions.  The K positions
// are sampled *without* replacement, so two vectors at Hamming distance u
// in an m-bit range collide under h_l with probability
// C(m-u, K) / C(m, K) = prod_{i=0}^{K-1} (m-u-i)/(m-i), which is at most
// the (1 - u/m)^K of Definition 3 — a repeated position would contribute
// no selectivity, quietly inflating collision rates above what the L
// calibration assumed.  The family can be restricted to a bit range of
// the record vector, which is how attribute-level h_l^(f_i) functions are
// built (Section 5.4).

#ifndef CBVLINK_LSH_HAMMING_LSH_H_
#define CBVLINK_LSH_HAMMING_LSH_H_

#include <cstdint>
#include <vector>

#include "src/common/bitvector.h"
#include "src/common/hashing.h"
#include "src/common/random.h"
#include "src/common/status.h"

namespace cbvlink {

/// One composite hash function h_l: K sampled bit positions.
class HammingHashFunction {
 public:
  /// Samples K *distinct* positions uniformly (Floyd's algorithm) from
  /// [offset, offset + range_bits).  Requires K <= range_bits; the
  /// family's Create enforces that before calling.
  static HammingHashFunction Sample(size_t K, size_t offset,
                                    size_t range_bits, Rng& rng);

  /// The blocking key: the K sampled bits packed and mixed into 64 bits.
  uint64_t Key(const BitVector& bv) const;

  /// Raw blocking key of the K bits, without final mixing; `seed` lets
  /// callers derive independent keys per table from one function.
  uint64_t KeyWithSeed(const BitVector& bv, uint64_t seed) const;

  const std::vector<uint32_t>& positions() const { return positions_; }

 private:
  explicit HammingHashFunction(std::vector<uint32_t> positions)
      : positions_(std::move(positions)) {}

  std::vector<uint32_t> positions_;
};

/// A family of L composite functions over (a range of) an m-bit space.
class HammingLshFamily {
 public:
  /// Creates L composite functions of K distinct base samples over the
  /// bit range [offset, offset + range_bits).  Returns InvalidArgument
  /// for zero K, L, or range, and for K > range_bits.
  static Result<HammingLshFamily> Create(size_t K, size_t L, size_t offset,
                                         size_t range_bits, Rng& rng);

  /// Convenience: range = the whole vector [0, num_bits).
  static Result<HammingLshFamily> CreateFull(size_t K, size_t L,
                                             size_t num_bits, Rng& rng) {
    return Create(K, L, 0, num_bits, rng);
  }

  size_t K() const { return K_; }
  size_t L() const { return functions_.size(); }

  /// Blocking key of vector `bv` under h_l.
  uint64_t Key(const BitVector& bv, size_t l) const {
    return functions_[l].Key(bv);
  }

  const HammingHashFunction& function(size_t l) const {
    return functions_[l];
  }

 private:
  HammingLshFamily(size_t K, std::vector<HammingHashFunction> functions)
      : K_(K), functions_(std::move(functions)) {}

  size_t K_;
  std::vector<HammingHashFunction> functions_;
};

}  // namespace cbvlink

#endif  // CBVLINK_LSH_HAMMING_LSH_H_
