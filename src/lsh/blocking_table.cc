#include "src/lsh/blocking_table.h"

#include <algorithm>

namespace cbvlink {

void BlockingTable::Erase(RecordId id) {
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    std::vector<RecordId>& bucket = it->second;
    bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
    if (bucket.empty()) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace cbvlink
