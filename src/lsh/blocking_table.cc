#include "src/lsh/blocking_table.h"

#include <algorithm>

namespace cbvlink {

void BlockingTable::Erase(RecordId id) {
  max_bucket_size_ = 0;
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    std::vector<RecordId>& bucket = it->second;
    const size_t before = bucket.size();
    bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
    num_entries_ -= before - bucket.size();
    if (bucket.empty()) {
      it = buckets_.erase(it);
    } else {
      if (bucket.size() > max_bucket_size_) max_bucket_size_ = bucket.size();
      ++it;
    }
  }
}

}  // namespace cbvlink
