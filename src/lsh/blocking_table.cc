#include "src/lsh/blocking_table.h"

#include <algorithm>
#include <bit>

namespace cbvlink {

std::vector<uint64_t> BlockingTable::OccupancyHistogram(size_t slots) const {
  std::vector<uint64_t> histogram(std::max<size_t>(slots, 1), 0);
  for (const auto& [key, bucket] : buckets_) {
    if (bucket.empty()) continue;
    const size_t slot = std::min(
        histogram.size() - 1,
        static_cast<size_t>(std::bit_width(bucket.size()) - 1));
    ++histogram[slot];
  }
  return histogram;
}

void BlockingTable::Erase(RecordId id) {
  max_bucket_size_ = 0;
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    std::vector<RecordId>& bucket = it->second;
    const size_t before = bucket.size();
    bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
    num_entries_ -= before - bucket.size();
    if (bucket.empty()) {
      it = buckets_.erase(it);
    } else {
      if (bucket.size() > max_bucket_size_) max_bucket_size_ = bucket.size();
      ++it;
    }
  }
}

}  // namespace cbvlink
