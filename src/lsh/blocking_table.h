// The blocking hash table T_l (Section 4.2).
//
// A BlockingTable maps 64-bit composite blocking keys to buckets of record
// identifiers.  Per footnote 2 of the paper, only Ids are stored — the
// vectors themselves live with their owner.  The table also exposes bucket
// statistics, which the evaluation uses to diagnose the "few overpopulated
// buckets" failure mode of sparse q-gram vectors (Section 5.2).

#ifndef CBVLINK_LSH_BLOCKING_TABLE_H_
#define CBVLINK_LSH_BLOCKING_TABLE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/record.h"

namespace cbvlink {

/// One blocking group's hash table: key -> bucket of Ids.
class BlockingTable {
 public:
  BlockingTable() = default;

  /// Appends `id` to the bucket for `key`.
  void Insert(uint64_t key, RecordId id) { buckets_[key].push_back(id); }

  /// The bucket for `key`; empty when no record hashed there.
  std::span<const RecordId> Get(uint64_t key) const {
    const auto it = buckets_.find(key);
    if (it == buckets_.end()) return {};
    return it->second;
  }

  /// Number of non-empty buckets.
  size_t NumBuckets() const { return buckets_.size(); }

  /// Total stored Ids across buckets.
  size_t NumEntries() const {
    size_t total = 0;
    for (const auto& [key, bucket] : buckets_) total += bucket.size();
    return total;
  }

  /// Size of the largest bucket (0 for an empty table).
  size_t MaxBucketSize() const {
    size_t best = 0;
    for (const auto& [key, bucket] : buckets_) {
      if (bucket.size() > best) best = bucket.size();
    }
    return best;
  }

  /// Removes every bucket.
  void Clear() { buckets_.clear(); }

  /// Removes `id` from every bucket it appears in (linear scan; used by
  /// HARRA's iterative early-pruning, which operates one table at a time).
  void Erase(RecordId id);

  /// Iteration over buckets (key, ids).
  const std::unordered_map<uint64_t, std::vector<RecordId>>& buckets() const {
    return buckets_;
  }

 private:
  std::unordered_map<uint64_t, std::vector<RecordId>> buckets_;
};

}  // namespace cbvlink

#endif  // CBVLINK_LSH_BLOCKING_TABLE_H_
