// The blocking hash table T_l (Section 4.2).
//
// A BlockingTable maps 64-bit composite blocking keys to buckets of record
// identifiers.  Per footnote 2 of the paper, only Ids are stored — the
// vectors themselves live with their owner.  The table also exposes bucket
// statistics, which the evaluation uses to diagnose the "few overpopulated
// buckets" failure mode of sparse q-gram vectors (Section 5.2).

#ifndef CBVLINK_LSH_BLOCKING_TABLE_H_
#define CBVLINK_LSH_BLOCKING_TABLE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/record.h"

namespace cbvlink {

/// One blocking group's hash table: key -> bucket of Ids.
class BlockingTable {
 public:
  BlockingTable() = default;

  /// Appends `id` to the bucket for `key`.
  void Insert(uint64_t key, RecordId id) {
    std::vector<RecordId>& bucket = buckets_[key];
    bucket.push_back(id);
    ++num_entries_;
    if (bucket.size() > max_bucket_size_) max_bucket_size_ = bucket.size();
  }

  /// Bulk merge primitive for the two-phase parallel index build:
  /// inserts ids[i] under keys[i * key_stride] for i in [0, ids.size()),
  /// identical to that sequence of Insert() calls (same per-bucket id
  /// order, same counters).  The strided layout lets callers that
  /// compute an L-wide key matrix in parallel (keys[i * L + l]) merge
  /// table l's column — base pointer keys + l, stride L — without
  /// copying.
  void BulkInsert(const uint64_t* keys, size_t key_stride,
                  std::span<const RecordId> ids) {
    for (size_t i = 0; i < ids.size(); ++i) {
      Insert(keys[i * key_stride], ids[i]);
    }
  }

  /// The bucket for `key`; empty when no record hashed there.
  std::span<const RecordId> Get(uint64_t key) const {
    const auto it = buckets_.find(key);
    if (it == buckets_.end()) return {};
    return it->second;
  }

  /// Number of non-empty buckets.
  size_t NumBuckets() const { return buckets_.size(); }

  /// Total stored Ids across buckets.  O(1): maintained incrementally by
  /// Insert/Erase, so per-record diagnostics stay cheap on hot paths.
  size_t NumEntries() const { return num_entries_; }

  /// Size of the largest bucket (0 for an empty table).  O(1); Erase()
  /// recomputes it since a removal can shrink the maximum.
  size_t MaxBucketSize() const { return max_bucket_size_; }

  /// Mean entries per non-empty bucket (0 for an empty table).  The
  /// Eq. 2 health signal: under the paper's model each table should
  /// spread records near-uniformly, so a mean far below the max flags
  /// the Section 5.2 "few overpopulated buckets" skew.
  double MeanBucketSize() const {
    return buckets_.empty()
               ? 0
               : static_cast<double>(num_entries_) /
                     static_cast<double>(buckets_.size());
  }

  /// Log2 bucket-occupancy histogram: slot i counts buckets whose size
  /// s satisfies 2^i <= s < 2^(i+1) (slot 0 holds size-1 buckets; the
  /// last slot also absorbs anything larger).  This is the distribution
  /// blocking-method comparisons report, exported per table by the
  /// telemetry layer.
  std::vector<uint64_t> OccupancyHistogram(size_t slots = 16) const;

  /// Removes every bucket.
  void Clear() {
    buckets_.clear();
    num_entries_ = 0;
    max_bucket_size_ = 0;
  }

  /// Removes `id` from every bucket it appears in (linear scan; used by
  /// HARRA's iterative early-pruning, which operates one table at a time).
  void Erase(RecordId id);

  /// Iteration over buckets (key, ids).
  const std::unordered_map<uint64_t, std::vector<RecordId>>& buckets() const {
    return buckets_;
  }

 private:
  std::unordered_map<uint64_t, std::vector<RecordId>> buckets_;
  size_t num_entries_ = 0;
  size_t max_bucket_size_ = 0;
};

}  // namespace cbvlink

#endif  // CBVLINK_LSH_BLOCKING_TABLE_H_
