// Append-only mutation journal: the durability layer between snapshots.
//
// Snapshots (src/io/serialization.h) make restarts warm but are periodic;
// every mutation acknowledged after the last snapshot would be lost on a
// crash.  The journal closes that gap: each successful
// Insert/Delete/Update (and the batch forms) is appended as one
// CRC32C-framed entry and fsynced per policy *before* the caller's
// acknowledgement, so startup recovery = snapshot restore + journal tail
// replay, and a warm standby can follow a primary by tailing the same
// byte stream over the network (src/net/replication.h).
//
// File layout (little-endian):
//   u32 magic 'CBVJ'   u32 version (1)   u64 epoch
//   repeated frames: u32 payload_len  u32 crc32c(payload)  payload
//   insert payload: u8 op (1)  WireEncodeRecord bytes
//   delete payload: u8 op (2)  u64 sequence  u64 record id
//   update payload: u8 op (3)  u64 sequence  WireEncodeRecord bytes
//
// The version stays 1: insert frames are byte-identical to the original
// format, so pre-mutation journals replay unchanged.  Delete/update
// frames carry the service's acknowledgement sequence; replay and
// replication skip any whose sequence the restored snapshot already
// covers (dedupe by id + sequence — see src/common/mutation.h).
// Binaries that predate the mutation ops treat a delete/update frame as
// a corrupt tail and stop there, which is the safe direction.
//
// Torn-tail contract: an append is not atomic on disk, so a crash can
// leave a partial frame at the end.  Every reader (Open's end scan,
// ReplayJournal, JournalFrameDecoder) stops at the first frame whose
// length field or CRC does not check out; everything before it is valid
// by construction.  Open() truncates the torn tail so new appends never
// land after garbage.
//
// Epoch + prefix drop: when a snapshot save commits, the frames it
// covers are dropped (DropCommitted) by atomically rewriting the journal
// with epoch+1 and only the uncovered tail.  Replication clients carry
// (epoch, offset) cursors; an epoch mismatch tells a follower its cursor
// predates a rotation and it must re-sync from a snapshot.
//
// Failpoints: journal.append (error, short_write — a simulated
// kill-during-append), journal.fsync (error), journal.rotate (error).

#ifndef CBVLINK_IO_JOURNAL_H_
#define CBVLINK_IO_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/common/mutation.h"
#include "src/common/record.h"
#include "src/common/status.h"

namespace cbvlink {

/// Journal entry operation tags (the u8 leading each frame payload).
/// Values mirror MutationKind (src/common/mutation.h) byte for byte.
enum class JournalOp : uint8_t {
  kInsert = 1,
  kDelete = 2,
  kUpdate = 3,
};

static_assert(
    static_cast<uint8_t>(JournalOp::kInsert) ==
            static_cast<uint8_t>(MutationKind::kInsert) &&
        static_cast<uint8_t>(JournalOp::kDelete) ==
            static_cast<uint8_t>(MutationKind::kDelete) &&
        static_cast<uint8_t>(JournalOp::kUpdate) ==
            static_cast<uint8_t>(MutationKind::kUpdate),
    "journal op bytes must match MutationKind");

/// Bytes before the first frame (magic + version + epoch).
inline constexpr uint64_t kJournalHeaderSize = 16;

/// Hard cap on one frame's payload length — bounds the allocation a
/// corrupt length field can demand, like the snapshot readers' caps.
inline constexpr uint32_t kMaxJournalPayload = 16u << 20;

struct JournalOptions {
  /// fsync cadence: 1 = every append (full durability, the default),
  /// N > 1 = every N-th append, 0 = never (leave it to the OS; a crash
  /// may lose the un-synced suffix, which replay then cleanly drops).
  size_t fsync_every = 1;
};

/// Incremental frame decoder: feed raw journal bytes (file tail, network
/// segment), pop decoded mutations.  Stops permanently at the first
/// corrupt frame; a partial frame at the end of the fed bytes is simply
/// "need more".  `consumed_bytes` counts only fully validated frames, so
/// it is always a frame boundary — the resume offset for a follower.
class JournalFrameDecoder {
 public:
  enum class Next {
    kRecord,    ///< one mutation decoded
    kNeedMore,  ///< buffered bytes end mid-frame; feed more
    kCorrupt,   ///< invalid frame; error() has details, decoder is dead
  };

  /// Appends bytes to the internal buffer.
  void Feed(std::string_view bytes);

  /// Attempts to decode the next frame into `*op` (kind, record, and —
  /// for delete/update frames — the acknowledgement sequence).
  Next Pop(MutationOp* op);

  /// Record-only convenience used by callers that predate delete/update
  /// (Open's end scan keeps using it; the op kind is discarded).
  Next Pop(Record* record, JournalOp* op = nullptr);

  /// Total bytes of fully validated frames consumed so far.
  uint64_t consumed_bytes() const { return consumed_; }

  /// Why the decoder declared corruption (OK until then).
  const Status& error() const { return error_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;
  uint64_t consumed_ = 0;
  Status error_;
};

/// The primary-side journal writer.  All methods are thread-safe; the
/// append order under concurrent writers is the journal's serialization
/// order (see DESIGN.md §11 for the consistency caveats this shares with
/// the service's per-shard atomicity).
class Journal {
 public:
  /// Opens (or creates) the journal at `path`.  An existing file is
  /// validated (magic/version) and scanned: a torn tail is truncated so
  /// the next append lands on the last valid frame boundary.  Returns
  /// InvalidArgument for a foreign or corrupt header.
  static Result<std::unique_ptr<Journal>> Open(const std::string& path,
                                               JournalOptions options = {});

  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one mutation frame and applies the fsync policy.  On any
  /// error the in-memory end offset is left at the last durable frame
  /// boundary and the file is truncated back to it (best-effort), so a
  /// failed append never poisons the tail for later ones.
  Status Append(const MutationOp& op);

  /// Insert convenience: semantically Append(MutationOp::Insert(record))
  /// without materialising the op (the insert hot path stays copy-free).
  Status AppendInsert(const Record& record);

  /// Forces an fsync now (e.g. before acknowledging a batch when
  /// fsync_every > 1).
  Status Sync();

  /// Drops every frame below `through_offset` (a frame boundary captured
  /// via EndOffset() before a snapshot export began): the journal is
  /// atomically rewritten with epoch+1 carrying only [through_offset,
  /// end).  Frames kept may still duplicate snapshot contents; replay
  /// dedupes by record id.
  Status DropCommitted(uint64_t through_offset);

  /// Reads up to `max_bytes` raw journal bytes starting at
  /// `from_offset` (clamped to the header boundary), for replication.
  /// Returns the current epoch and end offset alongside, so a follower
  /// can detect rotations and measure its lag.
  Status ReadSegment(uint64_t from_offset, size_t max_bytes, std::string* out,
                     uint64_t* end_offset, uint64_t* epoch) const;

  /// Current append offset (a frame boundary; kJournalHeaderSize when
  /// empty).
  uint64_t EndOffset() const;

  /// Rotation generation (bumped by DropCommitted).
  uint64_t epoch() const;

  /// Frames appended through this handle (not counting pre-existing ones).
  uint64_t appended_frames() const;

  const std::string& path() const { return path_; }
  const JournalOptions& options() const { return options_; }

 private:
  Journal(std::string path, int fd, uint64_t end, uint64_t epoch,
          JournalOptions options);

  /// Shared frame encoder + append behind Append/AppendInsert.  Only
  /// `record.id` is consulted for kDelete.
  Status AppendImpl(JournalOp op, uint64_t sequence, const Record& record);

  Status SyncLocked();

  std::string path_;
  JournalOptions options_;
  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t end_ = kJournalHeaderSize;
  uint64_t epoch_ = 0;
  uint64_t appended_ = 0;
  size_t unsynced_appends_ = 0;
};

/// Outcome of a journal replay.
struct JournalReplayStats {
  /// True when the journal file existed (false = nothing to replay).
  bool existed = false;
  /// Fully validated frames decoded.
  uint64_t frames = 0;
  /// Frames actually applied.  ReplayJournal sets this equal to
  /// `frames`; callers that dedupe (LinkageService::ReplayJournalFile
  /// skips inserts the snapshot already covers and delete/update frames
  /// at or below its sequence floor) overwrite it with their own count.
  uint64_t applied = 0;
  /// Byte offset of the last valid frame boundary.
  uint64_t valid_bytes = 0;
  /// True when bytes past valid_bytes were dropped (torn or corrupt tail).
  bool tail_truncated = false;
  /// The journal's epoch.
  uint64_t epoch = 0;
};

/// Replays the journal at `path`: decodes frames in order and invokes
/// `apply` for each mutation, stopping cleanly at the first invalid
/// frame (stats.tail_truncated notes the drop).  A missing file is not
/// an error — stats.existed stays false.  A non-OK `apply` aborts the
/// replay with that status.
Result<JournalReplayStats> ReplayJournal(
    const std::string& path,
    const std::function<Status(const MutationOp&)>& apply);

}  // namespace cbvlink

#endif  // CBVLINK_IO_JOURNAL_H_
