#include "src/io/csv_reader.h"

#include <algorithm>
#include <fstream>

#include "src/common/str.h"

namespace cbvlink {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');  // escaped quote
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      if (!current.empty()) {
        return Status::InvalidArgument(
            StrFormat("unexpected quote mid-field at position %zu", i));
      }
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<CsvDataset> ReadCsvDataset(const std::string& path,
                                  const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open CSV file: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("CSV file is empty: " + path);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  Result<std::vector<std::string>> header = ParseCsvLine(line);
  if (!header.ok()) return header.status();

  // Resolve the id column and the attribute columns.
  const auto find_column = [&](const std::string& name) -> int {
    const auto it =
        std::find(header.value().begin(), header.value().end(), name);
    return it == header.value().end()
               ? -1
               : static_cast<int>(it - header.value().begin());
  };

  const int id_index = find_column(options.id_column);

  CsvDataset dataset;
  std::vector<int> attr_indexes;
  if (options.attribute_columns.empty()) {
    for (size_t c = 0; c < header.value().size(); ++c) {
      if (static_cast<int>(c) == id_index) continue;
      attr_indexes.push_back(static_cast<int>(c));
      dataset.attribute_names.push_back(header.value()[c]);
    }
  } else {
    for (const std::string& name : options.attribute_columns) {
      const int idx = find_column(name);
      if (idx < 0) {
        return Status::InvalidArgument("column not found: " + name);
      }
      attr_indexes.push_back(idx);
      dataset.attribute_names.push_back(name);
    }
  }
  if (attr_indexes.empty()) {
    return Status::InvalidArgument("no attribute columns selected");
  }

  RecordId auto_id = options.first_auto_id;
  size_t line_no = 1;
  // Degrades a malformed data row to a skip count in lenient mode;
  // returns true when the caller should fail the read.
  constexpr size_t kMaxSkipErrors = 10;
  const auto row_error = [&](Status* out, Status bad) {
    if (!options.skip_malformed_rows) {
      *out = std::move(bad);
      return true;
    }
    ++dataset.skipped_rows;
    if (dataset.skip_errors.size() < kMaxSkipErrors) {
      dataset.skip_errors.push_back(std::string(bad.message()));
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    Status bad;
    Result<std::vector<std::string>> fields = ParseCsvLine(line);
    if (!fields.ok()) {
      if (row_error(&bad,
                    Status::InvalidArgument(StrFormat(
                        "line %zu: %s", line_no,
                        std::string(fields.status().message()).c_str())))) {
        return bad;
      }
      continue;
    }
    if (fields.value().size() != header.value().size()) {
      if (row_error(&bad, Status::InvalidArgument(StrFormat(
                              "line %zu: %zu fields, header has %zu", line_no,
                              fields.value().size(),
                              header.value().size())))) {
        return bad;
      }
      continue;
    }
    Record record;
    if (id_index >= 0) {
      const std::string& raw = fields.value()[static_cast<size_t>(id_index)];
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(raw.c_str(), &end, 10);
      if (end == raw.c_str() || *end != '\0') {
        if (row_error(&bad, Status::InvalidArgument(
                                StrFormat("line %zu: unparsable id '%s'",
                                          line_no, raw.c_str())))) {
          return bad;
        }
        continue;
      }
      record.id = static_cast<RecordId>(parsed);
    } else {
      record.id = auto_id++;
    }
    record.fields.reserve(attr_indexes.size());
    for (int idx : attr_indexes) {
      record.fields.push_back(fields.value()[static_cast<size_t>(idx)]);
    }
    dataset.records.push_back(std::move(record));
  }
  return dataset;
}

}  // namespace cbvlink
