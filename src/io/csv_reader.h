// CSV record loading: the input format of the command-line linker and
// the natural way for downstream users to feed their own data sets.
//
// Format: RFC-4180-style CSV with a header row.  One column is the record
// identifier (default "id"; when absent, row numbers are used); every
// other selected column becomes a linkage attribute in header order.

#ifndef CBVLINK_IO_CSV_READER_H_
#define CBVLINK_IO_CSV_READER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/record.h"
#include "src/common/status.h"

namespace cbvlink {

/// Splits one CSV line honoring double-quote escaping.  Exposed for
/// testing and reuse.
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

/// A loaded data set: attribute names plus records.
struct CsvDataset {
  std::vector<std::string> attribute_names;
  std::vector<Record> records;
  /// Malformed data rows dropped under skip_malformed_rows.
  uint64_t skipped_rows = 0;
  /// Reasons for the first skipped rows ("line 7: ..."), for reporting.
  std::vector<std::string> skip_errors;
};

/// Options for ReadCsvDataset.
struct CsvReadOptions {
  /// Name of the id column; when the header lacks it, sequential row
  /// numbers starting at `first_auto_id` are assigned.
  std::string id_column = "id";
  RecordId first_auto_id = 0;
  /// Columns to use as attributes, in this order.  Empty = every
  /// non-id column in header order.
  std::vector<std::string> attribute_columns;
  /// When true, a malformed data row (bad quoting, wrong field count,
  /// unparsable id) is skipped and counted in CsvDataset::skipped_rows
  /// instead of failing the whole read.  Header errors stay fatal.
  bool skip_malformed_rows = false;
};

/// Reads a CSV file into records.  Returns IOError when the file cannot
/// be opened, InvalidArgument on malformed rows (wrong field count,
/// unparsable id, duplicate or missing requested columns) unless
/// skip_malformed_rows degrades those to skip counts.
Result<CsvDataset> ReadCsvDataset(const std::string& path,
                                  const CsvReadOptions& options = {});

}  // namespace cbvlink

#endif  // CBVLINK_IO_CSV_READER_H_
