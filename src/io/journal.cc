#include "src/io/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "src/common/crc32.h"
#include "src/common/failpoint.h"
#include "src/common/str.h"
#include "src/io/serialization.h"
#include "src/telemetry/metrics.h"

namespace cbvlink {

namespace {

// Process-wide journal counters (the registry outlives every journal,
// and ResetForTest zeroes in place, so the statics stay valid).
telemetry::Counter* AppendsCounter() {
  static telemetry::Counter* c =
      telemetry::Registry::Global().GetCounter("journal_appends_total");
  return c;
}
telemetry::Counter* AppendBytesCounter() {
  static telemetry::Counter* c =
      telemetry::Registry::Global().GetCounter("journal_append_bytes_total");
  return c;
}
telemetry::Counter* FsyncsCounter() {
  static telemetry::Counter* c =
      telemetry::Registry::Global().GetCounter("journal_fsyncs_total");
  return c;
}
telemetry::Counter* RotationsCounter() {
  static telemetry::Counter* c =
      telemetry::Registry::Global().GetCounter("journal_rotations_total");
  return c;
}

constexpr uint32_t kJournalMagic = 0x4a564243;  // "CBVJ" little-endian
constexpr uint32_t kJournalVersion = 1;
// Smallest legal payload: op byte + a zero-field record (8 + 4 bytes).
constexpr uint32_t kMinJournalPayload = 13;

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(static_cast<unsigned char>(v >> (8 * i))));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(static_cast<unsigned char>(v >> (8 * i))));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::string EncodeHeader(uint64_t epoch) {
  std::string header;
  PutU32(kJournalMagic, &header);
  PutU32(kJournalVersion, &header);
  PutU64(epoch, &header);
  return header;
}

/// Parses a 16-byte journal header; InvalidArgument on a foreign one.
Status DecodeHeader(const char* bytes, uint64_t* epoch) {
  if (GetU32(bytes) != kJournalMagic) {
    return Status::InvalidArgument("not a journal file (bad magic)");
  }
  const uint32_t version = GetU32(bytes + 4);
  if (version != kJournalVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported journal version %u", version));
  }
  *epoch = GetU64(bytes + 8);
  return Status::OK();
}

Status WriteAll(int fd, const char* p, size_t n, uint64_t offset,
                const std::string& path) {
  while (n > 0) {
    const ssize_t written = ::pwrite(fd, p, n, static_cast<off_t>(offset));
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("pwrite %s: %s", path.c_str(), std::strerror(errno)));
    }
    p += written;
    n -= static_cast<size_t>(written);
    offset += static_cast<uint64_t>(written);
  }
  return Status::OK();
}

}  // namespace

void JournalFrameDecoder::Feed(std::string_view bytes) {
  // Compact the consumed prefix before it grows unbounded on long tails.
  if (pos_ > (1u << 20) && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

JournalFrameDecoder::Next JournalFrameDecoder::Pop(MutationOp* op) {
  if (!error_.ok()) return Next::kCorrupt;
  if (buffer_.size() - pos_ < 8) return Next::kNeedMore;
  const uint32_t payload_len = GetU32(buffer_.data() + pos_);
  const uint32_t expected_crc = GetU32(buffer_.data() + pos_ + 4);
  if (payload_len < kMinJournalPayload || payload_len > kMaxJournalPayload) {
    error_ = Status::InvalidArgument(
        StrFormat("journal frame length %u outside [%u, %u]", payload_len,
                  kMinJournalPayload, kMaxJournalPayload));
    return Next::kCorrupt;
  }
  if (buffer_.size() - pos_ < 8 + static_cast<size_t>(payload_len)) {
    return Next::kNeedMore;
  }
  const char* payload = buffer_.data() + pos_ + 8;
  if (Crc32c(payload, payload_len) != expected_crc) {
    error_ = Status::InvalidArgument("journal frame CRC mismatch");
    return Next::kCorrupt;
  }
  const uint8_t op_byte = static_cast<uint8_t>(payload[0]);
  op->sequence = 0;
  op->record.id = 0;
  op->record.fields.clear();
  const char* body = payload + 1;
  size_t body_len = payload_len - 1;
  switch (op_byte) {
    case static_cast<uint8_t>(JournalOp::kInsert):
      op->kind = MutationKind::kInsert;
      break;
    case static_cast<uint8_t>(JournalOp::kDelete): {
      // Delete frames are fixed-size: u64 sequence + u64 record id.
      op->kind = MutationKind::kDelete;
      if (body_len != 16) {
        error_ = Status::InvalidArgument(
            StrFormat("journal delete frame body is %zu bytes, want 16",
                      body_len));
        return Next::kCorrupt;
      }
      op->sequence = GetU64(body);
      op->record.id = GetU64(body + 8);
      pos_ += 8 + payload_len;
      consumed_ += 8 + payload_len;
      return Next::kRecord;
    }
    case static_cast<uint8_t>(JournalOp::kUpdate): {
      op->kind = MutationKind::kUpdate;
      if (body_len < 8) {
        error_ = Status::InvalidArgument(
            "journal update frame truncated before its sequence");
        return Next::kCorrupt;
      }
      op->sequence = GetU64(body);
      body += 8;
      body_len -= 8;
      break;
    }
    default:
      error_ = Status::InvalidArgument(
          StrFormat("unknown journal op %u", op_byte));
      return Next::kCorrupt;
  }
  size_t consumed = 0;
  const Status decoded = WireDecodeRecord(std::string_view(body, body_len),
                                          &op->record, &consumed);
  if (!decoded.ok() || consumed != body_len) {
    error_ = decoded.ok() ? Status::InvalidArgument(
                                "journal frame has trailing payload bytes")
                          : decoded;
    return Next::kCorrupt;
  }
  pos_ += 8 + payload_len;
  consumed_ += 8 + payload_len;
  return Next::kRecord;
}

JournalFrameDecoder::Next JournalFrameDecoder::Pop(Record* record,
                                                   JournalOp* op) {
  MutationOp mutation;
  const Next next = Pop(&mutation);
  if (next == Next::kRecord) {
    *record = std::move(mutation.record);
    if (op != nullptr) {
      *op = static_cast<JournalOp>(static_cast<uint8_t>(mutation.kind));
    }
  }
  return next;
}

Journal::Journal(std::string path, int fd, uint64_t end, uint64_t epoch,
                 JournalOptions options)
    : path_(std::move(path)),
      options_(options),
      fd_(fd),
      end_(end),
      epoch_(epoch) {}

Journal::~Journal() {
  if (fd_ >= 0) {
    (void)::fsync(fd_);
    ::close(fd_);
  }
}

Result<std::unique_ptr<Journal>> Journal::Open(const std::string& path,
                                               JournalOptions options) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status err = Status::IOError(
        StrFormat("fstat %s: %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return err;
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  uint64_t epoch = 0;

  if (size == 0) {
    const std::string header = EncodeHeader(0);
    Status written = WriteAll(fd, header.data(), header.size(), 0, path);
    if (written.ok() && ::fsync(fd) != 0) {
      written = Status::IOError(
          StrFormat("fsync %s: %s", path.c_str(), std::strerror(errno)));
    }
    if (!written.ok()) {
      ::close(fd);
      return written;
    }
    size = kJournalHeaderSize;
  } else if (size < kJournalHeaderSize) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("journal %s truncated inside the header", path.c_str()));
  } else {
    char header[kJournalHeaderSize];
    const ssize_t n = ::pread(fd, header, sizeof(header), 0);
    if (n != static_cast<ssize_t>(sizeof(header))) {
      ::close(fd);
      return Status::IOError(StrFormat("read %s header", path.c_str()));
    }
    const Status decoded = DecodeHeader(header, &epoch);
    if (!decoded.ok()) {
      ::close(fd);
      return decoded;
    }
  }

  // Scan forward to the last valid frame boundary, then drop the torn or
  // corrupt tail so new appends extend a clean prefix.
  JournalFrameDecoder decoder;
  uint64_t offset = kJournalHeaderSize;
  char chunk[1 << 16];
  Record scratch;
  bool scanning = true;
  while (scanning && offset < size) {
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(sizeof(chunk), size - offset));
    const ssize_t n = ::pread(fd, chunk, want, static_cast<off_t>(offset));
    if (n <= 0) {
      ::close(fd);
      return Status::IOError(
          StrFormat("read %s: %s", path.c_str(), std::strerror(errno)));
    }
    offset += static_cast<uint64_t>(n);
    decoder.Feed(std::string_view(chunk, static_cast<size_t>(n)));
    for (;;) {
      const JournalFrameDecoder::Next next = decoder.Pop(&scratch);
      if (next == JournalFrameDecoder::Next::kRecord) continue;
      if (next == JournalFrameDecoder::Next::kCorrupt) scanning = false;
      break;
    }
  }
  const uint64_t valid_end = kJournalHeaderSize + decoder.consumed_bytes();
  if (valid_end < size && ::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
    const Status err = Status::IOError(
        StrFormat("ftruncate %s: %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return err;
  }

  return std::unique_ptr<Journal>(
      new Journal(path, fd, valid_end, epoch, options));
}

Status Journal::Append(const MutationOp& op) {
  return AppendImpl(static_cast<JournalOp>(static_cast<uint8_t>(op.kind)),
                    op.sequence, op.record);
}

Status Journal::AppendInsert(const Record& record) {
  return AppendImpl(JournalOp::kInsert, 0, record);
}

Status Journal::AppendImpl(JournalOp op, uint64_t sequence,
                           const Record& record) {
  std::string payload;
  payload.push_back(static_cast<char>(static_cast<uint8_t>(op)));
  switch (op) {
    case JournalOp::kInsert:
      // The original frame format, byte for byte — pre-mutation journals
      // and binaries stay interchangeable for inserts.
      WireEncodeRecord(record, &payload);
      break;
    case JournalOp::kDelete:
      PutU64(sequence, &payload);
      PutU64(record.id, &payload);
      break;
    case JournalOp::kUpdate:
      PutU64(sequence, &payload);
      WireEncodeRecord(record, &payload);
      break;
  }
  if (payload.size() > kMaxJournalPayload) {
    return Status::InvalidArgument("journal record exceeds payload cap");
  }
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32(static_cast<uint32_t>(payload.size()), &frame);
  PutU32(Crc32c(payload.data(), payload.size()), &frame);
  frame += payload;

  std::scoped_lock lock(mu_);
  size_t limit = frame.size();
  if (Failpoints::AnyActive()) {
    const FailpointHit hit = Failpoints::Eval("journal.append");
    if (hit.action == FailpointAction::kError) {
      return Status::IOError("failpoint 'journal.append' injected failure");
    }
    if (hit.action == FailpointAction::kShortWrite) {
      limit = std::min<size_t>(limit, static_cast<size_t>(hit.param));
    }
  }
  CBVLINK_RETURN_NOT_OK(WriteAll(fd_, frame.data(), limit, end_, path_));
  if (limit != frame.size()) {
    // Simulated kill-during-append: the torn bytes stay on disk (as a
    // real crash would leave them) and the in-memory end offset stays at
    // the last valid boundary — the handle should be abandoned, and the
    // next Open() will truncate the torn tail.
    (void)::fsync(fd_);
    return Status::IOError("failpoint 'journal.append' injected short write");
  }
  end_ += frame.size();
  ++appended_;
  ++unsynced_appends_;
  AppendsCounter()->Add(1);
  AppendBytesCounter()->Add(frame.size());
  if (options_.fsync_every > 0 && unsynced_appends_ >= options_.fsync_every) {
    CBVLINK_RETURN_NOT_OK(SyncLocked());
  }
  return Status::OK();
}

Status Journal::Sync() {
  std::scoped_lock lock(mu_);
  return SyncLocked();
}

Status Journal::SyncLocked() {
  if (unsynced_appends_ == 0) return Status::OK();
  CBVLINK_FAILPOINT("journal.fsync");
  if (::fsync(fd_) != 0) {
    return Status::IOError(
        StrFormat("fsync %s: %s", path_.c_str(), std::strerror(errno)));
  }
  unsynced_appends_ = 0;
  FsyncsCounter()->Add(1);
  return Status::OK();
}

Status Journal::DropCommitted(uint64_t through_offset) {
  std::scoped_lock lock(mu_);
  if (through_offset < kJournalHeaderSize) through_offset = kJournalHeaderSize;
  if (through_offset > end_) {
    return Status::InvalidArgument(
        StrFormat("DropCommitted offset %llu past journal end %llu",
                  static_cast<unsigned long long>(through_offset),
                  static_cast<unsigned long long>(end_)));
  }
  CBVLINK_FAILPOINT("journal.rotate");

  // Rewrite as header(epoch+1) + uncovered tail, committed by rename —
  // a crash mid-rotate leaves the previous journal intact (replaying it
  // onto the new snapshot is safe: replay dedupes by record id).
  std::string next = EncodeHeader(epoch_ + 1);
  if (through_offset < end_) {
    const size_t tail_len = static_cast<size_t>(end_ - through_offset);
    const size_t header_len = next.size();
    next.resize(header_len + tail_len);
    char* dst = next.data() + header_len;
    size_t got = 0;
    while (got < tail_len) {
      const ssize_t n =
          ::pread(fd_, dst + got, tail_len - got,
                  static_cast<off_t>(through_offset + got));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        return Status::IOError(
            StrFormat("read %s tail: %s", path_.c_str(),
                      std::strerror(errno)));
      }
      got += static_cast<size_t>(n);
    }
  }

  const std::string tmp = AtomicTempPath(path_);
  // O_RDWR, not O_WRONLY: this fd becomes fd_ after the rename, and
  // ReadSegment / the next rotation's tail copy pread it.
  const int tmp_fd =
      ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) {
    return Status::IOError(
        StrFormat("open %s: %s", tmp.c_str(), std::strerror(errno)));
  }
  Status written = WriteAll(tmp_fd, next.data(), next.size(), 0, tmp);
  if (written.ok() && ::fsync(tmp_fd) != 0) {
    written = Status::IOError(
        StrFormat("fsync %s: %s", tmp.c_str(), std::strerror(errno)));
  }
  if (!written.ok()) {
    ::close(tmp_fd);
    return written;
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    const Status err = Status::IOError(StrFormat(
        "rename %s -> %s: %s", tmp.c_str(), path_.c_str(),
        std::strerror(errno)));
    ::close(tmp_fd);
    return err;
  }
  ::close(fd_);
  fd_ = tmp_fd;  // the renamed inode is the one tmp_fd already points at
  end_ = next.size();
  epoch_ += 1;
  unsynced_appends_ = 0;
  RotationsCounter()->Add(1);
  return Status::OK();
}

Status Journal::ReadSegment(uint64_t from_offset, size_t max_bytes,
                            std::string* out, uint64_t* end_offset,
                            uint64_t* epoch) const {
  std::scoped_lock lock(mu_);
  *end_offset = end_;
  *epoch = epoch_;
  out->clear();
  if (from_offset < kJournalHeaderSize) from_offset = kJournalHeaderSize;
  if (from_offset >= end_) return Status::OK();
  const size_t want =
      static_cast<size_t>(std::min<uint64_t>(max_bytes, end_ - from_offset));
  out->resize(want);
  size_t got = 0;
  while (got < want) {
    const ssize_t n = ::pread(fd_, out->data() + got, want - got,
                              static_cast<off_t>(from_offset + got));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      out->clear();
      return Status::IOError(
          StrFormat("read %s: %s", path_.c_str(), std::strerror(errno)));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

uint64_t Journal::EndOffset() const {
  std::scoped_lock lock(mu_);
  return end_;
}

uint64_t Journal::epoch() const {
  std::scoped_lock lock(mu_);
  return epoch_;
}

uint64_t Journal::appended_frames() const {
  std::scoped_lock lock(mu_);
  return appended_;
}

Result<JournalReplayStats> ReplayJournal(
    const std::string& path,
    const std::function<Status(const MutationOp&)>& apply) {
  JournalReplayStats stats;
  std::ifstream in(path, std::ios::binary);
  if (!in) return stats;  // nothing to replay
  stats.existed = true;

  char header[kJournalHeaderSize];
  in.read(header, sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    return Status::InvalidArgument(
        StrFormat("journal %s truncated inside the header", path.c_str()));
  }
  CBVLINK_RETURN_NOT_OK(DecodeHeader(header, &stats.epoch));

  JournalFrameDecoder decoder;
  MutationOp op;
  char chunk[1 << 16];
  bool more_input = true;
  while (more_input) {
    in.read(chunk, sizeof(chunk));
    const std::streamsize n = in.gcount();
    if (n <= 0) break;
    more_input = n == static_cast<std::streamsize>(sizeof(chunk));
    decoder.Feed(std::string_view(chunk, static_cast<size_t>(n)));
    for (;;) {
      const JournalFrameDecoder::Next next = decoder.Pop(&op);
      if (next == JournalFrameDecoder::Next::kRecord) {
        ++stats.frames;
        ++stats.applied;
        CBVLINK_RETURN_NOT_OK(apply(op));
        continue;
      }
      if (next == JournalFrameDecoder::Next::kCorrupt) {
        stats.tail_truncated = true;
        more_input = false;
      }
      break;
    }
  }
  stats.valid_bytes = kJournalHeaderSize + decoder.consumed_bytes();
  if (!stats.tail_truncated) {
    // A trailing partial frame (torn append) also counts as a truncation.
    in.clear();
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size >= 0 && static_cast<uint64_t>(size) > stats.valid_bytes) {
      stats.tail_truncated = true;
    }
  }
  return stats;
}

}  // namespace cbvlink
