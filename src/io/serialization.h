// Binary serialization of encoded record sets and service snapshots.
//
// The paper's motivation for compact embeddings is distributed settings
// where custodians ship embeddings instead of strings (Sections 1 and
// 5.2).  This module defines that wire format: a small header
// (magic, version, record-vector width, count) followed by fixed-width
// (id, bits) entries, so a 120-bit NCVR record costs 8 + 16 bytes on
// disk/wire.
//
// Layout (little-endian), format version 2:
//   u32 magic 'CBVL'   u32 version   u64 num_records   u64 bits_per_record
//   repeated: u64 id, ceil(bits/64) * u64 words
//   u32 CRC32C over every preceding byte   (top-level files only)
//
// A *service snapshot* ('CBVS') additionally persists everything a
// long-lived linkage service needs to restart warm: the encoder/linker
// configuration (schema, rule text, LSH and sizing parameters, seed —
// enough to rebuild the random components identically), the service's
// sharding options, the encoded records, and the blocking-table bucket
// contents.  Snapshot version 3 appends a mutation block — the
// delete/update sequence floor and the tombstoned record ids — so a
// restore keeps deleted records dead; versions 1 and 2 stay readable
// (no tombstones).  See ServiceSnapshot below.
//
// Durability contract (version 2):
//  * Every top-level file ends in a CRC32C trailer (src/common/crc32.h)
//    over all preceding bytes, so bit rot and torn writes are detected
//    before any content is trusted.  Readers still accept version-1
//    files (no trailer).
//  * Every length field is validated against a hard cap and, when the
//    stream is seekable, against the bytes actually remaining — a
//    corrupt count can never demand an unbounded allocation.
//  * The *ToFile writers are atomic: they write `path.tmp`, fsync,
//    hard-link the previous `path` to `path.bak` (snapshots only), and
//    rename over `path`.  A crash at any point leaves the previous good
//    file intact; `path.tmp` is never trusted by readers because the
//    rename is the commit point.
//
// Fault injection: the writers hit the failpoints `io.write_records`,
// `io.write_snapshot`, `io.atomic.open`, `io.atomic.write` (supports
// short_write), `io.atomic.fsync`, and `io.atomic.rename`
// (src/common/failpoint.h).

#ifndef CBVLINK_IO_SERIALIZATION_H_
#define CBVLINK_IO_SERIALIZATION_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/record.h"
#include "src/common/status.h"
#include "src/embedding/record_encoder.h"

namespace cbvlink {

/// Flat little-endian encoding of one raw (string-field) Record — the
/// payload format shared by journal frames (src/io/journal.h) and the
/// binary network protocol (src/net/protocol.h): u64 id, u32 num_fields,
/// then u32 length + bytes per field.  Appends to `*out`.
void WireEncodeRecord(const Record& record, std::string* out);

/// Decodes one WireEncodeRecord payload from the front of `data`.  On
/// success `*consumed` is the number of bytes read (trailing bytes are
/// left for the caller).  Returns InvalidArgument on an over-cap field
/// count/length and IOError on truncated input — the same split the
/// snapshot readers use, so framing layers can tell corruption from a
/// partial read.
Status WireDecodeRecord(std::string_view data, Record* record,
                        size_t* consumed);

/// Where an atomic *ToFile write stages its data before the commit
/// rename (`path` + ".tmp").
std::string AtomicTempPath(const std::string& path);

/// Where the atomic snapshot writer hard-links the previous good
/// snapshot (`path` + ".bak") — the fallback candidate for
/// LinkageService::RestoreFromFile when the primary is corrupt.
std::string SnapshotBackupPath(const std::string& path);

/// Writes `payload` to `path` through the atomic protocol every writer
/// in this module uses (stage in AtomicTempPath(path), fsync, rename —
/// the commit point — then fsync the directory, best-effort).  No .bak
/// is kept.  Exposed for small operational artifacts that must never be
/// read torn (telemetry dumps, bench trajectory files); hits the
/// io.atomic.* failpoints like every other writer.
Status WriteFileAtomically(const std::string& path,
                           const std::string& payload);

/// Writes encoded records (all of equal width) to a stream, ending in a
/// CRC32C trailer.  Returns InvalidArgument on width mismatches, IOError
/// on stream failure.
Status WriteEncodedRecords(const std::vector<EncodedRecord>& records,
                           std::ostream& out);

/// Writes to a file path atomically (tmp + fsync + rename).
Status WriteEncodedRecordsToFile(const std::vector<EncodedRecord>& records,
                                 const std::string& path);

/// Reads an encoded record set (version 1 or 2).  Returns
/// InvalidArgument on a corrupt or foreign header, an over-cap length
/// field, or a checksum mismatch, and IOError on truncated input.
Result<std::vector<EncodedRecord>> ReadEncodedRecords(std::istream& in);

/// Reads from a file path.
Result<std::vector<EncodedRecord>> ReadEncodedRecordsFromFile(
    const std::string& path);

/// One linkage attribute of a persisted schema.  The alphabet is stored by
/// value (its ordered symbol string) so a restore does not depend on the
/// process that wrote the snapshot.
struct SnapshotAttribute {
  std::string name;
  std::string alphabet_symbols;
  uint64_t qgram_q = 2;
  bool qgram_pad = false;
};

/// One persisted bucket of a blocking index: bucket (group, key) holds
/// `ids`; `overflowed` records that the bucket-size cap dropped entries.
struct IndexBucketSnapshot {
  uint64_t group = 0;
  uint64_t key = 0;
  bool overflowed = false;
  std::vector<RecordId> ids;
};

/// Everything a linkage service persists: configuration + data.  The
/// random components (encoder hash functions, LSH bit samples) are not
/// stored bit-for-bit — they are reproduced deterministically from `seed`
/// and the configuration, which this struct captures completely.
struct ServiceSnapshot {
  // Encoder / linker configuration.
  std::vector<SnapshotAttribute> attributes;
  /// Resolved expected q-gram counts (estimation is not redone on restore).
  std::vector<double> expected_qgrams;
  /// Classification rule in ParseRule() syntax.
  std::string rule_text;
  uint64_t record_K = 30;
  uint64_t record_theta = 4;
  double delta = 0.1;
  double sizing_max_collisions = 1.0;
  double sizing_confidence_ratio = 1.0 / 3.0;
  uint64_t seed = 7;

  // Service options.
  uint64_t num_shards = 16;
  uint64_t max_bucket_size = 0;
  /// Raw service-layer overflow-policy tag (opaque to this module).
  uint32_t overflow_policy = 0;

  // Data.
  std::vector<EncodedRecord> records;
  std::vector<IndexBucketSnapshot> buckets;

  // Mutation state (snapshot version 3+; older files restore with both
  // at their defaults).
  /// Record ids deleted but not yet reclaimed by compaction.  Disjoint
  /// from `records` — a tombstoned record's vector is already gone.
  std::vector<RecordId> tombstones;
  /// Highest delete/update sequence the service had acknowledged when
  /// the snapshot was taken; replay skips sequenced frames at or below
  /// this floor.
  uint64_t last_sequence = 0;
};

/// Writes a service snapshot, ending in a CRC32C trailer.  Returns
/// IOError on stream failure.  `version` selects the format for
/// compatibility testing: 0 (the default) writes the current version 3;
/// 2 writes the pre-mutation layout and requires `tombstones` empty and
/// `last_sequence` zero.
Status WriteServiceSnapshot(const ServiceSnapshot& snapshot,
                            std::ostream& out, uint32_t version = 0);

/// Writes to a file path atomically: the snapshot is staged in
/// AtomicTempPath(path), fsynced, the previous snapshot (if any) is
/// hard-linked to SnapshotBackupPath(path), and the stage is renamed
/// over `path`.  A crash at any step never loses the previous good
/// snapshot.
Status WriteServiceSnapshotToFile(const ServiceSnapshot& snapshot,
                                  const std::string& path);

/// Reads a service snapshot (version 1, 2, or 3).  Returns InvalidArgument
/// on a corrupt or foreign header, an over-cap length field, or a
/// checksum mismatch, and IOError on truncated input.
Result<ServiceSnapshot> ReadServiceSnapshot(std::istream& in);

/// Reads from a file path.
Result<ServiceSnapshot> ReadServiceSnapshotFromFile(const std::string& path);

}  // namespace cbvlink

#endif  // CBVLINK_IO_SERIALIZATION_H_
