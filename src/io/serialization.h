// Binary serialization of encoded record sets.
//
// The paper's motivation for compact embeddings is distributed settings
// where custodians ship embeddings instead of strings (Sections 1 and
// 5.2).  This module defines that wire format: a small header
// (magic, version, record-vector width, count) followed by fixed-width
// (id, bits) entries, so a 120-bit NCVR record costs 8 + 16 bytes on
// disk/wire.
//
// Layout (little-endian):
//   u32 magic 'CBVL'   u32 version   u64 num_records   u64 bits_per_record
//   repeated: u64 id, ceil(bits/64) * u64 words

#ifndef CBVLINK_IO_SERIALIZATION_H_
#define CBVLINK_IO_SERIALIZATION_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/embedding/record_encoder.h"

namespace cbvlink {

/// Writes encoded records (all of equal width) to a stream.  Returns
/// InvalidArgument on width mismatches, IOError on stream failure.
Status WriteEncodedRecords(const std::vector<EncodedRecord>& records,
                           std::ostream& out);

/// Writes to a file path.
Status WriteEncodedRecordsToFile(const std::vector<EncodedRecord>& records,
                                 const std::string& path);

/// Reads an encoded record set.  Returns InvalidArgument on a corrupt or
/// foreign header and IOError on truncated input.
Result<std::vector<EncodedRecord>> ReadEncodedRecords(std::istream& in);

/// Reads from a file path.
Result<std::vector<EncodedRecord>> ReadEncodedRecordsFromFile(
    const std::string& path);

}  // namespace cbvlink

#endif  // CBVLINK_IO_SERIALIZATION_H_
