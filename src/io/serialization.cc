#include "src/io/serialization.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "src/common/str.h"

namespace cbvlink {

namespace {

constexpr uint32_t kMagic = 0x4c564243;  // "CBVL" little-endian
constexpr uint32_t kVersion = 1;
constexpr uint32_t kSnapshotMagic = 0x53564243;  // "CBVS" little-endian
constexpr uint32_t kSnapshotVersion = 1;

void PutU32(std::ostream& out, uint32_t v) {
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(buf), 4);
}

void PutU64(std::ostream& out, uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(buf), 8);
}

bool GetU32(std::istream& in, uint32_t* v) {
  unsigned char buf[4];
  if (!in.read(reinterpret_cast<char*>(buf), 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(buf[i]) << (8 * i);
  return true;
}

bool GetU64(std::istream& in, uint64_t* v) {
  unsigned char buf[8];
  if (!in.read(reinterpret_cast<char*>(buf), 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(buf[i]) << (8 * i);
  return true;
}

void PutF64(std::ostream& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

bool GetF64(std::istream& in, double* v) {
  uint64_t bits = 0;
  if (!GetU64(in, &bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

void PutStr(std::ostream& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool GetStr(std::istream& in, std::string* s) {
  uint32_t size = 0;
  if (!GetU32(in, &size)) return false;
  s->resize(size);
  return size == 0 ||
         static_cast<bool>(in.read(s->data(), static_cast<std::streamsize>(size)));
}

}  // namespace

Status WriteEncodedRecords(const std::vector<EncodedRecord>& records,
                           std::ostream& out) {
  const uint64_t bits = records.empty() ? 0 : records.front().bits.size();
  for (const EncodedRecord& r : records) {
    if (r.bits.size() != bits) {
      return Status::InvalidArgument(
          StrFormat("record %llu has %zu bits, expected %llu",
                    static_cast<unsigned long long>(r.id), r.bits.size(),
                    static_cast<unsigned long long>(bits)));
    }
  }
  PutU32(out, kMagic);
  PutU32(out, kVersion);
  PutU64(out, records.size());
  PutU64(out, bits);
  for (const EncodedRecord& r : records) {
    PutU64(out, r.id);
    for (uint64_t word : r.bits.words()) PutU64(out, word);
  }
  if (!out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteEncodedRecordsToFile(const std::vector<EncodedRecord>& records,
                                 const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return Status::IOError("cannot open for write: " + path);
  return WriteEncodedRecords(records, out);
}

Result<std::vector<EncodedRecord>> ReadEncodedRecords(std::istream& in) {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t count = 0;
  uint64_t bits = 0;
  if (!GetU32(in, &magic) || !GetU32(in, &version) || !GetU64(in, &count) ||
      !GetU64(in, &bits)) {
    return Status::IOError("truncated header");
  }
  if (magic != kMagic) {
    return Status::InvalidArgument("not a cbvlink encoded-record file");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported version %u", version));
  }
  const size_t words_per_record = (static_cast<size_t>(bits) + 63) / 64;
  std::vector<EncodedRecord> records;
  records.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    EncodedRecord r;
    if (!GetU64(in, &r.id)) {
      return Status::IOError(
          StrFormat("truncated at record %llu",
                    static_cast<unsigned long long>(i)));
    }
    r.bits = BitVector(static_cast<size_t>(bits));
    for (size_t w = 0; w < words_per_record; ++w) {
      uint64_t word = 0;
      if (!GetU64(in, &word)) {
        return Status::IOError(
            StrFormat("truncated inside record %llu",
                      static_cast<unsigned long long>(i)));
      }
      // Reconstruct bit by bit within the word to stay independent of
      // BitVector's internal layout guarantees.
      for (size_t b = 0; b < 64; ++b) {
        const size_t pos = w * 64 + b;
        if (pos >= bits) break;
        if ((word >> b) & 1) r.bits.Set(pos);
      }
    }
    records.push_back(std::move(r));
  }
  return records;
}

Result<std::vector<EncodedRecord>> ReadEncodedRecordsFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open for read: " + path);
  return ReadEncodedRecords(in);
}

Status WriteServiceSnapshot(const ServiceSnapshot& snapshot,
                            std::ostream& out) {
  PutU32(out, kSnapshotMagic);
  PutU32(out, kSnapshotVersion);
  PutU64(out, snapshot.seed);
  PutU64(out, snapshot.record_K);
  PutU64(out, snapshot.record_theta);
  PutF64(out, snapshot.delta);
  PutF64(out, snapshot.sizing_max_collisions);
  PutF64(out, snapshot.sizing_confidence_ratio);
  PutU64(out, snapshot.num_shards);
  PutU64(out, snapshot.max_bucket_size);
  PutU32(out, snapshot.overflow_policy);
  PutStr(out, snapshot.rule_text);
  PutU32(out, static_cast<uint32_t>(snapshot.attributes.size()));
  for (const SnapshotAttribute& attr : snapshot.attributes) {
    PutStr(out, attr.name);
    PutStr(out, attr.alphabet_symbols);
    PutU64(out, attr.qgram_q);
    PutU32(out, attr.qgram_pad ? 1 : 0);
  }
  PutU32(out, static_cast<uint32_t>(snapshot.expected_qgrams.size()));
  for (double b : snapshot.expected_qgrams) PutF64(out, b);
  // The record payload reuses the standalone encoded-record block format,
  // nested header included, so tooling can share the reader.
  CBVLINK_RETURN_NOT_OK(WriteEncodedRecords(snapshot.records, out));
  PutU64(out, snapshot.buckets.size());
  for (const IndexBucketSnapshot& bucket : snapshot.buckets) {
    PutU64(out, bucket.group);
    PutU64(out, bucket.key);
    PutU32(out, bucket.overflowed ? 1 : 0);
    PutU64(out, bucket.ids.size());
    for (RecordId id : bucket.ids) PutU64(out, id);
  }
  if (!out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteServiceSnapshotToFile(const ServiceSnapshot& snapshot,
                                  const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return Status::IOError("cannot open for write: " + path);
  return WriteServiceSnapshot(snapshot, out);
}

Result<ServiceSnapshot> ReadServiceSnapshot(std::istream& in) {
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!GetU32(in, &magic) || !GetU32(in, &version)) {
    return Status::IOError("truncated snapshot header");
  }
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a cbvlink service snapshot");
  }
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported snapshot version %u", version));
  }
  ServiceSnapshot snapshot;
  uint32_t policy = 0;
  if (!GetU64(in, &snapshot.seed) || !GetU64(in, &snapshot.record_K) ||
      !GetU64(in, &snapshot.record_theta) || !GetF64(in, &snapshot.delta) ||
      !GetF64(in, &snapshot.sizing_max_collisions) ||
      !GetF64(in, &snapshot.sizing_confidence_ratio) ||
      !GetU64(in, &snapshot.num_shards) ||
      !GetU64(in, &snapshot.max_bucket_size) || !GetU32(in, &policy) ||
      !GetStr(in, &snapshot.rule_text)) {
    return Status::IOError("truncated snapshot configuration");
  }
  snapshot.overflow_policy = policy;
  uint32_t num_attributes = 0;
  if (!GetU32(in, &num_attributes)) {
    return Status::IOError("truncated snapshot schema");
  }
  snapshot.attributes.resize(num_attributes);
  for (SnapshotAttribute& attr : snapshot.attributes) {
    uint32_t pad = 0;
    if (!GetStr(in, &attr.name) || !GetStr(in, &attr.alphabet_symbols) ||
        !GetU64(in, &attr.qgram_q) || !GetU32(in, &pad)) {
      return Status::IOError("truncated snapshot schema");
    }
    attr.qgram_pad = pad != 0;
  }
  uint32_t num_expected = 0;
  if (!GetU32(in, &num_expected)) {
    return Status::IOError("truncated snapshot expected-qgram block");
  }
  snapshot.expected_qgrams.resize(num_expected);
  for (double& b : snapshot.expected_qgrams) {
    if (!GetF64(in, &b)) {
      return Status::IOError("truncated snapshot expected-qgram block");
    }
  }
  Result<std::vector<EncodedRecord>> records = ReadEncodedRecords(in);
  if (!records.ok()) return records.status();
  snapshot.records = std::move(records).value();
  uint64_t num_buckets = 0;
  if (!GetU64(in, &num_buckets)) {
    return Status::IOError("truncated snapshot bucket block");
  }
  snapshot.buckets.resize(static_cast<size_t>(num_buckets));
  for (IndexBucketSnapshot& bucket : snapshot.buckets) {
    uint32_t overflowed = 0;
    uint64_t count = 0;
    if (!GetU64(in, &bucket.group) || !GetU64(in, &bucket.key) ||
        !GetU32(in, &overflowed) || !GetU64(in, &count)) {
      return Status::IOError("truncated snapshot bucket block");
    }
    bucket.overflowed = overflowed != 0;
    bucket.ids.resize(static_cast<size_t>(count));
    for (RecordId& id : bucket.ids) {
      if (!GetU64(in, &id)) {
        return Status::IOError("truncated snapshot bucket block");
      }
    }
  }
  return snapshot;
}

Result<ServiceSnapshot> ReadServiceSnapshotFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open for read: " + path);
  return ReadServiceSnapshot(in);
}

}  // namespace cbvlink
