#include "src/io/serialization.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/common/crc32.h"
#include "src/common/failpoint.h"
#include "src/common/str.h"

namespace cbvlink {

namespace {

constexpr uint32_t kMagic = 0x4c564243;  // "CBVL" little-endian
constexpr uint32_t kSnapshotMagic = 0x53564243;  // "CBVS" little-endian
// Version 1: no CRC trailer, lengths trusted.  Version 2: CRC32C trailer
// on top-level files, every length field capped and bounds-checked.
// Writers emit version 2; readers accept both.
constexpr uint32_t kVersionLegacy = 1;
constexpr uint32_t kVersion = 2;
// Snapshot ('CBVS') versions run ahead of the record-file version:
// version 3 appends a mutation block (delete/update sequence floor +
// tombstoned record ids) after the buckets.  Writers emit version 3;
// readers accept 1–3, treating older files as having no tombstones.
constexpr uint32_t kSnapshotVersion = 3;

// Hard caps on untrusted length fields.  Each bounds the single largest
// allocation a corrupt field can demand (the "allocation budget" of the
// corruption-sweep tests) well above any legitimate value: the paper's
// record vectors are 120–267 bits, schemas a handful of attributes.
constexpr uint64_t kMaxBitsPerRecord = uint64_t{1} << 20;   // 128 KiB/record
constexpr uint32_t kMaxStringBytes = uint32_t{1} << 20;     // 1 MiB
constexpr uint32_t kMaxAttributes = 1u << 12;
constexpr uint64_t kMaxRecordCount = uint64_t{1} << 33;
constexpr uint64_t kMaxBucketCount = uint64_t{1} << 33;
// When the stream size is unknown (non-seekable), reserve at most this
// many elements up front; growth past it is pay-as-you-read.
constexpr uint64_t kBlindReserveLimit = uint64_t{1} << 16;

void EncodeU32(uint32_t v, unsigned char buf[4]) {
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
}

/// Stream writer that folds every written byte into a running CRC32C.
class CrcWriter {
 public:
  explicit CrcWriter(std::ostream& out) : out_(out) {}

  void Raw(const void* p, size_t n) {
    crc_ = Crc32cExtend(crc_, p, n);
    out_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  }

  void U32(uint32_t v) {
    unsigned char buf[4];
    EncodeU32(v, buf);
    Raw(buf, 4);
  }

  void U64(uint64_t v) {
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<unsigned char>(v >> (8 * i));
    }
    Raw(buf, 8);
  }

  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

  /// Appends the accumulated CRC (the trailer itself is not folded in).
  void CrcTrailer() {
    unsigned char buf[4];
    EncodeU32(crc_, buf);
    out_.write(reinterpret_cast<const char*>(buf), 4);
  }

 private:
  std::ostream& out_;
  uint32_t crc_ = kCrc32cInit;
};

/// Stream reader that folds every consumed byte into a running CRC32C
/// and validates length fields against hard caps and (for seekable
/// streams) the bytes actually remaining.  Getters return false on
/// failure; Error() then maps the failure to a Status: IOError for
/// truncation, InvalidArgument for cap/bounds/CRC violations.
class CrcReader {
 public:
  explicit CrcReader(std::istream& in) : in_(in) {
    const std::istream::pos_type pos = in.tellg();
    if (pos != std::istream::pos_type(-1)) {
      in.seekg(0, std::ios::end);
      const std::istream::pos_type end = in.tellg();
      if (end != std::istream::pos_type(-1) && end >= pos) {
        remaining_ = static_cast<uint64_t>(end - pos);
        bounded_ = true;
      }
      in.clear();
      in.seekg(pos);
    } else {
      in.clear();
    }
  }

  bool bounded() const { return bounded_; }

  bool Raw(void* p, size_t n) {
    if (failed_) return false;
    if (bounded_ && n > remaining_) {
      failed_ = true;
      return false;
    }
    if (!in_.read(static_cast<char*>(p), static_cast<std::streamsize>(n))) {
      failed_ = true;
      return false;
    }
    if (bounded_) remaining_ -= n;
    crc_ = Crc32cExtend(crc_, p, n);
    return true;
  }

  bool U32(uint32_t* v) {
    unsigned char buf[4];
    if (!Raw(buf, 4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(buf[i]) << (8 * i);
    return true;
  }

  bool U64(uint64_t* v) {
    unsigned char buf[8];
    if (!Raw(buf, 8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(buf[i]) << (8 * i);
    return true;
  }

  bool F64(double* v) {
    uint64_t bits = 0;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }

  /// Length-prefixed string; the length is capped and checked against
  /// the remaining stream before any allocation.
  bool Str(std::string* s) {
    uint32_t size = 0;
    if (!U32(&size)) return false;
    if (size > kMaxStringBytes) {
      return Invalid(StrFormat("string length %u exceeds cap %u", size,
                               kMaxStringBytes));
    }
    if (bounded_ && size > remaining_) {
      failed_ = true;
      return false;
    }
    s->resize(size);
    return size == 0 || Raw(s->data(), size);
  }

  /// Validates a just-read count of items costing at least `item_bytes`
  /// each: rejects counts over `max_count` (InvalidArgument) and counts
  /// whose payload cannot fit in the remaining stream (truncation).
  bool CheckCount(uint64_t count, uint64_t max_count, uint64_t item_bytes,
                  const char* what) {
    if (count > max_count) {
      return Invalid(StrFormat("%s count %llu exceeds cap %llu", what,
                               static_cast<unsigned long long>(count),
                               static_cast<unsigned long long>(max_count)));
    }
    if (bounded_ && item_bytes != 0 && count > remaining_ / item_bytes) {
      failed_ = true;  // declares more payload than the stream holds
      return false;
    }
    return true;
  }

  /// How many elements to reserve for a validated count: the full count
  /// when the stream bound proves it fits, a fixed limit otherwise.
  size_t ReserveHint(uint64_t count) const {
    return static_cast<size_t>(
        bounded_ ? count : std::min(count, kBlindReserveLimit));
  }

  /// Reads and checks the CRC trailer (the stored CRC is not folded
  /// into the running one).
  bool VerifyCrcTrailer() {
    const uint32_t expected = crc_;
    unsigned char buf[4];
    if (failed_ || (bounded_ && remaining_ < 4) ||
        !in_.read(reinterpret_cast<char*>(buf), 4)) {
      failed_ = true;
      return false;
    }
    if (bounded_) remaining_ -= 4;
    uint32_t stored = 0;
    for (int i = 0; i < 4; ++i) {
      stored |= static_cast<uint32_t>(buf[i]) << (8 * i);
    }
    if (stored != expected) return Invalid("checksum mismatch");
    return true;
  }

  /// The Status for the first recorded failure, contextualized.
  Status Error(const char* context) const {
    if (!invalid_.empty()) {
      return Status::InvalidArgument(invalid_ + " in " + context);
    }
    return Status::IOError(std::string("truncated ") + context);
  }

 private:
  bool Invalid(std::string why) {
    failed_ = true;
    if (invalid_.empty()) invalid_ = std::move(why);
    return false;
  }

  std::istream& in_;
  uint32_t crc_ = kCrc32cInit;
  uint64_t remaining_ = 0;
  bool bounded_ = false;
  bool failed_ = false;
  std::string invalid_;
};

// ---------------------------------------------------------------------
// Encoded-record block (shared between standalone files and the nested
// block inside snapshots; the CRC trailer exists only at top level).

Status WriteEncodedRecordsBody(CrcWriter& w,
                               const std::vector<EncodedRecord>& records) {
  const uint64_t bits = records.empty() ? 0 : records.front().bits.size();
  for (const EncodedRecord& r : records) {
    if (r.bits.size() != bits) {
      return Status::InvalidArgument(
          StrFormat("record %llu has %zu bits, expected %llu",
                    static_cast<unsigned long long>(r.id), r.bits.size(),
                    static_cast<unsigned long long>(bits)));
    }
  }
  w.U32(kMagic);
  w.U32(kVersion);
  w.U64(records.size());
  w.U64(bits);
  for (const EncodedRecord& r : records) {
    w.U64(r.id);
    for (uint64_t word : r.bits.words()) w.U64(word);
  }
  return Status::OK();
}

Status ReadEncodedRecordsBody(CrcReader& r, std::vector<EncodedRecord>* out,
                              uint32_t* version_out) {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t count = 0;
  uint64_t bits = 0;
  if (!r.U32(&magic)) return r.Error("header");
  if (magic != kMagic) {
    return Status::InvalidArgument("not a cbvlink encoded-record file");
  }
  if (!r.U32(&version)) return r.Error("header");
  if (version != kVersionLegacy && version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported version %u", version));
  }
  *version_out = version;
  if (!r.U64(&count) || !r.U64(&bits)) return r.Error("header");
  if (bits > kMaxBitsPerRecord) {
    return Status::InvalidArgument(
        StrFormat("record width %llu bits exceeds cap %llu",
                  static_cast<unsigned long long>(bits),
                  static_cast<unsigned long long>(kMaxBitsPerRecord)));
  }
  const size_t words_per_record = (static_cast<size_t>(bits) + 63) / 64;
  const uint64_t record_bytes = 8 + 8 * words_per_record;
  if (!r.CheckCount(count, kMaxRecordCount, record_bytes, "record")) {
    return r.Error("record count");
  }
  out->reserve(r.ReserveHint(count));
  std::vector<uint64_t> words;
  for (uint64_t i = 0; i < count; ++i) {
    EncodedRecord rec;
    if (!r.U64(&rec.id)) {
      return r.Error(
          StrFormat("record %llu", static_cast<unsigned long long>(i))
              .c_str());
    }
    words.assign(words_per_record, 0);
    for (size_t w = 0; w < words_per_record; ++w) {
      if (!r.U64(&words[w])) {
        return r.Error(
            StrFormat("record %llu", static_cast<unsigned long long>(i))
                .c_str());
      }
    }
    // Word count and padding are validated by the BitVector boundary:
    // a set padding bit (corruption) would silently skew every
    // whole-word Hamming distance, so it is rejected here rather than
    // debug-asserted downstream.
    Result<BitVector> bv =
        BitVector::FromWordsValidated(static_cast<size_t>(bits), words);
    if (!bv.ok()) {
      return Status::InvalidArgument(
          StrFormat("record %llu: %s", static_cast<unsigned long long>(i),
                    std::string(bv.status().message()).c_str()));
    }
    rec.bits = std::move(bv).value();
    out->push_back(std::move(rec));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Atomic file persistence: write path.tmp, fsync, (optionally) hard-link
// the previous path to path.bak, rename, fsync the directory.  The
// rename is the commit point; a crash at any earlier step leaves the
// previous file untouched.

Status AtomicWriteFile(const std::string& path, const std::string& payload,
                       bool keep_backup) {
  const std::string tmp = AtomicTempPath(path);
  CBVLINK_FAILPOINT("io.atomic.open");
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("open %s: %s", tmp.c_str(), std::strerror(errno)));
  }

  size_t limit = payload.size();
  if (Failpoints::AnyActive()) {
    const FailpointHit hit = Failpoints::Eval("io.atomic.write");
    if (hit.action == FailpointAction::kError) {
      ::close(fd);  // tmp left behind, as a crash would leave it
      return Status::IOError("failpoint 'io.atomic.write' injected failure");
    }
    if (hit.action == FailpointAction::kShortWrite) {
      limit = std::min<size_t>(limit, static_cast<size_t>(hit.param));
    }
  }

  const char* p = payload.data();
  size_t left = limit;
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::IOError(
          StrFormat("write %s: %s", tmp.c_str(), std::strerror(errno)));
      ::close(fd);
      return st;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (limit != payload.size()) {
    ::close(fd);  // simulated torn write: partial tmp persisted
    return Status::IOError(
        "failpoint 'io.atomic.write' injected short write");
  }

  {
    const Status st = FailpointInject("io.atomic.fsync");
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
  }
  if (::fsync(fd) != 0) {
    const Status st = Status::IOError(
        StrFormat("fsync %s: %s", tmp.c_str(), std::strerror(errno)));
    ::close(fd);
    return st;
  }
  ::close(fd);

  if (keep_backup && ::access(path.c_str(), F_OK) == 0) {
    // Best-effort: the previous good file survives the rename as .bak,
    // giving RestoreFromFile a fallback against later primary bit rot.
    const std::string bak = SnapshotBackupPath(path);
    ::unlink(bak.c_str());
    (void)::link(path.c_str(), bak.c_str());
  }

  CBVLINK_FAILPOINT("io.atomic.rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError(StrFormat("rename %s -> %s: %s", tmp.c_str(),
                                     path.c_str(), std::strerror(errno)));
  }

  // Make the rename itself durable (best-effort; not all filesystems
  // support directory fsync).
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    (void)::fsync(dirfd);
    ::close(dirfd);
  }
  return Status::OK();
}

}  // namespace

void WireEncodeRecord(const Record& record, std::string* out) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<unsigned char>(record.id >> (8 * i));
  }
  out->append(reinterpret_cast<const char*>(buf), 8);
  EncodeU32(static_cast<uint32_t>(record.fields.size()), buf);
  out->append(reinterpret_cast<const char*>(buf), 4);
  for (const std::string& field : record.fields) {
    EncodeU32(static_cast<uint32_t>(field.size()), buf);
    out->append(reinterpret_cast<const char*>(buf), 4);
    out->append(field);
  }
}

Status WireDecodeRecord(std::string_view data, Record* record,
                        size_t* consumed) {
  size_t pos = 0;
  const auto u32 = [&](uint32_t* v) {
    if (data.size() - pos < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(
                static_cast<unsigned char>(data[pos + static_cast<size_t>(i)]))
            << (8 * i);
    }
    pos += 4;
    return true;
  };
  if (data.size() < 12) return Status::IOError("record payload truncated");
  record->id = 0;
  for (int i = 0; i < 8; ++i) {
    record->id |= static_cast<uint64_t>(
                      static_cast<unsigned char>(data[static_cast<size_t>(i)]))
                  << (8 * i);
  }
  pos = 8;
  uint32_t num_fields = 0;
  u32(&num_fields);
  if (num_fields > kMaxAttributes) {
    return Status::InvalidArgument(
        StrFormat("record field count %u exceeds cap %u", num_fields,
                  kMaxAttributes));
  }
  record->fields.clear();
  record->fields.reserve(num_fields);
  for (uint32_t f = 0; f < num_fields; ++f) {
    uint32_t len = 0;
    if (!u32(&len)) return Status::IOError("record payload truncated");
    if (len > kMaxStringBytes) {
      return Status::InvalidArgument(
          StrFormat("record field length %u exceeds cap %u", len,
                    kMaxStringBytes));
    }
    if (data.size() - pos < len) {
      return Status::IOError("record payload truncated");
    }
    record->fields.emplace_back(data.substr(pos, len));
    pos += len;
  }
  *consumed = pos;
  return Status::OK();
}

std::string AtomicTempPath(const std::string& path) { return path + ".tmp"; }

Status WriteFileAtomically(const std::string& path,
                           const std::string& payload) {
  return AtomicWriteFile(path, payload, /*keep_backup=*/false);
}

std::string SnapshotBackupPath(const std::string& path) {
  return path + ".bak";
}

Status WriteEncodedRecords(const std::vector<EncodedRecord>& records,
                           std::ostream& out) {
  CBVLINK_FAILPOINT("io.write_records");
  CrcWriter w(out);
  CBVLINK_RETURN_NOT_OK(WriteEncodedRecordsBody(w, records));
  w.CrcTrailer();
  if (!out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteEncodedRecordsToFile(const std::vector<EncodedRecord>& records,
                                 const std::string& path) {
  std::ostringstream buffer;
  CBVLINK_RETURN_NOT_OK(WriteEncodedRecords(records, buffer));
  return AtomicWriteFile(path, buffer.str(), /*keep_backup=*/false);
}

Result<std::vector<EncodedRecord>> ReadEncodedRecords(std::istream& in) {
  CrcReader r(in);
  std::vector<EncodedRecord> records;
  uint32_t version = 0;
  Status st = ReadEncodedRecordsBody(r, &records, &version);
  if (!st.ok()) return st;
  if (version >= kVersion && !r.VerifyCrcTrailer()) {
    return r.Error("record-file checksum");
  }
  return records;
}

Result<std::vector<EncodedRecord>> ReadEncodedRecordsFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open for read: " + path);
  return ReadEncodedRecords(in);
}

Status WriteServiceSnapshot(const ServiceSnapshot& snapshot,
                            std::ostream& out, uint32_t version) {
  CBVLINK_FAILPOINT("io.write_snapshot");
  if (version == 0) version = kSnapshotVersion;
  if (version < kVersion || version > kSnapshotVersion) {
    return Status::InvalidArgument(
        StrFormat("cannot write snapshot version %u", version));
  }
  if (version < 3 && (!snapshot.tombstones.empty() ||
                      snapshot.last_sequence != 0)) {
    return Status::InvalidArgument(
        "snapshot version 2 cannot carry tombstones or a sequence floor");
  }
  CrcWriter w(out);
  w.U32(kSnapshotMagic);
  w.U32(version);
  w.U64(snapshot.seed);
  w.U64(snapshot.record_K);
  w.U64(snapshot.record_theta);
  w.F64(snapshot.delta);
  w.F64(snapshot.sizing_max_collisions);
  w.F64(snapshot.sizing_confidence_ratio);
  w.U64(snapshot.num_shards);
  w.U64(snapshot.max_bucket_size);
  w.U32(snapshot.overflow_policy);
  w.Str(snapshot.rule_text);
  w.U32(static_cast<uint32_t>(snapshot.attributes.size()));
  for (const SnapshotAttribute& attr : snapshot.attributes) {
    w.Str(attr.name);
    w.Str(attr.alphabet_symbols);
    w.U64(attr.qgram_q);
    w.U32(attr.qgram_pad ? 1 : 0);
  }
  w.U32(static_cast<uint32_t>(snapshot.expected_qgrams.size()));
  for (double b : snapshot.expected_qgrams) w.F64(b);
  // The record payload reuses the standalone encoded-record block format,
  // nested header included, so tooling can share the reader.  The
  // snapshot's single trailing CRC covers the nested block too.
  CBVLINK_RETURN_NOT_OK(WriteEncodedRecordsBody(w, snapshot.records));
  w.U64(snapshot.buckets.size());
  for (const IndexBucketSnapshot& bucket : snapshot.buckets) {
    w.U64(bucket.group);
    w.U64(bucket.key);
    w.U32(bucket.overflowed ? 1 : 0);
    w.U64(bucket.ids.size());
    for (RecordId id : bucket.ids) w.U64(id);
  }
  if (version >= 3) {
    // Mutation block: the highest acknowledged delete/update sequence
    // (the replay dedupe floor) and every live tombstone.
    w.U64(snapshot.last_sequence);
    w.U64(snapshot.tombstones.size());
    for (RecordId id : snapshot.tombstones) w.U64(id);
  }
  w.CrcTrailer();
  if (!out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteServiceSnapshotToFile(const ServiceSnapshot& snapshot,
                                  const std::string& path) {
  std::ostringstream buffer;
  CBVLINK_RETURN_NOT_OK(WriteServiceSnapshot(snapshot, buffer));
  return AtomicWriteFile(path, buffer.str(), /*keep_backup=*/true);
}

Result<ServiceSnapshot> ReadServiceSnapshot(std::istream& in) {
  CrcReader r(in);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!r.U32(&magic)) return r.Error("snapshot header");
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a cbvlink service snapshot");
  }
  if (!r.U32(&version)) return r.Error("snapshot header");
  if (version < kVersionLegacy || version > kSnapshotVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported snapshot version %u", version));
  }
  ServiceSnapshot snapshot;
  uint32_t policy = 0;
  if (!r.U64(&snapshot.seed) || !r.U64(&snapshot.record_K) ||
      !r.U64(&snapshot.record_theta) || !r.F64(&snapshot.delta) ||
      !r.F64(&snapshot.sizing_max_collisions) ||
      !r.F64(&snapshot.sizing_confidence_ratio) ||
      !r.U64(&snapshot.num_shards) || !r.U64(&snapshot.max_bucket_size) ||
      !r.U32(&policy) || !r.Str(&snapshot.rule_text)) {
    return r.Error("snapshot configuration");
  }
  snapshot.overflow_policy = policy;
  uint32_t num_attributes = 0;
  if (!r.U32(&num_attributes) ||
      // Each attribute costs at least two empty strings + u64 + u32.
      !r.CheckCount(num_attributes, kMaxAttributes, 4 + 4 + 8 + 4,
                    "attribute")) {
    return r.Error("snapshot schema");
  }
  snapshot.attributes.resize(num_attributes);
  for (SnapshotAttribute& attr : snapshot.attributes) {
    uint32_t pad = 0;
    if (!r.Str(&attr.name) || !r.Str(&attr.alphabet_symbols) ||
        !r.U64(&attr.qgram_q) || !r.U32(&pad)) {
      return r.Error("snapshot schema");
    }
    attr.qgram_pad = pad != 0;
  }
  uint32_t num_expected = 0;
  if (!r.U32(&num_expected) ||
      !r.CheckCount(num_expected, kMaxAttributes, 8, "expected-qgram")) {
    return r.Error("snapshot expected-qgram block");
  }
  snapshot.expected_qgrams.resize(num_expected);
  for (double& b : snapshot.expected_qgrams) {
    if (!r.F64(&b)) return r.Error("snapshot expected-qgram block");
  }
  uint32_t nested_version = 0;
  Status records_st =
      ReadEncodedRecordsBody(r, &snapshot.records, &nested_version);
  if (!records_st.ok()) return records_st;
  uint64_t num_buckets = 0;
  if (!r.U64(&num_buckets) ||
      // Minimum bucket: group + key + flag + empty id list.
      !r.CheckCount(num_buckets, kMaxBucketCount, 8 + 8 + 4 + 8, "bucket")) {
    return r.Error("snapshot bucket block");
  }
  snapshot.buckets.reserve(r.ReserveHint(num_buckets));
  for (uint64_t i = 0; i < num_buckets; ++i) {
    IndexBucketSnapshot bucket;
    uint32_t overflowed = 0;
    uint64_t count = 0;
    if (!r.U64(&bucket.group) || !r.U64(&bucket.key) ||
        !r.U32(&overflowed) || !r.U64(&count) ||
        !r.CheckCount(count, kMaxRecordCount, 8, "bucket id")) {
      return r.Error("snapshot bucket block");
    }
    bucket.overflowed = overflowed != 0;
    bucket.ids.reserve(r.ReserveHint(count));
    for (uint64_t j = 0; j < count; ++j) {
      RecordId id = 0;
      if (!r.U64(&id)) return r.Error("snapshot bucket block");
      bucket.ids.push_back(id);
    }
    snapshot.buckets.push_back(std::move(bucket));
  }
  if (version >= 3) {
    uint64_t num_tombstones = 0;
    if (!r.U64(&snapshot.last_sequence) || !r.U64(&num_tombstones) ||
        !r.CheckCount(num_tombstones, kMaxRecordCount, 8, "tombstone")) {
      return r.Error("snapshot mutation block");
    }
    snapshot.tombstones.reserve(r.ReserveHint(num_tombstones));
    for (uint64_t i = 0; i < num_tombstones; ++i) {
      RecordId id = 0;
      if (!r.U64(&id)) return r.Error("snapshot mutation block");
      snapshot.tombstones.push_back(id);
    }
  }
  if (version >= kVersion && !r.VerifyCrcTrailer()) {
    return r.Error("snapshot checksum");
  }
  return snapshot;
}

Result<ServiceSnapshot> ReadServiceSnapshotFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open for read: " + path);
  return ReadServiceSnapshot(in);
}

}  // namespace cbvlink
