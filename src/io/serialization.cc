#include "src/io/serialization.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "src/common/str.h"

namespace cbvlink {

namespace {

constexpr uint32_t kMagic = 0x4c564243;  // "CBVL" little-endian
constexpr uint32_t kVersion = 1;

void PutU32(std::ostream& out, uint32_t v) {
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(buf), 4);
}

void PutU64(std::ostream& out, uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(buf), 8);
}

bool GetU32(std::istream& in, uint32_t* v) {
  unsigned char buf[4];
  if (!in.read(reinterpret_cast<char*>(buf), 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(buf[i]) << (8 * i);
  return true;
}

bool GetU64(std::istream& in, uint64_t* v) {
  unsigned char buf[8];
  if (!in.read(reinterpret_cast<char*>(buf), 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(buf[i]) << (8 * i);
  return true;
}

}  // namespace

Status WriteEncodedRecords(const std::vector<EncodedRecord>& records,
                           std::ostream& out) {
  const uint64_t bits = records.empty() ? 0 : records.front().bits.size();
  for (const EncodedRecord& r : records) {
    if (r.bits.size() != bits) {
      return Status::InvalidArgument(
          StrFormat("record %llu has %zu bits, expected %llu",
                    static_cast<unsigned long long>(r.id), r.bits.size(),
                    static_cast<unsigned long long>(bits)));
    }
  }
  PutU32(out, kMagic);
  PutU32(out, kVersion);
  PutU64(out, records.size());
  PutU64(out, bits);
  for (const EncodedRecord& r : records) {
    PutU64(out, r.id);
    for (uint64_t word : r.bits.words()) PutU64(out, word);
  }
  if (!out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteEncodedRecordsToFile(const std::vector<EncodedRecord>& records,
                                 const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return Status::IOError("cannot open for write: " + path);
  return WriteEncodedRecords(records, out);
}

Result<std::vector<EncodedRecord>> ReadEncodedRecords(std::istream& in) {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t count = 0;
  uint64_t bits = 0;
  if (!GetU32(in, &magic) || !GetU32(in, &version) || !GetU64(in, &count) ||
      !GetU64(in, &bits)) {
    return Status::IOError("truncated header");
  }
  if (magic != kMagic) {
    return Status::InvalidArgument("not a cbvlink encoded-record file");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported version %u", version));
  }
  const size_t words_per_record = (static_cast<size_t>(bits) + 63) / 64;
  std::vector<EncodedRecord> records;
  records.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    EncodedRecord r;
    if (!GetU64(in, &r.id)) {
      return Status::IOError(
          StrFormat("truncated at record %llu",
                    static_cast<unsigned long long>(i)));
    }
    r.bits = BitVector(static_cast<size_t>(bits));
    for (size_t w = 0; w < words_per_record; ++w) {
      uint64_t word = 0;
      if (!GetU64(in, &word)) {
        return Status::IOError(
            StrFormat("truncated inside record %llu",
                      static_cast<unsigned long long>(i)));
      }
      // Reconstruct bit by bit within the word to stay independent of
      // BitVector's internal layout guarantees.
      for (size_t b = 0; b < 64; ++b) {
        const size_t pos = w * 64 + b;
        if (pos >= bits) break;
        if ((word >> b) & 1) r.bits.Set(pos);
      }
    }
    records.push_back(std::move(r));
  }
  return records;
}

Result<std::vector<EncodedRecord>> ReadEncodedRecordsFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open for read: " + path);
  return ReadEncodedRecords(in);
}

}  // namespace cbvlink
