// Bucket-distribution diagnostics for blocking tables.
//
// Section 5.2 argues that sampling bits from *sparse* q-gram vectors
// yields "a small number of overpopulated buckets", degenerating HB into
// an all-pairs comparison.  These statistics make that argument
// measurable: bucket counts, the largest bucket, a Gini coefficient of
// the bucket-size distribution, and the number of candidate pairs a
// table would emit when probed by a second, equal-sized data set.

#ifndef CBVLINK_EVAL_BLOCK_STATS_H_
#define CBVLINK_EVAL_BLOCK_STATS_H_

#include <vector>

#include "src/lsh/blocking_table.h"

namespace cbvlink {

/// Distribution statistics of one or more blocking tables.
struct BucketStats {
  /// Non-empty buckets across the analyzed tables.
  size_t num_buckets = 0;
  /// Stored Ids across buckets.
  size_t num_entries = 0;
  /// Size of the largest bucket.
  size_t max_bucket = 0;
  /// Mean bucket size (0 for empty tables).
  double mean_bucket = 0.0;
  /// Gini coefficient of bucket sizes in [0, 1): 0 = perfectly uniform,
  /// -> 1 = all entries concentrated in one bucket.
  double gini = 0.0;
  /// Expected candidate-pair emissions if an identically distributed
  /// data set were probed against these tables: sum over buckets of
  /// size^2 (each probe landing in a bucket meets all its entries).
  double expected_probe_candidates = 0.0;
};

/// Statistics of a single table.
BucketStats ComputeBucketStats(const BlockingTable& table);

/// Aggregated statistics over several tables (the L groups of a blocking
/// mechanism).  Gini is computed over the pooled bucket-size list.
BucketStats ComputeBucketStats(const std::vector<BlockingTable>& tables);

/// Gini coefficient of an arbitrary non-negative size list (helper,
/// exposed for testing).  Returns 0 for empty input or all-zero sizes.
double GiniCoefficient(std::vector<size_t> sizes);

}  // namespace cbvlink

#endif  // CBVLINK_EVAL_BLOCK_STATS_H_
