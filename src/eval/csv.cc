#include "src/eval/csv.h"

#include <cstdlib>

#include "src/common/str.h"

namespace cbvlink {

Result<CsvWriter> CsvWriter::Open(const std::string& path,
                                  const std::vector<std::string>& header) {
  std::ofstream stream(path);
  if (!stream.is_open()) {
    return Status::IOError("cannot open CSV file: " + path);
  }
  CsvWriter writer(std::move(stream));
  writer.WriteRow(header);
  return writer;
}

std::string CsvWriter::EscapeField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += "\"\"";
    else escaped.push_back(c);
  }
  escaped.push_back('"');
  return escaped;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) stream_ << ',';
    stream_ << EscapeField(fields[i]);
  }
  stream_ << '\n';
}

void CsvWriter::WriteNumericRow(const std::string& label,
                                const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size() + 1);
  fields.push_back(label);
  for (double v : values) fields.push_back(StrFormat("%.6g", v));
  WriteRow(fields);
}

std::string CsvDirFromEnv() {
  const char* dir = std::getenv("CBVLINK_CSV_DIR");
  return dir == nullptr ? std::string() : std::string(dir);
}

}  // namespace cbvlink
