// Threshold calibration from sample matching pairs.
//
// The paper sets every baseline's thresholds "after experimenting
// exhaustively using the initial and corresponding perturbed values"
// (Section 6.1, footnote 9).  This module productizes that methodology:
// given pairs known to match (e.g. a labelled sample, or synthetic
// perturbations of real records), it measures the per-attribute distance
// distribution in the embedding space and suggests the threshold that
// retains a target fraction of the matches.

#ifndef CBVLINK_EVAL_CALIBRATION_H_
#define CBVLINK_EVAL_CALIBRATION_H_

#include <functional>
#include <utility>
#include <vector>

#include "src/common/record.h"
#include "src/common/status.h"
#include "src/embedding/record_encoder.h"
#include "src/rules/rule.h"

namespace cbvlink {

/// Options for threshold calibration.
struct CalibrationOptions {
  /// Fraction of the sample matches each suggested threshold must
  /// retain (per attribute).  0.95 mirrors the paper's "nice balance
  /// between accuracy and efficiency".
  double recall_target = 0.95;
};

/// Per-attribute calibration output.
struct CalibratedThresholds {
  /// Suggested theta per attribute: the recall_target-quantile of the
  /// matching pairs' attribute distances.
  std::vector<size_t> thetas;
  /// Maximum observed distance per attribute (theta for recall 1.0).
  std::vector<size_t> max_distances;

  /// Builds the conjunctive rule "every attribute within its theta".
  Rule ToRule() const;
};

/// Computes per-attribute distances with `attribute_distances`
/// (returning one distance per attribute for a record pair) over the
/// matching sample and derives thresholds.  Fails on an empty sample,
/// an out-of-range recall target, or a distance-callback error.
Result<CalibratedThresholds> CalibrateThresholds(
    size_t num_attributes,
    const std::function<Result<std::vector<size_t>>(const Record&,
                                                    const Record&)>&
        attribute_distances,
    const std::vector<std::pair<Record, Record>>& matching_pairs,
    const CalibrationOptions& options = {});

/// Convenience wrapper: distances measured on `encoder`'s c-vector
/// segments.
Result<CalibratedThresholds> CalibrateThresholds(
    const CVectorRecordEncoder& encoder,
    const std::vector<std::pair<Record, Record>>& matching_pairs,
    const CalibrationOptions& options = {});

/// Convenience wrapper for Bloom-filter embeddings (the BfH space).
Result<CalibratedThresholds> CalibrateThresholds(
    const BloomRecordEncoder& encoder,
    const std::vector<std::pair<Record, Record>>& matching_pairs,
    const CalibrationOptions& options = {});

}  // namespace cbvlink

#endif  // CBVLINK_EVAL_CALIBRATION_H_
