// Experiment harness: runs linkers over generated data-set pairs and
// aggregates the paper's quality measures across repetitions (the paper
// averages 50 runs per configuration).

#ifndef CBVLINK_EVAL_EXPERIMENT_H_
#define CBVLINK_EVAL_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "src/datagen/dataset.h"
#include "src/eval/measures.h"
#include "src/linkage/linker.h"

namespace cbvlink {

/// Outcome of one linkage run evaluated against ground truth.
struct ExperimentResult {
  std::string method;
  QualityMeasures quality;
  LinkageResult linkage;
};

/// Runs `linker` over the data-set pair and scores it.
Result<ExperimentResult> RunLinkage(Linker& linker, const LinkagePair& data);

/// Mean measures across repetitions.
struct AveragedResult {
  double pairs_completeness = 0.0;
  double pairs_quality = 0.0;
  double reduction_ratio = 0.0;
  double embed_seconds = 0.0;
  double index_seconds = 0.0;
  double match_seconds = 0.0;
  double total_seconds = 0.0;
  double comparisons = 0.0;
  double blocking_groups = 0.0;
  size_t repetitions = 0;
};

/// Averages a batch of results (typically repetitions of one
/// configuration with different seeds).
AveragedResult Average(const std::vector<ExperimentResult>& results);

/// Runs `repetitions` rounds: each round regenerates the data with a
/// fresh seed, rebuilds a linker via `make_linker(round_seed)`, links,
/// and scores.  Returns the averaged measures.
Result<AveragedResult> RunRepeated(
    const RecordGenerator& generator, const PerturbationScheme& scheme,
    LinkagePairOptions data_options, size_t repetitions,
    const std::function<Result<std::unique_ptr<Linker>>(uint64_t seed)>&
        make_linker);

/// Reads the benchmark scale from the CBVLINK_RECORDS environment
/// variable, falling back to `fallback` when unset or unparsable.  Lets
/// the benches run at the paper's 1M scale on demand.
size_t RecordsFromEnv(size_t fallback);

/// Reads the repetition count from CBVLINK_REPS (same contract).
size_t RepetitionsFromEnv(size_t fallback);

}  // namespace cbvlink

#endif  // CBVLINK_EVAL_EXPERIMENT_H_
