// Blocking/matching quality measures (Section 6): Pairs Completeness,
// Pairs Quality, and Reduction Ratio.
//
//   PC = |M_found ∩ M| / |M|         — accuracy of finding true matches
//   PQ = |M_found ∩ M| / |CR|        — efficiency of the candidate set
//   RR = 1 - |CR| / (|A| * |B|)      — comparison-space reduction
//
// where M is the ground truth and CR the set of candidate pairs actually
// compared.

#ifndef CBVLINK_EVAL_MEASURES_H_
#define CBVLINK_EVAL_MEASURES_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/common/hashing.h"
#include "src/common/record.h"
#include "src/datagen/dataset.h"

namespace cbvlink {

/// Hash functor so IdPair can key unordered containers.
struct IdPairHash {
  size_t operator()(const IdPair& p) const {
    return static_cast<size_t>(
        HashCombine(Mix64(p.a_id), p.b_id));
  }
};

/// A set of record pairs.
using PairSet = std::unordered_set<IdPair, IdPairHash>;

/// Builds a PairSet from ground-truth entries.
PairSet TruthPairs(const std::vector<GroundTruthEntry>& truth);

/// The three measures plus their raw ingredients.
struct QualityMeasures {
  double pairs_completeness = 0.0;
  double pairs_quality = 0.0;
  double reduction_ratio = 0.0;
  uint64_t true_matches_found = 0;
  uint64_t total_true_matches = 0;
  uint64_t candidate_pairs = 0;  // |CR|
};

/// Computes the measures for a linkage outcome.  `found` may contain
/// duplicates (they are collapsed); `candidate_pairs` is the |CR| reported
/// by the matcher; `size_a * size_b` is the full comparison space.
QualityMeasures ComputeQuality(const std::vector<IdPair>& found,
                               const PairSet& truth, uint64_t candidate_pairs,
                               size_t size_a, size_t size_b);

}  // namespace cbvlink

#endif  // CBVLINK_EVAL_MEASURES_H_
