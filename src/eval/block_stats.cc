#include "src/eval/block_stats.h"

#include <algorithm>

namespace cbvlink {

double GiniCoefficient(std::vector<size_t> sizes) {
  if (sizes.empty()) return 0.0;
  std::sort(sizes.begin(), sizes.end());
  double total = 0.0;
  double weighted = 0.0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    total += static_cast<double>(sizes[i]);
    weighted += static_cast<double>(i + 1) * static_cast<double>(sizes[i]);
  }
  if (total == 0.0) return 0.0;
  const double n = static_cast<double>(sizes.size());
  // G = (2 * sum(i * x_i) - (n + 1) * sum(x_i)) / (n * sum(x_i)).
  return (2.0 * weighted - (n + 1.0) * total) / (n * total);
}

namespace {

void Accumulate(const BlockingTable& table, BucketStats* stats,
                std::vector<size_t>* sizes) {
  for (const auto& [key, bucket] : table.buckets()) {
    const size_t size = bucket.size();
    ++stats->num_buckets;
    stats->num_entries += size;
    stats->max_bucket = std::max(stats->max_bucket, size);
    stats->expected_probe_candidates +=
        static_cast<double>(size) * static_cast<double>(size);
    sizes->push_back(size);
  }
}

BucketStats Finalize(BucketStats stats, std::vector<size_t> sizes) {
  if (stats.num_buckets > 0) {
    stats.mean_bucket = static_cast<double>(stats.num_entries) /
                        static_cast<double>(stats.num_buckets);
  }
  stats.gini = GiniCoefficient(std::move(sizes));
  return stats;
}

}  // namespace

BucketStats ComputeBucketStats(const BlockingTable& table) {
  BucketStats stats;
  std::vector<size_t> sizes;
  Accumulate(table, &stats, &sizes);
  return Finalize(stats, std::move(sizes));
}

BucketStats ComputeBucketStats(const std::vector<BlockingTable>& tables) {
  BucketStats stats;
  std::vector<size_t> sizes;
  for (const BlockingTable& table : tables) {
    Accumulate(table, &stats, &sizes);
  }
  return Finalize(stats, std::move(sizes));
}

}  // namespace cbvlink
