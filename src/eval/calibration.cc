#include "src/eval/calibration.h"

#include <algorithm>
#include <cmath>

#include "src/common/str.h"

namespace cbvlink {

Rule CalibratedThresholds::ToRule() const {
  std::vector<Rule> predicates;
  predicates.reserve(thetas.size());
  for (size_t i = 0; i < thetas.size(); ++i) {
    predicates.push_back(Rule::Pred(i, thetas[i]));
  }
  if (predicates.size() == 1) return std::move(predicates[0]);
  return Rule::And(std::move(predicates));
}

Result<CalibratedThresholds> CalibrateThresholds(
    size_t num_attributes,
    const std::function<Result<std::vector<size_t>>(const Record&,
                                                    const Record&)>&
        attribute_distances,
    const std::vector<std::pair<Record, Record>>& matching_pairs,
    const CalibrationOptions& options) {
  if (matching_pairs.empty()) {
    return Status::InvalidArgument("calibration sample is empty");
  }
  if (options.recall_target <= 0.0 || options.recall_target > 1.0) {
    return Status::InvalidArgument(
        StrFormat("recall target %f outside (0, 1]", options.recall_target));
  }
  if (num_attributes == 0) {
    return Status::InvalidArgument("no attributes to calibrate");
  }

  std::vector<std::vector<size_t>> distances(num_attributes);
  for (auto& column : distances) column.reserve(matching_pairs.size());
  for (const auto& [a, b] : matching_pairs) {
    Result<std::vector<size_t>> d = attribute_distances(a, b);
    if (!d.ok()) return d.status();
    if (d.value().size() != num_attributes) {
      return Status::Internal("distance callback returned wrong arity");
    }
    for (size_t i = 0; i < num_attributes; ++i) {
      distances[i].push_back(d.value()[i]);
    }
  }

  CalibratedThresholds out;
  out.thetas.resize(num_attributes);
  out.max_distances.resize(num_attributes);
  for (size_t i = 0; i < num_attributes; ++i) {
    std::vector<size_t>& column = distances[i];
    std::sort(column.begin(), column.end());
    // The quantile index retaining recall_target of the sample.
    const size_t index = std::min(
        column.size() - 1,
        static_cast<size_t>(
            std::ceil(options.recall_target * column.size()) - 1));
    out.thetas[i] = column[index];
    out.max_distances[i] = column.back();
  }
  return out;
}

namespace {

/// Shared implementation over anything exposing Encode + AttributeDistance.
template <typename Encoder>
Result<CalibratedThresholds> CalibrateWithEncoder(
    const Encoder& encoder,
    const std::vector<std::pair<Record, Record>>& matching_pairs,
    const CalibrationOptions& options) {
  const size_t nf = encoder.schema().num_attributes();
  return CalibrateThresholds(
      nf,
      [&](const Record& a,
          const Record& b) -> Result<std::vector<size_t>> {
        Result<EncodedRecord> ea = encoder.Encode(a);
        if (!ea.ok()) return ea.status();
        Result<EncodedRecord> eb = encoder.Encode(b);
        if (!eb.ok()) return eb.status();
        std::vector<size_t> out(nf);
        for (size_t i = 0; i < nf; ++i) {
          out[i] =
              encoder.AttributeDistance(ea.value().bits, eb.value().bits, i);
        }
        return out;
      },
      matching_pairs, options);
}

}  // namespace

Result<CalibratedThresholds> CalibrateThresholds(
    const CVectorRecordEncoder& encoder,
    const std::vector<std::pair<Record, Record>>& matching_pairs,
    const CalibrationOptions& options) {
  return CalibrateWithEncoder(encoder, matching_pairs, options);
}

Result<CalibratedThresholds> CalibrateThresholds(
    const BloomRecordEncoder& encoder,
    const std::vector<std::pair<Record, Record>>& matching_pairs,
    const CalibrationOptions& options) {
  return CalibrateWithEncoder(encoder, matching_pairs, options);
}

}  // namespace cbvlink
