// Minimal CSV emission for benchmark series.
//
// Every bench binary prints its table to stdout and, when the
// CBVLINK_CSV_DIR environment variable is set, also writes a CSV per
// figure so the series can be re-plotted.

#ifndef CBVLINK_EVAL_CSV_H_
#define CBVLINK_EVAL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace cbvlink {

/// Streams rows of a single CSV file.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.  Returns IOError
  /// when the file cannot be created.
  static Result<CsvWriter> Open(const std::string& path,
                                const std::vector<std::string>& header);

  /// Appends one row; fields are quoted when they contain separators.
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience for numeric rows.
  void WriteNumericRow(const std::string& label,
                       const std::vector<double>& values);

 private:
  explicit CsvWriter(std::ofstream stream) : stream_(std::move(stream)) {}

  static std::string EscapeField(const std::string& field);

  std::ofstream stream_;
};

/// Returns CBVLINK_CSV_DIR, or an empty string when unset (CSV output
/// disabled).
std::string CsvDirFromEnv();

}  // namespace cbvlink

#endif  // CBVLINK_EVAL_CSV_H_
