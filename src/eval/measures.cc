#include "src/eval/measures.h"

namespace cbvlink {

PairSet TruthPairs(const std::vector<GroundTruthEntry>& truth) {
  PairSet pairs;
  pairs.reserve(truth.size());
  for (const GroundTruthEntry& entry : truth) pairs.insert(entry.pair);
  return pairs;
}

QualityMeasures ComputeQuality(const std::vector<IdPair>& found,
                               const PairSet& truth, uint64_t candidate_pairs,
                               size_t size_a, size_t size_b) {
  PairSet unique_found;
  unique_found.reserve(found.size());
  for (const IdPair& pair : found) unique_found.insert(pair);

  uint64_t hits = 0;
  for (const IdPair& pair : unique_found) {
    if (truth.contains(pair)) ++hits;
  }

  QualityMeasures q;
  q.true_matches_found = hits;
  q.total_true_matches = truth.size();
  q.candidate_pairs = candidate_pairs;
  q.pairs_completeness =
      truth.empty() ? 1.0
                    : static_cast<double>(hits) /
                          static_cast<double>(truth.size());
  q.pairs_quality = candidate_pairs == 0
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(candidate_pairs);
  const double space =
      static_cast<double>(size_a) * static_cast<double>(size_b);
  q.reduction_ratio =
      space == 0.0 ? 0.0
                   : 1.0 - static_cast<double>(candidate_pairs) / space;
  return q;
}

}  // namespace cbvlink
