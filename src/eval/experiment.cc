#include "src/eval/experiment.h"

#include <cstdlib>
#include <memory>

namespace cbvlink {

Result<ExperimentResult> RunLinkage(Linker& linker, const LinkagePair& data) {
  Result<LinkageResult> linkage = linker.Link(data.a, data.b);
  if (!linkage.ok()) return linkage.status();
  ExperimentResult out;
  out.method = std::string(linker.name());
  out.linkage = std::move(linkage).value();
  const PairSet truth = TruthPairs(data.truth);
  out.quality =
      ComputeQuality(out.linkage.matches, truth, out.linkage.stats.comparisons,
                     data.a.size(), data.b.size());
  return out;
}

AveragedResult Average(const std::vector<ExperimentResult>& results) {
  AveragedResult avg;
  if (results.empty()) return avg;
  for (const ExperimentResult& r : results) {
    avg.pairs_completeness += r.quality.pairs_completeness;
    avg.pairs_quality += r.quality.pairs_quality;
    avg.reduction_ratio += r.quality.reduction_ratio;
    avg.embed_seconds += r.linkage.embed_seconds;
    avg.index_seconds += r.linkage.index_seconds;
    avg.match_seconds += r.linkage.match_seconds;
    avg.total_seconds += r.linkage.total_seconds();
    avg.comparisons += static_cast<double>(r.linkage.stats.comparisons);
    avg.blocking_groups += static_cast<double>(r.linkage.blocking_groups);
  }
  const double n = static_cast<double>(results.size());
  avg.pairs_completeness /= n;
  avg.pairs_quality /= n;
  avg.reduction_ratio /= n;
  avg.embed_seconds /= n;
  avg.index_seconds /= n;
  avg.match_seconds /= n;
  avg.total_seconds /= n;
  avg.comparisons /= n;
  avg.blocking_groups /= n;
  avg.repetitions = results.size();
  return avg;
}

Result<AveragedResult> RunRepeated(
    const RecordGenerator& generator, const PerturbationScheme& scheme,
    LinkagePairOptions data_options, size_t repetitions,
    const std::function<Result<std::unique_ptr<Linker>>(uint64_t seed)>&
        make_linker) {
  std::vector<ExperimentResult> results;
  results.reserve(repetitions);
  for (size_t rep = 0; rep < repetitions; ++rep) {
    const uint64_t seed = data_options.seed + rep * 9973ULL;
    LinkagePairOptions round = data_options;
    round.seed = seed;
    Result<LinkagePair> data = BuildLinkagePair(generator, scheme, round);
    if (!data.ok()) return data.status();
    Result<std::unique_ptr<Linker>> linker = make_linker(seed);
    if (!linker.ok()) return linker.status();
    Result<ExperimentResult> result =
        RunLinkage(*linker.value(), data.value());
    if (!result.ok()) return result.status();
    results.push_back(std::move(result).value());
  }
  return Average(results);
}

namespace {

size_t SizeFromEnv(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || parsed == 0) return fallback;
  return static_cast<size_t>(parsed);
}

}  // namespace

size_t RecordsFromEnv(size_t fallback) {
  return SizeFromEnv("CBVLINK_RECORDS", fallback);
}

size_t RepetitionsFromEnv(size_t fallback) {
  return SizeFromEnv("CBVLINK_REPS", fallback);
}

}  // namespace cbvlink
