#include "src/common/failpoint.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/common/str.h"
#include "src/telemetry/metrics.h"

namespace cbvlink {

namespace {

struct Entry {
  FailpointAction action = FailpointAction::kOff;
  uint64_t param = 0;
  uint64_t trigger_at = 0;  // 0 = every hit
  uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Entry> sites;
  std::once_flag env_once;
};

Registry& TheRegistry() {
  static Registry* r = new Registry;  // leaked: outlives static dtors
  return *r;
}

// Count of active sites; call sites gate on it with one relaxed load.
std::atomic<int> g_active{0};

void ParseEnvOnce() {
  std::call_once(TheRegistry().env_once, [] {
    const char* spec = std::getenv("CBVLINK_FAILPOINTS");
    if (spec != nullptr && *spec != '\0') {
      // Errors in the env spec are intentionally fatal-free: the spec is
      // operator input, and a typo should not take the process down.
      (void)Failpoints::ActivateFromSpec(spec);
    }
  });
}

}  // namespace

void Failpoints::Activate(const std::string& site, FailpointAction action,
                          uint64_t param, uint64_t trigger_at) {
  if (action == FailpointAction::kOff) {
    Deactivate(site);
    return;
  }
  Registry& r = TheRegistry();
  std::scoped_lock lock(r.mu);
  auto [it, inserted] = r.sites.insert_or_assign(
      site, Entry{action, param, trigger_at, 0});
  (void)it;
  if (inserted) g_active.fetch_add(1, std::memory_order_relaxed);
}

void Failpoints::Deactivate(const std::string& site) {
  Registry& r = TheRegistry();
  std::scoped_lock lock(r.mu);
  if (r.sites.erase(site) > 0) {
    g_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::DeactivateAll() {
  Registry& r = TheRegistry();
  std::scoped_lock lock(r.mu);
  g_active.fetch_sub(static_cast<int>(r.sites.size()),
                     std::memory_order_relaxed);
  r.sites.clear();
}

Status Failpoints::ActivateFromSpec(const std::string& spec) {
  for (const std::string& raw : StrSplit(spec, ';')) {
    const std::string_view item = StripAsciiWhitespace(raw);
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument(
          StrFormat("failpoint spec item '%s' is not site=action",
                    std::string(item).c_str()));
    }
    const std::string site(StripAsciiWhitespace(item.substr(0, eq)));
    std::string_view action_str = StripAsciiWhitespace(item.substr(eq + 1));

    uint64_t trigger_at = 0;
    const size_t at = action_str.rfind('@');
    if (at != std::string_view::npos) {
      const std::string count(action_str.substr(at + 1));
      char* end = nullptr;
      trigger_at = std::strtoull(count.c_str(), &end, 10);
      if (end == count.c_str() || *end != '\0' || trigger_at == 0) {
        return Status::InvalidArgument(
            StrFormat("failpoint '%s': bad hit index '%s'", site.c_str(),
                      count.c_str()));
      }
      action_str = action_str.substr(0, at);
    }

    uint64_t param = 0;
    std::string_view name = action_str;
    const size_t paren = action_str.find('(');
    if (paren != std::string_view::npos) {
      if (action_str.back() != ')') {
        return Status::InvalidArgument(
            StrFormat("failpoint '%s': unterminated parameter", site.c_str()));
      }
      const std::string num(
          action_str.substr(paren + 1, action_str.size() - paren - 2));
      char* end = nullptr;
      param = std::strtoull(num.c_str(), &end, 10);
      if (end == num.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            StrFormat("failpoint '%s': bad parameter '%s'", site.c_str(),
                      num.c_str()));
      }
      name = action_str.substr(0, paren);
    }

    FailpointAction action;
    if (name == "error") {
      action = FailpointAction::kError;
    } else if (name == "short_write") {
      action = FailpointAction::kShortWrite;
    } else if (name == "delay") {
      action = FailpointAction::kDelay;
    } else {
      return Status::InvalidArgument(
          StrFormat("failpoint '%s': unknown action '%s'", site.c_str(),
                    std::string(name).c_str()));
    }
    Activate(site, action, param, trigger_at);
  }
  return Status::OK();
}

bool Failpoints::AnyActive() {
  ParseEnvOnce();
  return g_active.load(std::memory_order_relaxed) > 0;
}

FailpointHit Failpoints::Eval(const char* site) {
  ParseEnvOnce();
  if (g_active.load(std::memory_order_relaxed) == 0) return {};
  Registry& r = TheRegistry();
  std::scoped_lock lock(r.mu);
  const auto it = r.sites.find(site);
  if (it == r.sites.end()) return {};
  Entry& e = it->second;
  ++e.hits;
  if (e.trigger_at != 0 && e.hits != e.trigger_at) return {};
  // An injected fault is an operational event: surface it in telemetry
  // (total + per-site) so a dump taken during a fault drill explains
  // its own anomalies.  Triggers are rare by construction, so the
  // registry lookups here cost nothing on real traffic.
  telemetry::Registry& treg = telemetry::Registry::Global();
  treg.GetCounter("failpoint_triggered_total")->Add(1);
  treg.GetCounter(
          telemetry::LabeledName("failpoint_triggered_total", "site", site))
      ->Add(1);
  return FailpointHit{e.action, e.param};
}

uint64_t Failpoints::HitCount(const std::string& site) {
  Registry& r = TheRegistry();
  std::scoped_lock lock(r.mu);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

Status FailpointInject(const char* site) {
  const FailpointHit hit = Failpoints::Eval(site);
  switch (hit.action) {
    case FailpointAction::kOff:
      return Status::OK();
    case FailpointAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(hit.param));
      return Status::OK();
    case FailpointAction::kError:
    case FailpointAction::kShortWrite:
      return Status::IOError(
          StrFormat("failpoint '%s' injected failure", site));
  }
  return Status::OK();
}

void FailpointDelay(const char* site) {
  const FailpointHit hit = Failpoints::Eval(site);
  if (hit.action == FailpointAction::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(hit.param));
  }
}

}  // namespace cbvlink
