// CRC32C (Castagnoli) checksums for on-disk integrity.
//
// Snapshot and encoded-record files append a CRC32C trailer over every
// preceding byte (src/io/serialization.h), so bit rot, torn writes, and
// adversarial edits are detected before any length field is trusted.
// CRC32C detects all single-byte errors and all burst errors up to 32
// bits, which is exactly the failure class a single flipped disk byte
// produces.
//
// The implementation is a portable table-driven one (no SSE4.2
// dependency); snapshot IO is not a hot path.

#ifndef CBVLINK_COMMON_CRC32_H_
#define CBVLINK_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace cbvlink {

/// Extends a running CRC32C with `n` bytes.  Start from
/// `kCrc32cInit` (0) and feed chunks in order; the result is
/// independent of the chunking.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC32C of one contiguous buffer.
uint32_t Crc32c(const void* data, size_t n);

inline constexpr uint32_t kCrc32cInit = 0;

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_CRC32_H_
