// Deterministic, fast pseudo-random number generation.
//
// Every randomized component (c-vector hash families, LSH bit sampling,
// MinHash permutations, p-stable projections, the data generator and the
// perturbation engine) draws from an explicitly seeded Rng so experiments
// are reproducible run-to-run.  The generator is xoshiro256**, seeded via
// SplitMix64 as its authors recommend.

#ifndef CBVLINK_COMMON_RANDOM_H_
#define CBVLINK_COMMON_RANDOM_H_

#include <array>
#include <cstdint>
#include <limits>

namespace cbvlink {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator, so
/// it can be plugged into <random> distributions.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed = 0x5eedc0de5eedc0deULL) { Seed(seed); }

  /// Reseeds the generator.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64-bit value.
  uint64_t operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  Requires bound > 0.  Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian();

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<uint64_t, 4> state_{};
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_RANDOM_H_
