// The record value type shared by every layer.

#ifndef CBVLINK_COMMON_RECORD_H_
#define CBVLINK_COMMON_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cbvlink {

/// Identifier attached to every record (the paper's `Id` attribute).
using RecordId = uint64_t;

/// A flat record: an identifier plus one string value per linkage
/// attribute f_1..f_{n_f}, in schema order.
struct Record {
  RecordId id = 0;
  std::vector<std::string> fields;
};

/// A candidate or matched pair of record identifiers, one from each
/// data set (a_id from A, b_id from B).
struct IdPair {
  RecordId a_id = 0;
  RecordId b_id = 0;

  bool operator==(const IdPair&) const = default;
  auto operator<=>(const IdPair&) const = default;
};

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_RECORD_H_
