// A monotonic deadline: "this work is worthless after instant T".
//
// Deadlines travel across the network tier as *relative* millisecond
// budgets (a kDeadline prefix frame on the binary protocol, the
// `X-Deadline-Ms` header on HTTP) because wall clocks on two machines
// cannot be compared; each hop re-anchors the remaining budget against
// its own std::chrono::steady_clock.  Within a process a Deadline is an
// absolute steady_clock instant, so queue wait, retry sleeps, and
// socket timeouts all debit the same budget.
//
// The infinite deadline is the default and never expires; it encodes
// "no caller-imposed budget" without a sentinel magic number leaking
// into call sites.

#ifndef CBVLINK_COMMON_DEADLINE_H_
#define CBVLINK_COMMON_DEADLINE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace cbvlink {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// The default deadline is infinite: Expired() is always false and
  /// RemainingMs() saturates at kInfiniteMs.
  Deadline() = default;

  /// A deadline that never expires.
  static Deadline Infinite() { return Deadline(); }

  /// A deadline `budget_ms` from now.  A non-positive budget is already
  /// expired.
  static Deadline AfterMs(int64_t budget_ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(budget_ms));
  }

  /// A deadline at an absolute monotonic instant.
  static Deadline At(Clock::time_point when) { return Deadline(when); }

  bool IsInfinite() const { return infinite_; }

  /// True once the instant has passed.  Infinite deadlines never expire.
  bool Expired() const { return !infinite_ && Clock::now() >= when_; }

  /// Milliseconds until expiry, clamped to >= 0.  Infinite deadlines
  /// report kInfiniteMs.
  int64_t RemainingMs() const {
    if (infinite_) return kInfiniteMs;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        when_ - Clock::now());
    return std::max<int64_t>(0, left.count());
  }

  /// The absolute instant.  Meaningless (time_point::max) when infinite.
  Clock::time_point when() const {
    return infinite_ ? Clock::time_point::max() : when_;
  }

  /// The earlier of two deadlines.
  static Deadline Min(const Deadline& a, const Deadline& b) {
    if (a.infinite_) return b;
    if (b.infinite_) return a;
    return Deadline(std::min(a.when_, b.when_));
  }

  /// Sentinel RemainingMs() for an infinite deadline — large enough that
  /// any timeout arithmetic saturates, small enough not to overflow when
  /// converted to microseconds.
  static constexpr int64_t kInfiniteMs = int64_t{1} << 40;

 private:
  explicit Deadline(Clock::time_point when) : infinite_(false), when_(when) {}

  bool infinite_ = true;
  Clock::time_point when_{};
};

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_DEADLINE_H_
