#include "src/common/random.h"

#include <cassert>
#include <cmath>

namespace cbvlink {

uint64_t Rng::Below(uint64_t bound) {
  assert(bound > 0);
  // Lemire (2019): multiply a 64-bit random by the bound and keep the high
  // word; reject the small biased region.
  uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextGaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  have_spare_gaussian_ = true;
  return u * factor;
}

}  // namespace cbvlink
