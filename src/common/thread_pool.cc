#include "src/common/thread_pool.h"

#include <algorithm>

namespace cbvlink {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(
    size_t total, const std::function<void(size_t, size_t, size_t)>& fn) {
  ParallelFor(total, 0, fn);
}

void ThreadPool::ParallelFor(
    size_t total, size_t min_chunk,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (total == 0) return;
  size_t chunks = std::min(total, workers_.size());
  if (min_chunk > 1) {
    // At least min_chunk items per chunk, still covering all of [0, total).
    chunks = std::min(chunks, std::max<size_t>(1, total / min_chunk));
  }
  const size_t per = (total + chunks - 1) / chunks;
  // Each call owns its completion latch.  Waiting on the pool-wide
  // in_flight_ counter (the old implementation) made two concurrent
  // ParallelFor calls wait for *each other's* tasks: one caller could be
  // held hostage by another caller's long-running (or blocked) chunks.
  struct Completion {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  Completion done;
  done.remaining = (total + per - 1) / per;  // chunks actually submitted
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * per;
    const size_t end = std::min(total, begin + per);
    if (begin >= end) break;
    Submit([&fn, &done, c, begin, end] {
      fn(c, begin, end);
      std::unique_lock<std::mutex> lock(done.mu);
      if (--done.remaining == 0) done.cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done.mu);
  done.cv.wait(lock, [&done] { return done.remaining == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace cbvlink
