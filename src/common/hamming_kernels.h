// Runtime-dispatched Hamming-distance kernels over word-packed vectors.
//
// The compact Hamming space makes distance computation "particularly
// lightweight" (Section 1); every downstream stage — Algorithm 2's
// blocking comparison, online serving, replication catch-up — bottlenecks
// on pairwise comparison cost.  This layer turns the scalar
// word-at-a-time popcount of bitvector.h into a KernelSet of function
// pointers with scalar, AVX2, and AVX-512 VPOPCNTDQ implementations,
// selected once per process from CPUID so one baseline-x86-64 binary uses
// the widest ISA the host actually has (DESIGN.md §14).
//
// Contracts shared by every implementation:
//  * Operands are zero-padded past the logical bit width (the BitVector
//    invariant, inherited by the VectorStore arena), so whole-word
//    XOR+popcount is exact.
//  * Distances are exact integers — every implementation returns results
//    byte-identical to the scalar reference on any input; the equivalence
//    suite in tests/test_hamming_kernels.cc is the gate.
//  * Batch kernels expose only the `distance <= theta` verdict, so they
//    may abandon a candidate early once its partial distance exceeds
//    theta (early-exit); the verdict is still exact.
//
// Selection: ActiveKernels() resolves once, preferring AVX-512 (F+BW+DQ+
// VL+VPOPCNTDQ) over AVX2 over scalar, each gated on both compile-time
// availability and CPUID+XGETBV at runtime — the dispatcher never calls
// into an ISA the CPU lacks.  CBVLINK_KERNEL=scalar|avx2|avx512 overrides
// the choice for tests and CI; requesting an unavailable set falls back
// to the best available one with a one-line stderr notice instead of
// executing an illegal instruction.

#ifndef CBVLINK_COMMON_HAMMING_KERNELS_H_
#define CBVLINK_COMMON_HAMMING_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace cbvlink {

/// One dispatchable family of Hamming kernels.  All function pointers are
/// always non-null.
struct KernelSet {
  /// "scalar", "avx2", or "avx512" — stable names used by CBVLINK_KERNEL,
  /// the telemetry gauge, and the bench kernels dimension.
  const char* name;

  /// Whole-record distance over `num_words` zero-padded words.
  size_t (*distance)(const uint64_t* a, const uint64_t* b, size_t num_words);

  /// Distance restricted to bits [offset, offset + length), which must
  /// lie within both operands.
  size_t (*range_distance)(const uint64_t* a, const uint64_t* b,
                           size_t offset, size_t length);

  /// 1xN batch threshold kernel: for each i in [0, n),
  ///   row_i = rows + (dense ? dense[i] : i) * stride
  ///   out[i] = (distance(probe, row_i, num_words) <= theta) ? 1 : 0.
  /// `dense == nullptr` means rows are consecutive (a gathered scratch
  /// buffer); otherwise `dense` holds arena row indices (the matcher's
  /// deduplicated bucket candidates).  May early-exit per row at theta.
  void (*batch_leq)(const uint64_t* probe, const uint64_t* rows,
                    size_t stride, const uint32_t* dense, size_t n,
                    size_t num_words, size_t theta, uint8_t* out);

  /// Specialized batch kernel for 2-word records — the paper's 120-bit
  /// cBV shape (Table 3), where the whole record is one XOR+popcount
  /// pair and the win comes from evaluating several candidates per
  /// vector register.  Same contract as batch_leq with num_words == 2.
  void (*batch_leq2)(const uint64_t* probe, const uint64_t* rows,
                     size_t stride, const uint32_t* dense, size_t n,
                     size_t theta, uint8_t* out);
};

/// The portable reference implementation; always available.
const KernelSet& ScalarKernels();

/// Compiled-in SIMD sets, or nullptr when the toolchain could not build
/// them.  A non-null return says nothing about the *CPU*: callers must
/// still check CpuSupports*() before executing (ActiveKernels does).
const KernelSet* Avx2Kernels();
const KernelSet* Avx512Kernels();

/// CPUID + XGETBV feature probes (false on non-x86-64 builds).
bool CpuSupportsAvx2();
/// AVX-512 F+BW+DQ+VL+VPOPCNTDQ with OS ZMM state support.
bool CpuSupportsAvx512Popcnt();

/// Pure selection logic, exposed for tests: `env` is the CBVLINK_KERNEL
/// value (nullptr/empty = auto).  Never returns a set the given support
/// flags rule out; unknown or unavailable requests fall back to the best
/// supported set.  `notice`, when non-null, receives a human-readable
/// explanation when the request could not be honoured (left untouched
/// otherwise).
const KernelSet& ResolveKernels(const char* env, bool has_avx2,
                                bool has_avx512, const char** notice);

/// The process-wide active set: resolved once on first call from
/// CBVLINK_KERNEL and the CPU probes, then cached.  Thread-safe.
const KernelSet& ActiveKernels();

/// Test/bench hook: overrides the set ActiveKernels() returns (nullptr
/// restores automatic resolution).  Process-wide, not thread-safe against
/// concurrent matching — flip it only between runs.
void ForceKernelsForTest(const KernelSet* kernels);

/// Convenience dispatcher: routes 2-word records to the specialized cBV
/// kernel, everything else to the general batch kernel.
inline void KernelBatchLeq(const KernelSet& kernels, const uint64_t* probe,
                           const uint64_t* rows, size_t stride,
                           const uint32_t* dense, size_t n, size_t num_words,
                           size_t theta, uint8_t* out) {
  if (num_words == 2) {
    kernels.batch_leq2(probe, rows, stride, dense, n, theta, out);
  } else {
    kernels.batch_leq(probe, rows, stride, dense, n, num_words, theta, out);
  }
}

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_HAMMING_KERNELS_H_
