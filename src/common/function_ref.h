// A non-owning, trivially copyable reference to a callable.
//
// std::function on a hot path costs a potential heap allocation at
// construction and an indirect call through a type-erasure vtable per
// invocation.  FunctionRef erases to a raw object pointer plus a plain
// function pointer: construction never allocates, invocation is one
// indirect call, and the object is two words.  The referenced callable
// must outlive the FunctionRef — it is only safe as a parameter type
// whose referent lives for the duration of the call (the same contract
// as std::string_view for strings).

#ifndef CBVLINK_COMMON_FUNCTION_REF_H_
#define CBVLINK_COMMON_FUNCTION_REF_H_

#include <type_traits>
#include <utility>

namespace cbvlink {

template <typename Signature>
class FunctionRef;

/// Non-owning callable reference with signature R(Args...).
template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        fn_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return fn_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*fn_)(void*, Args...);
};

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_FUNCTION_REF_H_
