#include "src/common/hashing.h"

namespace cbvlink {

PairwiseHash PairwiseHash::Random(Rng& rng, uint64_t m) {
  // a, b uniform from (0, P) per Section 5.2 of the paper; a must be
  // non-zero for pairwise independence.
  const uint64_t a = 1 + rng.Below(kHashPrime - 1);
  const uint64_t b = 1 + rng.Below(kHashPrime - 1);
  return PairwiseHash(a, b, m);
}

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL ^ Mix64(seed);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace cbvlink
