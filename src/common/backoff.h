// Capped exponential backoff with decorrelated jitter.
//
// Shared by every retry loop in the network tier (NetClient's retry
// policy, the Replica's failure path, cbvlink_query) so all of them
// desynchronize the same way: the next delay is drawn uniformly from
// [base, prev * 3] and capped ("decorrelated jitter", the variant that
// empirically spreads a thundering herd fastest), seeded explicitly so
// tests are reproducible.

#ifndef CBVLINK_COMMON_BACKOFF_H_
#define CBVLINK_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "src/common/random.h"

namespace cbvlink {

struct BackoffOptions {
  /// First delay, and the lower bound of every jittered draw.
  int64_t base_ms = 20;
  /// Upper cap on any delay.
  int64_t max_ms = 2000;
  /// Seed for the jitter Rng; fixed default keeps tests deterministic,
  /// callers that want per-instance spread mix in their own entropy.
  uint64_t seed = 0x6ac0ffbac0ffULL;
};

class Backoff {
 public:
  explicit Backoff(BackoffOptions options = {})
      : options_(options), rng_(options.seed), prev_ms_(options.base_ms) {}

  /// Delay before the next attempt.  The first call returns base_ms
  /// exactly (a deterministic floor); subsequent calls draw from
  /// [base, prev * 3] capped at max_ms.
  int64_t NextDelayMs() {
    ++failures_;
    if (failures_ == 1) {
      prev_ms_ = options_.base_ms;
      return prev_ms_;
    }
    const int64_t lo = options_.base_ms;
    const int64_t hi = std::min(options_.max_ms,
                                std::max(lo, prev_ms_ * 3));
    prev_ms_ = rng_.Uniform(lo, hi);
    return prev_ms_;
  }

  /// Call after a success: the next failure starts from base_ms again.
  void Reset() {
    failures_ = 0;
    prev_ms_ = options_.base_ms;
  }

  /// Consecutive failures since the last Reset().
  int failures() const { return failures_; }

  const BackoffOptions& options() const { return options_; }

 private:
  BackoffOptions options_;
  Rng rng_;
  int failures_ = 0;
  int64_t prev_ms_;
};

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_BACKOFF_H_
