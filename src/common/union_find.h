// Disjoint-set (union-find) structure with path compression and union
// by size.  Used to consolidate pairwise match decisions into entity
// clusters (linkage/dedup.h).

#ifndef CBVLINK_COMMON_UNION_FIND_H_
#define CBVLINK_COMMON_UNION_FIND_H_

#include <cstddef>
#include <vector>

namespace cbvlink {

/// Disjoint sets over the dense universe [0, size).
class UnionFind {
 public:
  /// Creates `size` singleton sets.
  explicit UnionFind(size_t size);

  /// Representative of x's set (with path compression).
  size_t Find(size_t x);

  /// Merges the sets of a and b; returns true when they were distinct.
  bool Union(size_t a, size_t b);

  /// True iff a and b share a set.
  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  /// Number of elements in x's set.
  size_t SetSize(size_t x) { return size_[Find(x)]; }

  /// Number of disjoint sets.
  size_t NumSets() const { return num_sets_; }

  size_t size() const { return parent_.size(); }

  /// Materializes the sets: each inner vector lists one set's members in
  /// ascending order; singleton sets are included.  Ordered by smallest
  /// member.
  std::vector<std::vector<size_t>> Sets();

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
  size_t num_sets_;
};

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_UNION_FIND_H_
