#include "src/common/hamming_kernels.h"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/bitvector.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define CBVLINK_X86_64 1
#endif

namespace cbvlink {

namespace {

// ---------------------------------------------------------------------
// Scalar reference kernels.  `distance` and `range_distance` delegate to
// the inline bitvector.h implementations so there is exactly one scalar
// truth; the batch kernels add the per-row early exit.

size_t ScalarDistance(const uint64_t* a, const uint64_t* b,
                      size_t num_words) {
  return HammingDistanceWords(a, b, num_words);
}

size_t ScalarRangeDistance(const uint64_t* a, const uint64_t* b,
                           size_t offset, size_t length) {
  return HammingDistanceRangeWords(a, b, offset, length);
}

void ScalarBatchLeq(const uint64_t* probe, const uint64_t* rows,
                    size_t stride, const uint32_t* dense, size_t n,
                    size_t num_words, size_t theta, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t* row =
        rows + static_cast<size_t>(dense != nullptr ? dense[i] : i) * stride;
    size_t dist = 0;
    for (size_t w = 0; w < num_words; ++w) {
      dist += static_cast<size_t>(std::popcount(probe[w] ^ row[w]));
      if (dist > theta) break;  // verdict settled; abandon the row
    }
    out[i] = dist <= theta ? 1 : 0;
  }
}

void ScalarBatchLeq2(const uint64_t* probe, const uint64_t* rows,
                     size_t stride, const uint32_t* dense, size_t n,
                     size_t theta, uint8_t* out) {
  const uint64_t p0 = probe[0];
  const uint64_t p1 = probe[1];
  for (size_t i = 0; i < n; ++i) {
    const uint64_t* row =
        rows + static_cast<size_t>(dense != nullptr ? dense[i] : i) * stride;
    const size_t dist =
        static_cast<size_t>(std::popcount(p0 ^ row[0])) +
        static_cast<size_t>(std::popcount(p1 ^ row[1]));
    out[i] = dist <= theta ? 1 : 0;
  }
}

constexpr KernelSet kScalarKernels = {
    "scalar", ScalarDistance, ScalarRangeDistance,
    ScalarBatchLeq, ScalarBatchLeq2,
};

// ---------------------------------------------------------------------
// CPU feature detection.  Raw CPUID + XGETBV rather than
// __builtin_cpu_supports so the probed bit set (notably AVX512VPOPCNTDQ)
// does not depend on the compiler version.

#ifdef CBVLINK_X86_64

uint64_t ReadXcr0() {
  uint32_t eax = 0;
  uint32_t edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

struct CpuFeatures {
  bool avx2 = false;
  bool avx512_popcnt = false;
};

CpuFeatures ProbeCpu() {
  CpuFeatures features;
  uint32_t eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return features;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  if (!osxsave) return features;  // OS does not manage extended state
  const uint64_t xcr0 = ReadXcr0();
  const bool ymm_enabled = (xcr0 & 0x6) == 0x6;          // XMM + YMM
  const bool zmm_enabled = (xcr0 & 0xe6) == 0xe6;        // + opmask/ZMM
  if (!ymm_enabled) return features;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return features;
  features.avx2 = (ebx & (1u << 5)) != 0;
  const bool avx512f = (ebx & (1u << 16)) != 0;
  const bool avx512dq = (ebx & (1u << 17)) != 0;
  const bool avx512bw = (ebx & (1u << 30)) != 0;
  const bool avx512vl = (ebx & (1u << 31)) != 0;
  const bool avx512vpopcntdq = (ecx & (1u << 14)) != 0;
  features.avx512_popcnt = zmm_enabled && avx512f && avx512dq && avx512bw &&
                           avx512vl && avx512vpopcntdq;
  return features;
}

const CpuFeatures& CachedCpuFeatures() {
  static const CpuFeatures features = ProbeCpu();
  return features;
}

#endif  // CBVLINK_X86_64

std::atomic<const KernelSet*> g_forced_kernels{nullptr};

}  // namespace

const KernelSet& ScalarKernels() { return kScalarKernels; }

// The per-ISA translation units define these when the toolchain could
// compile them; the stubs below cover builds without the flags.
#if !CBVLINK_HAVE_AVX2_BUILD
const KernelSet* Avx2Kernels() { return nullptr; }
#endif
#if !CBVLINK_HAVE_AVX512_BUILD
const KernelSet* Avx512Kernels() { return nullptr; }
#endif

bool CpuSupportsAvx2() {
#ifdef CBVLINK_X86_64
  return CachedCpuFeatures().avx2;
#else
  return false;
#endif
}

bool CpuSupportsAvx512Popcnt() {
#ifdef CBVLINK_X86_64
  return CachedCpuFeatures().avx512_popcnt;
#else
  return false;
#endif
}

const KernelSet& ResolveKernels(const char* env, bool has_avx2,
                                bool has_avx512, const char** notice) {
  const KernelSet* avx2 = has_avx2 ? Avx2Kernels() : nullptr;
  const KernelSet* avx512 = has_avx512 ? Avx512Kernels() : nullptr;
  const KernelSet& best =
      avx512 != nullptr ? *avx512 : avx2 != nullptr ? *avx2 : kScalarKernels;
  if (env == nullptr || *env == '\0') return best;
  if (std::strcmp(env, "scalar") == 0) return kScalarKernels;
  if (std::strcmp(env, "avx2") == 0) {
    if (avx2 != nullptr) return *avx2;
    if (notice != nullptr) {
      *notice = "CBVLINK_KERNEL=avx2 unavailable (CPU or build lacks AVX2)";
    }
    return kScalarKernels;  // never dispatch above an explicit request
  }
  if (std::strcmp(env, "avx512") == 0) {
    if (avx512 != nullptr) return *avx512;
    if (notice != nullptr) {
      *notice =
          "CBVLINK_KERNEL=avx512 unavailable (CPU or build lacks AVX-512 "
          "VPOPCNTDQ)";
    }
    return avx2 != nullptr ? *avx2 : kScalarKernels;
  }
  if (notice != nullptr) *notice = "unknown CBVLINK_KERNEL value";
  return best;
}

const KernelSet& ActiveKernels() {
  const KernelSet* forced = g_forced_kernels.load(std::memory_order_acquire);
  if (forced != nullptr) return *forced;
  static const KernelSet& resolved = [] {
    const char* notice = nullptr;
    const KernelSet& set =
        ResolveKernels(std::getenv("CBVLINK_KERNEL"), CpuSupportsAvx2(),
                       CpuSupportsAvx512Popcnt(), &notice);
    if (notice != nullptr) {
      std::fprintf(stderr, "cbvlink: %s; using '%s' kernels\n", notice,
                   set.name);
    }
    return set;
  }();
  return resolved;
}

void ForceKernelsForTest(const KernelSet* kernels) {
  g_forced_kernels.store(kernels, std::memory_order_release);
}

}  // namespace cbvlink
