#include "src/common/union_find.h"

#include <algorithm>
#include <numeric>

namespace cbvlink {

UnionFind::UnionFind(size_t size)
    : parent_(size), size_(size, 1), num_sets_(size) {
  std::iota(parent_.begin(), parent_.end(), size_t{0});
}

size_t UnionFind::Find(size_t x) {
  size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[x] != root) {
    const size_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

std::vector<std::vector<size_t>> UnionFind::Sets() {
  std::vector<std::vector<size_t>> by_root(parent_.size());
  for (size_t x = 0; x < parent_.size(); ++x) {
    by_root[Find(x)].push_back(x);
  }
  std::vector<std::vector<size_t>> sets;
  sets.reserve(num_sets_);
  for (std::vector<size_t>& members : by_root) {
    if (!members.empty()) sets.push_back(std::move(members));
  }
  return sets;
}

}  // namespace cbvlink
