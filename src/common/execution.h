// The cross-cutting execution surface: one options struct for every
// parallel stage of the pipeline (embedding, bulk index build, matching)
// instead of a per-config `num_threads` knob with drifting conventions.
//
// Convention (unified across the whole code base, DESIGN.md §10):
//   num_threads == 0  ->  hardware concurrency
//   num_threads == 1  ->  serial (no pool is created)
//   num_threads == N  ->  N workers
// A non-null `pool` overrides `num_threads`: the caller keeps ownership
// and the pool must outlive every call it is passed to.  All parallel
// stages guarantee byte-identical output to the serial path at any
// thread count (deterministic chunking + in-order merges).

#ifndef CBVLINK_COMMON_EXECUTION_H_
#define CBVLINK_COMMON_EXECUTION_H_

#include <cstddef>
#include <memory>

namespace cbvlink {

class ThreadPool;

/// How a Link / bulk-build / batch call should execute.
struct ExecutionOptions {
  /// Shared pool to run on (borrowed, never owned; must outlive the
  /// call).  When set, `num_threads` is ignored.
  ThreadPool* pool = nullptr;
  /// Worker threads when no pool is supplied: 0 = hardware concurrency,
  /// 1 = serial (the default), N = N workers.
  size_t num_threads = 1;
  /// Minimum items per parallel chunk; 0 lets each stage pick.  Raising
  /// it bounds scheduling overhead for cheap per-item work without
  /// affecting results (chunk boundaries stay deterministic).
  size_t chunk_size_hint = 0;

  /// Serial execution (the default-constructed state).
  static ExecutionOptions Serial() { return ExecutionOptions{}; }

  /// `n` workers under the unified convention (0 = hardware).
  static ExecutionOptions WithThreads(size_t n) {
    ExecutionOptions options;
    options.num_threads = n;
    return options;
  }

  /// Runs on a caller-owned pool.
  static ExecutionOptions WithPool(ThreadPool* pool) {
    ExecutionOptions options;
    options.pool = pool;
    return options;
  }
};

/// Maps the unified `num_threads` convention to a concrete worker count:
/// 0 -> hardware concurrency (>= 1), anything else unchanged.
size_t ResolveNumThreads(size_t num_threads);

/// Resolves ExecutionOptions for the duration of one call: borrows the
/// supplied pool, or owns a freshly created one when `num_threads`
/// resolves to more than one worker.  pool() == nullptr means "run
/// serially" — every parallel stage takes that branch without touching a
/// pool.  The context (and therefore any owned pool) must outlive the
/// stages run under it.
class ExecutionContext {
 public:
  explicit ExecutionContext(const ExecutionOptions& options);
  ~ExecutionContext();

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// The pool to run on, or null for serial execution.
  ThreadPool* pool() const { return pool_; }

  /// Worker count behind pool() (1 when serial) — what LinkageResult
  /// reports as threads_used.
  size_t threads_used() const { return threads_used_; }

  /// The caller's chunk-size hint (0 = stage default).
  size_t chunk_size_hint() const { return chunk_size_hint_; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;
  size_t threads_used_ = 1;
  size_t chunk_size_hint_ = 0;
};

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_EXECUTION_H_
