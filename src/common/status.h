// Status / Result error-handling primitives (RocksDB / Arrow idiom).
//
// Library code in cbvlink does not throw exceptions: fallible operations
// return a Status, and fallible producers return a Result<T>.  Both are
// cheap to copy in the OK case (no allocation) and carry a code plus a
// human-readable message otherwise.

#ifndef CBVLINK_COMMON_STATUS_H_
#define CBVLINK_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace cbvlink {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kNotImplemented = 7,
  kIOError = 8,
  /// A bounded resource (admission queue, connection table) is full and
  /// the request was shed rather than queued — the retryable overload
  /// signal the network tier maps to HTTP 429.
  kResourceExhausted = 9,
  /// The caller's deadline expired before (or while) the work ran.  The
  /// network tier sheds already-expired requests with this code — both
  /// at admission and again at worker dequeue — and maps it to HTTP 504.
  /// Distinct from kResourceExhausted: the queue may have had room; the
  /// *time budget* did not.
  kDeadlineExceeded = 10,
};

/// Returns a static, human-readable name for a status code ("InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// The OK state is represented by a null payload, so ok-status construction,
/// copy, and destruction never allocate.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs a status with the given code and message.  A code of
  /// StatusCode::kOk ignores the message and produces an OK status.
  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<const Rep>(Rep{code, std::move(message)});
    }
  }

  /// Factory helpers, one per non-OK code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const noexcept { return rep_ == nullptr; }

  /// The status code; kOk for success.
  StatusCode code() const noexcept {
    return rep_ ? rep_->code : StatusCode::kOk;
  }

  /// The failure message; empty for success.
  std::string_view message() const noexcept {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const noexcept {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // shared_ptr keeps copies cheap; statuses are immutable once built.
  std::shared_ptr<const Rep> rep_;
};

/// Either a value of type T or a failure Status.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const noexcept { return status_.ok(); }
  const Status& status() const noexcept { return status_; }

  /// The contained value.  Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// The contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace cbvlink

/// Propagates a non-OK Status out of the current function.
#define CBVLINK_RETURN_NOT_OK(expr)          \
  do {                                       \
    ::cbvlink::Status _st = (expr);          \
    if (!_st.ok()) return _st;               \
  } while (false)

#endif  // CBVLINK_COMMON_STATUS_H_
