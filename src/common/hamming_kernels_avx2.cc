// AVX2 Hamming kernels: 256-bit XOR plus the vpshufb nibble-LUT popcount
// (AVX2 has no vector popcount instruction).  Compiled with -mavx2 in an
// isolated translation unit; nothing here executes unless the dispatcher
// verified AVX2 via CPUID, so the rest of the binary stays baseline
// x86-64.
//
// Shape of the win: the LUT pipeline costs ~8 ops per 256 bits, so it
// pays off on wide records (Bloom-filter configurations, 500+ bits).
// For the 2-word cBV shape the scalar popcnt pair is already near
// optimal; batch_leq2 therefore keeps scalar popcnt but unrolls 4 rows
// for instruction-level parallelism instead of forcing ymm traffic.

#include "src/common/hamming_kernels.h"

#if CBVLINK_HAVE_AVX2_BUILD

#include <immintrin.h>

#include <algorithm>
#include <bit>

namespace cbvlink {
namespace {

/// Per-64-bit-lane popcount of a 256-bit vector (nibble LUT + SAD).
inline __m256i Popcnt256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline size_t HorizontalSum(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<size_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<size_t>(_mm_extract_epi64(sum, 1));
}

size_t Avx2Distance(const uint64_t* a, const uint64_t* b, size_t num_words) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    acc = _mm256_add_epi64(acc, Popcnt256(x));
  }
  size_t dist = HorizontalSum(acc);
  for (; w < num_words; ++w) {
    dist += static_cast<size_t>(std::popcount(a[w] ^ b[w]));
  }
  return dist;
}

size_t Avx2RangeDistance(const uint64_t* a, const uint64_t* b, size_t offset,
                         size_t length) {
  if (length == 0) return 0;
  const size_t first_word = offset >> 6;
  const size_t last_bit = offset + length - 1;
  const size_t last_word = last_bit >> 6;
  const size_t lead = offset & 63;
  const size_t trail = last_bit & 63;
  if (first_word == last_word) {
    uint64_t x = (a[first_word] ^ b[first_word]) & (~uint64_t{0} << lead);
    if (trail != 63) x &= (uint64_t{1} << (trail + 1)) - 1;
    return static_cast<size_t>(std::popcount(x));
  }
  size_t dist = static_cast<size_t>(
      std::popcount((a[first_word] ^ b[first_word]) & (~uint64_t{0} << lead)));
  uint64_t tail = a[last_word] ^ b[last_word];
  if (trail != 63) tail &= (uint64_t{1} << (trail + 1)) - 1;
  dist += static_cast<size_t>(std::popcount(tail));
  if (last_word > first_word + 1) {
    dist += Avx2Distance(a + first_word + 1, b + first_word + 1,
                         last_word - first_word - 1);
  }
  return dist;
}

void Avx2BatchLeq(const uint64_t* probe, const uint64_t* rows, size_t stride,
                  const uint32_t* dense, size_t n, size_t num_words,
                  size_t theta, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t* row =
        rows + static_cast<size_t>(dense != nullptr ? dense[i] : i) * stride;
    size_t dist = 0;
    size_t w = 0;
    // Early-exit checkpoint every 16 words (1024 bits): one horizontal
    // sum per checkpoint, cheap next to the popcounts it can skip.
    while (w + 4 <= num_words && dist <= theta) {
      const size_t block_words =
          std::min<size_t>(((num_words - w) / 4) * 4, 16);
      __m256i acc = _mm256_setzero_si256();
      for (const size_t end = w + block_words; w < end; w += 4) {
        const __m256i x = _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(probe + w)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w)));
        acc = _mm256_add_epi64(acc, Popcnt256(x));
      }
      dist += HorizontalSum(acc);
    }
    for (; w < num_words && dist <= theta; ++w) {
      dist += static_cast<size_t>(std::popcount(probe[w] ^ row[w]));
    }
    out[i] = dist <= theta ? 1 : 0;
  }
}

void Avx2BatchLeq2(const uint64_t* probe, const uint64_t* rows, size_t stride,
                   const uint32_t* dense, size_t n, size_t theta,
                   uint8_t* out) {
  const uint64_t p0 = probe[0];
  const uint64_t p1 = probe[1];
  const auto row_at = [&](size_t i) {
    return rows + static_cast<size_t>(dense != nullptr ? dense[i] : i) * stride;
  };
  size_t i = 0;
  // 4-way unroll: four independent popcnt chains per iteration.
  for (; i + 4 <= n; i += 4) {
    const uint64_t* r0 = row_at(i);
    const uint64_t* r1 = row_at(i + 1);
    const uint64_t* r2 = row_at(i + 2);
    const uint64_t* r3 = row_at(i + 3);
    const size_t d0 = static_cast<size_t>(std::popcount(p0 ^ r0[0])) +
                      static_cast<size_t>(std::popcount(p1 ^ r0[1]));
    const size_t d1 = static_cast<size_t>(std::popcount(p0 ^ r1[0])) +
                      static_cast<size_t>(std::popcount(p1 ^ r1[1]));
    const size_t d2 = static_cast<size_t>(std::popcount(p0 ^ r2[0])) +
                      static_cast<size_t>(std::popcount(p1 ^ r2[1]));
    const size_t d3 = static_cast<size_t>(std::popcount(p0 ^ r3[0])) +
                      static_cast<size_t>(std::popcount(p1 ^ r3[1]));
    out[i] = d0 <= theta ? 1 : 0;
    out[i + 1] = d1 <= theta ? 1 : 0;
    out[i + 2] = d2 <= theta ? 1 : 0;
    out[i + 3] = d3 <= theta ? 1 : 0;
  }
  for (; i < n; ++i) {
    const uint64_t* row = row_at(i);
    const size_t dist = static_cast<size_t>(std::popcount(p0 ^ row[0])) +
                        static_cast<size_t>(std::popcount(p1 ^ row[1]));
    out[i] = dist <= theta ? 1 : 0;
  }
}

constexpr KernelSet kAvx2Kernels = {
    "avx2", Avx2Distance, Avx2RangeDistance, Avx2BatchLeq, Avx2BatchLeq2,
};

}  // namespace

const KernelSet* Avx2Kernels() { return &kAvx2Kernels; }

}  // namespace cbvlink

#endif  // CBVLINK_HAVE_AVX2_BUILD
