// Wall-clock timing helper for the experiment harness.

#ifndef CBVLINK_COMMON_STOPWATCH_H_
#define CBVLINK_COMMON_STOPWATCH_H_

#include <chrono>

namespace cbvlink {

/// Measures elapsed wall-clock time from construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since start, as a double.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since start.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_STOPWATCH_H_
