// Small string formatting/manipulation helpers (GCC 12 lacks <format>).

#ifndef CBVLINK_COMMON_STR_H_
#define CBVLINK_COMMON_STR_H_

#include <string>
#include <string_view>
#include <vector>

namespace cbvlink {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Uppercases ASCII letters in place-copy.
std::string ToUpperAscii(std::string_view s);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_STR_H_
