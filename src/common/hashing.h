// Hash families used across the embedding and LSH layers.
//
// * PairwiseHash — the paper's g(x) = ((a*x + b) mod P) mod m with
//   P = 2^31 - 1 (Section 5.2), used to fold q-gram indexes into compact
//   c-vectors.
// * BloomHashFamily — k independent index hashes for the BfH baseline's
//   field-level Bloom filters.  The paper uses MD5/SHA1-derived functions;
//   we substitute the standard double-hashing scheme h_i(x) = h1 + i*h2
//   over two strong 64-bit mixes, which Kirsch & Mitzenmacher showed is
//   asymptotically equivalent for Bloom-filter purposes.
// * Mix64 / HashCombine — general-purpose mixing for bucket keys.

#ifndef CBVLINK_COMMON_HASHING_H_
#define CBVLINK_COMMON_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/random.h"

namespace cbvlink {

/// Mersenne prime 2^31 - 1, the modulus the paper suggests for g(x).
inline constexpr uint64_t kHashPrime = (uint64_t{1} << 31) - 1;

/// Strong 64-bit finalizer (splittable-random / murmur3 style).
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Combines a hash value into an accumulator (boost::hash_combine shape,
/// 64-bit constants).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
                 (seed >> 4));
}

/// One member of the pairwise-independent family
/// g(x) = ((a*x + b) mod P) mod m, with a, b drawn uniformly from (0, P).
class PairwiseHash {
 public:
  /// Constructs the identity-range hash with given coefficients.
  /// Requires 0 < a < P, 0 <= b < P, m > 0.
  PairwiseHash(uint64_t a, uint64_t b, uint64_t m) : a_(a), b_(b), m_(m) {}

  /// Draws a random member of the family mapping into [0, m).
  static PairwiseHash Random(Rng& rng, uint64_t m);

  /// Applies the hash.
  uint64_t operator()(uint64_t x) const {
    return ((a_ * (x % kHashPrime) + b_) % kHashPrime) % m_;
  }

  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }
  uint64_t range() const { return m_; }

 private:
  uint64_t a_;
  uint64_t b_;
  uint64_t m_;
};

/// k index hashes into [0, num_bits) for Bloom-filter insertion, generated
/// by double hashing from a 64-bit seed.
class BloomHashFamily {
 public:
  /// Creates a family of `k` hashes into [0, num_bits).
  /// Requires k > 0 and num_bits > 0.
  BloomHashFamily(size_t k, size_t num_bits, uint64_t seed)
      : k_(k), num_bits_(num_bits), seed_(seed) {}

  size_t k() const { return k_; }
  size_t num_bits() const { return num_bits_; }

  /// Appends the k positions for element `x` to `out`.
  void Positions(uint64_t x, std::vector<size_t>* out) const {
    const uint64_t h1 = Mix64(x ^ seed_);
    const uint64_t h2 = Mix64(x + 0x9e3779b97f4a7c15ULL + seed_) | 1;
    for (size_t i = 0; i < k_; ++i) {
      out->push_back(static_cast<size_t>((h1 + i * h2) % num_bits_));
    }
  }

 private:
  size_t k_;
  size_t num_bits_;
  uint64_t seed_;
};

/// FNV-1a over arbitrary bytes; used for hashing composite blocking keys.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_HASHING_H_
