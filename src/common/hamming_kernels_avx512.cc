// AVX-512 Hamming kernels: 512-bit XOR + the VPOPCNTDQ vector popcount.
// Compiled with -mavx512{f,bw,dq,vl,vpopcntdq} in an isolated translation
// unit; the dispatcher only routes here after CPUID+XGETBV confirmed the
// full feature set, so the rest of the binary stays baseline x86-64.
//
// The 2-word cBV specialization (Table 3's 120-bit record) evaluates
// four candidates per zmm register: each candidate's two words occupy one
// 128-bit lane, one VPOPCNTQ covers all four, and a pairwise lane add +
// compare-mask yields four verdicts per ~10 instructions — the batch
// shape Algorithm 2's candidate loop feeds.

#include "src/common/hamming_kernels.h"

#if CBVLINK_HAVE_AVX512_BUILD

#include <immintrin.h>

#include <algorithm>
#include <bit>

namespace cbvlink {
namespace {

size_t Avx512Distance(const uint64_t* a, const uint64_t* b,
                      size_t num_words) {
  __m512i acc = _mm512_setzero_si512();
  size_t w = 0;
  for (; w + 8 <= num_words; w += 8) {
    const __m512i x =
        _mm512_xor_si512(_mm512_loadu_si512(a + w), _mm512_loadu_si512(b + w));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  if (w < num_words) {
    // Masked loads suppress faults on the inactive lanes, so reading at
    // the buffer edge is safe.
    const __mmask8 mask =
        static_cast<__mmask8>((1u << (num_words - w)) - 1u);
    const __m512i x = _mm512_xor_si512(_mm512_maskz_loadu_epi64(mask, a + w),
                                       _mm512_maskz_loadu_epi64(mask, b + w));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  return static_cast<size_t>(_mm512_reduce_add_epi64(acc));
}

size_t Avx512RangeDistance(const uint64_t* a, const uint64_t* b,
                           size_t offset, size_t length) {
  if (length == 0) return 0;
  const size_t first_word = offset >> 6;
  const size_t last_bit = offset + length - 1;
  const size_t last_word = last_bit >> 6;
  const size_t lead = offset & 63;
  const size_t trail = last_bit & 63;
  if (first_word == last_word) {
    uint64_t x = (a[first_word] ^ b[first_word]) & (~uint64_t{0} << lead);
    if (trail != 63) x &= (uint64_t{1} << (trail + 1)) - 1;
    return static_cast<size_t>(std::popcount(x));
  }
  size_t dist = static_cast<size_t>(
      std::popcount((a[first_word] ^ b[first_word]) & (~uint64_t{0} << lead)));
  uint64_t tail = a[last_word] ^ b[last_word];
  if (trail != 63) tail &= (uint64_t{1} << (trail + 1)) - 1;
  dist += static_cast<size_t>(std::popcount(tail));
  if (last_word > first_word + 1) {
    dist += Avx512Distance(a + first_word + 1, b + first_word + 1,
                           last_word - first_word - 1);
  }
  return dist;
}

void Avx512BatchLeq(const uint64_t* probe, const uint64_t* rows,
                    size_t stride, const uint32_t* dense, size_t n,
                    size_t num_words, size_t theta, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t* row =
        rows + static_cast<size_t>(dense != nullptr ? dense[i] : i) * stride;
    size_t dist = 0;
    size_t w = 0;
    // Early-exit checkpoint every 32 words (2048 bits): one lane
    // reduction per checkpoint.
    while (w + 8 <= num_words && dist <= theta) {
      const size_t block_words =
          std::min<size_t>(((num_words - w) / 8) * 8, 32);
      __m512i acc = _mm512_setzero_si512();
      for (const size_t end = w + block_words; w < end; w += 8) {
        const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(probe + w),
                                           _mm512_loadu_si512(row + w));
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
      }
      dist += static_cast<size_t>(_mm512_reduce_add_epi64(acc));
    }
    if (w < num_words && dist <= theta) {
      const __mmask8 mask =
          static_cast<__mmask8>((1u << (num_words - w)) - 1u);
      const __m512i x =
          _mm512_xor_si512(_mm512_maskz_loadu_epi64(mask, probe + w),
                           _mm512_maskz_loadu_epi64(mask, row + w));
      dist += static_cast<size_t>(
          _mm512_reduce_add_epi64(_mm512_popcnt_epi64(x)));
    }
    out[i] = dist <= theta ? 1 : 0;
  }
}

void Avx512BatchLeq2(const uint64_t* probe, const uint64_t* rows,
                     size_t stride, const uint32_t* dense, size_t n,
                     size_t theta, uint8_t* out) {
  // Probe replicated into all four 128-bit lanes.
  const __m512i probe4 = _mm512_broadcast_i32x4(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(probe)));
  const __m512i theta8 = _mm512_set1_epi64(static_cast<long long>(theta));
  const auto row_at = [&](size_t i) {
    return rows + static_cast<size_t>(dense != nullptr ? dense[i] : i) * stride;
  };
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i r0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row_at(i)));
    const __m128i r1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row_at(i + 1)));
    const __m128i r2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row_at(i + 2)));
    const __m128i r3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row_at(i + 3)));
    const __m256i lo = _mm256_set_m128i(r1, r0);
    const __m256i hi = _mm256_set_m128i(r3, r2);
    const __m512i v =
        _mm512_inserti64x4(_mm512_castsi256_si512(lo), hi, 1);
    const __m512i c = _mm512_popcnt_epi64(_mm512_xor_si512(v, probe4));
    // Pairwise add within each 128-bit lane: qword lanes 0,2,4,6 then
    // hold each candidate's full distance.
    const __m512i sums = _mm512_add_epi64(c, _mm512_unpackhi_epi64(c, c));
    const __mmask8 leq = _mm512_cmple_epu64_mask(sums, theta8);
    out[i] = leq & 1;
    out[i + 1] = (leq >> 2) & 1;
    out[i + 2] = (leq >> 4) & 1;
    out[i + 3] = (leq >> 6) & 1;
  }
  for (; i < n; ++i) {
    const uint64_t* row = row_at(i);
    const size_t dist = static_cast<size_t>(std::popcount(probe[0] ^ row[0])) +
                        static_cast<size_t>(std::popcount(probe[1] ^ row[1]));
    out[i] = dist <= theta ? 1 : 0;
  }
}

constexpr KernelSet kAvx512Kernels = {
    "avx512", Avx512Distance, Avx512RangeDistance,
    Avx512BatchLeq, Avx512BatchLeq2,
};

}  // namespace

const KernelSet* Avx512Kernels() { return &kAvx512Kernels; }

}  // namespace cbvlink

#endif  // CBVLINK_HAVE_AVX512_BUILD
