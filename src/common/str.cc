#include "src/common/str.h"

#include <cstdarg>
#include <cstdio>

namespace cbvlink {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  const char* ws = " \t\r\n\f\v";
  const size_t begin = s.find_first_not_of(ws);
  if (begin == std::string_view::npos) return std::string_view();
  const size_t end = s.find_last_not_of(ws);
  return s.substr(begin, end - begin + 1);
}

}  // namespace cbvlink
