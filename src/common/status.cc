#include "src/common/status.h"

namespace cbvlink {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace cbvlink
