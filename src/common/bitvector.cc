#include "src/common/bitvector.h"

#include "src/common/str.h"

namespace cbvlink {

void BitVector::Append(const BitVector& other) {
  const size_t old_bits = num_bits_;
  num_bits_ += other.num_bits_;
  words_.resize((num_bits_ + 63) / 64, 0);
  if ((old_bits & 63) == 0) {
    // Word-aligned: copy whole words.
    const size_t word_off = old_bits >> 6;
    for (size_t i = 0; i < other.words_.size(); ++i) {
      words_[word_off + i] = other.words_[i];
    }
    // Mask out any stale bits beyond the new logical end (other.words_ is
    // already zero-padded past other.num_bits_, so nothing to do).
    return;
  }
  for (size_t i = 0; i < other.num_bits_; ++i) {
    if (other.Test(i)) Set(old_bits + i);
  }
}

BitVector BitVector::Slice(size_t offset, size_t length) const {
  assert(offset + length <= num_bits_);
  BitVector out(length);
  if ((offset & 63) == 0) {
    const size_t word_off = offset >> 6;
    for (size_t i = 0; i < out.words_.size(); ++i) {
      out.words_[i] = words_[word_off + i];
    }
    // Zero bits past `length` in the last word so PopCount/equality stay
    // correct.
    const size_t tail = length & 63;
    if (tail != 0) {
      out.words_.back() &= (uint64_t{1} << tail) - 1;
    }
    return out;
  }
  for (size_t i = 0; i < length; ++i) {
    if (Test(offset + i)) out.Set(i);
  }
  return out;
}

BitVector BitVector::FromWords(size_t num_bits, std::vector<uint64_t> words) {
  assert(words.size() == (num_bits + 63) / 64);
  assert((num_bits & 63) == 0 || words.empty() ||
         (words.back() >> (num_bits & 63)) == 0);
  BitVector out;
  out.num_bits_ = num_bits;
  out.words_ = std::move(words);
  return out;
}

Result<BitVector> BitVector::FromWordsValidated(size_t num_bits,
                                                std::vector<uint64_t> words) {
  const size_t expected_words = (num_bits + 63) / 64;
  if (words.size() != expected_words) {
    return Status::InvalidArgument(
        StrFormat("bit vector word count %zu does not match %zu bits "
                  "(expected %zu words)",
                  words.size(), num_bits, expected_words));
  }
  const size_t tail_bits = num_bits & 63;
  if (tail_bits != 0 && !words.empty() &&
      (words.back() >> tail_bits) != 0) {
    return Status::InvalidArgument(
        StrFormat("bit vector has nonzero padding past bit %zu", num_bits));
  }
  return FromWords(num_bits, std::move(words));
}

size_t BitVector::HammingDistanceRange(const BitVector& other, size_t offset,
                                       size_t length) const noexcept {
  assert(offset + length <= num_bits_);
  assert(offset + length <= other.num_bits_);
  return HammingDistanceRangeWords(words_.data(), other.words_.data(), offset,
                                   length);
}

double BitVector::JaccardDistance(const BitVector& other) const noexcept {
  assert(num_bits_ == other.num_bits_);
  size_t inter = 0;
  size_t uni = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    inter += static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
    uni += static_cast<size_t>(std::popcount(words_[i] | other.words_[i]));
  }
  if (uni == 0) return 0.0;
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

std::string BitVector::ToString() const {
  std::string out;
  out.reserve(num_bits_);
  for (size_t i = 0; i < num_bits_; ++i) {
    out.push_back(Test(i) ? '1' : '0');
  }
  return out;
}

}  // namespace cbvlink
