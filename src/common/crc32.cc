#include "src/common/crc32.h"

#include <array>

namespace cbvlink {

namespace {

// Reflected CRC32C polynomial (Castagnoli, 0x1EDC6F41).
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFF];
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(kCrc32cInit, data, n);
}

}  // namespace cbvlink
