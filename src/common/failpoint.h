// Failpoints: deterministic fault injection for tests and benches.
//
// A failpoint is a named site in production code ("io.atomic.rename",
// "service.insert", ...) that normally costs one relaxed atomic load.
// Tests — or an operator via the CBVLINK_FAILPOINTS environment
// variable — activate a site with an action, and the next hits of that
// site inject the fault:
//
//   error            the site returns Status::IOError
//   short_write(N)   a file-write site persists only the first N bytes
//                    and then fails (simulates a torn write / crash)
//   delay(MS)        the site sleeps MS milliseconds (exposes lock-path
//                    races and latency tails)
//
// Spec grammar (environment variable or ActivateFromSpec):
//
//   CBVLINK_FAILPOINTS="site=action[;site=action...]"
//   action := error | short_write(N) | delay(MS)            every hit
//           | error@K | short_write(N)@K | delay(MS)@K      K-th hit only
//
// Hits are counted per site from activation (1-based), so "@3" lets a
// test kill the third write of a multi-step save.  The environment
// variable is parsed once, on the first evaluation of any site.

#ifndef CBVLINK_COMMON_FAILPOINT_H_
#define CBVLINK_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace cbvlink {

/// What an activated failpoint does when hit.
enum class FailpointAction : int {
  kOff = 0,
  kError = 1,
  kShortWrite = 2,
  kDelay = 3,
};

/// The outcome of evaluating a site: the triggered action (kOff when
/// the site is inactive or this hit is not the targeted one) plus its
/// parameter (bytes for short_write, milliseconds for delay).
struct FailpointHit {
  FailpointAction action = FailpointAction::kOff;
  uint64_t param = 0;
};

/// Global failpoint registry.  All methods are thread-safe.
class Failpoints {
 public:
  /// Activates `site`.  `param` is the action parameter (short_write
  /// bytes / delay ms).  `trigger_at` = 0 triggers on every hit;
  /// K > 0 triggers on the K-th hit only (counted from activation).
  static void Activate(const std::string& site, FailpointAction action,
                       uint64_t param = 0, uint64_t trigger_at = 0);

  static void Deactivate(const std::string& site);
  static void DeactivateAll();

  /// Activates sites from a spec string (see grammar above).
  static Status ActivateFromSpec(const std::string& spec);

  /// True when any site is active; a single relaxed load, so production
  /// call sites are free when fault injection is off.
  static bool AnyActive();

  /// Records a hit of `site` and returns the triggered action.  Sleeps
  /// are NOT performed here (see FailpointInject / FailpointDelay).
  static FailpointHit Eval(const char* site);

  /// Hits recorded for `site` since activation (0 if inactive).
  static uint64_t HitCount(const std::string& site);
};

/// Evaluates `site` performing the delay action inline; returns a non-OK
/// Status for error/short_write actions, OK otherwise.
Status FailpointInject(const char* site);

/// Evaluates `site` performing only the delay action (for void contexts).
void FailpointDelay(const char* site);

}  // namespace cbvlink

/// Injects an error return at an activated site; free when no failpoint
/// is active anywhere.
#define CBVLINK_FAILPOINT(site)                               \
  do {                                                        \
    if (::cbvlink::Failpoints::AnyActive()) {                 \
      ::cbvlink::Status _fp_st = ::cbvlink::FailpointInject(site); \
      if (!_fp_st.ok()) return _fp_st;                        \
    }                                                         \
  } while (false)

/// Delay-only variant for void functions / lock paths.
#define CBVLINK_FAILPOINT_DELAY(site)                         \
  do {                                                        \
    if (::cbvlink::Failpoints::AnyActive()) {                 \
      ::cbvlink::FailpointDelay(site);                        \
    }                                                         \
  } while (false)

#endif  // CBVLINK_COMMON_FAILPOINT_H_
