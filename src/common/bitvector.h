// A compact, word-packed bit vector with fast Hamming distance.
//
// BitVector is the fundamental value type of the library: q-gram vectors,
// c-vectors, and Bloom filters (Sections 4.1, 5.2 and 6.1 of the paper) are
// all BitVectors of different sizes.  Hamming distance between two vectors
// is computed word-by-word with hardware popcount, which is what makes the
// compact Hamming space "particularly lightweight" for distance
// computations (Section 1).

#ifndef CBVLINK_COMMON_BITVECTOR_H_
#define CBVLINK_COMMON_BITVECTOR_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace cbvlink {

/// Hamming distance between two word-packed bit sequences of `num_words`
/// 64-bit words.  Padding bits past the logical length must be zero in
/// both operands (the BitVector invariant), so whole-word XOR+popcount is
/// exact.  This is the kernel the arena-backed matching engine runs
/// directly on contiguous storage, bypassing BitVector objects.
inline size_t HammingDistanceWords(const uint64_t* a, const uint64_t* b,
                                   size_t num_words) noexcept {
  size_t dist = 0;
  for (size_t i = 0; i < num_words; ++i) {
    dist += static_cast<size_t>(std::popcount(a[i] ^ b[i]));
  }
  return dist;
}

/// Hamming distance restricted to the bit range [offset, offset+length)
/// of two word-packed sequences.  The range must lie within both
/// sequences; bit 0 of word 0 is bit 0.
inline size_t HammingDistanceRangeWords(const uint64_t* a, const uint64_t* b,
                                        size_t offset,
                                        size_t length) noexcept {
  if (length == 0) return 0;
  const size_t first_word = offset >> 6;
  const size_t last_bit = offset + length - 1;
  const size_t last_word = last_bit >> 6;
  size_t dist = 0;
  for (size_t w = first_word; w <= last_word; ++w) {
    uint64_t x = a[w] ^ b[w];
    if (w == first_word) {
      const size_t lead = offset & 63;
      x &= ~uint64_t{0} << lead;
    }
    if (w == last_word) {
      const size_t trail = last_bit & 63;
      if (trail != 63) x &= (uint64_t{1} << (trail + 1)) - 1;
    }
    dist += static_cast<size_t>(std::popcount(x));
  }
  return dist;
}

/// Fixed-size sequence of bits packed into 64-bit words.
class BitVector {
 public:
  /// Constructs an empty (zero-bit) vector.
  BitVector() = default;

  /// Constructs a vector of `num_bits` bits, all cleared.
  explicit BitVector(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  /// Number of addressable bits.
  size_t size() const noexcept { return num_bits_; }

  /// True iff size() == 0.
  bool empty() const noexcept { return num_bits_ == 0; }

  /// Sets bit `i` to 1.  Requires i < size().
  void Set(size_t i) noexcept {
    assert(i < num_bits_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  /// Clears bit `i`.  Requires i < size().
  void Clear(size_t i) noexcept {
    assert(i < num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  /// Sets bit `i` to `value`.  Requires i < size().
  void Assign(size_t i, bool value) noexcept {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Returns bit `i`.  Requires i < size().
  bool Test(size_t i) const noexcept {
    assert(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of bits set to 1.
  size_t PopCount() const noexcept {
    size_t total = 0;
    for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
    return total;
  }

  /// Clears every bit, keeping the size.
  void Reset() noexcept {
    for (uint64_t& w : words_) w = 0;
  }

  /// Appends all bits of `other` after the current bits, growing this
  /// vector.  Used to build record-level vectors by concatenating
  /// attribute-level vectors (Section 4.1).
  void Append(const BitVector& other);

  /// Returns the sub-vector [offset, offset + length).  Requires the range
  /// to be within size().
  BitVector Slice(size_t offset, size_t length) const;

  /// Raw word storage (little-endian bit order within each word).
  const std::vector<uint64_t>& words() const noexcept { return words_; }

  /// Rebuilds a vector of `num_bits` bits from its word representation —
  /// the exact inverse of words(), used by deserialization so the on-disk
  /// word layout round-trips without a bit-by-bit reconstruction.
  /// Requires words.size() == ceil(num_bits / 64) and every padding bit
  /// past `num_bits` in the last word to be zero (operator== and
  /// PopCount() depend on that invariant); callers deserializing
  /// untrusted input must validate both before calling.
  static BitVector FromWords(size_t num_bits, std::vector<uint64_t> words);

  /// FromWords for untrusted input (snapshot restore, wire payloads):
  /// returns InvalidArgument instead of relying on the debug-only asserts
  /// when the word count does not match ceil(num_bits / 64) or a padding
  /// bit past `num_bits` is set.  A set padding bit would silently skew
  /// every whole-word Hamming distance involving the vector, so it is
  /// rejected at the boundary rather than trusted.
  static Result<BitVector> FromWordsValidated(size_t num_bits,
                                              std::vector<uint64_t> words);

  /// Hamming distance to `other`.  Requires equal sizes.
  size_t HammingDistance(const BitVector& other) const noexcept {
    assert(num_bits_ == other.num_bits_);
    return HammingDistanceWords(words_.data(), other.words_.data(),
                                words_.size());
  }

  /// Hamming distance restricted to the bit range [offset, offset+length),
  /// which must lie within both vectors.  Used for attribute-level
  /// distances on concatenated record vectors without copying.
  size_t HammingDistanceRange(const BitVector& other, size_t offset,
                              size_t length) const noexcept;

  /// Jaccard distance 1 - |a&b| / |a|b| over the set bits; 0 when both are
  /// all-zero (identical empty sets).
  double JaccardDistance(const BitVector& other) const noexcept;

  bool operator==(const BitVector& other) const noexcept {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

  /// '0'/'1' string, bit 0 first.  Intended for tests and debugging.
  std::string ToString() const;

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_BITVECTOR_H_
