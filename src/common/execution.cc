#include "src/common/execution.h"

#include <algorithm>
#include <thread>

#include "src/common/thread_pool.h"

namespace cbvlink {

size_t ResolveNumThreads(size_t num_threads) {
  if (num_threads != 0) return num_threads;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

ExecutionContext::ExecutionContext(const ExecutionOptions& options)
    : chunk_size_hint_(options.chunk_size_hint) {
  if (options.pool != nullptr) {
    pool_ = options.pool;
    threads_used_ = std::max<size_t>(1, pool_->num_threads());
    return;
  }
  const size_t resolved = ResolveNumThreads(options.num_threads);
  if (resolved <= 1) return;  // serial: pool_ stays null
  owned_ = std::make_unique<ThreadPool>(resolved);
  pool_ = owned_.get();
  threads_used_ = resolved;
}

ExecutionContext::~ExecutionContext() = default;

}  // namespace cbvlink
