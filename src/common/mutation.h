// The unified mutation surface: one value type for every way a record
// enters, changes in, or leaves the index.
//
// Before this existed, insert was threaded through three ad-hoc paths
// (direct service calls, journal replay, replication apply) that each
// re-derived "what does this byte stream mean".  A MutationOp names the
// operation once; LinkageService::ApplyMutation, the journal frame
// codec, replication apply, and snapshot merge all consume the same
// struct.
//
// Sequencing: the service stamps every acknowledged delete/update with a
// monotonically increasing sequence number.  Snapshots persist the
// highest acknowledged sequence, and replay/replication apply skips
// delete/update ops at or below that floor — the "dedupe by id +
// sequence" contract that makes retries and snapshot/journal overlap
// idempotent.  Insert frames predate sequencing and keep their original
// dedupe-by-record-id contract (sequence == 0 on the wire).

#ifndef CBVLINK_COMMON_MUTATION_H_
#define CBVLINK_COMMON_MUTATION_H_

#include <cstdint>
#include <utility>

#include "src/common/record.h"

namespace cbvlink {

/// What a MutationOp does to the index.  Values are the journal frame op
/// bytes (src/io/journal.h) — keep them in sync.
enum class MutationKind : uint8_t {
  kInsert = 1,  ///< add a record (first-insert-wins; resurrects a tombstone)
  kDelete = 2,  ///< tombstone a record by id (O(1); reclaimed by compaction)
  kUpdate = 3,  ///< replace a record's fields in place (re-encode + re-block)
};

/// One mutation, as acknowledged by the service, framed in the journal,
/// and shipped over replication.
struct MutationOp {
  MutationKind kind = MutationKind::kInsert;
  /// The full record for kInsert/kUpdate; only `record.id` is meaningful
  /// for kDelete (fields stay empty on the wire).
  Record record;
  /// Acknowledgement sequence for kDelete/kUpdate (see file comment);
  /// 0 for kInsert and for frames replayed from pre-sequence journals.
  uint64_t sequence = 0;

  static MutationOp Insert(Record r) {
    return MutationOp{MutationKind::kInsert, std::move(r), 0};
  }
  static MutationOp Delete(RecordId id, uint64_t seq) {
    Record r;
    r.id = id;
    return MutationOp{MutationKind::kDelete, std::move(r), seq};
  }
  static MutationOp Update(Record r, uint64_t seq) {
    return MutationOp{MutationKind::kUpdate, std::move(r), seq};
  }
};

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_MUTATION_H_
