// A minimal fixed-size thread pool.
//
// Dataset generation and the embedding step are embarrassingly parallel
// over records; the pool lets the linkage pipelines and benchmarks use all
// cores without per-call thread spawn cost.

#ifndef CBVLINK_COMMON_THREAD_POOL_H_
#define CBVLINK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cbvlink {

/// Fixed-size pool executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1; 0 is clamped to the
  /// hardware concurrency, or 1 if that is unknown).
  explicit ThreadPool(size_t num_threads);

  /// Waits for all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Splits [0, total) into roughly equal chunks, runs
  /// `fn(chunk_index, begin, end)` for each on the pool, and waits for
  /// *this call's* chunks only (a private completion latch), so multiple
  /// threads may run ParallelFor on one pool concurrently without
  /// blocking on each other's tasks.  The chunk count is
  /// min(total, num_threads()) and chunk boundaries depend only on
  /// `total` and the pool size, which is what lets callers merge
  /// per-chunk results deterministically.  Must not be called from a
  /// worker thread of the same pool.
  void ParallelFor(size_t total,
                   const std::function<void(size_t, size_t, size_t)>& fn);

  /// ParallelFor with a minimum chunk size: the chunk count is further
  /// capped so every chunk holds at least `min_chunk` items (0 behaves
  /// like the plain overload).  Boundaries still depend only on `total`,
  /// the pool size, and `min_chunk`, so per-chunk merges stay
  /// deterministic; the hint only bounds scheduling overhead for cheap
  /// per-item work.
  void ParallelFor(size_t total, size_t min_chunk,
                   const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cbvlink

#endif  // CBVLINK_COMMON_THREAD_POOL_H_
