// cbvlink_serve: run the concurrent linkage service from the command line.
//
// Builds (or restores) a registry index, then streams query CSV records
// through it, writing matched (registry_id, query_id) pairs.  This is the
// introduction's "nearly real-time" deployment: the registry is a
// long-lived service artifact that can be snapshotted to disk and
// restarted warm.
//
// Usage:
//   cbvlink_serve --registry A.csv --queries B.csv [options]
//   cbvlink_serve --snapshot-in S.cbvs --queries B.csv [options]
//
// Options:
//   --registry FILE        registry CSV (header; see --id-column)
//   --queries FILE         query CSV streamed against the registry
//   --snapshot-in FILE     restore the service from a snapshot instead of
//                          building it from --registry
//   --snapshot-out FILE    write a snapshot after serving
//   --insert               MatchAndInsert: queries join the registry so
//                          later arrivals can link to them
//   --id-column NAME       id column (default "id"; row numbers when
//                          absent — query auto-ids start after registry)
//   --rule RULE            classification rule (default: every attribute
//                          <= --theta)
//   --theta N              per-attribute threshold default (default 4)
//   --k N                  base hashes per blocking group (default 30)
//   --delta X              miss probability (default 0.1)
//   --alphanumeric         alphanumeric alphabet for every attribute
//   --seed N               RNG seed (default 7)
//   --num-threads N        batch worker threads (default 0 = hardware)
//   --shards N             lock shards (default 16)
//   --max-bucket N         bucket-size cap (default 0 = unlimited)
//   --overflow POLICY      truncate | scan (default scan)
//   --batch N              stream queries in batches of N (default 1024;
//                          1 = strictly sequential arrivals)
//   --out FILE             matched pairs CSV (default stdout)
//   --metrics-out FILE     telemetry JSON dump (latency quantiles,
//                          match-funnel counters, per-table LSH health),
//                          written atomically at exit and at every
//                          stats interval
//   --stats-interval SEC   periodic stats reporter: every SEC seconds
//                          print a one-line summary to stderr and
//                          refresh --metrics-out (0 = off, default)
//
// Network serving (src/net/): with --listen the process keeps serving
// after the optional query stream, speaking the binary protocol and
// HTTP/JSON on one port until SIGINT/SIGTERM:
//   --listen [ADDR:]PORT   serve over TCP (port 0 = ephemeral; the
//                          bound address is printed to stderr as
//                          "listening on ADDR:PORT")
//   --journal FILE         append-only insert journal: replayed on
//                          startup (after the registry/snapshot load),
//                          then every acknowledged insert is appended
//                          so a crash loses nothing
//   --fsync POLICY         journal durability: always (default), none,
//                          or a number N (fsync every N appends)
//   --queue-cap N          admission cap on queued requests; beyond it
//                          requests are shed with 429/RESOURCE_EXHAUSTED
//                          (default 256)
//   --max-conns N          accepted-connection cap (default 1024)
//   --idle-timeout SEC     close connections idle this long (default 60)
//   --follow HOST:PORT     warm-standby mode: bootstrap from the
//                          primary's snapshot, tail its journal, and
//                          (with --listen) serve read-only
//   --trace                enable request tracing: every Nth request
//                          (--trace-sample-n) keeps its span tree, and
//                          every request slower than --trace-slow-us
//                          is kept regardless (the slow-query log);
//                          captured traces are served at GET /tracez
//   --trace-sample-n N     head sampling: keep every Nth trace
//                          (default 1 = all; 0 = slow-only)
//   --trace-slow-us N      slow-query threshold in microseconds
//                          (default 50000; 0 disables tail capture)
//   --trace-out FILE       write captured traces as Chrome trace-event
//                          JSON at exit (load in chrome://tracing or
//                          Perfetto); slow queries also land in the
//                          sibling FILE with a .slow suffix
// Any --trace-* flag implies --trace.
// --num-threads sizes the network worker pool too, so one flag governs
// batch and network parallelism.
//
// Malformed query-CSV rows are skipped (not fatal): each skip is
// counted, the first reasons are reported at exit, and the process
// exits 3 instead of 0 so pipelines notice degraded input.  Exit codes:
// 0 success, 1 runtime error, 2 usage error, 3 served with skipped rows.
// The shutdown summary always states the skipped-row count and the
// restore-fallback status, so exit 3 is explainable from stderr alone.
//
// Fault injection: CBVLINK_FAILPOINTS activates failpoints (e.g.
// "service.insert=delay(5)" or "io.atomic.rename=error") in the serving
// and snapshot paths; see src/common/failpoint.h for the grammar.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/common/str.h"
#include "src/io/csv_reader.h"
#include "src/io/journal.h"
#include "src/net/client.h"
#include "src/net/replication.h"
#include "src/net/server.h"
#include "src/rules/rule_parser.h"
#include "src/service/linkage_service.h"
#include "src/telemetry/exporters.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace_sink.h"

namespace cbvlink {
namespace {

struct Args {
  std::string registry_path;
  std::string queries_path;
  std::string snapshot_in;
  std::string snapshot_out;
  bool insert = false;
  std::string id_column = "id";
  std::string rule_text;
  size_t theta = 4;
  size_t k = 30;
  double delta = 0.1;
  bool alphanumeric = false;
  uint64_t seed = 7;
  size_t threads = 0;
  size_t shards = 16;
  size_t max_bucket = 0;
  std::string overflow = "scan";
  size_t batch = 1024;
  std::string out_path;
  std::string metrics_out;
  size_t stats_interval = 0;
  // Network serving.
  std::string listen;   // "[ADDR:]PORT"; empty = no server
  std::string journal_path;
  std::string fsync = "always";
  std::string follow;   // "HOST:PORT"; standby mode
  size_t queue_cap = 256;
  size_t max_conns = 1024;
  size_t idle_timeout_sec = 60;
  size_t drain_deadline_ms = 5000;
  // Request tracing (src/telemetry/trace_sink.h).
  bool trace = false;
  size_t trace_sample_n = 1;
  size_t trace_slow_us = 50000;
  std::string trace_out;  // Chrome trace-event JSON, written at exit
};

/// SIGINT/SIGTERM latch for the --listen wait loop.
std::atomic<int> g_signal{0};
void OnSignal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

/// Parses --fsync (always | none | N) into JournalOptions::fsync_every.
bool ParseFsyncPolicy(const std::string& text, size_t* fsync_every) {
  if (text == "always") {
    *fsync_every = 1;
    return true;
  }
  if (text == "none") {
    *fsync_every = 0;
    return true;
  }
  char* end = nullptr;
  unsigned long long n = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || n == 0) return false;
  *fsync_every = static_cast<size_t>(n);
  return true;
}

/// Background stats reporter: every `interval` seconds, prints a
/// one-line delta summary to stderr and (when `metrics_path` is set)
/// refreshes the telemetry JSON dump.  Stop() is prompt: the sleep is a
/// condition-variable wait, not a blind sleep.
class StatsReporter {
 public:
  StatsReporter(const LinkageService* service, size_t interval_seconds,
                std::string metrics_path)
      : service_(service),
        interval_(interval_seconds),
        metrics_path_(std::move(metrics_path)) {
    thread_ = std::thread([this] { Loop(); });
  }

  ~StatsReporter() { Stop(); }

  void Stop() {
    {
      std::scoped_lock lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Loop() {
    uint64_t last_queries = 0;
    for (;;) {
      {
        std::unique_lock lock(mu_);
        if (cv_.wait_for(lock, std::chrono::seconds(interval_),
                         [this] { return stopped_; })) {
          return;
        }
      }
      const ServiceMetrics m = service_->metrics();
      // Serving-tier pressure, from the gauges the NetServer maintains
      // (both 0 when no server is running): how much work is waiting
      // and how fast it is observed to drain.
      const double queue_depth =
          telemetry::Registry::Global().GetGauge("net_queue_depth")->Value();
      const double drain_rate = telemetry::Registry::Global()
                                    .GetGauge("net_queue_drain_rate")
                                    ->Value();
      std::fprintf(stderr,
                   "[stats] queries=%llu (+%llu) matches=%llu "
                   "comparisons=%llu candidates=%llu dropped=%llu "
                   "scan_fallbacks=%llu skipped_rows=%llu "
                   "queue_depth=%.0f drain_rate=%.1f/s\n",
                   static_cast<unsigned long long>(m.queries),
                   static_cast<unsigned long long>(m.queries - last_queries),
                   static_cast<unsigned long long>(m.matches),
                   static_cast<unsigned long long>(m.comparisons),
                   static_cast<unsigned long long>(m.candidate_occurrences),
                   static_cast<unsigned long long>(m.dropped_entries),
                   static_cast<unsigned long long>(m.scan_fallbacks),
                   static_cast<unsigned long long>(m.skipped_rows),
                   queue_depth, drain_rate);
      last_queries = m.queries;
      if (!metrics_path_.empty()) {
        service_->FillTelemetry();
        const Status st =
            telemetry::DumpJson(telemetry::Registry::Global(), metrics_path_);
        if (!st.ok()) {
          std::fprintf(stderr, "[stats] metrics dump %s: %s\n",
                       metrics_path_.c_str(), st.ToString().c_str());
        }
      }
    }
  }

  const LinkageService* service_;
  const size_t interval_;
  const std::string metrics_path_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

void Usage() {
  std::fprintf(stderr,
               "usage: cbvlink_serve (--registry A.csv | --snapshot-in S) "
               "--queries B.csv\n"
               "  [--insert] [--snapshot-out FILE] [--rule RULE] [--theta N]\n"
               "  [--k N] [--delta X] [--alphanumeric] [--id-column NAME]\n"
               "  [--num-threads N] [--shards N] [--max-bucket N] "
               "[--overflow truncate|scan]\n"
               "  [--batch N] [--out FILE] [--seed N]\n"
               "  [--metrics-out FILE] [--stats-interval SEC]\n"
               "  [--listen [ADDR:]PORT] [--journal FILE] "
               "[--fsync always|none|N]\n"
               "  [--queue-cap N] [--max-conns N] [--idle-timeout SEC]\n"
               "  [--drain-deadline-ms N] [--follow HOST:PORT]\n"
               "  [--trace] [--trace-sample-n N] [--trace-slow-us N]\n"
               "  [--trace-out FILE]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const auto next_size = [&](size_t* out) {
      const char* v = next();
      if (!v) return false;
      *out = static_cast<size_t>(std::strtoull(v, nullptr, 10));
      return true;
    };
    if (flag == "--registry") {
      const char* v = next();
      if (!v) return false;
      args->registry_path = v;
    } else if (flag == "--queries") {
      const char* v = next();
      if (!v) return false;
      args->queries_path = v;
    } else if (flag == "--snapshot-in") {
      const char* v = next();
      if (!v) return false;
      args->snapshot_in = v;
    } else if (flag == "--snapshot-out") {
      const char* v = next();
      if (!v) return false;
      args->snapshot_out = v;
    } else if (flag == "--insert") {
      args->insert = true;
    } else if (flag == "--id-column") {
      const char* v = next();
      if (!v) return false;
      args->id_column = v;
    } else if (flag == "--rule") {
      const char* v = next();
      if (!v) return false;
      args->rule_text = v;
    } else if (flag == "--theta") {
      if (!next_size(&args->theta)) return false;
    } else if (flag == "--k") {
      if (!next_size(&args->k)) return false;
    } else if (flag == "--delta") {
      const char* v = next();
      if (!v) return false;
      args->delta = std::strtod(v, nullptr);
    } else if (flag == "--alphanumeric") {
      args->alphanumeric = true;
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--num-threads") {
      if (!next_size(&args->threads)) return false;
    } else if (flag == "--shards") {
      if (!next_size(&args->shards)) return false;
    } else if (flag == "--max-bucket") {
      if (!next_size(&args->max_bucket)) return false;
    } else if (flag == "--overflow") {
      const char* v = next();
      if (!v) return false;
      args->overflow = v;
    } else if (flag == "--batch") {
      if (!next_size(&args->batch)) return false;
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) return false;
      args->out_path = v;
    } else if (flag == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      args->metrics_out = v;
    } else if (flag == "--stats-interval") {
      if (!next_size(&args->stats_interval)) return false;
    } else if (flag == "--listen") {
      const char* v = next();
      if (!v) return false;
      args->listen = v;
    } else if (flag == "--journal") {
      const char* v = next();
      if (!v) return false;
      args->journal_path = v;
    } else if (flag == "--fsync") {
      const char* v = next();
      if (!v) return false;
      args->fsync = v;
    } else if (flag == "--follow") {
      const char* v = next();
      if (!v) return false;
      args->follow = v;
    } else if (flag == "--trace") {
      args->trace = true;
    } else if (flag == "--trace-sample-n") {
      args->trace = true;
      if (!next_size(&args->trace_sample_n)) return false;
    } else if (flag == "--trace-slow-us") {
      args->trace = true;
      if (!next_size(&args->trace_slow_us)) return false;
    } else if (flag == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      args->trace = true;
      args->trace_out = v;
    } else if (flag == "--queue-cap") {
      if (!next_size(&args->queue_cap)) return false;
    } else if (flag == "--max-conns") {
      if (!next_size(&args->max_conns)) return false;
    } else if (flag == "--idle-timeout") {
      if (!next_size(&args->idle_timeout_sec)) return false;
    } else if (flag == "--drain-deadline-ms") {
      if (!next_size(&args->drain_deadline_ms)) return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->overflow != "scan" && args->overflow != "truncate") {
    std::fprintf(stderr, "--overflow must be 'scan' or 'truncate'\n");
    return false;
  }
  if (args->batch == 0) args->batch = 1;
  size_t fsync_every = 1;
  if (!ParseFsyncPolicy(args->fsync, &fsync_every)) {
    std::fprintf(stderr, "--fsync must be 'always', 'none', or a number\n");
    return false;
  }
  if (!args->follow.empty()) {
    if (!args->registry_path.empty() || !args->snapshot_in.empty() ||
        !args->queries_path.empty() || args->insert) {
      std::fprintf(stderr,
                   "--follow is standby mode: it excludes --registry, "
                   "--snapshot-in, --queries and --insert\n");
      return false;
    }
    return true;
  }
  if (args->registry_path.empty() && args->snapshot_in.empty()) return false;
  // --queries is optional when a network listener will serve instead.
  return !args->queries_path.empty() || !args->listen.empty();
}

/// Builds the trace sink when any --trace flag was given.
std::unique_ptr<telemetry::TraceSink> MakeTraceSink(const Args& args) {
  if (!args.trace) return nullptr;
  telemetry::TraceSinkOptions options;
  options.sample_every = args.trace_sample_n;
  options.slow_threshold_us = args.trace_slow_us;
  return std::make_unique<telemetry::TraceSink>(options);
}

/// "foo.json" -> "foo.slow.json" (or "FILE.slow.json" when FILE has no
/// extension): where the slow-query records land next to --trace-out.
std::string SlowTracePath(const std::string& path) {
  const size_t dot = path.rfind('.');
  const size_t slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + ".slow.json";
  }
  return path.substr(0, dot) + ".slow" + path.substr(dot);
}

/// Writes the Chrome trace-event dump and the slow-query sibling dump.
void DumpTraces(const telemetry::TraceSink& sink, const std::string& path) {
  if (path.empty()) return;
  const Status chrome = sink.DumpChromeTrace(path);
  if (!chrome.ok()) {
    std::fprintf(stderr, "trace dump %s: %s\n", path.c_str(),
                 chrome.ToString().c_str());
    return;
  }
  const std::string slow_path = SlowTracePath(path);
  const Status slow = sink.DumpSlowTraces(slow_path);
  if (!slow.ok()) {
    std::fprintf(stderr, "slow-trace dump %s: %s\n", slow_path.c_str(),
                 slow.ToString().c_str());
    return;
  }
  std::fprintf(stderr,
               "traces written to %s (slow queries in %s): offered=%llu "
               "captured=%llu slow=%llu\n",
               path.c_str(), slow_path.c_str(),
               static_cast<unsigned long long>(sink.offered()),
               static_cast<unsigned long long>(sink.captured()),
               static_cast<unsigned long long>(sink.captured_slow()));
}

/// Starts the network server (shared by primary and standby paths).
/// Prints the canonical "listening on ADDR:PORT" line the smoke tooling
/// greps for.  Returns null (with a message) on failure.
std::unique_ptr<net::NetServer> StartServer(LinkageService* service,
                                            const Args& args, bool read_only,
                                            telemetry::TraceSink* trace_sink) {
  std::string host;
  uint16_t port = 0;
  Status parsed = net::ParseHostPort(args.listen, &host, &port);
  if (!parsed.ok()) {
    std::fprintf(stderr, "--listen %s: %s\n", args.listen.c_str(),
                 parsed.ToString().c_str());
    return nullptr;
  }
  net::NetServerOptions options;
  options.bind_address = host;
  options.port = port;
  // One thread flag governs batch and network workers alike.
  options.num_workers = args.threads;
  options.max_queue = args.queue_cap;
  options.max_connections = args.max_conns;
  options.idle_timeout_ms = static_cast<int>(args.idle_timeout_sec * 1000);
  options.read_only = read_only;
  options.trace_sink = trace_sink;
  Result<std::unique_ptr<net::NetServer>> server =
      net::NetServer::Start(service, options);
  if (!server.ok()) {
    std::fprintf(stderr, "listen %s: %s\n", args.listen.c_str(),
                 server.status().ToString().c_str());
    return nullptr;
  }
  std::fprintf(stderr, "listening on %s:%u\n", host.c_str(),
               static_cast<unsigned>(server.value()->port()));
  std::fflush(stderr);
  return std::move(server).value();
}

/// Blocks until SIGINT/SIGTERM.  Returns the signal received.
int WaitForSignal() {
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_signal.load(std::memory_order_relaxed) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return g_signal.load(std::memory_order_relaxed);
}

/// Standby mode: bootstrap from the primary, follow its journal, serve
/// read-only when --listen is given.
int RunStandby(const Args& args) {
  std::string host;
  uint16_t port = 0;
  Status parsed = net::ParseHostPort(args.follow, &host, &port);
  if (!parsed.ok()) {
    std::fprintf(stderr, "--follow %s: %s\n", args.follow.c_str(),
                 parsed.ToString().c_str());
    return 2;
  }
  std::unique_ptr<telemetry::TraceSink> trace_sink = MakeTraceSink(args);
  net::ReplicaOptions options;
  options.primary_host = host;
  options.primary_port = port;
  options.trace_sink = trace_sink.get();
  Result<std::unique_ptr<net::Replica>> replica =
      net::Replica::Start(options);
  if (!replica.ok()) {
    std::fprintf(stderr, "follow %s: %s\n", args.follow.c_str(),
                 replica.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "following %s:%u (%zu records synced)\n", host.c_str(),
               static_cast<unsigned>(port), replica.value()->service()->size());

  std::unique_ptr<net::NetServer> server;
  if (!args.listen.empty()) {
    server = StartServer(replica.value()->service(), args, /*read_only=*/true,
                         trace_sink.get());
    if (server == nullptr) return 1;
  }
  const int sig = WaitForSignal();
  std::fprintf(stderr, "signal %d: shutting down standby\n", sig);
  if (server != nullptr) {
    server->Drain(static_cast<int>(args.drain_deadline_ms));
    server->Shutdown();
  }
  const net::ReplicaProgress progress = replica.value()->progress();
  std::fprintf(stderr,
               "standby: epoch=%llu applied_offset=%llu lag_bytes=%llu "
               "applied_records=%llu syncs=%llu\n",
               static_cast<unsigned long long>(progress.epoch),
               static_cast<unsigned long long>(progress.applied_offset),
               static_cast<unsigned long long>(progress.lag_bytes),
               static_cast<unsigned long long>(progress.applied_records),
               static_cast<unsigned long long>(progress.syncs));
  replica.value()->Stop();
  if (trace_sink != nullptr) DumpTraces(*trace_sink, args.trace_out);
  if (!args.snapshot_out.empty()) {
    Status saved =
        replica.value()->service()->SaveSnapshotToFile(args.snapshot_out);
    if (!saved.ok()) {
      std::fprintf(stderr, "snapshot %s: %s\n", args.snapshot_out.c_str(),
                   saved.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "snapshot written to %s (%zu records)\n",
                 args.snapshot_out.c_str(), replica.value()->service()->size());
  }
  return 0;
}

int RunMain(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  if (!args.follow.empty()) return RunStandby(args);

  LinkageServiceOptions options;
  options.num_shards = args.shards;
  options.max_bucket_size = args.max_bucket;
  options.overflow_policy = args.overflow == "truncate"
                                ? OverflowPolicy::kTruncate
                                : OverflowPolicy::kScanFallback;
  options.execution = ExecutionOptions::WithThreads(args.threads);

  std::unique_ptr<LinkageService> service;
  RecordId first_query_auto_id = 0;
  Stopwatch build_watch;
  if (!args.snapshot_in.empty()) {
    Result<std::unique_ptr<LinkageService>> restored =
        LinkageService::RestoreFromFile(args.snapshot_in);
    if (!restored.ok()) {
      std::fprintf(stderr, "restore %s: %s\n", args.snapshot_in.c_str(),
                   restored.status().ToString().c_str());
      return 1;
    }
    service = std::move(restored).value();
    first_query_auto_id = service->size();
    std::fprintf(stderr, "restored %zu records, %zu blocking groups (%.2fs)\n",
                 service->size(), service->blocking_groups(),
                 build_watch.ElapsedSeconds());
    // Always state the fallback status (not only on failure): a later
    // exit-3 investigation should find the restore health on stderr.
    if (service->metrics().restore_fallbacks > 0) {
      std::fprintf(stderr,
                   "warning: primary snapshot %s was corrupt; restored from "
                   "backup %s (restore_fallbacks=1)\n",
                   args.snapshot_in.c_str(),
                   SnapshotBackupPath(args.snapshot_in).c_str());
    } else {
      std::fprintf(stderr, "restore: primary snapshot ok "
                           "(restore_fallbacks=0)\n");
    }
  } else {
    CsvReadOptions read_options;
    read_options.id_column = args.id_column;
    Result<CsvDataset> registry =
        ReadCsvDataset(args.registry_path, read_options);
    if (!registry.ok()) {
      std::fprintf(stderr, "reading %s: %s\n", args.registry_path.c_str(),
                   registry.status().ToString().c_str());
      return 1;
    }
    first_query_auto_id = registry.value().records.size();
    const size_t nf = registry.value().attribute_names.size();

    Schema schema;
    const Alphabet& alphabet =
        args.alphanumeric ? Alphabet::Alphanumeric() : Alphabet::Uppercase();
    for (const std::string& name : registry.value().attribute_names) {
      schema.attributes.push_back(
          {name, &alphabet, QGramOptions{.q = 2, .pad = false}});
    }

    Rule rule = Rule::Pred(0, args.theta);
    if (!args.rule_text.empty()) {
      Result<Rule> parsed = ParseRule(args.rule_text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "rule: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      rule = std::move(parsed).value();
    } else if (nf > 1) {
      std::vector<Rule> preds;
      for (size_t i = 0; i < nf; ++i) {
        preds.push_back(Rule::Pred(i, args.theta));
      }
      rule = Rule::And(std::move(preds));
    }

    CbvHbConfig config;
    config.schema = std::move(schema);
    config.rule = std::move(rule);
    config.record_K = args.k;
    config.record_theta = args.theta;
    config.delta = args.delta;
    config.seed = args.seed;

    Result<std::unique_ptr<LinkageService>> created = LinkageService::Create(
        std::move(config), options, registry.value().records);
    if (!created.ok()) {
      std::fprintf(stderr, "config: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    service = std::move(created).value();
    Status indexed = service->InsertBatch(registry.value().records);
    if (!indexed.ok()) {
      std::fprintf(stderr, "indexing: %s\n", indexed.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "indexed %zu records, %zu blocking groups, %zu shards "
                 "(%.2fs)\n",
                 service->size(), service->blocking_groups(),
                 service->options().num_shards, build_watch.ElapsedSeconds());
  }

  // Journal: replay the tail BEFORE attaching (attached frames are
  // re-appended), then open — Open() truncates any torn tail so new
  // appends land on a valid frame boundary.
  if (!args.journal_path.empty()) {
    Result<JournalReplayStats> replayed =
        service->ReplayJournalFile(args.journal_path);
    if (!replayed.ok()) {
      std::fprintf(stderr, "journal replay %s: %s\n", args.journal_path.c_str(),
                   replayed.status().ToString().c_str());
      return 1;
    }
    const JournalReplayStats& stats = replayed.value();
    std::fprintf(stderr,
                 "journal replay: existed=%d frames=%llu applied=%llu "
                 "tail_truncated=%d epoch=%llu\n",
                 stats.existed ? 1 : 0,
                 static_cast<unsigned long long>(stats.frames),
                 static_cast<unsigned long long>(stats.applied),
                 stats.tail_truncated ? 1 : 0,
                 static_cast<unsigned long long>(stats.epoch));
    JournalOptions journal_options;
    ParseFsyncPolicy(args.fsync, &journal_options.fsync_every);
    Result<std::unique_ptr<Journal>> journal =
        Journal::Open(args.journal_path, journal_options);
    if (!journal.ok()) {
      std::fprintf(stderr, "journal open %s: %s\n", args.journal_path.c_str(),
                   journal.status().ToString().c_str());
      return 1;
    }
    service->AttachJournal(std::move(journal).value());
  }

  std::optional<StatsReporter> reporter;
  if (args.stats_interval > 0) {
    reporter.emplace(service.get(), args.stats_interval, args.metrics_out);
  }

  std::unique_ptr<telemetry::TraceSink> trace_sink = MakeTraceSink(args);

  Stopwatch serve_watch;
  if (!args.queries_path.empty()) {
    CsvReadOptions query_options;
    query_options.id_column = args.id_column;
    query_options.first_auto_id = first_query_auto_id;
    // The query stream is external input: degrade on malformed rows
    // instead of aborting everything already served.
    query_options.skip_malformed_rows = true;
    Result<CsvDataset> queries =
        ReadCsvDataset(args.queries_path, query_options);
    if (!queries.ok()) {
      std::fprintf(stderr, "reading %s: %s\n", args.queries_path.c_str(),
                   queries.status().ToString().c_str());
      return 1;
    }
    if (queries.value().skipped_rows > 0) {
      service->RecordSkippedRows(queries.value().skipped_rows);
      for (const std::string& why : queries.value().skip_errors) {
        std::fprintf(stderr, "skipped query row: %s\n", why.c_str());
      }
    }

    FILE* out = stdout;
    if (!args.out_path.empty()) {
      out = std::fopen(args.out_path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", args.out_path.c_str());
        return 1;
      }
    }
    std::fprintf(out, "a_id,b_id\n");

    const std::vector<Record>& stream = queries.value().records;
    std::vector<IdPair> pairs;
    for (size_t begin = 0; begin < stream.size(); begin += args.batch) {
      const size_t end = std::min(begin + args.batch, stream.size());
      pairs.clear();
      Status st;
      if (args.insert) {
        // Arrival order matters when queries join the registry: keep the
        // stream sequential within the process.
        for (size_t i = begin; i < end && st.ok(); ++i) {
          st = service->MatchAndInsert(stream[i], &pairs);
        }
      } else {
        const std::vector<Record> chunk(stream.begin() + begin,
                                        stream.begin() + end);
        st = service->MatchBatch(chunk, &pairs);
      }
      if (!st.ok()) {
        std::fprintf(stderr, "serving: %s\n", st.ToString().c_str());
        if (out != stdout) std::fclose(out);
        return 1;
      }
      for (const IdPair& pair : pairs) {
        std::fprintf(out, "%llu,%llu\n",
                     static_cast<unsigned long long>(pair.a_id),
                     static_cast<unsigned long long>(pair.b_id));
      }
    }
    if (out != stdout) std::fclose(out);
  }

  if (!args.listen.empty()) {
    // A writable server accepts deletes/updates, so let the background
    // compactor rebuild the blocking tables once tombstones pile up.
    service->StartBackgroundCompaction();
    std::unique_ptr<net::NetServer> server =
        StartServer(service.get(), args, /*read_only=*/false,
                    trace_sink.get());
    if (server == nullptr) return 1;
    const int sig = WaitForSignal();
    // Graceful drain: stop accepting, fail readiness, shed new work but
    // let admitted requests finish within the drain deadline.
    std::fprintf(stderr, "signal %d: draining server\n", sig);
    const bool drained =
        server->Drain(static_cast<int>(args.drain_deadline_ms));
    std::fprintf(stderr, "drain %s\n",
                 drained ? "complete" : "deadline expired");
    server->Shutdown();
    // Final durability point: every insert acked before shutdown must be
    // on disk even under --fsync none/N.
    if (service->journal() != nullptr) {
      const Status synced = service->journal()->Sync();
      if (!synced.ok()) {
        std::fprintf(stderr, "final journal sync: %s\n",
                     synced.ToString().c_str());
      }
    }
  }
  const double serve_seconds = serve_watch.ElapsedSeconds();
  if (reporter.has_value()) reporter->Stop();

  const ServiceMetrics metrics = service->metrics();
  std::fprintf(stderr,
               "served %llu queries in %.2fs (%.0f q/s wall), "
               "%llu matches, %llu comparisons, avg latency %.1f us\n",
               static_cast<unsigned long long>(metrics.queries),
               serve_seconds,
               serve_seconds > 0
                   ? static_cast<double>(metrics.queries) / serve_seconds
                   : 0.0,
               static_cast<unsigned long long>(metrics.matches),
               static_cast<unsigned long long>(metrics.comparisons),
               metrics.AvgQueryMicros());
  {
    const telemetry::Histogram::Snapshot latency =
        telemetry::Registry::Global()
            .GetHistogram("query_latency_us")
            ->Snap();
    std::fprintf(stderr,
                 "query latency (us): p50=%.0f p90=%.0f p99=%.0f max=%llu\n",
                 latency.Quantile(0.50), latency.Quantile(0.90),
                 latency.Quantile(0.99),
                 static_cast<unsigned long long>(latency.max));
  }
  if (metrics.dropped_entries > 0 || metrics.scan_fallbacks > 0) {
    std::fprintf(stderr, "bucket cap: %llu dropped entries, %llu scan "
                         "fallbacks\n",
                 static_cast<unsigned long long>(metrics.dropped_entries),
                 static_cast<unsigned long long>(metrics.scan_fallbacks));
  }
  // Input/restore health, stated unconditionally: the skipped-row count
  // and fallback status are the two facts that explain a non-zero exit
  // without needing --metrics-out.
  std::fprintf(stderr, "input health: skipped_rows=%llu restore_fallbacks=%llu\n",
               static_cast<unsigned long long>(metrics.skipped_rows),
               static_cast<unsigned long long>(metrics.restore_fallbacks));

  if (trace_sink != nullptr) DumpTraces(*trace_sink, args.trace_out);

  if (!args.metrics_out.empty()) {
    service->FillTelemetry();
    const Status dumped =
        telemetry::DumpJson(telemetry::Registry::Global(), args.metrics_out);
    if (!dumped.ok()) {
      std::fprintf(stderr, "metrics %s: %s\n", args.metrics_out.c_str(),
                   dumped.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "telemetry written to %s\n",
                 args.metrics_out.c_str());
  }

  if (!args.snapshot_out.empty()) {
    Status saved = service->SaveSnapshotToFile(args.snapshot_out);
    if (!saved.ok()) {
      std::fprintf(stderr, "snapshot %s: %s\n", args.snapshot_out.c_str(),
                   saved.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "snapshot written to %s (%zu records)\n",
                 args.snapshot_out.c_str(), service->size());
  }
  // Exit 3: everything that could be served was served, but some query
  // rows were malformed and dropped — distinct from hard failures (1).
  if (metrics.skipped_rows > 0) {
    std::fprintf(stderr,
                 "exiting 3: %llu malformed query rows were skipped\n",
                 static_cast<unsigned long long>(metrics.skipped_rows));
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace cbvlink

int main(int argc, char** argv) { return cbvlink::RunMain(argc, argv); }
