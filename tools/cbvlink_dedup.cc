// cbvlink_dedup: find duplicate records within one CSV data set and
// print entity clusters.
//
// Usage:
//   cbvlink_dedup --in records.csv [options]
//
// Options:
//   --in FILE          input CSV (header row; see --id-column)
//   --id-column NAME   id column (default "id")
//   --theta N          per-attribute Hamming threshold (default 4 — one
//                      substitution)
//   --k N              base hashes per blocking group (default 30)
//   --alphanumeric     alphanumeric alphabet (default: uppercase letters)
//   --pairs FILE       also write the raw duplicate pairs CSV
//   --seed N           RNG seed (default 7)
//   --num-threads N    worker threads for the embedding pass (1 = serial,
//                      0 = hardware; default 1); output is identical at
//                      any setting
//
// Output: one line per non-singleton cluster, ids comma-separated.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/io/csv_reader.h"
#include "src/linkage/dedup.h"

namespace cbvlink {
namespace {

int RunMain(int argc, char** argv) {
  std::string in_path;
  std::string id_column = "id";
  std::string pairs_path;
  size_t theta = 4;
  size_t k = 30;
  bool alphanumeric = false;
  uint64_t seed = 7;
  size_t num_threads = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--in") {
      const char* v = next();
      if (!v) return 2;
      in_path = v;
    } else if (flag == "--id-column") {
      const char* v = next();
      if (!v) return 2;
      id_column = v;
    } else if (flag == "--pairs") {
      const char* v = next();
      if (!v) return 2;
      pairs_path = v;
    } else if (flag == "--theta") {
      const char* v = next();
      if (!v) return 2;
      theta = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (flag == "--k") {
      const char* v = next();
      if (!v) return 2;
      k = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (flag == "--alphanumeric") {
      alphanumeric = true;
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return 2;
      seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--num-threads") {
      const char* v = next();
      if (!v) return 2;
      num_threads = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 2;
    }
  }
  if (in_path.empty()) {
    std::fprintf(stderr,
                 "usage: cbvlink_dedup --in records.csv [--theta N] [--k N] "
                 "[--id-column NAME]\n  [--alphanumeric] [--pairs FILE] "
                 "[--seed N] [--num-threads N]\n");
    return 2;
  }

  CsvReadOptions read_options;
  read_options.id_column = id_column;
  Result<CsvDataset> dataset = ReadCsvDataset(in_path, read_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const size_t nf = dataset.value().attribute_names.size();

  CbvHbConfig config;
  const Alphabet& alphabet =
      alphanumeric ? Alphabet::Alphanumeric() : Alphabet::Uppercase();
  for (const std::string& name : dataset.value().attribute_names) {
    config.schema.attributes.push_back(
        {name, &alphabet, QGramOptions{.q = 2, .pad = false}});
  }
  if (nf == 1) {
    config.rule = Rule::Pred(0, theta);
  } else {
    std::vector<Rule> preds;
    for (size_t i = 0; i < nf; ++i) preds.push_back(Rule::Pred(i, theta));
    config.rule = Rule::And(std::move(preds));
  }
  config.record_K = k;
  config.record_theta = theta;
  config.seed = seed;

  Result<DedupResult> result =
      FindDuplicates(dataset.value().records, config,
                     ExecutionOptions::WithThreads(num_threads));
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  size_t non_singleton = 0;
  for (const auto& cluster : result.value().clusters) {
    if (cluster.size() < 2) continue;
    ++non_singleton;
    for (size_t i = 0; i < cluster.size(); ++i) {
      std::printf("%s%llu", i == 0 ? "" : ",",
                  static_cast<unsigned long long>(cluster[i]));
    }
    std::printf("\n");
  }
  std::fprintf(stderr,
               "%zu records -> %zu clusters (%zu with duplicates), "
               "%zu duplicate pairs, %llu comparisons\n",
               dataset.value().records.size(),
               result.value().clusters.size(), non_singleton,
               result.value().duplicate_pairs.size(),
               static_cast<unsigned long long>(
                   result.value().stats.comparisons));

  if (!pairs_path.empty()) {
    FILE* out = std::fopen(pairs_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", pairs_path.c_str());
      return 1;
    }
    std::fprintf(out, "a_id,b_id\n");
    for (const IdPair& pair : result.value().duplicate_pairs) {
      std::fprintf(out, "%llu,%llu\n",
                   static_cast<unsigned long long>(pair.a_id),
                   static_cast<unsigned long long>(pair.b_id));
    }
    std::fclose(out);
  }
  return 0;
}

}  // namespace
}  // namespace cbvlink

int main(int argc, char** argv) { return cbvlink::RunMain(argc, argv); }
