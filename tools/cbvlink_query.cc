// cbvlink_query: command-line client for a cbvlink_serve --listen
// instance, speaking either the CRC-framed binary protocol (default)
// or the HTTP/JSON mapping (--mode http).  Used by the network tests,
// bench_net and the CI serving smoke job.
//
// Usage:
//   cbvlink_query --connect HOST:PORT [--mode binary|http] COMMAND
//
// Commands (exactly one):
//   --ping                 round-trip health check
//   --stats                print the server's telemetry JSON
//   --record "F1,F2,..."   one record operation; with:
//       --id N             record id (default 0)
//       --op OP            match | insert | match_and_insert | update
//                          (default match; update replaces the live
//                          record with this id — PUT /records/{id} in
//                          HTTP mode)
//       --burst N          pipeline N copies (ids N consecutive from
//                          --id) before reading any reply — the shed
//                          probe: report ok/shed/error counts
//   --op delete --id N     tombstone record N (no --record needed;
//                          DELETE /records/{id} in HTTP mode; --burst
//                          deletes N consecutive ids)
//   --queries FILE         stream a query CSV (same format cbvlink_serve
//                          reads); matched pairs go to --out as
//                          "a_id,b_id" CSV
//
// Options:
//   --insert               with --queries: match_and_insert each row
//   --id-column NAME       CSV id column (default "id")
//   --first-auto-id N      auto-id base for rows without ids (default 0)
//   --out FILE             pairs CSV destination (default stdout)
//   --allow-shed           shed (429/RESOURCE_EXHAUSTED) replies are
//                          tolerated instead of failing the run
//   --timeout-ms N         per-call IO timeout (default 30000)
//   --retries N            retry each operation up to N extra times on
//                          shed / transport error, with capped
//                          exponential backoff honoring Retry-After
//                          (binary mode, sequential ops only)
//   --deadline-ms N        overall per-operation deadline, propagated
//                          to the server (kDeadline frame prefix /
//                          X-Deadline-Ms header) and bounding retries
//   --server-timing        tracing: mint a trace id per operation,
//                          propagate it (kTraceContext frame prefix /
//                          X-Trace-Id header), and print the server's
//                          per-stage breakdown (queue/encode/candidates/
//                          compare/journal/total) from the kServerTiming
//                          frame / Server-Timing response header as a
//                          "[timing] trace=... stage=Nus ..." stderr
//                          line per operation (requires a server run
//                          with --trace; silently absent otherwise)
//
// Exit codes mirror cbvlink_serve: 0 success, 1 runtime/request error
// (including shed without --allow-shed and deadline-exceeded replies),
// 2 usage error, 3 success but some CSV rows were malformed and skipped
// (the network-mode twin of the serve exit-3 contract).  The summary
// line always reports "ok=N shed=N deadline=N error=N" — shed is
// 429/RESOURCE_EXHAUSTED, deadline is 504/DEADLINE_EXCEEDED, error is
// transport or other failures — so the smoke job can assert a burst
// actually shed (or a drill actually timed out) without parsing exit
// codes.

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/record.h"
#include "src/common/status.h"
#include "src/common/str.h"
#include "src/io/csv_reader.h"
#include "src/net/client.h"
#include "src/net/protocol.h"
#include "src/telemetry/trace.h"

namespace cbvlink {
namespace {

struct Args {
  std::string connect;
  std::string mode = "binary";
  bool ping = false;
  bool stats = false;
  std::string record_fields;
  uint64_t id = 0;
  std::string op = "match";
  size_t burst = 1;
  std::string queries_path;
  bool insert = false;
  std::string id_column = "id";
  uint64_t first_auto_id = 0;
  std::string out_path;
  bool allow_shed = false;
  int timeout_ms = 30000;
  int retries = 0;
  int64_t deadline_ms = 0;
  bool server_timing = false;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: cbvlink_query --connect HOST:PORT [--mode binary|http]\n"
      "  (--ping | --stats | --record \"F1,F2,...\" [--id N] [--op OP]\n"
      "   [--burst N] | --op delete --id N | --queries FILE [--insert])\n"
      "  [--id-column NAME] [--first-auto-id N] [--out FILE]\n"
      "  [--allow-shed] [--timeout-ms N] [--retries N] [--deadline-ms N]\n"
      "  [--server-timing]\n"
      "\n"
      "--retries N      retry shed/transport failures up to N extra times\n"
      "                 (binary mode; capped exponential backoff + jitter,\n"
      "                 honors server Retry-After hints)\n"
      "--deadline-ms N  per-operation deadline, propagated to the server\n"
      "                 and bounding the whole retry budget\n"
      "\n"
      "exit codes: 0 success; 1 request/transport error, shed without\n"
      "  --allow-shed, or deadline exceeded; 2 usage error; 3 success but\n"
      "  malformed CSV rows were skipped.  stderr summary line:\n"
      "  \"summary: ok=N shed=N deadline=N error=N skipped_rows=N\"\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--connect") {
      const char* v = next();
      if (!v) return false;
      args->connect = v;
    } else if (flag == "--mode") {
      const char* v = next();
      if (!v) return false;
      args->mode = v;
    } else if (flag == "--ping") {
      args->ping = true;
    } else if (flag == "--stats") {
      args->stats = true;
    } else if (flag == "--record") {
      const char* v = next();
      if (!v) return false;
      args->record_fields = v;
    } else if (flag == "--id") {
      const char* v = next();
      if (!v) return false;
      args->id = std::strtoull(v, nullptr, 10);
    } else if (flag == "--op") {
      const char* v = next();
      if (!v) return false;
      args->op = v;
    } else if (flag == "--burst") {
      const char* v = next();
      if (!v) return false;
      args->burst = static_cast<size_t>(std::strtoull(v, nullptr, 10));
      if (args->burst == 0) args->burst = 1;
    } else if (flag == "--queries") {
      const char* v = next();
      if (!v) return false;
      args->queries_path = v;
    } else if (flag == "--insert") {
      args->insert = true;
    } else if (flag == "--id-column") {
      const char* v = next();
      if (!v) return false;
      args->id_column = v;
    } else if (flag == "--first-auto-id") {
      const char* v = next();
      if (!v) return false;
      args->first_auto_id = std::strtoull(v, nullptr, 10);
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) return false;
      args->out_path = v;
    } else if (flag == "--allow-shed") {
      args->allow_shed = true;
    } else if (flag == "--timeout-ms") {
      const char* v = next();
      if (!v) return false;
      args->timeout_ms = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (flag == "--retries") {
      const char* v = next();
      if (!v) return false;
      args->retries = static_cast<int>(std::strtol(v, nullptr, 10));
      if (args->retries < 0) args->retries = 0;
    } else if (flag == "--deadline-ms") {
      const char* v = next();
      if (!v) return false;
      args->deadline_ms = std::strtoll(v, nullptr, 10);
      if (args->deadline_ms < 0) args->deadline_ms = 0;
    } else if (flag == "--server-timing") {
      args->server_timing = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->connect.empty()) return false;
  if (args->mode != "binary" && args->mode != "http") {
    std::fprintf(stderr, "--mode must be 'binary' or 'http'\n");
    return false;
  }
  // A delete needs no record fields — the id is the whole request.
  const bool record_command =
      !args->record_fields.empty() || args->op == "delete";
  const int commands = (args->ping ? 1 : 0) + (args->stats ? 1 : 0) +
                       (record_command ? 1 : 0) +
                       (!args->queries_path.empty() ? 1 : 0);
  if (commands != 1) {
    std::fprintf(stderr,
                 "exactly one of --ping/--stats/--record/--op delete/"
                 "--queries\n");
    return false;
  }
  if (args->op != "match" && args->op != "insert" &&
      args->op != "match_and_insert" && args->op != "delete" &&
      args->op != "update") {
    std::fprintf(stderr,
                 "--op must be match|insert|match_and_insert|delete|update\n");
    return false;
  }
  if (args->op == "update" && args->record_fields.empty()) {
    std::fprintf(stderr, "--op update needs --record\n");
    return false;
  }
  return true;
}

/// Outcome tally for the summary line the smoke job greps.  Sheds
/// (overload), deadline-exceeded (the server or the retry budget gave
/// up), and transport/other errors are distinct failure modes and are
/// counted separately.
struct Tally {
  size_t ok = 0;
  size_t shed = 0;
  size_t deadline = 0;
  size_t error = 0;

  void Count(const Status& status) {
    if (status.ok()) {
      ++ok;
    } else if (status.code() == StatusCode::kResourceExhausted) {
      ++shed;
    } else if (status.code() == StatusCode::kDeadlineExceeded) {
      ++deadline;
    } else {
      ++error;
    }
  }
};

// --- minimal HTTP client (JSON mode) --------------------------------------

class HttpClient {
 public:
  static Result<std::unique_ptr<HttpClient>> Connect(const std::string& host,
                                                     uint16_t port,
                                                     int timeout_ms) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                           &res);
    if (rc != 0) {
      return Status::IOError(
          StrFormat("resolve %s: %s", host.c_str(), ::gai_strerror(rc)));
    }
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) return Status::IOError(StrFormat("connect %s", host.c_str()));
    if (timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = timeout_ms / 1000;
      tv.tv_usec = (timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    return std::unique_ptr<HttpClient>(new HttpClient(fd, host));
  }

  ~HttpClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Arms trace propagation: subsequent Call()s carry this id as the
  /// X-Trace-Id request header.  Empty disarms.
  void set_trace_hex(std::string trace_id_hex) {
    trace_id_hex_ = std::move(trace_id_hex);
  }

  /// The last response's Server-Timing and X-Trace-Id header values
  /// (empty when the server sent none — untraced request or a server
  /// without tracing).
  const std::string& last_server_timing() const { return server_timing_; }
  const std::string& last_trace_id() const { return resp_trace_id_; }

  /// One keep-alive request; fills `*code` and `*body`.  A positive
  /// `deadline_ms` is propagated as the X-Deadline-Ms header.
  Status Call(const std::string& method, const std::string& target,
              const std::string& body, int* code, std::string* resp_body,
              int64_t deadline_ms = 0) {
    server_timing_.clear();
    resp_trace_id_.clear();
    std::string req = StrFormat(
        "%s %s HTTP/1.1\r\nHost: %s\r\nContent-Length: %zu\r\n", method.c_str(),
        target.c_str(), host_.c_str(), body.size());
    if (deadline_ms > 0) {
      req += StrFormat("X-Deadline-Ms: %lld\r\n",
                       static_cast<long long>(deadline_ms));
    }
    if (!trace_id_hex_.empty()) {
      req += StrFormat("X-Trace-Id: %s\r\n", trace_id_hex_.c_str());
    }
    if (!body.empty()) req += "Content-Type: application/json\r\n";
    req += "\r\n";
    req += body;
    size_t sent = 0;
    while (sent < req.size()) {
      ssize_t n = ::send(fd_, req.data() + sent, req.size() - sent,
                         MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("send failed");
    }
    // Read headers.
    while (buffer_.find("\r\n\r\n") == std::string::npos) {
      if (!Fill()) return Status::IOError("connection closed mid-headers");
    }
    const size_t header_end = buffer_.find("\r\n\r\n") + 4;
    const std::string headers = buffer_.substr(0, header_end);
    // Status line: HTTP/1.1 NNN ...
    if (headers.size() < 12) return Status::IOError("short status line");
    *code = std::atoi(headers.c_str() + 9);
    size_t content_length = 0;
    {
      // Case-insensitive header scans (the server emits canonical
      // casing, but be liberal).
      std::string lower;
      lower.reserve(headers.size());
      for (char c : headers)
        lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c);
      const size_t pos = lower.find("content-length:");
      if (pos != std::string::npos) {
        content_length = static_cast<size_t>(
            std::strtoull(headers.c_str() + pos + 15, nullptr, 10));
      }
      server_timing_ = HeaderValue(headers, lower, "server-timing:");
      resp_trace_id_ = HeaderValue(headers, lower, "x-trace-id:");
    }
    while (buffer_.size() < header_end + content_length) {
      if (!Fill()) return Status::IOError("connection closed mid-body");
    }
    *resp_body = buffer_.substr(header_end, content_length);
    buffer_.erase(0, header_end + content_length);
    return Status::OK();
  }

 private:
  HttpClient(int fd, std::string host) : fd_(fd), host_(std::move(host)) {}

  /// Extracts one header's value (trimmed) given the raw headers and
  /// their lowercased copy; `needle` must be lowercase with the colon.
  static std::string HeaderValue(const std::string& headers,
                                 const std::string& lower,
                                 const std::string& needle) {
    const size_t pos = lower.find(needle);
    if (pos == std::string::npos) return "";
    size_t start = pos + needle.size();
    while (start < headers.size() && headers[start] == ' ') ++start;
    const size_t end = headers.find("\r\n", start);
    if (end == std::string::npos) return "";
    return headers.substr(start, end - start);
  }

  bool Fill() {
    char buf[16 * 1024];
    while (true) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        buffer_.append(buf, static_cast<size_t>(n));
        return true;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
  }

  int fd_;
  std::string host_;
  std::string buffer_;
  std::string trace_id_hex_;
  std::string server_timing_;
  std::string resp_trace_id_;
};

/// Maps an HTTP response to the Tally classification.
Status StatusFromHttp(int code, const std::string& body) {
  if (code == 200) return Status::OK();
  if (code == 429)
    return Status::ResourceExhausted(StrFormat("HTTP 429: %s", body.c_str()));
  if (code == 504)
    return Status::DeadlineExceeded(StrFormat("HTTP 504: %s", body.c_str()));
  return Status::IOError(StrFormat("HTTP %d: %s", code, body.c_str()));
}

std::string RecordToJson(const Record& record) {
  std::string json =
      StrFormat("{\"id\": %llu, \"fields\": [",
                static_cast<unsigned long long>(record.id));
  for (size_t i = 0; i < record.fields.size(); ++i) {
    if (i > 0) json += ", ";
    json += '"';
    for (char c : record.fields[i]) {
      if (c == '"' || c == '\\') json += '\\';
      json += c;
    }
    json += '"';
  }
  json += "]}";
  return json;
}

/// Prints "a_id,b_id" rows.
void PrintPairs(FILE* out, const std::vector<IdPair>& pairs) {
  for (const IdPair& pair : pairs) {
    std::fprintf(out, "%llu,%llu\n",
                 static_cast<unsigned long long>(pair.a_id),
                 static_cast<unsigned long long>(pair.b_id));
  }
}

/// Extracts pairs out of the HTTP {"pairs": [[a, b], ...]} body — a
/// two-integer-tuple scan is all the shape needs.
std::vector<IdPair> PairsFromJson(const std::string& body) {
  std::vector<IdPair> pairs;
  size_t pos = body.find('[');
  if (pos == std::string::npos) return pairs;
  ++pos;
  while (pos < body.size()) {
    const size_t open = body.find('[', pos);
    if (open == std::string::npos) break;
    char* end = nullptr;
    const uint64_t a = std::strtoull(body.c_str() + open + 1, &end, 10);
    if (end == nullptr || *end != ',') break;
    const uint64_t b = std::strtoull(end + 1, &end, 10);
    if (end == nullptr || *end != ']') break;
    pairs.push_back(IdPair{a, b});
    pos = static_cast<size_t>(end - body.c_str()) + 1;
  }
  return pairs;
}

int RunMain(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  std::string host;
  uint16_t port = 0;
  Status parsed = net::ParseHostPort(args.connect, &host, &port);
  if (!parsed.ok()) {
    std::fprintf(stderr, "--connect %s: %s\n", args.connect.c_str(),
                 parsed.ToString().c_str());
    return 2;
  }

  FILE* out = stdout;
  if (!args.out_path.empty()) {
    out = std::fopen(args.out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", args.out_path.c_str());
      return 1;
    }
  }
  const auto close_out = [&] {
    if (out != stdout) std::fclose(out);
  };

  Tally tally;
  uint64_t skipped_rows = 0;

  const bool http = args.mode == "http";
  // Retries only apply to sequential binary ops: HTTP mode and the
  // pipelined burst keep their single-shot semantics.
  const bool use_retry = !http && args.retries > 0 && args.burst <= 1;
  std::unique_ptr<net::NetClient> bin;
  std::unique_ptr<net::RetryingClient> rbin;
  std::unique_ptr<HttpClient> web;
  if (http) {
    Result<std::unique_ptr<HttpClient>> connected =
        HttpClient::Connect(host, port, args.timeout_ms);
    if (!connected.ok()) {
      std::fprintf(stderr, "connect: %s\n",
                   connected.status().ToString().c_str());
      close_out();
      return 1;
    }
    web = std::move(connected).value();
  } else if (use_retry) {
    net::RetryPolicy policy;
    policy.max_attempts = args.retries + 1;
    policy.per_attempt_timeout_ms = args.timeout_ms;
    policy.total_timeout_ms = static_cast<int>(args.deadline_ms);
    net::NetClientOptions client_options;
    client_options.io_timeout_ms = args.timeout_ms;
    rbin = std::make_unique<net::RetryingClient>(host, port, policy,
                                                 client_options);
  } else {
    net::NetClientOptions client_options;
    client_options.io_timeout_ms = args.timeout_ms;
    Result<std::unique_ptr<net::NetClient>> connected =
        net::NetClient::Connect(host, port, client_options);
    if (!connected.ok()) {
      std::fprintf(stderr, "connect: %s\n",
                   connected.status().ToString().c_str());
      close_out();
      return 1;
    }
    bin = std::move(connected).value();
  }
  // Per-operation deadline (infinite when unset); RetryingClient carries
  // it through policy.total_timeout_ms instead.
  const auto op_deadline = [&]() -> Deadline {
    return args.deadline_ms > 0 ? Deadline::AfterMs(args.deadline_ms)
                                : Deadline();
  };

  // With --server-timing: print the per-stage breakdown the server
  // attached to the reply of the operation traced as `trace_id`.
  const auto print_timing = [&](uint64_t trace_id,
                                const std::vector<net::StageTiming>& stages) {
    if (!args.server_timing) return;
    std::string line =
        StrFormat("[timing] trace=%s", net::TraceIdHex(trace_id).c_str());
    if (stages.empty()) {
      line += " (no Server-Timing in reply; server run without --trace?)";
    } else {
      for (const net::StageTiming& s : stages) {
        line += StrFormat(" %s=%uus", net::TimingStageName(s.stage),
                          static_cast<unsigned>(s.dur_us));
      }
    }
    std::fprintf(stderr, "%s\n", line.c_str());
  };

  // One record operation in the selected mode; pairs (if any) go to out.
  const auto run_op = [&](const std::string& op,
                          const Record& record) -> Status {
    std::vector<IdPair> pairs;
    Status st;
    // One fresh trace id per logical operation (retries reuse it).
    const uint64_t trace_id =
        args.server_timing ? telemetry::GenerateTraceId() : 0;
    if (http) {
      if (args.server_timing) web->set_trace_hex(net::TraceIdHex(trace_id));
      int code = 0;
      std::string body;
      if (op == "delete" || op == "update") {
        st = web->Call(op == "delete" ? "DELETE" : "PUT",
                       StrFormat("/records/%llu",
                                 static_cast<unsigned long long>(record.id)),
                       op == "delete" ? std::string() : RecordToJson(record),
                       &code, &body, args.deadline_ms);
      } else {
        st = web->Call("POST", StrFormat("/%s", op.c_str()),
                       RecordToJson(record), &code, &body, args.deadline_ms);
      }
      if (st.ok()) st = StatusFromHttp(code, body);
      if (st.ok() && op != "insert") pairs = PairsFromJson(body);
      if (st.ok()) {
        print_timing(trace_id,
                     net::ParseServerTimingHeaderValue(
                         web->last_server_timing()));
      }
    } else if (rbin != nullptr) {
      rbin->set_trace(trace_id);
      if (op == "match") {
        st = rbin->Match(record, &pairs);
      } else if (op == "insert") {
        st = rbin->Insert(record);
      } else if (op == "delete") {
        st = rbin->Delete(record.id);
      } else if (op == "update") {
        st = rbin->Update(record);
      } else {
        st = rbin->MatchAndInsert(record, &pairs);
      }
      if (st.ok()) print_timing(trace_id, rbin->last_server_timing());
    } else {
      bin->set_trace(trace_id);
      if (op == "match") {
        st = bin->Match(record, &pairs, op_deadline());
      } else if (op == "insert") {
        st = bin->Insert(record, op_deadline());
      } else if (op == "delete") {
        st = bin->Delete(record.id, op_deadline());
      } else if (op == "update") {
        st = bin->Update(record, op_deadline());
      } else {
        st = bin->MatchAndInsert(record, &pairs, op_deadline());
      }
      if (st.ok()) print_timing(trace_id, bin->last_server_timing());
    }
    if (st.ok()) PrintPairs(out, pairs);
    return st;
  };

  if (args.ping) {
    Status st;
    if (http) {
      int code = 0;
      std::string body;
      st = web->Call("GET", "/healthz", "", &code, &body, args.deadline_ms);
      if (st.ok()) st = StatusFromHttp(code, body);
    } else if (rbin != nullptr) {
      st = rbin->Ping();
    } else {
      st = bin->Ping(op_deadline());
    }
    tally.Count(st);
    if (!st.ok()) std::fprintf(stderr, "ping: %s\n", st.ToString().c_str());
  } else if (args.stats) {
    std::string json;
    Status st;
    if (http) {
      int code = 0;
      st = web->Call("GET", "/stats", "", &code, &json, args.deadline_ms);
      if (st.ok()) st = StatusFromHttp(code, json);
    } else if (rbin != nullptr) {
      st = rbin->Stats(&json);
    } else {
      st = bin->Stats(&json, op_deadline());
    }
    tally.Count(st);
    if (st.ok()) {
      std::fprintf(out, "%s\n", json.c_str());
    } else {
      std::fprintf(stderr, "stats: %s\n", st.ToString().c_str());
    }
  } else if (!args.record_fields.empty() || args.op == "delete") {
    Record record;
    record.id = args.id;
    for (const std::string& field : StrSplit(args.record_fields, ',')) {
      record.fields.push_back(field);
    }
    if (args.burst <= 1 || http) {
      // Sequential (HTTP has no pipelined mode here).
      for (size_t i = 0; i < args.burst; ++i) {
        Record r = record;
        r.id = args.id + i;
        Status st = run_op(args.op, r);
        tally.Count(st);
        if (!st.ok() &&
            !(args.allow_shed &&
              st.code() == StatusCode::kResourceExhausted)) {
          std::fprintf(stderr, "%s: %s\n", args.op.c_str(),
                       st.ToString().c_str());
        }
      }
    } else {
      // Pipelined burst: send everything, then read everything — the
      // admission queue fills faster than the workers drain it, so a
      // large enough burst must shed.
      net::MsgType type = net::MsgType::kMatch;
      net::MsgType expect = net::MsgType::kMatchResult;
      if (args.op == "insert") {
        type = net::MsgType::kInsert;
        expect = net::MsgType::kInserted;
      } else if (args.op == "match_and_insert") {
        type = net::MsgType::kMatchAndInsert;
      } else if (args.op == "delete") {
        type = net::MsgType::kDelete;
        expect = net::MsgType::kDeleted;
      } else if (args.op == "update") {
        type = net::MsgType::kUpdate;
        expect = net::MsgType::kUpdated;
      }
      Status st = bin->PipelinedBurst(
          type, record, args.burst,
          [&](size_t, const net::Frame& reply) {
            if (reply.type == net::MsgType::kError) {
              Status carried = Status::OK();
              if (!net::DecodeErrorPayload(reply.payload, &carried).ok()) {
                carried = Status::IOError("undecodable error frame");
              }
              tally.Count(carried);
              return;
            }
            if (reply.type != expect) {
              ++tally.error;
              return;
            }
            ++tally.ok;
            if (reply.type == net::MsgType::kMatchResult) {
              std::vector<IdPair> pairs;
              if (net::DecodePairs(reply.payload, &pairs).ok()) {
                PrintPairs(out, pairs);
              }
            }
          });
      if (!st.ok()) {
        std::fprintf(stderr, "burst: %s\n", st.ToString().c_str());
        tally.error += 1;
      }
    }
  } else {
    CsvReadOptions read_options;
    read_options.id_column = args.id_column;
    read_options.first_auto_id = args.first_auto_id;
    read_options.skip_malformed_rows = true;
    Result<CsvDataset> queries =
        ReadCsvDataset(args.queries_path, read_options);
    if (!queries.ok()) {
      std::fprintf(stderr, "reading %s: %s\n", args.queries_path.c_str(),
                   queries.status().ToString().c_str());
      close_out();
      return 1;
    }
    skipped_rows = queries.value().skipped_rows;
    for (const std::string& why : queries.value().skip_errors) {
      std::fprintf(stderr, "skipped query row: %s\n", why.c_str());
    }
    std::fprintf(out, "a_id,b_id\n");
    const std::string op = args.insert ? "match_and_insert" : "match";
    for (const Record& record : queries.value().records) {
      Status st = run_op(op, record);
      tally.Count(st);
      if (!st.ok() &&
          !(args.allow_shed &&
            st.code() == StatusCode::kResourceExhausted)) {
        std::fprintf(stderr, "row %llu: %s\n",
                     static_cast<unsigned long long>(record.id),
                     st.ToString().c_str());
      }
    }
  }

  close_out();
  std::fprintf(stderr,
               "summary: ok=%zu shed=%zu deadline=%zu error=%zu "
               "skipped_rows=%llu\n",
               tally.ok, tally.shed, tally.deadline, tally.error,
               static_cast<unsigned long long>(skipped_rows));
  if (rbin != nullptr) {
    const net::RetryingClient::Counters& c = rbin->counters();
    std::fprintf(stderr,
                 "retries: attempts=%llu retries=%llu reconnects=%llu "
                 "sheds_seen=%llu deadline_seen=%llu transport_errors=%llu\n",
                 static_cast<unsigned long long>(c.attempts),
                 static_cast<unsigned long long>(c.retries),
                 static_cast<unsigned long long>(c.reconnects),
                 static_cast<unsigned long long>(c.sheds_seen),
                 static_cast<unsigned long long>(c.deadline_seen),
                 static_cast<unsigned long long>(c.transport_errors));
  }
  if (tally.error > 0 || tally.deadline > 0) return 1;
  if (tally.shed > 0 && !args.allow_shed) return 1;
  if (skipped_rows > 0) {
    std::fprintf(stderr,
                 "exiting 3: %llu malformed query rows were skipped\n",
                 static_cast<unsigned long long>(skipped_rows));
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace cbvlink

int main(int argc, char** argv) { return cbvlink::RunMain(argc, argv); }
