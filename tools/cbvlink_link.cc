// cbvlink_link: link two CSV data sets with cBV-HB from the command line.
//
// Usage:
//   cbvlink_link --a A.csv --b B.csv [options]
//
// Options:
//   --a FILE               data set A (CSV with header; see --id-column)
//   --b FILE               data set B
//   --id-column NAME       id column name (default "id"; row numbers when
//                          absent — B's auto-ids start after A's)
//   --rule RULE            classification rule, e.g.
//                          "f1 <= 4 AND f2 <= 4" (default: every
//                          attribute <= --theta)
//   --theta N              default per-attribute threshold (default 4)
//   --k N                  base hash functions per group (default 30)
//   --delta X              miss probability (default 0.1)
//   --attribute-level      rule-aware attribute-level blocking
//   --attribute-k LIST     comma-separated K per attribute (with
//                          --attribute-level; default 5 per attribute)
//   --alphanumeric         use the alphanumeric alphabet for every
//                          attribute (default: uppercase letters only)
//   --out FILE             write matched pairs CSV (default stdout)
//   --truth FILE           ground-truth CSV with columns a_id,b_id;
//                          prints PC/PQ/RR when given
//   --seed N               RNG seed (default 7)
//   --num-threads N        worker threads for embed/index/match
//                          (1 = serial, 0 = hardware; default 1);
//                          output is identical at any setting

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "src/common/str.h"
#include "src/datagen/dataset.h"
#include "src/eval/csv.h"
#include "src/eval/measures.h"
#include "src/io/csv_reader.h"
#include "src/linkage/cbv_hb_linker.h"
#include "src/rules/rule_parser.h"

namespace cbvlink {
namespace {

struct Args {
  std::string a_path;
  std::string b_path;
  std::string id_column = "id";
  std::string rule_text;
  size_t theta = 4;
  size_t k = 30;
  double delta = 0.1;
  bool attribute_level = false;
  std::string attribute_k;
  bool alphanumeric = false;
  std::string out_path;
  std::string truth_path;
  uint64_t seed = 7;
  size_t num_threads = 1;
};

void Usage() {
  std::fprintf(stderr,
               "usage: cbvlink_link --a A.csv --b B.csv [--rule RULE] "
               "[--theta N] [--k N]\n"
               "  [--delta X] [--attribute-level] [--attribute-k 5,5,10,5]\n"
               "  [--alphanumeric] [--id-column NAME] [--out FILE] "
               "[--truth FILE] [--seed N]\n"
               "  [--num-threads N]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--a") {
      const char* v = next();
      if (!v) return false;
      args->a_path = v;
    } else if (flag == "--b") {
      const char* v = next();
      if (!v) return false;
      args->b_path = v;
    } else if (flag == "--id-column") {
      const char* v = next();
      if (!v) return false;
      args->id_column = v;
    } else if (flag == "--rule") {
      const char* v = next();
      if (!v) return false;
      args->rule_text = v;
    } else if (flag == "--theta") {
      const char* v = next();
      if (!v) return false;
      args->theta = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (flag == "--k") {
      const char* v = next();
      if (!v) return false;
      args->k = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (flag == "--delta") {
      const char* v = next();
      if (!v) return false;
      args->delta = std::strtod(v, nullptr);
    } else if (flag == "--attribute-level") {
      args->attribute_level = true;
    } else if (flag == "--attribute-k") {
      const char* v = next();
      if (!v) return false;
      args->attribute_k = v;
    } else if (flag == "--alphanumeric") {
      args->alphanumeric = true;
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) return false;
      args->out_path = v;
    } else if (flag == "--truth") {
      const char* v = next();
      if (!v) return false;
      args->truth_path = v;
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--num-threads") {
      const char* v = next();
      if (!v) return false;
      args->num_threads = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return !args->a_path.empty() && !args->b_path.empty();
}

int RunMain(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  CsvReadOptions read_options;
  read_options.id_column = args.id_column;
  Result<CsvDataset> a = ReadCsvDataset(args.a_path, read_options);
  if (!a.ok()) {
    std::fprintf(stderr, "reading %s: %s\n", args.a_path.c_str(),
                 a.status().ToString().c_str());
    return 1;
  }
  read_options.first_auto_id = a.value().records.size();
  Result<CsvDataset> b = ReadCsvDataset(args.b_path, read_options);
  if (!b.ok()) {
    std::fprintf(stderr, "reading %s: %s\n", args.b_path.c_str(),
                 b.status().ToString().c_str());
    return 1;
  }
  if (a.value().attribute_names != b.value().attribute_names) {
    std::fprintf(stderr, "A and B have different attribute columns\n");
    return 1;
  }
  const size_t nf = a.value().attribute_names.size();
  std::fprintf(stderr, "A: %zu records, B: %zu records, %zu attributes\n",
               a.value().records.size(), b.value().records.size(), nf);

  // Schema: one spec per CSV attribute column.
  Schema schema;
  const Alphabet& alphabet =
      args.alphanumeric ? Alphabet::Alphanumeric() : Alphabet::Uppercase();
  for (const std::string& name : a.value().attribute_names) {
    schema.attributes.push_back(
        {name, &alphabet, QGramOptions{.q = 2, .pad = false}});
  }

  // Rule: parsed, or AND of --theta over every attribute.
  Rule rule = Rule::Pred(0, args.theta);
  if (!args.rule_text.empty()) {
    Result<Rule> parsed = ParseRule(args.rule_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "rule: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    rule = std::move(parsed).value();
  } else if (nf > 1) {
    std::vector<Rule> preds;
    for (size_t i = 0; i < nf; ++i) preds.push_back(Rule::Pred(i, args.theta));
    rule = Rule::And(std::move(preds));
  }

  CbvHbConfig config;
  config.schema = std::move(schema);
  config.rule = std::move(rule);
  config.attribute_level_blocking = args.attribute_level;
  config.record_K = args.k;
  config.record_theta = args.theta;
  config.delta = args.delta;
  config.seed = args.seed;
  if (args.attribute_level) {
    if (args.attribute_k.empty()) {
      config.attribute_K.assign(nf, 5);
    } else {
      for (const std::string& part : StrSplit(args.attribute_k, ',')) {
        config.attribute_K.push_back(
            static_cast<size_t>(std::strtoull(part.c_str(), nullptr, 10)));
      }
    }
  }

  Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
  if (!linker.ok()) {
    std::fprintf(stderr, "config: %s\n", linker.status().ToString().c_str());
    return 1;
  }
  Result<LinkageResult> result =
      linker.value().Link(a.value().records, b.value().records,
                          ExecutionOptions::WithThreads(args.num_threads));
  if (!result.ok()) {
    std::fprintf(stderr, "linkage: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::fprintf(stderr,
               "matched %zu pairs (comparisons: %llu, groups: %zu, "
               "embed %.2fs + index %.2fs + match %.2fs, %zu threads)\n",
               result.value().matches.size(),
               static_cast<unsigned long long>(
                   result.value().stats.comparisons),
               result.value().blocking_groups,
               result.value().embed_seconds, result.value().index_seconds,
               result.value().match_seconds, result.value().threads_used);

  // Emit matches.
  FILE* out = stdout;
  if (!args.out_path.empty()) {
    out = std::fopen(args.out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", args.out_path.c_str());
      return 1;
    }
  }
  std::fprintf(out, "a_id,b_id\n");
  for (const IdPair& pair : result.value().matches) {
    std::fprintf(out, "%llu,%llu\n",
                 static_cast<unsigned long long>(pair.a_id),
                 static_cast<unsigned long long>(pair.b_id));
  }
  if (out != stdout) std::fclose(out);

  // Optional scoring against ground truth.
  if (!args.truth_path.empty()) {
    CsvReadOptions truth_options;
    truth_options.id_column = "a_id";
    truth_options.attribute_columns = {"b_id"};
    Result<CsvDataset> truth_csv =
        ReadCsvDataset(args.truth_path, truth_options);
    if (!truth_csv.ok()) {
      std::fprintf(stderr, "truth: %s\n",
                   truth_csv.status().ToString().c_str());
      return 1;
    }
    PairSet truth;
    for (const Record& row : truth_csv.value().records) {
      truth.insert(IdPair{
          row.id, static_cast<RecordId>(
                      std::strtoull(row.fields[0].c_str(), nullptr, 10))});
    }
    const QualityMeasures q = ComputeQuality(
        result.value().matches, truth, result.value().stats.comparisons,
        a.value().records.size(), b.value().records.size());
    std::fprintf(stderr, "PC=%.4f PQ=%.5f RR=%.5f (%llu/%llu true matches)\n",
                 q.pairs_completeness, q.pairs_quality, q.reduction_ratio,
                 static_cast<unsigned long long>(q.true_matches_found),
                 static_cast<unsigned long long>(q.total_true_matches));
  }
  return 0;
}

}  // namespace
}  // namespace cbvlink

int main(int argc, char** argv) { return cbvlink::RunMain(argc, argv); }
