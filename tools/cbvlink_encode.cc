// cbvlink_encode: embed a CSV data set into compact c-vectors and write
// them in the binary wire format — what a data custodian would ship to
// Charlie in the paper's protocol (Section 3).
//
// Usage:
//   cbvlink_encode --in records.csv --out records.cbv [options]
//
// Options:
//   --in FILE           input CSV (header row; see --id-column)
//   --out FILE          output encoded-record file
//   --id-column NAME    id column (default "id")
//   --alphanumeric      alphanumeric alphabet (default: uppercase letters)
//   --rho X             Theorem 1 max expected collisions (default 1.0)
//   --r X               Theorem 1 confidence ratio (default 1/3)
//   --seed N            hash-family seed; custodians must share it
//                       (default 7)

#include <cstdio>
#include <cstring>
#include <string>

#include "src/embedding/record_encoder.h"
#include "src/io/csv_reader.h"
#include "src/io/serialization.h"

namespace cbvlink {
namespace {

int RunMain(int argc, char** argv) {
  std::string in_path;
  std::string out_path;
  std::string id_column = "id";
  bool alphanumeric = false;
  OptimalSizeOptions sizing;
  uint64_t seed = 7;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--in") {
      const char* v = next();
      if (!v) return 2;
      in_path = v;
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) return 2;
      out_path = v;
    } else if (flag == "--id-column") {
      const char* v = next();
      if (!v) return 2;
      id_column = v;
    } else if (flag == "--alphanumeric") {
      alphanumeric = true;
    } else if (flag == "--rho") {
      const char* v = next();
      if (!v) return 2;
      sizing.max_collisions = std::strtod(v, nullptr);
    } else if (flag == "--r") {
      const char* v = next();
      if (!v) return 2;
      sizing.confidence_ratio = std::strtod(v, nullptr);
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return 2;
      seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 2;
    }
  }
  if (in_path.empty() || out_path.empty()) {
    std::fprintf(stderr,
                 "usage: cbvlink_encode --in records.csv --out records.cbv "
                 "[--id-column NAME]\n"
                 "  [--alphanumeric] [--rho X] [--r X] [--seed N]\n");
    return 2;
  }

  CsvReadOptions read_options;
  read_options.id_column = id_column;
  Result<CsvDataset> dataset = ReadCsvDataset(in_path, read_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  Schema schema;
  const Alphabet& alphabet =
      alphanumeric ? Alphabet::Alphanumeric() : Alphabet::Uppercase();
  for (const std::string& name : dataset.value().attribute_names) {
    schema.attributes.push_back(
        {name, &alphabet, QGramOptions{.q = 2, .pad = false}});
  }

  Rng rng(seed);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      schema, EstimateExpectedQGrams(schema, dataset.value().records), rng,
      sizing);
  if (!encoder.ok()) {
    std::fprintf(stderr, "%s\n", encoder.status().ToString().c_str());
    return 1;
  }

  std::vector<EncodedRecord> encoded;
  encoded.reserve(dataset.value().records.size());
  for (const Record& record : dataset.value().records) {
    Result<EncodedRecord> enc = encoder.value().Encode(record);
    if (!enc.ok()) {
      std::fprintf(stderr, "%s\n", enc.status().ToString().c_str());
      return 1;
    }
    encoded.push_back(std::move(enc).value());
  }
  const Status write_status = WriteEncodedRecordsToFile(encoded, out_path);
  if (!write_status.ok()) {
    std::fprintf(stderr, "%s\n", write_status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "encoded %zu records at %zu bits each into %s "
               "(attribute sizes:",
               encoded.size(), encoder.value().total_bits(),
               out_path.c_str());
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    std::fprintf(stderr, " %zu", encoder.value().layout().segment(i).size);
  }
  std::fprintf(stderr, ")\n");
  return 0;
}

}  // namespace
}  // namespace cbvlink

int main(int argc, char** argv) { return cbvlink::RunMain(argc, argv); }
