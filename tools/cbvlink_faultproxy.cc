// cbvlink_faultproxy: a toxiproxy-style TCP fault-injection proxy for
// chaos drills against cbvlink_serve.  Point clients (or a replica) at
// the proxy's listen port; it forwards to --upstream while applying the
// configured faults in both directions.
//
// Usage:
//   cbvlink_faultproxy --upstream HOST:PORT [--listen HOST:PORT]
//                      [--faults SPEC]
//
// SPEC uses the failpoint-style grammar (also read from the
// CBVLINK_FAULTS environment variable when --faults is absent):
//   latency=MS;jitter=MS;bandwidth=BPS;slice=BYTES;corrupt=PPM;
//   reset_after=BYTES;blackhole=0|1;seed=N
//
// e.g. --faults 'latency=5;jitter=2'        slow link
//      --faults 'slice=1'                    1-byte slicer
//      --faults 'corrupt=1000'               ~0.1% of bytes bit-flipped
//      --faults 'reset_after=4096'           RST each conn after 4 KiB
//      --faults 'blackhole=1'                partition (bytes held)
//
// Runtime signals:
//   SIGUSR1  toggle blackhole (partition / heal)
//   SIGUSR2  RST every active proxied connection
//   SIGTERM/SIGINT  shut down
//
// Prints "proxying on HOST:PORT -> HOST:PORT" to stderr once bound, so
// scripts can scrape the ephemeral port like they do for cbvlink_serve.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <unistd.h>

#include "src/common/status.h"
#include "src/net/client.h"
#include "src/net/faultproxy.h"
#include "src/net/protocol.h"

namespace cbvlink {
namespace {

std::sig_atomic_t g_stop = 0;
std::sig_atomic_t g_toggle_blackhole = 0;
std::sig_atomic_t g_reset_conns = 0;

void OnStop(int) { g_stop = 1; }
void OnUsr1(int) { g_toggle_blackhole = 1; }
void OnUsr2(int) { g_reset_conns = 1; }

void Usage() {
  std::fprintf(stderr,
               "usage: cbvlink_faultproxy --upstream HOST:PORT\n"
               "  [--listen HOST:PORT (default 127.0.0.1:0)]\n"
               "  [--faults 'latency=MS;jitter=MS;bandwidth=BPS;slice=BYTES;"
               "corrupt=PPM;reset_after=BYTES;blackhole=0|1;seed=N']\n"
               "  (or CBVLINK_FAULTS env)\n"
               "signals: SIGUSR1 toggle blackhole, SIGUSR2 reset all conns\n");
}

int RunMain(int argc, char** argv) {
  std::string upstream;
  std::string listen = "127.0.0.1:0";
  std::string faults_spec;
  bool have_spec = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--upstream") {
      const char* v = next();
      if (!v) { Usage(); return 2; }
      upstream = v;
    } else if (flag == "--listen") {
      const char* v = next();
      if (!v) { Usage(); return 2; }
      listen = v;
    } else if (flag == "--faults") {
      const char* v = next();
      if (!v) { Usage(); return 2; }
      faults_spec = v;
      have_spec = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      Usage();
      return 2;
    }
  }
  if (upstream.empty()) {
    Usage();
    return 2;
  }
  if (!have_spec) {
    const char* env = std::getenv("CBVLINK_FAULTS");
    if (env != nullptr) faults_spec = env;
  }

  std::string up_host, listen_host;
  uint16_t up_port = 0, listen_port = 0;
  Status st = net::ParseHostPort(upstream, &up_host, &up_port);
  if (st.ok()) st = net::ParseHostPort(listen, &listen_host, &listen_port);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }

  auto proxy = net::FaultProxy::Start(up_host, up_port, listen_port,
                                      listen_host);
  if (!proxy.ok()) {
    std::fprintf(stderr, "start: %s\n", proxy.status().ToString().c_str());
    return 1;
  }
  if (!faults_spec.empty()) {
    st = proxy.value()->faults().Parse(faults_spec);
    if (!st.ok()) {
      std::fprintf(stderr, "--faults: %s\n", st.ToString().c_str());
      return 2;
    }
  }

  std::signal(SIGTERM, OnStop);
  std::signal(SIGINT, OnStop);
  std::signal(SIGUSR1, OnUsr1);
  std::signal(SIGUSR2, OnUsr2);
  std::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr, "proxying on %s:%u -> %s:%u\n", listen_host.c_str(),
               proxy.value()->port(), up_host.c_str(), up_port);

  while (!g_stop) {
    if (g_toggle_blackhole) {
      g_toggle_blackhole = 0;
      net::FaultSpec& faults = proxy.value()->faults();
      const bool now = !faults.blackhole.load();
      faults.blackhole.store(now);
      std::fprintf(stderr, "blackhole=%d\n", now ? 1 : 0);
    }
    if (g_reset_conns) {
      g_reset_conns = 0;
      proxy.value()->ResetAllConnections();
      std::fprintf(stderr, "reset all connections\n");
    }
    ::usleep(50 * 1000);
  }
  proxy.value()->Shutdown();
  std::fprintf(stderr, "forwarded %llu bytes\n",
               static_cast<unsigned long long>(
                   proxy.value()->forwarded_bytes()));
  return 0;
}

}  // namespace
}  // namespace cbvlink

int main(int argc, char** argv) { return cbvlink::RunMain(argc, argv); }
