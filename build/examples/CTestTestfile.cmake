# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_health_surveillance "/root/repo/build/examples/health_surveillance")
set_tests_properties(example_health_surveillance PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bibliographic_linkage "/root/repo/build/examples/bibliographic_linkage")
set_tests_properties(example_bibliographic_linkage PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rule_blocking "/root/repo/build/examples/rule_blocking")
set_tests_properties(example_rule_blocking PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_party "/root/repo/build/examples/multi_party")
set_tests_properties(example_multi_party PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_three_party_protocol "/root/repo/build/examples/three_party_protocol")
set_tests_properties(example_three_party_protocol PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dedup_catalog "/root/repo/build/examples/dedup_catalog")
set_tests_properties(example_dedup_catalog PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
