# Empty compiler generated dependencies file for three_party_protocol.
# This may be replaced when dependencies are built.
