file(REMOVE_RECURSE
  "CMakeFiles/three_party_protocol.dir/three_party_protocol.cpp.o"
  "CMakeFiles/three_party_protocol.dir/three_party_protocol.cpp.o.d"
  "three_party_protocol"
  "three_party_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_party_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
