file(REMOVE_RECURSE
  "CMakeFiles/rule_blocking.dir/rule_blocking.cpp.o"
  "CMakeFiles/rule_blocking.dir/rule_blocking.cpp.o.d"
  "rule_blocking"
  "rule_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
