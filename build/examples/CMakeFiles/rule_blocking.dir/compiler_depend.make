# Empty compiler generated dependencies file for rule_blocking.
# This may be replaced when dependencies are built.
