# Empty dependencies file for bibliographic_linkage.
# This may be replaced when dependencies are built.
