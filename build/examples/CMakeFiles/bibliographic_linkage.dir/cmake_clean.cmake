file(REMOVE_RECURSE
  "CMakeFiles/bibliographic_linkage.dir/bibliographic_linkage.cpp.o"
  "CMakeFiles/bibliographic_linkage.dir/bibliographic_linkage.cpp.o.d"
  "bibliographic_linkage"
  "bibliographic_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliographic_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
