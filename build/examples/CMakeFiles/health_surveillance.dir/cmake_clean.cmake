file(REMOVE_RECURSE
  "CMakeFiles/health_surveillance.dir/health_surveillance.cpp.o"
  "CMakeFiles/health_surveillance.dir/health_surveillance.cpp.o.d"
  "health_surveillance"
  "health_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/health_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
