# Empty compiler generated dependencies file for health_surveillance.
# This may be replaced when dependencies are built.
