# Empty dependencies file for dedup_catalog.
# This may be replaced when dependencies are built.
