file(REMOVE_RECURSE
  "CMakeFiles/dedup_catalog.dir/dedup_catalog.cpp.o"
  "CMakeFiles/dedup_catalog.dir/dedup_catalog.cpp.o.d"
  "dedup_catalog"
  "dedup_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
