file(REMOVE_RECURSE
  "CMakeFiles/multi_party.dir/multi_party.cpp.o"
  "CMakeFiles/multi_party.dir/multi_party.cpp.o.d"
  "multi_party"
  "multi_party.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_party.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
