# Empty dependencies file for multi_party.
# This may be replaced when dependencies are built.
