file(REMOVE_RECURSE
  "libcbvlink.a"
)
