
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blocking/attribute_blocker.cc" "src/CMakeFiles/cbvlink.dir/blocking/attribute_blocker.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/blocking/attribute_blocker.cc.o.d"
  "/root/repo/src/blocking/classic.cc" "src/CMakeFiles/cbvlink.dir/blocking/classic.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/blocking/classic.cc.o.d"
  "/root/repo/src/blocking/matcher.cc" "src/CMakeFiles/cbvlink.dir/blocking/matcher.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/blocking/matcher.cc.o.d"
  "/root/repo/src/blocking/record_blocker.cc" "src/CMakeFiles/cbvlink.dir/blocking/record_blocker.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/blocking/record_blocker.cc.o.d"
  "/root/repo/src/common/bitvector.cc" "src/CMakeFiles/cbvlink.dir/common/bitvector.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/common/bitvector.cc.o.d"
  "/root/repo/src/common/hashing.cc" "src/CMakeFiles/cbvlink.dir/common/hashing.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/common/hashing.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/cbvlink.dir/common/random.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/cbvlink.dir/common/status.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/common/status.cc.o.d"
  "/root/repo/src/common/str.cc" "src/CMakeFiles/cbvlink.dir/common/str.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/common/str.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/cbvlink.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/common/union_find.cc" "src/CMakeFiles/cbvlink.dir/common/union_find.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/common/union_find.cc.o.d"
  "/root/repo/src/datagen/corpora.cc" "src/CMakeFiles/cbvlink.dir/datagen/corpora.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/datagen/corpora.cc.o.d"
  "/root/repo/src/datagen/dataset.cc" "src/CMakeFiles/cbvlink.dir/datagen/dataset.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/datagen/dataset.cc.o.d"
  "/root/repo/src/datagen/generators.cc" "src/CMakeFiles/cbvlink.dir/datagen/generators.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/datagen/generators.cc.o.d"
  "/root/repo/src/datagen/perturbator.cc" "src/CMakeFiles/cbvlink.dir/datagen/perturbator.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/datagen/perturbator.cc.o.d"
  "/root/repo/src/embedding/bloom_filter.cc" "src/CMakeFiles/cbvlink.dir/embedding/bloom_filter.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/embedding/bloom_filter.cc.o.d"
  "/root/repo/src/embedding/cvector.cc" "src/CMakeFiles/cbvlink.dir/embedding/cvector.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/embedding/cvector.cc.o.d"
  "/root/repo/src/embedding/optimal_size.cc" "src/CMakeFiles/cbvlink.dir/embedding/optimal_size.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/embedding/optimal_size.cc.o.d"
  "/root/repo/src/embedding/qgram_vector.cc" "src/CMakeFiles/cbvlink.dir/embedding/qgram_vector.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/embedding/qgram_vector.cc.o.d"
  "/root/repo/src/embedding/record_encoder.cc" "src/CMakeFiles/cbvlink.dir/embedding/record_encoder.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/embedding/record_encoder.cc.o.d"
  "/root/repo/src/embedding/stringmap.cc" "src/CMakeFiles/cbvlink.dir/embedding/stringmap.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/embedding/stringmap.cc.o.d"
  "/root/repo/src/eval/block_stats.cc" "src/CMakeFiles/cbvlink.dir/eval/block_stats.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/eval/block_stats.cc.o.d"
  "/root/repo/src/eval/calibration.cc" "src/CMakeFiles/cbvlink.dir/eval/calibration.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/eval/calibration.cc.o.d"
  "/root/repo/src/eval/csv.cc" "src/CMakeFiles/cbvlink.dir/eval/csv.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/eval/csv.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/cbvlink.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/measures.cc" "src/CMakeFiles/cbvlink.dir/eval/measures.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/eval/measures.cc.o.d"
  "/root/repo/src/io/csv_reader.cc" "src/CMakeFiles/cbvlink.dir/io/csv_reader.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/io/csv_reader.cc.o.d"
  "/root/repo/src/io/serialization.cc" "src/CMakeFiles/cbvlink.dir/io/serialization.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/io/serialization.cc.o.d"
  "/root/repo/src/linkage/bfh_linker.cc" "src/CMakeFiles/cbvlink.dir/linkage/bfh_linker.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/linkage/bfh_linker.cc.o.d"
  "/root/repo/src/linkage/cbv_hb_linker.cc" "src/CMakeFiles/cbvlink.dir/linkage/cbv_hb_linker.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/linkage/cbv_hb_linker.cc.o.d"
  "/root/repo/src/linkage/classic_linker.cc" "src/CMakeFiles/cbvlink.dir/linkage/classic_linker.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/linkage/classic_linker.cc.o.d"
  "/root/repo/src/linkage/dedup.cc" "src/CMakeFiles/cbvlink.dir/linkage/dedup.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/linkage/dedup.cc.o.d"
  "/root/repo/src/linkage/harra_linker.cc" "src/CMakeFiles/cbvlink.dir/linkage/harra_linker.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/linkage/harra_linker.cc.o.d"
  "/root/repo/src/linkage/linker.cc" "src/CMakeFiles/cbvlink.dir/linkage/linker.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/linkage/linker.cc.o.d"
  "/root/repo/src/linkage/multi_party.cc" "src/CMakeFiles/cbvlink.dir/linkage/multi_party.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/linkage/multi_party.cc.o.d"
  "/root/repo/src/linkage/online_linker.cc" "src/CMakeFiles/cbvlink.dir/linkage/online_linker.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/linkage/online_linker.cc.o.d"
  "/root/repo/src/linkage/smeb_linker.cc" "src/CMakeFiles/cbvlink.dir/linkage/smeb_linker.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/linkage/smeb_linker.cc.o.d"
  "/root/repo/src/lsh/blocking_table.cc" "src/CMakeFiles/cbvlink.dir/lsh/blocking_table.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/lsh/blocking_table.cc.o.d"
  "/root/repo/src/lsh/euclidean_lsh.cc" "src/CMakeFiles/cbvlink.dir/lsh/euclidean_lsh.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/lsh/euclidean_lsh.cc.o.d"
  "/root/repo/src/lsh/hamming_lsh.cc" "src/CMakeFiles/cbvlink.dir/lsh/hamming_lsh.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/lsh/hamming_lsh.cc.o.d"
  "/root/repo/src/lsh/minhash_lsh.cc" "src/CMakeFiles/cbvlink.dir/lsh/minhash_lsh.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/lsh/minhash_lsh.cc.o.d"
  "/root/repo/src/lsh/params.cc" "src/CMakeFiles/cbvlink.dir/lsh/params.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/lsh/params.cc.o.d"
  "/root/repo/src/metrics/edit_distance.cc" "src/CMakeFiles/cbvlink.dir/metrics/edit_distance.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/metrics/edit_distance.cc.o.d"
  "/root/repo/src/metrics/jaccard.cc" "src/CMakeFiles/cbvlink.dir/metrics/jaccard.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/metrics/jaccard.cc.o.d"
  "/root/repo/src/metrics/jaro_winkler.cc" "src/CMakeFiles/cbvlink.dir/metrics/jaro_winkler.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/metrics/jaro_winkler.cc.o.d"
  "/root/repo/src/protocol/party.cc" "src/CMakeFiles/cbvlink.dir/protocol/party.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/protocol/party.cc.o.d"
  "/root/repo/src/rules/probability.cc" "src/CMakeFiles/cbvlink.dir/rules/probability.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/rules/probability.cc.o.d"
  "/root/repo/src/rules/rule.cc" "src/CMakeFiles/cbvlink.dir/rules/rule.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/rules/rule.cc.o.d"
  "/root/repo/src/rules/rule_parser.cc" "src/CMakeFiles/cbvlink.dir/rules/rule_parser.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/rules/rule_parser.cc.o.d"
  "/root/repo/src/rules/threshold.cc" "src/CMakeFiles/cbvlink.dir/rules/threshold.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/rules/threshold.cc.o.d"
  "/root/repo/src/text/alphabet.cc" "src/CMakeFiles/cbvlink.dir/text/alphabet.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/text/alphabet.cc.o.d"
  "/root/repo/src/text/normalize.cc" "src/CMakeFiles/cbvlink.dir/text/normalize.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/text/normalize.cc.o.d"
  "/root/repo/src/text/qgram.cc" "src/CMakeFiles/cbvlink.dir/text/qgram.cc.o" "gcc" "src/CMakeFiles/cbvlink.dir/text/qgram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
