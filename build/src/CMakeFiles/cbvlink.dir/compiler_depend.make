# Empty compiler generated dependencies file for cbvlink.
# This may be replaced when dependencies are built.
