file(REMOVE_RECURSE
  "CMakeFiles/test_dedup.dir/test_dedup.cc.o"
  "CMakeFiles/test_dedup.dir/test_dedup.cc.o.d"
  "test_dedup"
  "test_dedup.pdb"
  "test_dedup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
