# Empty dependencies file for test_dedup.
# This may be replaced when dependencies are built.
