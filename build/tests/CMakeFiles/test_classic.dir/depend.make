# Empty dependencies file for test_classic.
# This may be replaced when dependencies are built.
