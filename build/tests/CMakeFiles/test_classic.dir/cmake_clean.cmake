file(REMOVE_RECURSE
  "CMakeFiles/test_classic.dir/test_classic.cc.o"
  "CMakeFiles/test_classic.dir/test_classic.cc.o.d"
  "test_classic"
  "test_classic.pdb"
  "test_classic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
