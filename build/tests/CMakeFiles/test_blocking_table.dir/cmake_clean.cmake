file(REMOVE_RECURSE
  "CMakeFiles/test_blocking_table.dir/test_blocking_table.cc.o"
  "CMakeFiles/test_blocking_table.dir/test_blocking_table.cc.o.d"
  "test_blocking_table"
  "test_blocking_table.pdb"
  "test_blocking_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocking_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
