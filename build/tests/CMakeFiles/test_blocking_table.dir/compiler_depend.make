# Empty compiler generated dependencies file for test_blocking_table.
# This may be replaced when dependencies are built.
