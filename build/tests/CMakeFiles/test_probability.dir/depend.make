# Empty dependencies file for test_probability.
# This may be replaced when dependencies are built.
