file(REMOVE_RECURSE
  "CMakeFiles/test_probability.dir/test_probability.cc.o"
  "CMakeFiles/test_probability.dir/test_probability.cc.o.d"
  "test_probability"
  "test_probability.pdb"
  "test_probability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
