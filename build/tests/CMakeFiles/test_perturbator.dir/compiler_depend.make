# Empty compiler generated dependencies file for test_perturbator.
# This may be replaced when dependencies are built.
