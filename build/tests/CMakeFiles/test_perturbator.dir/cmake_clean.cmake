file(REMOVE_RECURSE
  "CMakeFiles/test_perturbator.dir/test_perturbator.cc.o"
  "CMakeFiles/test_perturbator.dir/test_perturbator.cc.o.d"
  "test_perturbator"
  "test_perturbator.pdb"
  "test_perturbator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perturbator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
