# Empty compiler generated dependencies file for test_threshold.
# This may be replaced when dependencies are built.
