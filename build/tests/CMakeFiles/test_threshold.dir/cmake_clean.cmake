file(REMOVE_RECURSE
  "CMakeFiles/test_threshold.dir/test_threshold.cc.o"
  "CMakeFiles/test_threshold.dir/test_threshold.cc.o.d"
  "test_threshold"
  "test_threshold.pdb"
  "test_threshold[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
