# Empty compiler generated dependencies file for test_lsh_params.
# This may be replaced when dependencies are built.
