file(REMOVE_RECURSE
  "CMakeFiles/test_lsh_params.dir/test_lsh_params.cc.o"
  "CMakeFiles/test_lsh_params.dir/test_lsh_params.cc.o.d"
  "test_lsh_params"
  "test_lsh_params.pdb"
  "test_lsh_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsh_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
