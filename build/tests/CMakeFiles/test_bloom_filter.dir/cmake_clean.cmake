file(REMOVE_RECURSE
  "CMakeFiles/test_bloom_filter.dir/test_bloom_filter.cc.o"
  "CMakeFiles/test_bloom_filter.dir/test_bloom_filter.cc.o.d"
  "test_bloom_filter"
  "test_bloom_filter.pdb"
  "test_bloom_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bloom_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
