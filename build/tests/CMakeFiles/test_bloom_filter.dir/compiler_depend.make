# Empty compiler generated dependencies file for test_bloom_filter.
# This may be replaced when dependencies are built.
