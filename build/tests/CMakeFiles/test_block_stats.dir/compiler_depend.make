# Empty compiler generated dependencies file for test_block_stats.
# This may be replaced when dependencies are built.
