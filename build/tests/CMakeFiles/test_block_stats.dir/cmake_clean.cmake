file(REMOVE_RECURSE
  "CMakeFiles/test_block_stats.dir/test_block_stats.cc.o"
  "CMakeFiles/test_block_stats.dir/test_block_stats.cc.o.d"
  "test_block_stats"
  "test_block_stats.pdb"
  "test_block_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
