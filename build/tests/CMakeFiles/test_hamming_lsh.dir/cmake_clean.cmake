file(REMOVE_RECURSE
  "CMakeFiles/test_hamming_lsh.dir/test_hamming_lsh.cc.o"
  "CMakeFiles/test_hamming_lsh.dir/test_hamming_lsh.cc.o.d"
  "test_hamming_lsh"
  "test_hamming_lsh.pdb"
  "test_hamming_lsh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hamming_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
