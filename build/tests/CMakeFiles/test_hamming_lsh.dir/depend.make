# Empty dependencies file for test_hamming_lsh.
# This may be replaced when dependencies are built.
