file(REMOVE_RECURSE
  "CMakeFiles/test_serialization.dir/test_serialization.cc.o"
  "CMakeFiles/test_serialization.dir/test_serialization.cc.o.d"
  "test_serialization"
  "test_serialization.pdb"
  "test_serialization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
