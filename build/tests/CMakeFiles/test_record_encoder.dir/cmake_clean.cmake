file(REMOVE_RECURSE
  "CMakeFiles/test_record_encoder.dir/test_record_encoder.cc.o"
  "CMakeFiles/test_record_encoder.dir/test_record_encoder.cc.o.d"
  "test_record_encoder"
  "test_record_encoder.pdb"
  "test_record_encoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_record_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
