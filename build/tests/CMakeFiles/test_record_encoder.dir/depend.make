# Empty dependencies file for test_record_encoder.
# This may be replaced when dependencies are built.
