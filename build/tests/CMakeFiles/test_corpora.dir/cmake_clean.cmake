file(REMOVE_RECURSE
  "CMakeFiles/test_corpora.dir/test_corpora.cc.o"
  "CMakeFiles/test_corpora.dir/test_corpora.cc.o.d"
  "test_corpora"
  "test_corpora.pdb"
  "test_corpora[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
