# Empty dependencies file for test_corpora.
# This may be replaced when dependencies are built.
