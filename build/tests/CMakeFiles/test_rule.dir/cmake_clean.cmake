file(REMOVE_RECURSE
  "CMakeFiles/test_rule.dir/test_rule.cc.o"
  "CMakeFiles/test_rule.dir/test_rule.cc.o.d"
  "test_rule"
  "test_rule.pdb"
  "test_rule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
