# Empty dependencies file for test_rule.
# This may be replaced when dependencies are built.
