# Empty compiler generated dependencies file for test_qgram.
# This may be replaced when dependencies are built.
