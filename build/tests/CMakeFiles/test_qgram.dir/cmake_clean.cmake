file(REMOVE_RECURSE
  "CMakeFiles/test_qgram.dir/test_qgram.cc.o"
  "CMakeFiles/test_qgram.dir/test_qgram.cc.o.d"
  "test_qgram"
  "test_qgram.pdb"
  "test_qgram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qgram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
