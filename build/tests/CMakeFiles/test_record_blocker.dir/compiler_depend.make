# Empty compiler generated dependencies file for test_record_blocker.
# This may be replaced when dependencies are built.
