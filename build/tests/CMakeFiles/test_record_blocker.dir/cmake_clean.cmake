file(REMOVE_RECURSE
  "CMakeFiles/test_record_blocker.dir/test_record_blocker.cc.o"
  "CMakeFiles/test_record_blocker.dir/test_record_blocker.cc.o.d"
  "test_record_blocker"
  "test_record_blocker.pdb"
  "test_record_blocker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_record_blocker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
