file(REMOVE_RECURSE
  "CMakeFiles/test_optimal_size.dir/test_optimal_size.cc.o"
  "CMakeFiles/test_optimal_size.dir/test_optimal_size.cc.o.d"
  "test_optimal_size"
  "test_optimal_size.pdb"
  "test_optimal_size[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimal_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
