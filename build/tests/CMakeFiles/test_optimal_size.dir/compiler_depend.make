# Empty compiler generated dependencies file for test_optimal_size.
# This may be replaced when dependencies are built.
