file(REMOVE_RECURSE
  "CMakeFiles/test_matcher.dir/test_matcher.cc.o"
  "CMakeFiles/test_matcher.dir/test_matcher.cc.o.d"
  "test_matcher"
  "test_matcher.pdb"
  "test_matcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
