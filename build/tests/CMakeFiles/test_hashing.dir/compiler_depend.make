# Empty compiler generated dependencies file for test_hashing.
# This may be replaced when dependencies are built.
