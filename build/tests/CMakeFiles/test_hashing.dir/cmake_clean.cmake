file(REMOVE_RECURSE
  "CMakeFiles/test_hashing.dir/test_hashing.cc.o"
  "CMakeFiles/test_hashing.dir/test_hashing.cc.o.d"
  "test_hashing"
  "test_hashing.pdb"
  "test_hashing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
