# Empty compiler generated dependencies file for test_online_linker.
# This may be replaced when dependencies are built.
