file(REMOVE_RECURSE
  "CMakeFiles/test_online_linker.dir/test_online_linker.cc.o"
  "CMakeFiles/test_online_linker.dir/test_online_linker.cc.o.d"
  "test_online_linker"
  "test_online_linker.pdb"
  "test_online_linker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
