# Empty compiler generated dependencies file for test_bitvector.
# This may be replaced when dependencies are built.
