file(REMOVE_RECURSE
  "CMakeFiles/test_bitvector.dir/test_bitvector.cc.o"
  "CMakeFiles/test_bitvector.dir/test_bitvector.cc.o.d"
  "test_bitvector"
  "test_bitvector.pdb"
  "test_bitvector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitvector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
