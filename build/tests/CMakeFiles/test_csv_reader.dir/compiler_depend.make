# Empty compiler generated dependencies file for test_csv_reader.
# This may be replaced when dependencies are built.
