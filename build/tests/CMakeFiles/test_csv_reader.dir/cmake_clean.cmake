file(REMOVE_RECURSE
  "CMakeFiles/test_csv_reader.dir/test_csv_reader.cc.o"
  "CMakeFiles/test_csv_reader.dir/test_csv_reader.cc.o.d"
  "test_csv_reader"
  "test_csv_reader.pdb"
  "test_csv_reader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csv_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
