file(REMOVE_RECURSE
  "CMakeFiles/test_paper_parameters.dir/test_paper_parameters.cc.o"
  "CMakeFiles/test_paper_parameters.dir/test_paper_parameters.cc.o.d"
  "test_paper_parameters"
  "test_paper_parameters.pdb"
  "test_paper_parameters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
