# Empty dependencies file for test_paper_parameters.
# This may be replaced when dependencies are built.
