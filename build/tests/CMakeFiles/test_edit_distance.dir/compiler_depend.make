# Empty compiler generated dependencies file for test_edit_distance.
# This may be replaced when dependencies are built.
