file(REMOVE_RECURSE
  "CMakeFiles/test_qgram_vector.dir/test_qgram_vector.cc.o"
  "CMakeFiles/test_qgram_vector.dir/test_qgram_vector.cc.o.d"
  "test_qgram_vector"
  "test_qgram_vector.pdb"
  "test_qgram_vector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qgram_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
