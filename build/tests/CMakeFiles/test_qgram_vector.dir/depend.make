# Empty dependencies file for test_qgram_vector.
# This may be replaced when dependencies are built.
