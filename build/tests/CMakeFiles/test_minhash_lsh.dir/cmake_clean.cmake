file(REMOVE_RECURSE
  "CMakeFiles/test_minhash_lsh.dir/test_minhash_lsh.cc.o"
  "CMakeFiles/test_minhash_lsh.dir/test_minhash_lsh.cc.o.d"
  "test_minhash_lsh"
  "test_minhash_lsh.pdb"
  "test_minhash_lsh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minhash_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
