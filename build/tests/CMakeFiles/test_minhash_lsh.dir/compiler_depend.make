# Empty compiler generated dependencies file for test_minhash_lsh.
# This may be replaced when dependencies are built.
