file(REMOVE_RECURSE
  "CMakeFiles/test_multi_party.dir/test_multi_party.cc.o"
  "CMakeFiles/test_multi_party.dir/test_multi_party.cc.o.d"
  "test_multi_party"
  "test_multi_party.pdb"
  "test_multi_party[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_party.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
