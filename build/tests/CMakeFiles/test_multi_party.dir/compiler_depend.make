# Empty compiler generated dependencies file for test_multi_party.
# This may be replaced when dependencies are built.
