file(REMOVE_RECURSE
  "CMakeFiles/test_measures.dir/test_measures.cc.o"
  "CMakeFiles/test_measures.dir/test_measures.cc.o.d"
  "test_measures"
  "test_measures.pdb"
  "test_measures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
