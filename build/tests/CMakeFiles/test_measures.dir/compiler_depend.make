# Empty compiler generated dependencies file for test_measures.
# This may be replaced when dependencies are built.
