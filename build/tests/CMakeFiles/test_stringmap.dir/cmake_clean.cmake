file(REMOVE_RECURSE
  "CMakeFiles/test_stringmap.dir/test_stringmap.cc.o"
  "CMakeFiles/test_stringmap.dir/test_stringmap.cc.o.d"
  "test_stringmap"
  "test_stringmap.pdb"
  "test_stringmap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stringmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
