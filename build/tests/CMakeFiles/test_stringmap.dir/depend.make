# Empty dependencies file for test_stringmap.
# This may be replaced when dependencies are built.
