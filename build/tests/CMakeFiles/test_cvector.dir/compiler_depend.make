# Empty compiler generated dependencies file for test_cvector.
# This may be replaced when dependencies are built.
