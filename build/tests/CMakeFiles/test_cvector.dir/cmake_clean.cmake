file(REMOVE_RECURSE
  "CMakeFiles/test_cvector.dir/test_cvector.cc.o"
  "CMakeFiles/test_cvector.dir/test_cvector.cc.o.d"
  "test_cvector"
  "test_cvector.pdb"
  "test_cvector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cvector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
