# Empty compiler generated dependencies file for test_str.
# This may be replaced when dependencies are built.
