file(REMOVE_RECURSE
  "CMakeFiles/test_str.dir/test_str.cc.o"
  "CMakeFiles/test_str.dir/test_str.cc.o.d"
  "test_str"
  "test_str.pdb"
  "test_str[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_str.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
