# Empty compiler generated dependencies file for test_jaro_winkler.
# This may be replaced when dependencies are built.
