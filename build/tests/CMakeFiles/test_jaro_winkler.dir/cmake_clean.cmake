file(REMOVE_RECURSE
  "CMakeFiles/test_jaro_winkler.dir/test_jaro_winkler.cc.o"
  "CMakeFiles/test_jaro_winkler.dir/test_jaro_winkler.cc.o.d"
  "test_jaro_winkler"
  "test_jaro_winkler.pdb"
  "test_jaro_winkler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jaro_winkler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
