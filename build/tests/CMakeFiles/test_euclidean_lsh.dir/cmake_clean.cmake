file(REMOVE_RECURSE
  "CMakeFiles/test_euclidean_lsh.dir/test_euclidean_lsh.cc.o"
  "CMakeFiles/test_euclidean_lsh.dir/test_euclidean_lsh.cc.o.d"
  "test_euclidean_lsh"
  "test_euclidean_lsh.pdb"
  "test_euclidean_lsh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_euclidean_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
