# Empty dependencies file for test_euclidean_lsh.
# This may be replaced when dependencies are built.
