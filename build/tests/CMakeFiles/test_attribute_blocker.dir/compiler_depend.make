# Empty compiler generated dependencies file for test_attribute_blocker.
# This may be replaced when dependencies are built.
