file(REMOVE_RECURSE
  "CMakeFiles/test_attribute_blocker.dir/test_attribute_blocker.cc.o"
  "CMakeFiles/test_attribute_blocker.dir/test_attribute_blocker.cc.o.d"
  "test_attribute_blocker"
  "test_attribute_blocker.pdb"
  "test_attribute_blocker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attribute_blocker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
