file(REMOVE_RECURSE
  "CMakeFiles/test_alphabet.dir/test_alphabet.cc.o"
  "CMakeFiles/test_alphabet.dir/test_alphabet.cc.o.d"
  "test_alphabet"
  "test_alphabet.pdb"
  "test_alphabet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alphabet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
