# Empty dependencies file for test_alphabet.
# This may be replaced when dependencies are built.
