# Empty compiler generated dependencies file for test_linkers.
# This may be replaced when dependencies are built.
