file(REMOVE_RECURSE
  "CMakeFiles/test_linkers.dir/test_linkers.cc.o"
  "CMakeFiles/test_linkers.dir/test_linkers.cc.o.d"
  "test_linkers"
  "test_linkers.pdb"
  "test_linkers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
