file(REMOVE_RECURSE
  "CMakeFiles/test_rule_parser.dir/test_rule_parser.cc.o"
  "CMakeFiles/test_rule_parser.dir/test_rule_parser.cc.o.d"
  "test_rule_parser"
  "test_rule_parser.pdb"
  "test_rule_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rule_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
