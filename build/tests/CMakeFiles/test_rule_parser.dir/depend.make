# Empty dependencies file for test_rule_parser.
# This may be replaced when dependencies are built.
