file(REMOVE_RECURSE
  "CMakeFiles/test_model_based.dir/test_model_based.cc.o"
  "CMakeFiles/test_model_based.dir/test_model_based.cc.o.d"
  "test_model_based"
  "test_model_based.pdb"
  "test_model_based[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
