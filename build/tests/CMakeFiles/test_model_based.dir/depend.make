# Empty dependencies file for test_model_based.
# This may be replaced when dependencies are built.
