file(REMOVE_RECURSE
  "CMakeFiles/test_jaccard.dir/test_jaccard.cc.o"
  "CMakeFiles/test_jaccard.dir/test_jaccard.cc.o.d"
  "test_jaccard"
  "test_jaccard.pdb"
  "test_jaccard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jaccard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
