# Empty dependencies file for test_jaccard.
# This may be replaced when dependencies are built.
