file(REMOVE_RECURSE
  "CMakeFiles/test_union_find.dir/test_union_find.cc.o"
  "CMakeFiles/test_union_find.dir/test_union_find.cc.o.d"
  "test_union_find"
  "test_union_find.pdb"
  "test_union_find[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_union_find.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
