file(REMOVE_RECURSE
  "CMakeFiles/cbvlink_link.dir/cbvlink_link.cc.o"
  "CMakeFiles/cbvlink_link.dir/cbvlink_link.cc.o.d"
  "cbvlink_link"
  "cbvlink_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbvlink_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
