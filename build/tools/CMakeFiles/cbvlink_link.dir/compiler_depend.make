# Empty compiler generated dependencies file for cbvlink_link.
# This may be replaced when dependencies are built.
