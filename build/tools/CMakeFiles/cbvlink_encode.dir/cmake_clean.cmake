file(REMOVE_RECURSE
  "CMakeFiles/cbvlink_encode.dir/cbvlink_encode.cc.o"
  "CMakeFiles/cbvlink_encode.dir/cbvlink_encode.cc.o.d"
  "cbvlink_encode"
  "cbvlink_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbvlink_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
