# Empty compiler generated dependencies file for cbvlink_encode.
# This may be replaced when dependencies are built.
