file(REMOVE_RECURSE
  "CMakeFiles/cbvlink_dedup.dir/cbvlink_dedup.cc.o"
  "CMakeFiles/cbvlink_dedup.dir/cbvlink_dedup.cc.o.d"
  "cbvlink_dedup"
  "cbvlink_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbvlink_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
