# Empty compiler generated dependencies file for cbvlink_dedup.
# This may be replaced when dependencies are built.
