# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_link_smoke "bash" "-c" "set -e; d=\$(mktemp -d);     printf 'id,first,last\\n1,JOHN,SMITH\\n2,MARY,JONES\\n' > \$d/a.csv;     printf 'id,first,last\\n10,JOHN,SMITH\\n11,ZZZZ,QQQQ\\n' > \$d/b.csv;     /root/repo/build/tools/cbvlink_link --a \$d/a.csv --b \$d/b.csv --theta 1       --out \$d/m.csv;     grep -q '^1,10\$' \$d/m.csv;     ! grep -q ',11\$' \$d/m.csv; rm -rf \$d")
set_tests_properties(tools_link_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_encode_smoke "bash" "-c" "set -e; d=\$(mktemp -d);     printf 'id,first,last\\n1,JOHN,SMITH\\n2,MARY,JONES\\n3,PAUL,DAVIS\\n'       > \$d/a.csv;     /root/repo/build/tools/cbvlink_encode --in \$d/a.csv --out \$d/a.cbv;     test -s \$d/a.cbv; rm -rf \$d")
set_tests_properties(tools_encode_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_dedup_smoke "bash" "-c" "set -e; d=\$(mktemp -d);     printf 'id,first,last\\n1,JOHN,SMITH\\n2,JOHN,SMITH\\n3,MARY,JONES\\n'       > \$d/a.csv;     /root/repo/build/tools/cbvlink_dedup --in \$d/a.csv --theta 1 > \$d/clusters.txt;     grep -q '^1,2\$' \$d/clusters.txt; rm -rf \$d")
set_tests_properties(tools_dedup_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
