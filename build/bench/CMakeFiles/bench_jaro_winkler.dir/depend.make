# Empty dependencies file for bench_jaro_winkler.
# This may be replaced when dependencies are built.
