file(REMOVE_RECURSE
  "CMakeFiles/bench_jaro_winkler.dir/bench_jaro_winkler.cc.o"
  "CMakeFiles/bench_jaro_winkler.dir/bench_jaro_winkler.cc.o.d"
  "bench_jaro_winkler"
  "bench_jaro_winkler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jaro_winkler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
