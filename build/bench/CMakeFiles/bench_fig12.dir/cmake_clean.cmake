file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12.dir/bench_fig12.cc.o"
  "CMakeFiles/bench_fig12.dir/bench_fig12.cc.o.d"
  "bench_fig12"
  "bench_fig12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
