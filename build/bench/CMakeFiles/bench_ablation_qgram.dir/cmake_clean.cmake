file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_qgram.dir/bench_ablation_qgram.cc.o"
  "CMakeFiles/bench_ablation_qgram.dir/bench_ablation_qgram.cc.o.d"
  "bench_ablation_qgram"
  "bench_ablation_qgram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_qgram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
