# Empty compiler generated dependencies file for bench_ablation_qgram.
# This may be replaced when dependencies are built.
