file(REMOVE_RECURSE
  "CMakeFiles/bench_missing_values.dir/bench_missing_values.cc.o"
  "CMakeFiles/bench_missing_values.dir/bench_missing_values.cc.o.d"
  "bench_missing_values"
  "bench_missing_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_missing_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
