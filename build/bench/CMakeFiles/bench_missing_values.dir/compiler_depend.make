# Empty compiler generated dependencies file for bench_missing_values.
# This may be replaced when dependencies are built.
