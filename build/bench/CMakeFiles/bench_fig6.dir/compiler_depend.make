# Empty compiler generated dependencies file for bench_fig6.
# This may be replaced when dependencies are built.
