file(REMOVE_RECURSE
  "CMakeFiles/bench_sparsity.dir/bench_sparsity.cc.o"
  "CMakeFiles/bench_sparsity.dir/bench_sparsity.cc.o.d"
  "bench_sparsity"
  "bench_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
