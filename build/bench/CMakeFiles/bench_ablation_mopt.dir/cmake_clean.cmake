file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mopt.dir/bench_ablation_mopt.cc.o"
  "CMakeFiles/bench_ablation_mopt.dir/bench_ablation_mopt.cc.o.d"
  "bench_ablation_mopt"
  "bench_ablation_mopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
