# Empty dependencies file for bench_ablation_mopt.
# This may be replaced when dependencies are built.
