file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11.dir/bench_fig11.cc.o"
  "CMakeFiles/bench_fig11.dir/bench_fig11.cc.o.d"
  "bench_fig11"
  "bench_fig11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
