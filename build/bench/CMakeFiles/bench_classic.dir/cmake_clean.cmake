file(REMOVE_RECURSE
  "CMakeFiles/bench_classic.dir/bench_classic.cc.o"
  "CMakeFiles/bench_classic.dir/bench_classic.cc.o.d"
  "bench_classic"
  "bench_classic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
