# Empty compiler generated dependencies file for bench_classic.
# This may be replaced when dependencies are built.
