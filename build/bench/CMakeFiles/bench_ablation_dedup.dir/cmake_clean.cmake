file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dedup.dir/bench_ablation_dedup.cc.o"
  "CMakeFiles/bench_ablation_dedup.dir/bench_ablation_dedup.cc.o.d"
  "bench_ablation_dedup"
  "bench_ablation_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
