file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_10.dir/bench_fig9_10.cc.o"
  "CMakeFiles/bench_fig9_10.dir/bench_fig9_10.cc.o.d"
  "bench_fig9_10"
  "bench_fig9_10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
