// Future-work experiment (Section 7): effectiveness of each method in
// identifying records with missing values.  We sweep the probability that
// one attribute of a perturbed record is entirely cleared and measure PC,
// under both schemes, on NCVR-shaped data.
//
// The paper reports only "initial results ... by applying PH, the gain in
// accuracy compared to the baselines is larger" — this bench regenerates
// that comparison.

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "src/common/str.h"

namespace cbvlink {
namespace {

void Run() {
  const size_t n = RecordsFromEnv(2000);
  const size_t reps = RepetitionsFromEnv(2);
  bench::Banner("Future work: PC under missing values (NCVR)");
  std::printf("records=%zu reps=%zu\n\n", n, reps);

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");
  const Schema& schema = gen.value().schema();

  std::optional<CsvWriter> csv;
  const std::string csv_dir = CsvDirFromEnv();
  if (!csv_dir.empty()) {
    Result<CsvWriter> w = CsvWriter::Open(
        csv_dir + "/missing_values.csv",
        {"scheme_method", "miss0", "miss20", "miss50"});
    if (w.ok()) csv.emplace(std::move(w).value());
  }

  const double miss_probs[] = {0.0, 0.2, 0.5};
  for (int s = 0; s < 2; ++s) {
    const bench::Scheme scheme =
        s == 0 ? bench::Scheme::kPL : bench::Scheme::kPH;
    std::printf("scheme %s\n", bench::SchemeName(scheme));
    std::printf("%-8s %10s %10s %10s\n", "method", "miss=0", "miss=.2",
                "miss=.5");
    for (const char* method : {"cBV-HB", "BfH", "HARRA", "SM-EB"}) {
      double pc[3] = {0, 0, 0};
      for (int m = 0; m < 3; ++m) {
        PerturbationScheme perturb = bench::MakeScheme(scheme);
        perturb.missing_value_probability = miss_probs[m];
        LinkagePairOptions options;
        options.num_records = n;
        Result<AveragedResult> avg = RunRepeated(
            gen.value(), perturb, options, reps, [&](uint64_t seed) {
              return bench::MakeLinker(method, schema, scheme, seed);
            });
        bench::DieOnError(avg.ok() ? Status::OK() : avg.status(), method);
        pc[m] = avg.value().pairs_completeness;
      }
      std::printf("%-8s %10.3f %10.3f %10.3f\n", method, pc[0], pc[1], pc[2]);
      if (csv.has_value()) {
        csv->WriteNumericRow(
            std::string(bench::SchemeName(scheme)) + "_" + method,
            {pc[0], pc[1], pc[2]});
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Reading: a cleared attribute puts the pair outside every "
      "conjunctive rule, so PC\ndegrades roughly linearly in the missing "
      "probability for all methods; disjunctive\nrules (see "
      "examples/rule_blocking) are the mitigation the rule machinery "
      "offers.\n");
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
