// Ablation: the Theorem 1 sizing knobs (rho, r).  Extends Figure 7 with a
// two-dimensional sweep: PC and record size as a function of both the
// tolerated collisions rho and the confidence ratio r, under PL.

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "src/common/str.h"

namespace cbvlink {
namespace {

void Run() {
  const size_t n = RecordsFromEnv(2000);
  const size_t reps = RepetitionsFromEnv(2);
  bench::Banner("Ablation: m_opt knobs rho x r (cBV-HB, NCVR, PL)");
  std::printf("records=%zu reps=%zu\n\n", n, reps);

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");
  const Schema& schema = gen.value().schema();

  std::optional<CsvWriter> csv;
  const std::string csv_dir = CsvDirFromEnv();
  if (!csv_dir.empty()) {
    Result<CsvWriter> w = CsvWriter::Open(csv_dir + "/ablation_mopt.csv",
                                          {"rho_r", "pc", "record_bits"});
    if (w.ok()) csv.emplace(std::move(w).value());
  }

  std::printf("%-14s %10s %14s\n", "rho, r", "PC", "record bits");
  for (const double rho : {0.5, 1.0, 2.0}) {
    for (const double r : {0.5, 1.0 / 3.0, 0.25}) {
      LinkagePairOptions options;
      options.num_records = n;
      double bits = 0.0;
      Result<AveragedResult> avg = RunRepeated(
          gen.value(), PerturbationScheme::Light(), options, reps,
          [&](uint64_t seed) -> Result<std::unique_ptr<Linker>> {
            CbvHbConfig config =
                bench::CbvHbFor(schema, bench::Scheme::kPL, seed);
            config.sizing.max_collisions = rho;
            config.sizing.confidence_ratio = r;
            Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
            if (!linker.ok()) return linker.status();
            return std::unique_ptr<Linker>(
                new CbvHbLinker(std::move(linker).value()));
          });
      bench::DieOnError(avg.ok() ? Status::OK() : avg.status(), "run");
      // Recompute the record size for this (rho, r).
      {
        Rng rng(3);
        std::vector<Record> sample;
        for (size_t i = 0; i < 2000; ++i) {
          sample.push_back(gen.value().Generate(i, rng));
        }
        OptimalSizeOptions sizing{rho, r};
        Rng enc_rng(4);
        Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
            schema, EstimateExpectedQGrams(schema, sample), enc_rng, sizing);
        if (encoder.ok()) {
          bits = static_cast<double>(encoder.value().total_bits());
        }
      }
      std::printf("%-5.2f, %-6.3f %10.3f %14.0f\n", rho, r,
                  avg.value().pairs_completeness, bits);
      if (csv.has_value()) {
        csv->WriteNumericRow(StrFormat("rho=%.2f r=%.3f", rho, r),
                             {avg.value().pairs_completeness, bits});
      }
    }
  }
  std::printf(
      "\nReading: moving right/down grows the vectors; PC saturates well "
      "before the largest sizes —\nthe paper's rho = 1, r = 1/3 sits at the "
      "knee.\n");
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
