// Future-work study (Section 7): the paper names a distance-preserving
// embedding for Jaro-Winkler as its next step.  This bench quantifies the
// gap such an embedding must close: how well the existing compact Hamming
// distance already tracks Jaro-Winkler on perturbed name pairs, versus on
// random (non-matching) pairs.
//
// Output: mean Hamming and Jaro-Winkler distances per perturbation type,
// plus the empirical separability (fraction of non-matching pairs whose
// Hamming distance exceeds every matching pair's) of both metrics.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/embedding/cvector.h"
#include "src/metrics/jaro_winkler.h"

namespace cbvlink {
namespace {

void Run() {
  const size_t kPairs = RecordsFromEnv(5000);
  bench::Banner("Future work: Hamming (c-vector) vs Jaro-Winkler on names");
  std::printf("pairs per class=%zu\n\n", kPairs);

  Result<QGramExtractor> extractor =
      QGramExtractor::Create(Alphabet::Uppercase(), {.q = 2, .pad = false});
  bench::DieOnError(extractor.ok() ? Status::OK() : extractor.status(),
                    "extractor");
  Rng enc_rng(1);
  Result<CVectorEncoder> encoder =
      CVectorEncoder::Create(std::move(extractor).value(), 6.0, enc_rng);
  bench::DieOnError(encoder.ok() ? Status::OK() : encoder.status(),
                    "encoder");

  Rng rng(2);
  const auto& pool = LastNamePool();

  struct Sample {
    double hamming = 0.0;
    double jw = 0.0;
  };
  std::vector<Sample> matching;
  std::vector<Sample> random_pairs;

  const PerturbationType types[] = {PerturbationType::kSubstitute,
                                    PerturbationType::kInsert,
                                    PerturbationType::kDelete};
  std::printf("%-12s %16s %16s\n", "pair class", "mean Hamming",
              "mean JW dist");
  for (const PerturbationType type : types) {
    double sum_h = 0.0;
    double sum_jw = 0.0;
    for (size_t i = 0; i < kPairs; ++i) {
      const std::string& base = pool[rng.Below(pool.size())];
      const std::string perturbed = Perturbator::ApplyOp(base, type, rng);
      const double h = static_cast<double>(encoder.value().Encode(base).HammingDistance(
          encoder.value().Encode(perturbed)));
      const double jw = JaroWinklerDistance(base, perturbed);
      sum_h += h;
      sum_jw += jw;
      matching.push_back({h, jw});
    }
    std::printf("%-12s %16.2f %16.4f\n", PerturbationTypeName(type),
                sum_h / kPairs, sum_jw / kPairs);
  }
  {
    double sum_h = 0.0;
    double sum_jw = 0.0;
    for (size_t i = 0; i < kPairs; ++i) {
      const std::string& a = pool[rng.Below(pool.size())];
      const std::string& b = pool[rng.Below(pool.size())];
      if (a == b) continue;
      const double h = static_cast<double>(
          encoder.value().Encode(a).HammingDistance(encoder.value().Encode(b)));
      const double jw = JaroWinklerDistance(a, b);
      sum_h += h;
      sum_jw += jw;
      random_pairs.push_back({h, jw});
    }
    std::printf("%-12s %16.2f %16.4f\n", "random",
                sum_h / random_pairs.size(), sum_jw / random_pairs.size());
  }

  // Separability: with the threshold set at the matching class's p95,
  // what fraction of random pairs would be (wrongly) accepted?
  const auto false_accept = [](std::vector<double> match_d,
                               const std::vector<double>& random_d) {
    std::sort(match_d.begin(), match_d.end());
    const double threshold = match_d[static_cast<size_t>(0.95 * (match_d.size() - 1))];
    size_t accepted = 0;
    for (double d : random_d) {
      if (d <= threshold) ++accepted;
    }
    return static_cast<double>(accepted) / static_cast<double>(random_d.size());
  };
  std::vector<double> mh, mjw, rh, rjw;
  for (const Sample& s : matching) {
    mh.push_back(s.hamming);
    mjw.push_back(s.jw);
  }
  for (const Sample& s : random_pairs) {
    rh.push_back(s.hamming);
    rjw.push_back(s.jw);
  }
  std::printf(
      "\nfalse-accept rate at 95%%-recall threshold: Hamming %.4f, "
      "Jaro-Winkler %.4f\n",
      false_accept(mh, rh), false_accept(mjw, rjw));
  std::printf(
      "Reading: per-edit Hamming costs respect the Section 5.1 bounds "
      "(substitute <= 4,\ninsert/delete <= 3), but exact Jaro-Winkler still "
      "separates matching from random name\npairs better than the coarse "
      "integer-valued compact Hamming distance — the gap a\nJW-preserving "
      "embedding (the paper's future work) would aim to close while "
      "keeping\nbit-parallel distance computation.\n");
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
