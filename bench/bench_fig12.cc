// Reproduces Figure 12:
//  (a) Reduction Ratio together with Pairs Completeness per method under
//      PL — efficiency must come with accuracy, which only cBV-HB and
//      BfH achieve (SM-EB's blocks are overwhelmed by non-matching
//      pairs);
//  (b) total elapsed time per method for PL and PH (HARRA fast but
//      inaccurate, SM-EB slowest by a large margin).

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"

namespace cbvlink {
namespace {

void Run() {
  const size_t n = RecordsFromEnv(2000);
  const size_t reps = RepetitionsFromEnv(2);
  bench::Banner("Figure 12: RR + PC, and running time per method (NCVR)");
  std::printf("records=%zu reps=%zu\n\n", n, reps);

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");
  const Schema& schema = gen.value().schema();

  std::optional<CsvWriter> csv;
  const std::string csv_dir = CsvDirFromEnv();
  if (!csv_dir.empty()) {
    Result<CsvWriter> w = CsvWriter::Open(
        csv_dir + "/fig12.csv",
        {"method", "rr_PL", "pc_PL", "time_PL_s", "time_PH_s"});
    if (w.ok()) csv.emplace(std::move(w).value());
  }

  std::printf("%-8s %10s %10s %14s %14s\n", "method", "RR(PL)", "PC(PL)",
              "time PL (s)", "time PH (s)");
  for (const char* method : {"cBV-HB", "BfH", "HARRA", "SM-EB"}) {
    double rr = 0.0;
    double pc = 0.0;
    double seconds[2] = {0.0, 0.0};
    for (int s = 0; s < 2; ++s) {
      const bench::Scheme scheme =
          s == 0 ? bench::Scheme::kPL : bench::Scheme::kPH;
      LinkagePairOptions options;
      options.num_records = n;
      Result<AveragedResult> avg = RunRepeated(
          gen.value(), bench::MakeScheme(scheme), options, reps,
          [&](uint64_t seed) {
            return bench::MakeLinker(method, schema, scheme, seed);
          });
      bench::DieOnError(avg.ok() ? Status::OK() : avg.status(), method);
      seconds[s] = avg.value().total_seconds;
      if (scheme == bench::Scheme::kPL) {
        rr = avg.value().reduction_ratio;
        pc = avg.value().pairs_completeness;
      }
    }
    std::printf("%-8s %10.4f %10.3f %14.3f %14.3f\n", method, rr, pc,
                seconds[0], seconds[1]);
    if (csv.has_value()) {
      csv->WriteNumericRow(method, {rr, pc, seconds[0], seconds[1]});
    }
  }
  std::printf(
      "\nExpected shape (paper): high RR for all but SM-EB; only cBV-HB and "
      "BfH pair high RR\nwith high PC; SM-EB slowest overall.\n");
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
