// Ablation: bigrams (q = 2) vs trigrams (q = 3).  Section 5.1 claims the
// error-distance correspondence holds for any q >= 2; this bench shows
// the accuracy/size trade-off of moving to q = 3 under PL.

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "src/common/str.h"

namespace cbvlink {
namespace {

void Run() {
  const size_t n = RecordsFromEnv(2000);
  const size_t reps = RepetitionsFromEnv(2);
  bench::Banner("Ablation: q = 2 vs q = 3 (cBV-HB, NCVR, PL)");
  std::printf("records=%zu reps=%zu\n\n", n, reps);

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");

  std::optional<CsvWriter> csv;
  const std::string csv_dir = CsvDirFromEnv();
  if (!csv_dir.empty()) {
    Result<CsvWriter> w = CsvWriter::Open(
        csv_dir + "/ablation_qgram.csv",
        {"q", "theta", "pc", "pq", "record_bits"});
    if (w.ok()) csv.emplace(std::move(w).value());
  }

  std::printf("%-4s %-7s %10s %12s %14s\n", "q", "theta", "PC", "PQ",
              "record bits");
  // One edit touches at most q q-grams per string: alpha = 2q for
  // substitutions, so theta scales with q.
  for (const size_t q : {2, 3}) {
    const size_t theta = 2 * q;
    Schema schema = gen.value().schema();
    for (AttributeSpec& spec : schema.attributes) spec.qgram.q = q;

    LinkagePairOptions options;
    options.num_records = n;
    double bits = 0.0;
    Result<AveragedResult> avg = RunRepeated(
        gen.value(), PerturbationScheme::Light(), options, reps,
        [&](uint64_t seed) -> Result<std::unique_ptr<Linker>> {
          CbvHbConfig config;
          config.schema = schema;
          config.rule = Rule::And({Rule::Pred(0, theta), Rule::Pred(1, theta),
                                   Rule::Pred(2, theta), Rule::Pred(3, theta)});
          config.record_K = 30;
          config.record_theta = theta;
          config.seed = seed;
          Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
          if (!linker.ok()) return linker.status();
          return std::unique_ptr<Linker>(
              new CbvHbLinker(std::move(linker).value()));
        });
    bench::DieOnError(avg.ok() ? Status::OK() : avg.status(), "run");
    {
      Rng rng(3);
      std::vector<Record> sample;
      for (size_t i = 0; i < 2000; ++i) {
        sample.push_back(gen.value().Generate(i, rng));
      }
      Rng enc_rng(4);
      Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
          schema, EstimateExpectedQGrams(schema, sample), enc_rng);
      if (encoder.ok()) bits = static_cast<double>(encoder.value().total_bits());
    }
    std::printf("%-4zu %-7zu %10.3f %12.5f %14.0f\n", q, theta,
                avg.value().pairs_completeness, avg.value().pairs_quality,
                bits);
    if (csv.has_value()) {
      csv->WriteNumericRow(StrFormat("q=%zu", q),
                           {static_cast<double>(theta),
                            avg.value().pairs_completeness,
                            avg.value().pairs_quality, bits});
    }
  }
  std::printf(
      "\nReading: q = 3 needs wider thresholds for the same edit budget and "
      "slightly smaller\nvectors per gram count; q = 2 is the paper's "
      "sweet spot.\n");

  // ---- Padding ablation -------------------------------------------------
  // The paper pads strings in footnote 4 ('_JONES_') yet its Figure 1
  // and Table 3 numbers follow the unpadded convention.  Measure what
  // padding actually changes: two more bigrams per value (larger m_opt)
  // and edge edits costing as much as interior ones.
  bench::Banner("Ablation: padded vs unpadded bigrams (cBV-HB, NCVR, PL)");
  std::printf("%-10s %10s %12s %14s\n", "padding", "PC", "PQ",
              "record bits");
  for (const bool pad : {false, true}) {
    Schema schema = gen.value().schema();
    for (AttributeSpec& spec : schema.attributes) {
      spec.qgram.pad = pad;
      if (pad && !spec.alphabet->Contains(kPadChar)) {
        spec.alphabet = spec.alphabet == &Alphabet::Uppercase()
                            ? &Alphabet::UppercasePadded()
                            : spec.alphabet;
      }
    }
    LinkagePairOptions options;
    options.num_records = n;
    double bits = 0.0;
    Result<AveragedResult> avg = RunRepeated(
        gen.value(), PerturbationScheme::Light(), options, reps,
        [&](uint64_t seed) -> Result<std::unique_ptr<Linker>> {
          CbvHbConfig config;
          config.schema = schema;
          config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                                   Rule::Pred(2, 4), Rule::Pred(3, 4)});
          config.record_K = 30;
          config.record_theta = 4;
          config.seed = seed;
          Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
          if (!linker.ok()) return linker.status();
          return std::unique_ptr<Linker>(
              new CbvHbLinker(std::move(linker).value()));
        });
    bench::DieOnError(avg.ok() ? Status::OK() : avg.status(), "padding run");
    {
      Rng rng(5);
      std::vector<Record> sample;
      for (size_t i = 0; i < 2000; ++i) {
        sample.push_back(gen.value().Generate(i, rng));
      }
      Rng enc_rng(6);
      Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
          schema, EstimateExpectedQGrams(schema, sample), enc_rng);
      if (encoder.ok()) bits = static_cast<double>(encoder.value().total_bits());
    }
    std::printf("%-10s %10.3f %12.5f %14.0f\n", pad ? "padded" : "unpadded",
                avg.value().pairs_completeness, avg.value().pairs_quality,
                bits);
  }
  std::printf(
      "Reading: padding adds ~2 bigrams per value (larger vectors, higher "
      "PQ) and makes\nedge-of-string edits cost the full 2q bits, shaving "
      "a point of PC at equal theta.\nThe paper's footnote-4/Figure-1 "
      "inconsistency is immaterial either way; we follow\nits (unpadded) "
      "numbers.\n");
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
