// Ablation: Algorithm 2's de-duplicating unique collection.  Measures how
// many duplicate candidate occurrences the redundant L-group blocking
// produces and the distance computations the dedup saves, as L grows.

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "src/blocking/matcher.h"
#include "src/blocking/record_blocker.h"
#include "src/common/stopwatch.h"
#include "src/common/str.h"

namespace cbvlink {
namespace {

void Run() {
  const size_t n = RecordsFromEnv(3000);
  bench::Banner("Ablation: Algorithm 2 de-duplication (cBV-HB, NCVR, PL)");
  std::printf("records=%zu\n\n", n);

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");
  const Schema& schema = gen.value().schema();

  LinkagePairOptions options;
  options.num_records = n;
  Result<LinkagePair> data =
      BuildLinkagePair(gen.value(), PerturbationScheme::Light(), options);
  bench::DieOnError(data.ok() ? Status::OK() : data.status(), "data");

  Rng enc_rng(7);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      schema, EstimateExpectedQGrams(schema, data.value().a), enc_rng);
  bench::DieOnError(encoder.ok() ? Status::OK() : encoder.status(), "encoder");

  std::vector<EncodedRecord> enc_a, enc_b;
  for (const Record& r : data.value().a) {
    enc_a.push_back(encoder.value().Encode(r).value());
  }
  for (const Record& r : data.value().b) {
    enc_b.push_back(encoder.value().Encode(r).value());
  }
  VectorStore store;
  store.AddAll(enc_a);
  const PairClassifier classifier =
      MakeRuleClassifier(bench::PlRule(), encoder.value().layout());

  std::optional<CsvWriter> csv;
  const std::string csv_dir = CsvDirFromEnv();
  if (!csv_dir.empty()) {
    Result<CsvWriter> w = CsvWriter::Open(
        csv_dir + "/ablation_dedup.csv",
        {"L", "occurrences", "comparisons", "dedup_saved", "saved_frac"});
    if (w.ok()) csv.emplace(std::move(w).value());
  }

  std::printf("%-6s %14s %14s %14s %12s\n", "L", "occurrences", "comparisons",
              "dedup saved", "saved %");
  for (const size_t L : {2, 4, 6, 12, 24}) {
    Rng rng(100 + L);
    Result<RecordLevelBlocker> blocker =
        RecordLevelBlocker::CreateWithL(encoder.value().total_bits(), 30, L,
                                        rng);
    bench::DieOnError(blocker.ok() ? Status::OK() : blocker.status(),
                      "blocker");
    blocker.value().Index(enc_a);
    Matcher matcher(&blocker.value(), &store);
    MatchStats stats;
    Stopwatch watch;
    matcher.MatchAll(enc_b, classifier, &stats);
    const double saved_frac =
        stats.candidate_occurrences == 0
            ? 0.0
            : static_cast<double>(stats.dedup_skipped) /
                  static_cast<double>(stats.candidate_occurrences);
    std::printf("%-6zu %14llu %14llu %14llu %11.1f%%\n", L,
                static_cast<unsigned long long>(stats.candidate_occurrences),
                static_cast<unsigned long long>(stats.comparisons),
                static_cast<unsigned long long>(stats.dedup_skipped),
                100.0 * saved_frac);
    if (csv.has_value()) {
      csv->WriteNumericRow(
          StrFormat("%zu", L),
          {static_cast<double>(stats.candidate_occurrences),
           static_cast<double>(stats.comparisons),
           static_cast<double>(stats.dedup_skipped), saved_frac});
    }
  }
  std::printf(
      "\nReading: the share of distance computations Algorithm 2 avoids "
      "grows with L —\nredundant groups re-deliver the same pairs.\n");
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
