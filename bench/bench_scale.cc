// Scaling study: cBV-HB wall-clock and accuracy as data sets grow.
// Complements Figure 12 by showing how the pipeline behaves on the way
// to the paper's 1M-record scale: embedding and indexing are linear, the
// matching load follows the candidate volume, and PC stays pinned by the
// Equation 2 guarantee regardless of n.

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "src/common/str.h"

namespace cbvlink {
namespace {

void Run() {
  const size_t max_n = RecordsFromEnv(40000);
  bench::Banner("Scaling: cBV-HB vs data set size (NCVR, PL)");

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");
  const Schema& schema = gen.value().schema();

  std::optional<CsvWriter> csv;
  const std::string csv_dir = CsvDirFromEnv();
  if (!csv_dir.empty()) {
    Result<CsvWriter> w = CsvWriter::Open(
        csv_dir + "/scale.csv",
        {"n", "pc", "embed_s", "index_s", "match_s", "comparisons"});
    if (w.ok()) csv.emplace(std::move(w).value());
  }

  std::printf("%-10s %8s %10s %10s %10s %14s\n", "records", "PC",
              "embed(s)", "index(s)", "match(s)", "comparisons");
  std::vector<std::pair<std::string, double>> series;
  for (size_t n = 2500; n <= max_n; n *= 2) {
    LinkagePairOptions options;
    options.num_records = n;
    Result<AveragedResult> avg = RunRepeated(
        gen.value(), PerturbationScheme::Light(), options, 1,
        [&](uint64_t seed) {
          return bench::MakeLinker("cBV-HB", schema, bench::Scheme::kPL,
                                   seed);
        });
    bench::DieOnError(avg.ok() ? Status::OK() : avg.status(), "run");
    std::printf("%-10zu %8.3f %10.3f %10.3f %10.3f %14.0f\n", n,
                avg.value().pairs_completeness, avg.value().embed_seconds,
                avg.value().index_seconds, avg.value().match_seconds,
                avg.value().comparisons);
    if (csv.has_value()) {
      csv->WriteNumericRow(
          StrFormat("%zu", n),
          {avg.value().pairs_completeness, avg.value().embed_seconds,
           avg.value().index_seconds, avg.value().match_seconds,
           avg.value().comparisons});
    }
    const std::string prefix = StrFormat("n_%zu.", n);
    series.emplace_back(prefix + "pc", avg.value().pairs_completeness);
    series.emplace_back(prefix + "embed_s", avg.value().embed_seconds);
    series.emplace_back(prefix + "index_s", avg.value().index_seconds);
    series.emplace_back(prefix + "match_s", avg.value().match_seconds);
    series.emplace_back(prefix + "comparisons", avg.value().comparisons);
  }
  bench::EmitBenchJson("BENCH_scale.json", series);
  std::printf(
      "\nReading: PC holds at the Eq. 2 level at every scale; embed/index "
      "grow linearly,\nmatching with the candidate volume (names repeat, "
      "so candidates grow ~n^2 within\nblocks — the PQ decline of "
      "Figure 10 at 1M records).\n");
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
